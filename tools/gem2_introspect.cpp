/// \file gem2_introspect.cpp
/// Introspection snapshot tool: builds a small representative deployment
/// (sharded GEM2 store + SP engine + a seeded fault sweep), then dumps the
/// full observability surface — metrics registry with p50/p99/p999 reservoir
/// quantiles, per-shard counters, and the cross-layer provider facts (Keccak
/// permutations, arena stats, chain commit work) — as Prometheus text
/// exposition or JSON.
///
///   gem2_introspect                 # run smoke workload, print Prometheus text
///   gem2_introspect --format=json   # same, as one JSON object
///   gem2_introspect --check         # validate the surface; exit 1 on a gap
///   gem2_introspect --empty         # skip the workload, dump as-is
///
/// Environment: GEM2_INTROSPECT_N (objects, default 2000),
/// GEM2_EVENT_LOG (JSONL audit log target, validated under --check),
/// GEM2_INTROSPECT_SIGUSR1=1 (arm the SIGUSR1 dump before the workload).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "fault/adversary.h"
#include "shard/sharded_db.h"
#include "telemetry/event_log.h"
#include "telemetry/exporters.h"
#include "telemetry/introspect.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "workload/workload.h"

namespace {

uint64_t EnvScale(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

std::unique_ptr<gem2::shard::ShardedDb> BuildSmokeStore(uint64_t n) {
  gem2::workload::WorkloadOptions w;
  w.seed = 42;
  w.domain_max = 1'000'000'000;
  gem2::workload::WorkloadGenerator gen(w);

  gem2::shard::ShardOptions options;
  options.base.kind = gem2::core::AdsKind::kGem2;
  options.base.gem2.m = 8;
  options.base.gem2.smax = 512;
  options.base.env.gas_limit = 1'000'000'000'000'000ull;
  options.base.env.txs_per_block = 256;
  options.bounds = gen.ShardBounds(2);
  auto store = std::make_unique<gem2::shard::ShardedDb>(std::move(options));
  for (uint64_t i = 0; i < n; ++i) store->Insert(gen.Next().object);
  return store;
}

void RunSmokeWorkload(uint64_t n) {
  auto store = BuildSmokeStore(n);
  gem2::workload::WorkloadOptions w;
  w.seed = 43;
  w.domain_max = 1'000'000'000;
  gem2::workload::WorkloadGenerator gen(w);

  gem2::core::SpQueryEngine engine(store.get());
  for (int i = 0; i < 16; ++i) {
    gem2::workload::RangeQuerySpec probe = gen.NextQuery(0.01);
    gem2::core::QueryResponse response = engine.Query(probe.lb, probe.ub);
    gem2::core::VerifiedResult vr = engine.VerifyFor(probe.lb, probe.ub, response);
    if (!vr.ok) {
      std::fprintf(stderr, "gem2_introspect: honest query failed verification: %s\n",
                   vr.error.c_str());
      std::exit(2);
    }
  }

  // A small seeded forgery sweep so rejection counters (and, when
  // GEM2_EVENT_LOG is set, the JSONL audit log) are populated.
  gem2::fault::AdversaryOptions adversary;
  adversary.seed = 7;
  adversary.mutations = 40;
  gem2::fault::AdversaryReport report =
      gem2::fault::RunAdversarialSweep(*store, adversary);
  if (!report.AllRejected()) {
    std::fprintf(stderr, "gem2_introspect: %d forgeries ACCEPTED\n",
                 report.forged());
    std::exit(2);
  }
}

uint64_t FindCounter(const gem2::telemetry::MetricsSnapshot& snap,
                     const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

bool HasHistogram(const gem2::telemetry::MetricsSnapshot& snap,
                  const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return h.count > 0;
  }
  return false;
}

uint64_t FindFact(const gem2::telemetry::ProviderFacts& facts,
                  const std::string& name) {
  for (const auto& [n, v] : facts) {
    if (n == name) return v;
  }
  return 0;
}

int Check() {
  const gem2::telemetry::MetricsSnapshot snap =
      gem2::telemetry::MetricsRegistry::Global().Snapshot();
  const gem2::telemetry::ProviderFacts facts =
      gem2::telemetry::Introspection::Global().Collect();

  std::vector<std::string> missing;
  auto require = [&](bool ok, const std::string& what) {
    if (!ok) missing.push_back(what);
  };

  require(FindCounter(snap, "query.count") > 0, "counter query.count");
  require(FindCounter(snap, "sp_engine.queries") > 0, "counter sp_engine.queries");
  require(FindCounter(snap, "fault.mutation.attempted") > 0,
          "counter fault.mutation.attempted");
  require(FindCounter(snap, "fault.mutation.rejected_parse") +
                  FindCounter(snap, "fault.mutation.rejected_verify") >
              0,
          "rejection counters fault.mutation.rejected_*");
  require(FindCounter(snap, "chain.commit.root_computations") > 0,
          "counter chain.commit.root_computations");
  require(HasHistogram(snap, "sp_engine.query_ns"),
          "latency histogram sp_engine.query_ns");
  require(HasHistogram(snap, "shard.slice_ns.0"),
          "per-shard latency histogram shard.slice_ns.0");
  require(FindFact(facts, "keccak.permutations") > 0,
          "provider fact keccak.permutations");
  bool has_arena = false;
  for (const auto& [n, v] : facts) {
    if (n.rfind("arena.", 0) == 0) has_arena = true;
  }
  require(has_arena, "provider facts arena.*");

  // The exposition itself must render and the JSON form must parse.
  const std::string prom = gem2::telemetry::PrometheusExposition(snap, facts);
  require(prom.find("gem2_query_count_total") != std::string::npos,
          "prometheus rendering of query.count");
  require(prom.find("quantile=\"0.999\"") != std::string::npos,
          "prometheus summary quantiles");
  require(gem2::telemetry::JsonValid(gem2::telemetry::IntrospectionJson()),
          "introspection JSON validity");

  // When an audit log target is configured, the sweep above must have
  // produced attributable rejection events.
  auto& log = gem2::telemetry::EventLog::Global();
  if (log.enabled()) {
    require(log.lines_written() > 0, "event-log rejection events");
  }

  if (!missing.empty()) {
    std::fprintf(stderr, "gem2_introspect --check FAILED; missing:\n");
    for (const std::string& m : missing) {
      std::fprintf(stderr, "  - %s\n", m.c_str());
    }
    return 1;
  }
  std::fprintf(stderr,
               "gem2_introspect --check OK (%zu counters, %zu gauges, %zu "
               "histograms, %zu provider facts)\n",
               snap.counters.size(), snap.gauges.size(),
               snap.histograms.size(), facts.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool run_workload = true;
  bool json = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
      quiet = true;
    } else if (std::strcmp(arg, "--empty") == 0) {
      run_workload = false;
    } else if (std::strcmp(arg, "--format=json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--format=prom") == 0) {
      json = false;
    } else if (std::strcmp(arg, "--print") == 0) {
      quiet = false;
    } else {
      std::fprintf(stderr,
                   "usage: gem2_introspect [--check] [--empty] "
                   "[--format=prom|json] [--print]\n");
      return 64;
    }
  }

  if (check && !gem2::telemetry::kCompiledIn) {
    std::fprintf(stderr,
                 "gem2_introspect --check skipped: telemetry compiled out "
                 "(GEM2_TELEMETRY=OFF)\n");
    return 0;
  }

  // Instrumentation sites gate on an installed sink; a NullSink turns the
  // full surface on without routing span output anywhere.
  gem2::telemetry::Tracer::Global().AddSink(
      std::make_shared<gem2::telemetry::NullSink>());

  if (run_workload) RunSmokeWorkload(EnvScale("GEM2_INTROSPECT_N", 2000));

  if (!quiet) {
    const std::string out = json ? gem2::telemetry::IntrospectionJson()
                                 : gem2::telemetry::PrometheusExposition();
    std::fwrite(out.data(), 1, out.size(), stdout);
    if (json) std::fputc('\n', stdout);
  }
  return check ? Check() : 0;
}
