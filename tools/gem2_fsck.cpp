// gem2_fsck — scan (and optionally repair) a durable SP store directory.
//
//   gem2_fsck --check <dir>    read-only scan, report per-segment verdicts
//   gem2_fsck --repair <dir>   additionally truncate torn/corrupt tails to
//                              their valid prefix and remove bad-header torn
//                              creations (exactly what DurableSpStore::Open
//                              does before serving)
//
// Exit codes:
//   0  clean — every byte accounted for
//   1  attributable tail damage (torn/corrupt tail, discarded checkpoint);
//      recovery serves the valid prefix, client verification attributes the
//      lost tail. --repair turns this state back into exit 0.
//   2  fail closed — mid-stream corruption, a sequence gap, or a broken
//      non-final segment. Nothing recovered from this directory may be
//      served, and fsck refuses to "repair" what it cannot attribute.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "store/checkpoint.h"
#include "store/durable_journal.h"
#include "store/segment.h"
#include "store/vfs.h"

namespace {

const char* OutcomeName(gem2::store::SegmentScan::Outcome outcome) {
  using Outcome = gem2::store::SegmentScan::Outcome;
  switch (outcome) {
    case Outcome::kClean:
      return "clean";
    case Outcome::kTornTail:
      return "torn-tail";
    case Outcome::kCorruptTail:
      return "corrupt-tail";
    case Outcome::kBadHeader:
      return "bad-header";
    case Outcome::kCorrupt:
      return "CORRUPT";
  }
  return "?";
}

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --check|--repair <store-dir>\n", argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage(argv[0]);
  bool repair = false;
  if (std::strcmp(argv[1], "--repair") == 0) {
    repair = true;
  } else if (std::strcmp(argv[1], "--check") != 0) {
    return Usage(argv[0]);
  }
  const std::string dir = argv[2];

  gem2::store::PosixVfs vfs;
  const gem2::store::JournalRecovery journal =
      gem2::store::RecoverJournal(&vfs, dir);

  std::printf("gem2_fsck %s %s\n", repair ? "--repair" : "--check",
              dir.c_str());
  bool tail_damage = false;
  for (const gem2::store::SegmentInfo& info : journal.segments) {
    std::printf("  %-28s base=%-10" PRIu64 " records=%-8" PRIu64
                " %-12s valid=%" PRIu64 " truncated=%" PRIu64 "%s%s\n",
                info.name.c_str(), info.base_seqno, info.records,
                OutcomeName(info.outcome), info.valid_bytes,
                info.truncated_bytes, info.error.empty() ? "" : "  ",
                info.error.c_str());
    if (info.outcome != gem2::store::SegmentScan::Outcome::kClean) {
      tail_damage = true;
    }
  }

  const gem2::store::CheckpointLoad ckpt =
      gem2::store::LoadLatestCheckpoint(&vfs, dir);
  if (ckpt.found) {
    std::printf("  checkpoint: seqno=%" PRIu64 " state=%zu bytes (%u damaged "
                "discarded)\n",
                ckpt.seqno, ckpt.state.size(), ckpt.discarded);
  } else {
    std::printf("  checkpoint: none%s\n",
                ckpt.discarded > 0 ? " usable (all damaged)" : "");
  }
  if (ckpt.discarded > 0) tail_damage = true;

  if (!journal.ok) {
    std::printf("FAIL-CLOSED: %s\n", journal.error.c_str());
    std::printf("nothing recovered from this directory may be served; "
                "restore from the on-chain journal replay instead\n");
    return 2;
  }

  std::printf("  recoverable: %" PRIu64 " ops (seqno %" PRIu64 "..%" PRIu64
              "), %" PRIu64 " bytes truncated, %u corrupt records%s\n",
              journal.replayed_ops, journal.first_seqno, journal.next_seqno,
              journal.truncated_bytes, journal.corrupt_records,
              journal.tail_lost ? ", tail lost" : "");

  if (repair && tail_damage) {
    for (const gem2::store::SegmentInfo& info : journal.segments) {
      const std::string path = dir + "/" + info.name;
      gem2::store::IoStatus status = gem2::store::IoStatus::Ok();
      switch (info.outcome) {
        case gem2::store::SegmentScan::Outcome::kTornTail:
        case gem2::store::SegmentScan::Outcome::kCorruptTail:
          status = vfs.TruncateFile(path, info.valid_bytes);
          std::printf("  repaired %s: truncated to %" PRIu64 " bytes\n",
                      info.name.c_str(), info.valid_bytes);
          break;
        case gem2::store::SegmentScan::Outcome::kBadHeader:
          status = vfs.RemoveFile(path);
          std::printf("  repaired %s: removed (torn creation)\n",
                      info.name.c_str());
          break;
        default:
          continue;
      }
      if (!status) {
        std::fprintf(stderr, "repair %s failed: %s\n", info.name.c_str(),
                     status.message.c_str());
        return 2;
      }
    }
    std::printf("repair complete; re-run --check to confirm\n");
    return 0;
  }

  if (tail_damage) {
    std::printf("TAIL DAMAGE: recovery serves the valid prefix; run --repair "
                "to truncate it in place\n");
    return 1;
  }
  std::printf("clean\n");
  return 0;
}
