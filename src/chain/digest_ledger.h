/// \file digest_ledger.h
/// Incrementally-maintained committed-digest view of a contract.
///
/// Contracts originally recomputed their full digest list from the live ADS
/// on every CommittedDigests() call, and the environment deep-copied that
/// list before *every* transaction just in case it aborted. The ledger
/// replaces both costs: the contract updates exactly the digest entries an
/// operation touched (O(1) per touched tree instead of O(trees) per call),
/// and abort handling becomes a first-touch undo journal replay — the same
/// discipline MeteredStorage uses — instead of an up-front snapshot.
///
/// Entries are keyed by a caller-chosen `order` so Snapshot() reproduces the
/// exact deterministic ordering AuthenticatedDigests() used to emit; the
/// randomized equivalence suite asserts the two stay bit-identical across
/// committed transactions.
#ifndef GEM2_CHAIN_DIGEST_LEDGER_H_
#define GEM2_CHAIN_DIGEST_LEDGER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace gem2::chain {

struct DigestEntry;

class DigestLedger {
 public:
  /// Inserts or overwrites the entry at `order`. A write that changes nothing
  /// is a no-op (and journals nothing).
  void Set(uint64_t order, std::string label, const Hash& digest) {
    auto it = entries_.find(order);
    if (it != entries_.end() && it->second.digest == digest &&
        it->second.label == label) {
      return;
    }
    RecordUndo(order, it);
    if (it != entries_.end()) {
      it->second.label = std::move(label);
      it->second.digest = digest;
    } else {
      entries_.emplace(order, Slot{std::move(label), digest});
    }
  }

  /// Removes the entry at `order` (no-op when absent).
  void Erase(uint64_t order) {
    auto it = entries_.find(order);
    if (it == entries_.end()) return;
    RecordUndo(order, it);
    entries_.erase(it);
  }

  /// The committed digest list, in ascending `order`.
  std::vector<DigestEntry> Snapshot() const;

  size_t size() const { return entries_.size(); }

  /// Transaction bracketing, mirroring MeteredStorage: first-touch undo
  /// records are replayed in reverse on rollback. Writes outside a bracket
  /// apply immediately and permanently (bootstrap / unmetered seeding).
  void BeginTx() {
    if (in_tx_) throw std::logic_error("nested digest-ledger transaction");
    in_tx_ = true;
    undo_log_.clear();
    ++epoch_;
  }
  void CommitTx() {
    if (!in_tx_) throw std::logic_error("digest-ledger commit outside tx");
    in_tx_ = false;
    undo_log_.clear();
  }
  void RollbackTx() {
    if (!in_tx_) throw std::logic_error("digest-ledger rollback outside tx");
    in_tx_ = false;
    for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
      if (it->second.has_value()) {
        entries_[it->first] = std::move(*it->second);
      } else {
        entries_.erase(it->first);
      }
    }
    undo_log_.clear();
  }
  bool in_tx() const { return in_tx_; }

 private:
  struct Slot {
    std::string label;
    Hash digest{};
    uint64_t touch_epoch = 0;
  };

  void RecordUndo(uint64_t order, std::map<uint64_t, Slot>::iterator it) {
    if (!in_tx_) return;
    if (it != entries_.end()) {
      if (it->second.touch_epoch == epoch_) return;  // already journaled
      it->second.touch_epoch = epoch_;
      undo_log_.emplace_back(order, it->second);
    } else {
      // First touch of an absent entry. A later Set+Erase+Set sequence in the
      // same tx re-journals (absent again after Erase); duplicates are benign
      // because the oldest record replays last.
      undo_log_.emplace_back(order, std::nullopt);
    }
  }

  std::map<uint64_t, Slot> entries_;
  bool in_tx_ = false;
  uint64_t epoch_ = 0;
  std::vector<std::pair<uint64_t, std::optional<Slot>>> undo_log_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_DIGEST_LEDGER_H_
