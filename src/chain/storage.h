/// \file storage.h
/// Word-granular, gas-metered contract storage with transactional journaling.
///
/// Semantics mirror the paper's cost model (Table I):
///   Load          -> Csload per word
///   Store (empty) -> Csstore per word
///   Store (taken) -> Csupdate per word
/// Storing the all-zero word clears the slot (Ethereum storage deletion);
/// we charge it as an update and ignore refunds, as the paper does.
///
/// A transaction that runs out of gas must leave no trace, so the host brackets
/// execution with BeginTx / CommitTx / RollbackTx and the storage keeps a
/// first-touch undo log.
///
/// Layout: a single open-addressing (linear probing) table whose entry carries
/// the word together with the per-tx journaling epoch, so the sload/sstore hot
/// path costs exactly one probe sequence — the previous design paid two hash
/// lookups per store (the slot map plus the touched-set used for first-touch
/// undo detection).
#ifndef GEM2_CHAIN_STORAGE_H_
#define GEM2_CHAIN_STORAGE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "gas/meter.h"

namespace gem2::chain {

/// Address of one storage word: a contract-defined region (think Solidity
/// state variable) plus an index within it (array slot / mapping bucket).
struct Slot {
  uint32_t region = 0;
  uint64_t index = 0;

  friend bool operator==(const Slot& a, const Slot& b) = default;
};

struct SlotHasher {
  size_t operator()(const Slot& s) const {
    // Splitmix-style mix of region and index.
    uint64_t x = (static_cast<uint64_t>(s.region) << 48) ^ s.index;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

inline const Word kZeroWord{};

class MeteredStorage {
 public:
  /// Metered read. A missing slot reads as the zero word (still charged).
  Word Load(const Slot& slot, gas::Meter& meter);

  /// Metered write; charges sstore on an empty slot, supdate otherwise.
  /// Writing the zero word clears the slot.
  void Store(const Slot& slot, const Word& value, gas::Meter& meter);

  /// Metered convenience wrappers for integer-valued slots.
  uint64_t LoadUint(const Slot& slot, gas::Meter& meter);
  void StoreUint(const Slot& slot, uint64_t value, gas::Meter& meter);

  /// Unmetered inspection (tests, SP mirroring, state commitment).
  bool Contains(const Slot& slot) const;
  Word Peek(const Slot& slot) const;
  size_t NumSlots() const { return live_; }

  /// Keccak digest of the full live slot contents, in sorted slot order:
  /// two storages hold identical words iff their fingerprints match. Used to
  /// assert a rolled-back transaction left storage bit-identical.
  Hash Fingerprint() const;

  /// Transaction bracketing (see file comment).
  void BeginTx();
  void CommitTx();
  void RollbackTx();
  bool in_tx() const { return in_tx_; }

 private:
  enum : uint8_t { kEmpty = 0, kLive = 1, kDead = 2 };

  /// One table bucket. `touch_epoch` replaces the old touched-set: an entry
  /// whose epoch equals the current tx epoch has already been journaled, so
  /// first-touch detection rides along with the lookup for free.
  struct Entry {
    Slot slot;
    Word word{};
    uint64_t touch_epoch = 0;
    uint8_t state = kEmpty;
  };

  /// Probes for `slot`. Returns the live entry holding it, or nullptr. When
  /// `insert_pos` is non-null it receives the bucket a fresh insert should
  /// use (first tombstone on the probe path, else the terminating empty one).
  Entry* Find(const Slot& slot, size_t* insert_pos);
  const Entry* Find(const Slot& slot) const;

  /// Grows (or compacts away tombstones) so one more insert fits.
  void Rehash(size_t min_capacity);

  /// Unmetered write used by RollbackTx to restore a journaled value.
  void RestoreSlot(const Slot& slot, const std::optional<Word>& word);

  void RecordUndo(Entry* entry, bool occupied, const Slot& slot);

  std::vector<Entry> table_;  // power-of-two size; empty until first store
  size_t mask_ = 0;
  size_t live_ = 0;  // entries in state kLive
  size_t used_ = 0;  // kLive + kDead (probe-chain occupancy)
  bool in_tx_ = false;
  uint64_t epoch_ = 0;  // bumped by BeginTx; entry.touch_epoch == epoch_
                        // means "already journaled in this tx"
  // First write to a slot within a tx records (slot, previous value or
  // nullopt if the slot was empty). Replayed in reverse on rollback; a
  // duplicate record for the same slot (possible when a rehash drops
  // tombstone epochs mid-tx) is benign because the oldest record replays
  // last and wins.
  std::vector<std::pair<Slot, std::optional<Word>>> undo_log_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_STORAGE_H_
