/// \file storage.h
/// Word-granular, gas-metered contract storage with transactional journaling.
///
/// Semantics mirror the paper's cost model (Table I):
///   Load          -> Csload per word
///   Store (empty) -> Csstore per word
///   Store (taken) -> Csupdate per word
/// Storing the all-zero word clears the slot (Ethereum storage deletion);
/// we charge it as an update and ignore refunds, as the paper does.
///
/// A transaction that runs out of gas must leave no trace, so the host brackets
/// execution with BeginTx / CommitTx / RollbackTx and the storage keeps a
/// first-touch undo log.
#ifndef GEM2_CHAIN_STORAGE_H_
#define GEM2_CHAIN_STORAGE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "gas/meter.h"

namespace gem2::chain {

/// Address of one storage word: a contract-defined region (think Solidity
/// state variable) plus an index within it (array slot / mapping bucket).
struct Slot {
  uint32_t region = 0;
  uint64_t index = 0;

  friend bool operator==(const Slot& a, const Slot& b) = default;
};

struct SlotHasher {
  size_t operator()(const Slot& s) const {
    // Splitmix-style mix of region and index.
    uint64_t x = (static_cast<uint64_t>(s.region) << 48) ^ s.index;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

inline const Word kZeroWord{};

class MeteredStorage {
 public:
  /// Metered read. A missing slot reads as the zero word (still charged).
  Word Load(const Slot& slot, gas::Meter& meter);

  /// Metered write; charges sstore on an empty slot, supdate otherwise.
  /// Writing the zero word clears the slot.
  void Store(const Slot& slot, const Word& value, gas::Meter& meter);

  /// Metered convenience wrappers for integer-valued slots.
  uint64_t LoadUint(const Slot& slot, gas::Meter& meter);
  void StoreUint(const Slot& slot, uint64_t value, gas::Meter& meter);

  /// Unmetered inspection (tests, SP mirroring, state commitment).
  bool Contains(const Slot& slot) const;
  Word Peek(const Slot& slot) const;
  size_t NumSlots() const { return slots_.size(); }

  /// Keccak digest of the full live slot contents, in sorted slot order:
  /// two storages hold identical words iff their fingerprints match. Used to
  /// assert a rolled-back transaction left storage bit-identical.
  Hash Fingerprint() const;

  /// Transaction bracketing (see file comment).
  void BeginTx();
  void CommitTx();
  void RollbackTx();
  bool in_tx() const { return in_tx_; }

 private:
  void RecordUndo(const Slot& slot);

  std::unordered_map<Slot, Word, SlotHasher> slots_;
  bool in_tx_ = false;
  // First write to a slot within a tx records (slot, previous value or
  // nullopt if the slot was empty).
  std::vector<std::pair<Slot, std::optional<Word>>> undo_log_;
  std::unordered_map<Slot, bool, SlotHasher> touched_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_STORAGE_H_
