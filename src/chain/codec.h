/// \file codec.h
/// Binary serialization of the ledger: blocks, headers, and transactions.
/// Lets a node persist its chain and lets peers/auditors exchange chains;
/// a deserialized chain revalidates from scratch (hash linkage + PoW + tx
/// roots), so storage corruption or tampering is detected on load.
#ifndef GEM2_CHAIN_CODEC_H_
#define GEM2_CHAIN_CODEC_H_

#include <optional>
#include <span>

#include "chain/blockchain.h"
#include "common/bytes.h"

namespace gem2::chain {

/// Serializes the full chain (all blocks, including genesis).
Bytes SerializeChain(const Blockchain& chain);

/// Parses a serialized chain and validates it structurally. Returns
/// std::nullopt on malformed input or failed validation; `error` (optional)
/// receives the reason. The span overload is the zero-copy entry point for
/// buffers not already held as Bytes (mmap'd files, network frames); the
/// Bytes overload forwards to it.
std::optional<Blockchain> ParseChain(std::span<const uint8_t> data,
                                     std::string* error = nullptr);
std::optional<Blockchain> ParseChain(const Bytes& data, std::string* error = nullptr);

/// Individual piece codecs (exposed for tests and wire protocols).
void SerializeHeader(const BlockHeader& header, Bytes* out);
void SerializeTransaction(const Transaction& tx, Bytes* out);

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_CODEC_H_
