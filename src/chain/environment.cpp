#include "chain/environment.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "crypto/keccak.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace gem2::chain {

namespace {

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

Environment::Environment(EnvironmentOptions options)
    : options_(options),
      blockchain_(options.difficulty_bits),
      crosscheck_(EnvFlagSet("GEM2_STATE_CROSSCHECK")) {}

Environment::~Environment() {
  // A pipelined seal may still be in flight; land it so the task never
  // outlives the members it references. Sealing errors are lost here (a
  // destructor must not throw) — any caller who cares reads blockchain()
  // before destruction and gets the rethrow there.
  try {
    DrainSeal();
  } catch (...) {
  }
}

void Environment::Register(Contract* contract) {
  if (contract == nullptr) throw std::invalid_argument("null contract");
  auto [it, inserted] = contracts_.emplace(contract->name(), contract);
  if (!inserted) throw std::invalid_argument("duplicate contract " + contract->name());
}

TxReceipt Environment::Execute(Contract& contract, const std::string& method,
                               const std::function<void(gas::Meter&)>& body) {
  if (contracts_.find(contract.name()) == contracts_.end()) {
    throw std::logic_error("contract not registered: " + contract.name());
  }
  gas::Meter meter(options_.schedule, options_.gas_limit);
  TxReceipt receipt;
  Transaction tx;
  tx.seq = next_seq_++;
  tx.contract = contract.name();
  tx.method = method;

  // Telemetry: the transaction is the root span; every phase span opened by
  // the contract code nests under it and attributes gas against `meter`.
  telemetry::Tracer& tracer = telemetry::Tracer::Global();
  const bool traced = telemetry::kCompiledIn && tracer.enabled();
  const bool capture = traced && options_.capture_tx_trace;
  std::optional<telemetry::ScopedMeter> scoped_meter;
  std::optional<telemetry::MeterMetricsObserver> observer;
  if (traced) {
    scoped_meter.emplace(&meter);
    observer.emplace();
    meter.set_observer(&*observer);
    if (capture) tracer.BeginTxCapture();
  }

  // Ledger-backed contracts roll their digest view back transactionally, so
  // the common (successful) path copies nothing. Legacy contracts keep the
  // snapshot + freeze/thaw discipline: their in-memory structures cannot be
  // rolled back, and without the freeze an aborted transaction would leak
  // into the state root.
  DigestLedger* ledger = contract.digest_ledger();
  std::vector<DigestEntry> pre_tx_digests;
  if (ledger == nullptr) pre_tx_digests = contract.CommittedDigests();

  contract.storage().BeginTx();
  if (ledger != nullptr) ledger->BeginTx();
  {
    std::optional<telemetry::Span> root_span;
    if (traced) root_span.emplace("tx." + method);
    try {
      if (options_.tx_base_fee > 0) meter.ChargeIntrinsic(options_.tx_base_fee);
      body(meter);
      contract.storage().CommitTx();
      if (ledger != nullptr) {
        ledger->CommitTx();
      } else {
        contract.ThawDigests();
      }
    } catch (const gas::OutOfGasError& e) {
      contract.storage().RollbackTx();
      if (ledger != nullptr) {
        ledger->RollbackTx();
      } else {
        contract.FreezeDigests(std::move(pre_tx_digests));
      }
      receipt.ok = false;
      receipt.error = e.what();
    } catch (...) {
      contract.storage().RollbackTx();
      if (ledger != nullptr) {
        ledger->RollbackTx();
      } else {
        contract.FreezeDigests(std::move(pre_tx_digests));
      }
      throw;
    }
  }

  receipt.gas_used = meter.used();
  receipt.breakdown = meter.breakdown();
  receipt.op_counts = meter.op_counts();
  if (traced) {
    meter.set_observer(nullptr);
    if (capture) receipt.trace = tracer.EndTxCapture();
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("tx.count").Add(1);
    if (!receipt.ok) metrics.counter("tx.failed").Add(1);
    metrics.histogram("tx.gas").Observe(receipt.gas_used);
  }
  tx.gas_used = receipt.gas_used;
  tx.ok = receipt.ok;
  tx.error = receipt.error;
  total_gas_used_ += receipt.gas_used;

  pending_.push_back(std::move(tx));
  if (pending_.size() >= options_.txs_per_block) SealBlock();
  return receipt;
}

Bytes Environment::StateKey(const std::string& contract, const std::string& label) {
  Bytes key;
  AppendString(&key, contract);
  key.push_back(0);
  AppendString(&key, label);
  return key;
}

std::vector<Environment::StateEntry> Environment::GatherStateEntries() const {
  std::vector<StateEntry> entries;
  for (const auto& [name, contract] : contracts_) {
    for (DigestEntry& entry : contract->CommittedDigests()) {
      entries.push_back({&name, std::move(entry.label), entry.digest});
    }
  }
  return entries;
}

Hash Environment::StateLeaf(const std::string& contract, const DigestEntry& entry) {
  crypto::Keccak256Hasher h;
  h.Update(contract);
  h.Update(std::string(1, '\0'));
  h.Update(entry.label);
  h.Update(std::string(1, '\0'));
  h.Update(entry.digest);
  return h.Finalize();
}

Hash Environment::StateLeafOf(const StateEntry& e) {
  crypto::Keccak256Hasher h;
  h.Update(*e.contract);
  h.Update(std::string(1, '\0'));
  h.Update(e.label);
  h.Update(std::string(1, '\0'));
  h.Update(e.digest);
  return h.Finalize();
}

crypto::PatriciaTrie Environment::TrieFromEntries(const std::vector<StateEntry>& cur) {
  crypto::PatriciaTrie trie;
  for (const StateEntry& e : cur) {
    trie.Put(StateKey(*e.contract, e.label),
             Bytes(e.digest.begin(), e.digest.end()));
  }
  return trie;
}

std::vector<Hash> Environment::LeavesFromEntries(const std::vector<StateEntry>& cur) {
  std::vector<Hash> leaves;
  leaves.reserve(cur.size());
  for (const StateEntry& e : cur) leaves.push_back(StateLeafOf(e));
  return leaves;
}

namespace {

/// Mirrors the deltas one root computation adds to the per-environment
/// StateCommitStats into the process-wide metrics registry, so the
/// introspection surface sees commitment work without holding Environment
/// references (multiple environments simply aggregate).
class CommitStatsMirror {
 public:
  explicit CommitStatsMirror(const StateCommitStats& stats)
      : stats_(stats), before_(stats) {}

  ~CommitStatsMirror() {
    if constexpr (telemetry::kCompiledIn) {
      auto& registry = telemetry::MetricsRegistry::Global();
      static telemetry::Counter& roots =
          registry.counter("chain.commit.root_computations");
      static telemetry::Counter& rebuilds =
          registry.counter("chain.commit.full_rebuilds");
      static telemetry::Counter& seen =
          registry.counter("chain.commit.entries_seen");
      static telemetry::Counter& updated =
          registry.counter("chain.commit.entries_updated");
      roots.Add(stats_.root_computations - before_.root_computations);
      rebuilds.Add(stats_.full_rebuilds - before_.full_rebuilds);
      seen.Add(stats_.entries_seen - before_.entries_seen);
      updated.Add(stats_.entries_updated - before_.entries_updated);
    }
  }

 private:
  const StateCommitStats& stats_;
  StateCommitStats before_;
};

}  // namespace

Hash Environment::ComputeStateRootFrom(const std::vector<StateEntry>& cur) const {
  CommitStatsMirror mirror(commit_stats_);
  ++commit_stats_.root_computations;
  commit_stats_.entries_seen += cur.size();

  const bool mpt = options_.state_commitment == StateCommitment::kPatriciaTrie;

  if (!options_.incremental_commitment) {
    ++commit_stats_.full_rebuilds;
    commit_stats_.entries_updated += cur.size();
    commit_valid_ = false;
    if (mpt) return TrieFromEntries(cur).RootHash();
    return crypto::BinaryMerkleTree::RootOf(LeavesFromEntries(cur));
  }

  Hash root{};
  if (mpt) {
    // The MPT has no delete, so a vanished label forces a rebuild. A label
    // set is matched against what the persistent trie holds: every current
    // key found + equal cardinality means no key disappeared, and only the
    // digests that actually changed get re-inserted.
    bool rebuild = !commit_valid_;
    std::vector<std::pair<std::string, const StateEntry*>> changed;
    if (!rebuild) {
      size_t matched = 0;
      for (const StateEntry& e : cur) {
        Bytes key = StateKey(*e.contract, e.label);
        std::string key_str(key.begin(), key.end());
        auto it = trie_applied_.find(key_str);
        if (it == trie_applied_.end()) {
          changed.emplace_back(std::move(key_str), &e);
        } else {
          ++matched;
          if (it->second != e.digest) changed.emplace_back(std::move(key_str), &e);
        }
      }
      rebuild = matched != trie_applied_.size();
    }
    if (rebuild) {
      state_trie_ = TrieFromEntries(cur);
      trie_applied_.clear();
      trie_applied_.reserve(cur.size());
      for (const StateEntry& e : cur) {
        Bytes key = StateKey(*e.contract, e.label);
        trie_applied_.emplace(std::string(key.begin(), key.end()), e.digest);
      }
      ++commit_stats_.full_rebuilds;
      commit_stats_.entries_updated += cur.size();
    } else {
      for (auto& [key_str, e] : changed) {
        state_trie_.Put(
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(key_str.data()), key_str.size()),
            Bytes(e->digest.begin(), e->digest.end()));
        trie_applied_[key_str] = e->digest;
      }
      commit_stats_.entries_updated += changed.size();
    }
    commit_valid_ = true;
    root = state_trie_.RootHash();
  } else {
    // Binary-tree leaves are positional: any layout change (entry added,
    // removed, relabeled, contract registered) rebuilds; a digest-only
    // change patches one leaf in O(log n).
    bool same_layout = commit_valid_ && cur.size() == last_entries_.size();
    if (same_layout) {
      for (size_t i = 0; i < cur.size(); ++i) {
        // Contract pointers alias the contracts_ map keys, so pointer
        // equality is name equality.
        if (cur[i].contract != last_entries_[i].contract ||
            cur[i].label != last_entries_[i].label) {
          same_layout = false;
          break;
        }
      }
    }
    if (!same_layout) {
      if (cur.empty()) {
        state_tree_.reset();
      } else {
        state_tree_.emplace(LeavesFromEntries(cur));
      }
      last_entries_ = cur;
      ++commit_stats_.full_rebuilds;
      commit_stats_.entries_updated += cur.size();
    } else {
      for (size_t i = 0; i < cur.size(); ++i) {
        if (cur[i].digest != last_entries_[i].digest) {
          state_tree_->UpdateLeaf(i, StateLeafOf(cur[i]));
          last_entries_[i].digest = cur[i].digest;
          ++commit_stats_.entries_updated;
        }
      }
    }
    commit_valid_ = true;
    root = state_tree_.has_value() ? state_tree_->root()
                                   : crypto::BinaryMerkleTree::RootOf({});
  }

  if (crosscheck_) {
    const Hash reference =
        mpt ? TrieFromEntries(cur).RootHash()
            : crypto::BinaryMerkleTree::RootOf(LeavesFromEntries(cur));
    if (reference != root) {
      throw std::logic_error(
          "GEM2_STATE_CROSSCHECK: incremental state root diverged from "
          "from-scratch root");
    }
  }
  return root;
}

Hash Environment::ComputeStateRoot() const {
  DrainSeal();
  return ComputeStateRootFrom(GatherStateEntries());
}

bool Environment::PipelineActive(bool traced) const {
  return options_.pipeline_sealing && !traced &&
         common::ThreadPool::DefaultThreads() >= 1;
}

void Environment::DrainSeal() const {
  if (!seal_future_.valid()) return;
  common::ThreadPool& pool = common::ThreadPool::Global();
  // Help run queued work instead of sleeping: the seal task itself may still
  // be sitting in a deque, and a pool starved by blocked waiters would
  // deadlock.
  while (seal_future_.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!pool.TryRunOneTask()) {
      seal_future_.wait_for(std::chrono::microseconds(50));
    }
  }
  std::future<void> done = std::move(seal_future_);
  done.get();  // rethrow the seal's exception, if any
}

void Environment::SealBlock() {
  DrainSeal();
  if (pending_.empty()) return;
  telemetry::Tracer& tracer = telemetry::Tracer::Global();
  const bool traced = telemetry::kCompiledIn && tracer.enabled();

  // Snapshot everything the seal depends on *now*, synchronously: the digest
  // view, the timestamp, and the transaction batch. The deferred work (tx
  // root, PoW, state-root hashing) is then a pure function of the snapshot,
  // which is what keeps the pipelined chain byte-identical to a serial one.
  std::vector<Transaction> txs = std::move(pending_);
  pending_.clear();
  const uint64_t timestamp = clock_++;

  if (PipelineActive(traced)) {
    auto state = std::make_shared<std::pair<std::vector<Transaction>,
                                            std::vector<StateEntry>>>(
        std::move(txs), GatherStateEntries());
    auto done = std::make_shared<std::promise<void>>();
    seal_future_ = done->get_future();
    common::ThreadPool::Global().Submit([this, state, done, timestamp] {
      try {
        const Hash root = ComputeStateRootFrom(state->second);
        blockchain_.Append(std::move(state->first), root, timestamp);
        done->set_value();
      } catch (...) {
        done->set_exception(std::current_exception());
      }
    });
    return;
  }

  const uint64_t t0 = traced ? telemetry::Tracer::NowNs() : 0;
  const size_t num_txs = txs.size();
  {
    std::optional<telemetry::Span> span;
    if (traced) span.emplace("block.seal");
    blockchain_.Append(std::move(txs),
                       ComputeStateRootFrom(GatherStateEntries()), timestamp);
  }
  if (traced) {
    const uint64_t seal_ns = telemetry::Tracer::NowNs() - t0;
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("block.count").Add(1);
    metrics.histogram("block.seal_ns").Observe(seal_ns);
    metrics.gauge("block.height").Set(static_cast<int64_t>(blockchain_.height()));
    tracer.EmitInstant(telemetry::InstantEvent{
        "block.seal",
        0,
        0,
        {{"height", static_cast<double>(blockchain_.height())},
         {"txs", static_cast<double>(num_txs)},
         {"seal_ms", static_cast<double>(seal_ns) / 1e6}}});
  }
}

AuthenticatedState Environment::ReadAuthenticatedState(const std::string& contract_name) {
  auto it = contracts_.find(contract_name);
  if (it == contracts_.end()) {
    throw std::invalid_argument("unknown contract " + contract_name);
  }
  // Make sure the latest header commits to the current state. Registering a
  // contract changes the state tree without any transaction, so an empty
  // block may be needed even when nothing is pending.
  SealBlock();
  const Hash root = ComputeStateRoot();
  if (blockchain_.latest().header.state_root != root) {
    blockchain_.Append({}, root, clock_++);
  }

  AuthenticatedState state;
  state.contract = contract_name;
  state.commitment = options_.state_commitment;
  state.header = blockchain_.latest().header;

  // ComputeStateRoot() above left the persistent commitment synchronized
  // with the current digest view, so proofs come straight from it; the
  // compat mode (incremental_commitment = false) rebuilds locally.
  if (options_.state_commitment == StateCommitment::kPatriciaTrie) {
    crypto::PatriciaTrie local;
    const bool cached = options_.incremental_commitment && commit_valid_;
    if (!cached) local = TrieFromEntries(GatherStateEntries());
    const crypto::PatriciaTrie& trie = cached ? state_trie_ : local;
    for (const DigestEntry& entry : it->second->CommittedDigests()) {
      ProvenDigest pd;
      pd.entry = entry;
      pd.mpt_proof = trie.Prove(StateKey(contract_name, entry.label));
      state.digests.push_back(std::move(pd));
    }
    return state;
  }

  std::vector<StateEntry> gathered;
  std::optional<crypto::BinaryMerkleTree> local_tree;
  const std::vector<StateEntry>* entries = nullptr;
  const crypto::BinaryMerkleTree* tree = nullptr;
  if (options_.incremental_commitment && commit_valid_) {
    entries = &last_entries_;
    if (state_tree_.has_value()) tree = &*state_tree_;
  } else {
    gathered = GatherStateEntries();
    entries = &gathered;
    if (!gathered.empty()) {
      local_tree.emplace(LeavesFromEntries(gathered));
      tree = &*local_tree;
    }
  }
  for (size_t i = 0; i < entries->size(); ++i) {
    const StateEntry& e = (*entries)[i];
    if (*e.contract != contract_name) continue;
    ProvenDigest pd;
    pd.entry = {e.label, e.digest};
    pd.proof = tree->Prove(i);
    state.digests.push_back(std::move(pd));
  }
  return state;
}

std::vector<AuthenticatedState> Environment::ReadAuthenticatedStates(
    const std::vector<std::string>& contract_names) {
  std::vector<AuthenticatedState> states;
  states.reserve(contract_names.size());
  // ReadAuthenticatedState is idempotent once the first call has sealed: no
  // transaction runs in between, so the root cannot move and every state
  // anchors at the same header.
  for (const std::string& name : contract_names) {
    states.push_back(ReadAuthenticatedState(name));
  }
  return states;
}

bool Environment::VerifyAuthenticatedState(const AuthenticatedState& state) {
  for (const ProvenDigest& pd : state.digests) {
    if (state.commitment == StateCommitment::kPatriciaTrie) {
      if (!crypto::PatriciaTrie::VerifyProof(
              state.header.state_root, StateKey(state.contract, pd.entry.label),
              Bytes(pd.entry.digest.begin(), pd.entry.digest.end()),
              pd.mpt_proof)) {
        return false;
      }
    } else {
      Hash leaf = StateLeaf(state.contract, pd.entry);
      if (crypto::BinaryMerkleTree::RootFromProof(leaf, pd.proof) !=
          state.header.state_root) {
        return false;
      }
    }
  }
  return SatisfiesPow(state.header.Digest(), state.header.difficulty_bits);
}

}  // namespace gem2::chain
