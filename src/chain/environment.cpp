#include "chain/environment.h"

#include <optional>
#include <stdexcept>

#include "crypto/keccak.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace gem2::chain {

Environment::Environment(EnvironmentOptions options)
    : options_(options), blockchain_(options.difficulty_bits) {}

void Environment::Register(Contract* contract) {
  if (contract == nullptr) throw std::invalid_argument("null contract");
  auto [it, inserted] = contracts_.emplace(contract->name(), contract);
  if (!inserted) throw std::invalid_argument("duplicate contract " + contract->name());
}

TxReceipt Environment::Execute(Contract& contract, const std::string& method,
                               const std::function<void(gas::Meter&)>& body) {
  if (contracts_.find(contract.name()) == contracts_.end()) {
    throw std::logic_error("contract not registered: " + contract.name());
  }
  gas::Meter meter(options_.schedule, options_.gas_limit);
  TxReceipt receipt;
  Transaction tx;
  tx.seq = next_seq_++;
  tx.contract = contract.name();
  tx.method = method;

  // Telemetry: the transaction is the root span; every phase span opened by
  // the contract code nests under it and attributes gas against `meter`.
  telemetry::Tracer& tracer = telemetry::Tracer::Global();
  const bool traced = telemetry::kCompiledIn && tracer.enabled();
  const bool capture = traced && options_.capture_tx_trace;
  std::optional<telemetry::ScopedMeter> scoped_meter;
  std::optional<telemetry::MeterMetricsObserver> observer;
  if (traced) {
    scoped_meter.emplace(&meter);
    observer.emplace();
    meter.set_observer(&*observer);
    if (capture) tracer.BeginTxCapture();
  }

  // The contract's in-memory structures cannot be rolled back the way its
  // metered storage can; snapshot the digest view so a failed transaction
  // leaves the committed state (and hence the state root) untouched.
  std::vector<DigestEntry> pre_tx_digests = contract.CommittedDigests();

  contract.storage().BeginTx();
  {
    std::optional<telemetry::Span> root_span;
    if (traced) root_span.emplace("tx." + method);
    try {
      if (options_.tx_base_fee > 0) meter.ChargeIntrinsic(options_.tx_base_fee);
      body(meter);
      contract.storage().CommitTx();
      contract.ThawDigests();
    } catch (const gas::OutOfGasError& e) {
      contract.storage().RollbackTx();
      contract.FreezeDigests(std::move(pre_tx_digests));
      receipt.ok = false;
      receipt.error = e.what();
    } catch (...) {
      contract.storage().RollbackTx();
      contract.FreezeDigests(std::move(pre_tx_digests));
      throw;
    }
  }

  receipt.gas_used = meter.used();
  receipt.breakdown = meter.breakdown();
  receipt.op_counts = meter.op_counts();
  if (traced) {
    meter.set_observer(nullptr);
    if (capture) receipt.trace = tracer.EndTxCapture();
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("tx.count").Add(1);
    if (!receipt.ok) metrics.counter("tx.failed").Add(1);
    metrics.histogram("tx.gas").Observe(receipt.gas_used);
  }
  tx.gas_used = receipt.gas_used;
  tx.ok = receipt.ok;
  tx.error = receipt.error;
  total_gas_used_ += receipt.gas_used;

  pending_.push_back(std::move(tx));
  if (pending_.size() >= options_.txs_per_block) SealBlock();
  return receipt;
}

Bytes Environment::StateKey(const std::string& contract, const std::string& label) {
  Bytes key;
  AppendString(&key, contract);
  key.push_back(0);
  AppendString(&key, label);
  return key;
}

crypto::PatriciaTrie Environment::BuildStateTrie() const {
  crypto::PatriciaTrie trie;
  for (const auto& [name, contract] : contracts_) {
    for (const DigestEntry& entry : contract->CommittedDigests()) {
      trie.Put(StateKey(name, entry.label),
               Bytes(entry.digest.begin(), entry.digest.end()));
    }
  }
  return trie;
}

Hash Environment::ComputeStateRoot() const {
  if (options_.state_commitment == StateCommitment::kPatriciaTrie) {
    return BuildStateTrie().RootHash();
  }
  return crypto::BinaryMerkleTree::RootOf(StateLeaves());
}

void Environment::SealBlock() {
  if (pending_.empty()) return;
  telemetry::Tracer& tracer = telemetry::Tracer::Global();
  const bool traced = telemetry::kCompiledIn && tracer.enabled();
  const uint64_t t0 = traced ? telemetry::Tracer::NowNs() : 0;
  const size_t num_txs = pending_.size();
  {
    std::optional<telemetry::Span> span;
    if (traced) span.emplace("block.seal");
    blockchain_.Append(std::move(pending_), ComputeStateRoot(), clock_++);
    pending_.clear();
  }
  if (traced) {
    const uint64_t seal_ns = telemetry::Tracer::NowNs() - t0;
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("block.count").Add(1);
    metrics.histogram("block.seal_ns").Observe(seal_ns);
    metrics.gauge("block.height").Set(static_cast<int64_t>(blockchain_.height()));
    tracer.EmitInstant(telemetry::InstantEvent{
        "block.seal",
        0,
        0,
        {{"height", static_cast<double>(blockchain_.height())},
         {"txs", static_cast<double>(num_txs)},
         {"seal_ms", static_cast<double>(seal_ns) / 1e6}}});
  }
}

Hash Environment::StateLeaf(const std::string& contract, const DigestEntry& entry) {
  crypto::Keccak256Hasher h;
  h.Update(contract);
  h.Update(std::string(1, '\0'));
  h.Update(entry.label);
  h.Update(std::string(1, '\0'));
  h.Update(entry.digest);
  return h.Finalize();
}

std::vector<Hash> Environment::StateLeaves() const {
  std::vector<Hash> leaves;
  for (const auto& [name, contract] : contracts_) {
    for (const DigestEntry& entry : contract->CommittedDigests()) {
      leaves.push_back(StateLeaf(name, entry));
    }
  }
  return leaves;
}

AuthenticatedState Environment::ReadAuthenticatedState(const std::string& contract_name) {
  auto it = contracts_.find(contract_name);
  if (it == contracts_.end()) {
    throw std::invalid_argument("unknown contract " + contract_name);
  }
  // Make sure the latest header commits to the current state. Registering a
  // contract changes the state tree without any transaction, so an empty
  // block may be needed even when nothing is pending.
  SealBlock();
  const Hash root = ComputeStateRoot();
  if (blockchain_.latest().header.state_root != root) {
    blockchain_.Append({}, root, clock_++);
  }

  AuthenticatedState state;
  state.contract = contract_name;
  state.commitment = options_.state_commitment;
  state.header = blockchain_.latest().header;

  if (options_.state_commitment == StateCommitment::kPatriciaTrie) {
    crypto::PatriciaTrie trie = BuildStateTrie();
    for (const DigestEntry& entry : it->second->CommittedDigests()) {
      ProvenDigest pd;
      pd.entry = entry;
      pd.mpt_proof = trie.Prove(StateKey(contract_name, entry.label));
      state.digests.push_back(std::move(pd));
    }
    return state;
  }

  crypto::BinaryMerkleTree tree(StateLeaves());
  size_t leaf_index = 0;
  for (const auto& [name, contract] : contracts_) {
    for (const DigestEntry& entry : contract->CommittedDigests()) {
      if (name == contract_name) {
        ProvenDigest pd;
        pd.entry = entry;
        pd.proof = tree.Prove(leaf_index);
        state.digests.push_back(std::move(pd));
      }
      ++leaf_index;
    }
  }
  return state;
}

bool Environment::VerifyAuthenticatedState(const AuthenticatedState& state) {
  for (const ProvenDigest& pd : state.digests) {
    if (state.commitment == StateCommitment::kPatriciaTrie) {
      if (!crypto::PatriciaTrie::VerifyProof(
              state.header.state_root, StateKey(state.contract, pd.entry.label),
              Bytes(pd.entry.digest.begin(), pd.entry.digest.end()),
              pd.mpt_proof)) {
        return false;
      }
    } else {
      Hash leaf = StateLeaf(state.contract, pd.entry);
      if (crypto::BinaryMerkleTree::RootFromProof(leaf, pd.proof) !=
          state.header.state_root) {
        return false;
      }
    }
  }
  return SatisfiesPow(state.header.Digest(), state.header.difficulty_bits);
}

}  // namespace gem2::chain
