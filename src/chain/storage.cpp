#include "chain/storage.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/keccak.h"

namespace gem2::chain {
namespace {

constexpr size_t kInitialCapacity = 64;

}  // namespace

MeteredStorage::Entry* MeteredStorage::Find(const Slot& slot, size_t* insert_pos) {
  if (table_.empty()) return nullptr;
  size_t idx = SlotHasher{}(slot) & mask_;
  size_t tombstone = SIZE_MAX;
  while (true) {
    Entry& e = table_[idx];
    if (e.state == kEmpty) {
      if (insert_pos != nullptr) {
        *insert_pos = tombstone != SIZE_MAX ? tombstone : idx;
      }
      return nullptr;
    }
    if (e.state == kLive && e.slot == slot) return &e;
    if (e.state == kDead && tombstone == SIZE_MAX) tombstone = idx;
    idx = (idx + 1) & mask_;
  }
}

const MeteredStorage::Entry* MeteredStorage::Find(const Slot& slot) const {
  return const_cast<MeteredStorage*>(this)->Find(slot, nullptr);
}

void MeteredStorage::Rehash(size_t min_capacity) {
  size_t capacity = table_.empty() ? kInitialCapacity : table_.size();
  // Grow only when live entries genuinely crowd the table; otherwise the
  // rehash just purges tombstones at the same size.
  while (capacity < min_capacity || live_ * 4 >= capacity * 3) capacity *= 2;
  std::vector<Entry> old = std::move(table_);
  table_.assign(capacity, Entry{});
  mask_ = capacity - 1;
  used_ = live_;
  for (Entry& e : old) {
    if (e.state != kLive) continue;  // dropping a tombstone forgets its
                                     // touch_epoch; see undo_log_ comment
    size_t idx = SlotHasher{}(e.slot) & mask_;
    while (table_[idx].state != kEmpty) idx = (idx + 1) & mask_;
    table_[idx] = std::move(e);
  }
}

void MeteredStorage::RecordUndo(Entry* entry, bool occupied, const Slot& slot) {
  if (!in_tx_) return;
  if (entry != nullptr && entry->touch_epoch == epoch_) return;  // journaled
  if (occupied) {
    undo_log_.emplace_back(slot, entry->word);
  } else {
    undo_log_.emplace_back(slot, std::nullopt);
  }
  if (entry != nullptr) entry->touch_epoch = epoch_;
}

Word MeteredStorage::Load(const Slot& slot, gas::Meter& meter) {
  meter.ChargeSload();
  const Entry* e = Find(slot);
  return e == nullptr ? kZeroWord : e->word;
}

void MeteredStorage::Store(const Slot& slot, const Word& value, gas::Meter& meter) {
  if (table_.empty() || used_ * 4 >= table_.size() * 3) Rehash(kInitialCapacity);
  size_t insert_pos = SIZE_MAX;
  Entry* e = Find(slot, &insert_pos);
  const bool occupied = e != nullptr;
  // Charge gas before mutating: an OutOfGasError must not corrupt state even
  // outside a transaction bracket.
  if (occupied) {
    meter.ChargeSupdate();
  } else {
    meter.ChargeSstore();
  }
  RecordUndo(e, occupied, slot);
  if (value == kZeroWord) {
    if (occupied) {
      e->state = kDead;
      --live_;
    }
    return;
  }
  if (occupied) {
    e->word = value;
    return;
  }
  Entry& fresh = table_[insert_pos];
  if (fresh.state == kEmpty) ++used_;
  fresh.slot = slot;
  fresh.word = value;
  fresh.state = kLive;
  fresh.touch_epoch = in_tx_ ? epoch_ : 0;
  ++live_;
}

uint64_t MeteredStorage::LoadUint(const Slot& slot, gas::Meter& meter) {
  return Uint64FromWord(Load(slot, meter));
}

void MeteredStorage::StoreUint(const Slot& slot, uint64_t value, gas::Meter& meter) {
  Store(slot, WordFromUint64(value), meter);
}

Hash MeteredStorage::Fingerprint() const {
  std::vector<std::pair<Slot, Word>> live;
  live.reserve(live_);
  for (const Entry& e : table_) {
    if (e.state == kLive) live.emplace_back(e.slot, e.word);
  }
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.first.region != b.first.region ? a.first.region < b.first.region
                                            : a.first.index < b.first.index;
  });
  Bytes image;
  image.reserve(live.size() * (4 + 8 + 32));
  for (const auto& [slot, word] : live) {
    AppendUint64(&image, (static_cast<uint64_t>(slot.region) << 32));
    AppendUint64(&image, slot.index);
    AppendHash(&image, word);
  }
  return crypto::Keccak256(image);
}

bool MeteredStorage::Contains(const Slot& slot) const {
  return Find(slot) != nullptr;
}

Word MeteredStorage::Peek(const Slot& slot) const {
  const Entry* e = Find(slot);
  return e == nullptr ? kZeroWord : e->word;
}

void MeteredStorage::BeginTx() {
  if (in_tx_) throw std::logic_error("nested transaction");
  in_tx_ = true;
  undo_log_.clear();
  ++epoch_;
}

void MeteredStorage::CommitTx() {
  if (!in_tx_) throw std::logic_error("commit outside transaction");
  in_tx_ = false;
  undo_log_.clear();
}

void MeteredStorage::RestoreSlot(const Slot& slot, const std::optional<Word>& word) {
  size_t insert_pos = SIZE_MAX;
  Entry* e = Find(slot, &insert_pos);
  if (!word.has_value()) {
    if (e != nullptr) {
      e->state = kDead;
      --live_;
    }
    return;
  }
  if (e != nullptr) {
    e->word = *word;
    return;
  }
  if (table_.empty() || used_ * 4 >= table_.size() * 3) {
    Rehash(kInitialCapacity);
    Find(slot, &insert_pos);
  }
  Entry& fresh = table_[insert_pos];
  if (fresh.state == kEmpty) ++used_;
  fresh.slot = slot;
  fresh.word = *word;
  fresh.state = kLive;
  fresh.touch_epoch = 0;
  ++live_;
}

void MeteredStorage::RollbackTx() {
  if (!in_tx_) throw std::logic_error("rollback outside transaction");
  in_tx_ = false;
  // Apply undo entries in reverse; the oldest record for a slot replays last,
  // so duplicates (see undo_log_ comment) cannot clobber the original value.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    RestoreSlot(it->first, it->second);
  }
  undo_log_.clear();
}

}  // namespace gem2::chain
