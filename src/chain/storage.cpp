#include "chain/storage.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/keccak.h"

namespace gem2::chain {

Word MeteredStorage::Load(const Slot& slot, gas::Meter& meter) {
  meter.ChargeSload();
  auto it = slots_.find(slot);
  return it == slots_.end() ? kZeroWord : it->second;
}

void MeteredStorage::Store(const Slot& slot, const Word& value, gas::Meter& meter) {
  auto it = slots_.find(slot);
  const bool occupied = it != slots_.end();
  // Charge gas before mutating: an OutOfGasError must not corrupt state even
  // outside a transaction bracket.
  if (occupied) {
    meter.ChargeSupdate();
  } else {
    meter.ChargeSstore();
  }
  RecordUndo(slot);
  if (value == kZeroWord) {
    if (occupied) slots_.erase(it);
  } else if (occupied) {
    it->second = value;
  } else {
    slots_.emplace(slot, value);
  }
}

uint64_t MeteredStorage::LoadUint(const Slot& slot, gas::Meter& meter) {
  return Uint64FromWord(Load(slot, meter));
}

void MeteredStorage::StoreUint(const Slot& slot, uint64_t value, gas::Meter& meter) {
  Store(slot, WordFromUint64(value), meter);
}

Hash MeteredStorage::Fingerprint() const {
  std::vector<std::pair<Slot, Word>> live(slots_.begin(), slots_.end());
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.first.region != b.first.region ? a.first.region < b.first.region
                                            : a.first.index < b.first.index;
  });
  Bytes image;
  image.reserve(live.size() * (4 + 8 + 32));
  for (const auto& [slot, word] : live) {
    AppendUint64(&image, (static_cast<uint64_t>(slot.region) << 32));
    AppendUint64(&image, slot.index);
    AppendHash(&image, word);
  }
  return crypto::Keccak256(image);
}

bool MeteredStorage::Contains(const Slot& slot) const {
  return slots_.find(slot) != slots_.end();
}

Word MeteredStorage::Peek(const Slot& slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? kZeroWord : it->second;
}

void MeteredStorage::BeginTx() {
  if (in_tx_) throw std::logic_error("nested transaction");
  in_tx_ = true;
  undo_log_.clear();
  touched_.clear();
}

void MeteredStorage::CommitTx() {
  if (!in_tx_) throw std::logic_error("commit outside transaction");
  in_tx_ = false;
  undo_log_.clear();
  touched_.clear();
}

void MeteredStorage::RollbackTx() {
  if (!in_tx_) throw std::logic_error("rollback outside transaction");
  // Apply undo entries in reverse; only first-touch entries exist.
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    if (it->second.has_value()) {
      slots_[it->first] = *it->second;
    } else {
      slots_.erase(it->first);
    }
  }
  in_tx_ = false;
  undo_log_.clear();
  touched_.clear();
}

void MeteredStorage::RecordUndo(const Slot& slot) {
  if (!in_tx_) return;
  auto [it, inserted] = touched_.emplace(slot, true);
  if (!inserted) return;
  auto existing = slots_.find(slot);
  if (existing == slots_.end()) {
    undo_log_.emplace_back(slot, std::nullopt);
  } else {
    undo_log_.emplace_back(slot, existing->second);
  }
}

}  // namespace gem2::chain
