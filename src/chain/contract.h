/// \file contract.h
/// Base class for on-chain smart contracts. Each contract owns one metered
/// storage space and exposes the list of authenticated digests (ADS roots)
/// that clients retrieve as VO_chain.
#ifndef GEM2_CHAIN_CONTRACT_H_
#define GEM2_CHAIN_CONTRACT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chain/storage.h"
#include "common/types.h"

namespace gem2::chain {

/// A named authenticated digest exposed by a contract, e.g. an MB-tree root
/// or one slot of a GEM2-tree part_table.
struct DigestEntry {
  std::string label;
  Hash digest{};

  friend bool operator==(const DigestEntry& a, const DigestEntry& b) = default;
};

class Contract {
 public:
  explicit Contract(std::string name) : name_(std::move(name)) {}
  virtual ~Contract() = default;

  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  const std::string& name() const { return name_; }

  MeteredStorage& storage() { return storage_; }
  const MeteredStorage& storage() const { return storage_; }

  /// The authenticated digests this contract currently exposes, in a
  /// deterministic order. These are committed into every block's state root
  /// and served to clients (with inclusion proofs) as VO_chain.
  virtual std::vector<DigestEntry> AuthenticatedDigests() const = 0;

  /// The digest view as of the last *committed* transaction. Normally this
  /// is just AuthenticatedDigests(); after a failed transaction the
  /// environment freezes it at the pre-transaction value, because a
  /// contract's in-memory structures (unlike its metered storage) cannot be
  /// rolled back — without the freeze an aborted transaction would leak into
  /// the state root. A later successful transaction thaws the view.
  std::vector<DigestEntry> CommittedDigests() const {
    return frozen_digests_.has_value() ? *frozen_digests_
                                       : AuthenticatedDigests();
  }

  void FreezeDigests(std::vector<DigestEntry> pre_tx) {
    frozen_digests_ = std::move(pre_tx);
  }
  void ThawDigests() { frozen_digests_.reset(); }

 private:
  std::string name_;
  MeteredStorage storage_;
  std::optional<std::vector<DigestEntry>> frozen_digests_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_CONTRACT_H_
