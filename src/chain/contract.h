/// \file contract.h
/// Base class for on-chain smart contracts. Each contract owns one metered
/// storage space and exposes the list of authenticated digests (ADS roots)
/// that clients retrieve as VO_chain.
#ifndef GEM2_CHAIN_CONTRACT_H_
#define GEM2_CHAIN_CONTRACT_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chain/digest_ledger.h"
#include "chain/storage.h"
#include "common/types.h"

namespace gem2::chain {

/// A named authenticated digest exposed by a contract, e.g. an MB-tree root
/// or one slot of a GEM2-tree part_table.
struct DigestEntry {
  std::string label;
  Hash digest{};

  friend bool operator==(const DigestEntry& a, const DigestEntry& b) = default;
};

inline std::vector<DigestEntry> DigestLedger::Snapshot() const {
  std::vector<DigestEntry> out;
  out.reserve(entries_.size());
  for (const auto& [order, slot] : entries_) {
    out.push_back({slot.label, slot.digest});
  }
  return out;
}

class Contract {
 public:
  explicit Contract(std::string name) : name_(std::move(name)) {}
  virtual ~Contract() = default;

  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  const std::string& name() const { return name_; }

  MeteredStorage& storage() { return storage_; }
  const MeteredStorage& storage() const { return storage_; }

  /// The authenticated digests this contract currently exposes, in a
  /// deterministic order. These are committed into every block's state root
  /// and served to clients (with inclusion proofs) as VO_chain.
  virtual std::vector<DigestEntry> AuthenticatedDigests() const = 0;

  /// The digest view as of the last *committed* transaction.
  ///
  /// Ledger-maintained contracts (every ADS contract) answer from their
  /// DigestLedger, which the environment brackets alongside storage — an
  /// aborted transaction simply rolls the ledger back, no snapshot needed.
  ///
  /// Legacy contracts fall back to the freeze/thaw discipline: normally this
  /// is just AuthenticatedDigests(); after a failed transaction the
  /// environment freezes it at the pre-transaction value, because a
  /// contract's in-memory structures (unlike its metered storage) cannot be
  /// rolled back — without the freeze an aborted transaction would leak into
  /// the state root. A later successful transaction thaws the view.
  std::vector<DigestEntry> CommittedDigests() const {
    if (ledger_ != nullptr) return ledger_->Snapshot();
    return frozen_digests_.has_value() ? *frozen_digests_
                                       : AuthenticatedDigests();
  }

  /// Opts this contract into ledger-maintained committed digests. The
  /// contract must then keep every entry current via DigestLedger::Set /
  /// Erase as its operations run (the equivalence suite cross-checks the
  /// ledger against AuthenticatedDigests() after each committed tx).
  DigestLedger& EnableDigestLedger() {
    if (ledger_ == nullptr) ledger_ = std::make_unique<DigestLedger>();
    return *ledger_;
  }
  DigestLedger* digest_ledger() { return ledger_.get(); }
  const DigestLedger* digest_ledger() const { return ledger_.get(); }

  void FreezeDigests(std::vector<DigestEntry> pre_tx) {
    frozen_digests_ = std::move(pre_tx);
  }
  void ThawDigests() { frozen_digests_.reset(); }

 private:
  std::string name_;
  MeteredStorage storage_;
  std::optional<std::vector<DigestEntry>> frozen_digests_;
  std::unique_ptr<DigestLedger> ledger_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_CONTRACT_H_
