/// \file contract.h
/// Base class for on-chain smart contracts. Each contract owns one metered
/// storage space and exposes the list of authenticated digests (ADS roots)
/// that clients retrieve as VO_chain.
#ifndef GEM2_CHAIN_CONTRACT_H_
#define GEM2_CHAIN_CONTRACT_H_

#include <string>
#include <utility>
#include <vector>

#include "chain/storage.h"
#include "common/types.h"

namespace gem2::chain {

/// A named authenticated digest exposed by a contract, e.g. an MB-tree root
/// or one slot of a GEM2-tree part_table.
struct DigestEntry {
  std::string label;
  Hash digest{};

  friend bool operator==(const DigestEntry& a, const DigestEntry& b) = default;
};

class Contract {
 public:
  explicit Contract(std::string name) : name_(std::move(name)) {}
  virtual ~Contract() = default;

  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  const std::string& name() const { return name_; }

  MeteredStorage& storage() { return storage_; }
  const MeteredStorage& storage() const { return storage_; }

  /// The authenticated digests this contract currently exposes, in a
  /// deterministic order. These are committed into every block's state root
  /// and served to clients (with inclusion proofs) as VO_chain.
  virtual std::vector<DigestEntry> AuthenticatedDigests() const = 0;

 private:
  std::string name_;
  MeteredStorage storage_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_CONTRACT_H_
