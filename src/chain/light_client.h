/// \file light_client.h
/// A light client that follows the chain by headers only (SPV-style). This is
/// how the paper's query client actually obtains VO_chain: it does not replay
/// transactions or hold contract state — it tracks block headers, checks each
/// header's proof-of-work and hash-chain linkage, and then verifies the
/// authenticated-state inclusion proofs against the newest accepted header's
/// state root.
#ifndef GEM2_CHAIN_LIGHT_CLIENT_H_
#define GEM2_CHAIN_LIGHT_CLIENT_H_

#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "chain/environment.h"

namespace gem2::chain {

class LightClient {
 public:
  /// Starts from a trusted genesis header (the usual SPV trust anchor).
  explicit LightClient(BlockHeader genesis);

  /// Accepts `header` if it extends the current tip: height + 1, prev_hash
  /// matching the tip's digest, and valid PoW. Returns false (and leaves the
  /// client unchanged) otherwise.
  bool Accept(const BlockHeader& header);

  /// Catches up with a full node's chain from the current height; returns the
  /// number of headers accepted. Stops at the first invalid header.
  size_t Sync(const Blockchain& chain);

  const BlockHeader& tip() const { return headers_.back(); }
  size_t height() const { return headers_.size() - 1; }

  /// Verifies an AuthenticatedState (VO_chain) against the synced tip: the
  /// state's header must BE the tip (same digest) and every inclusion proof
  /// must reach the tip's state root.
  bool VerifyStateAtTip(const AuthenticatedState& state,
                        std::string* error = nullptr) const;

 private:
  std::vector<BlockHeader> headers_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_LIGHT_CLIENT_H_
