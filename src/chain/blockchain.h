/// \file blockchain.h
/// Block / transaction structures and the hash-chained ledger (paper Fig. 3).
/// Blocks commit to their transactions through a binary MHT root and to the
/// contract state through `state_root` (an MHT over all authenticated
/// digests), and are sealed with a simplified PoW nonce:
///   H(header fields || nonce) must have `difficulty_bits` leading zero bits.
#ifndef GEM2_CHAIN_BLOCKCHAIN_H_
#define GEM2_CHAIN_BLOCKCHAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "gas/meter.h"

namespace gem2::chain {

/// A recorded smart-contract invocation.
struct Transaction {
  uint64_t seq = 0;
  std::string contract;
  std::string method;
  gas::Gas gas_used = 0;
  bool ok = true;
  std::string error;

  Hash Digest() const;
};

struct BlockHeader {
  uint64_t height = 0;
  uint64_t timestamp = 0;
  Hash prev_hash{};
  Hash tx_root{};
  Hash state_root{};
  uint64_t nonce = 0;
  uint32_t difficulty_bits = 0;

  /// Digest over all header fields including the nonce; this is the block's
  /// identity and the PoW target.
  Hash Digest() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;
};

/// True when `digest` has at least `bits` leading zero bits.
bool SatisfiesPow(const Hash& digest, uint32_t bits);

/// The append-only hash-chained ledger. A genesis block is created eagerly.
class Blockchain {
 public:
  explicit Blockchain(uint32_t difficulty_bits = 0);

  /// Mines and appends a block containing `txs`, committing to `state_root`.
  const Block& Append(std::vector<Transaction> txs, const Hash& state_root,
                      uint64_t timestamp);

  /// Full structural validation: hash-chain linkage, PoW on every block, and
  /// tx-root recomputation. Returns false and fills `error` on any mismatch.
  bool Validate(std::string* error = nullptr) const;

  /// Reconstructs a chain from pre-existing blocks (deserialization); the
  /// blocks are adopted as-is — callers must Validate() afterwards.
  static Blockchain FromBlocks(std::vector<Block> blocks, uint32_t difficulty_bits);

  const Block& latest() const { return blocks_.back(); }
  const std::vector<Block>& blocks() const { return blocks_; }
  /// Number of blocks beyond genesis.
  size_t height() const { return blocks_.size() - 1; }
  uint32_t difficulty_bits() const { return difficulty_bits_; }

 private:
  struct AdoptTag {};
  Blockchain(AdoptTag, std::vector<Block> blocks, uint32_t difficulty_bits);

  uint64_t MineNonce(BlockHeader* header) const;

  std::vector<Block> blocks_;
  uint32_t difficulty_bits_;
};

/// MHT root over transaction digests.
Hash ComputeTxRoot(const std::vector<Transaction>& txs);

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_BLOCKCHAIN_H_
