#include "chain/codec.h"

#include <cstring>

namespace gem2::chain {
namespace {

constexpr uint8_t kFormatVersion = 1;

void AppendVarString(Bytes* out, const std::string& s) {
  AppendUint64(out, s.size());
  AppendString(out, s);
}

struct Reader {
  std::span<const uint8_t> data;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    if (pos + n > data.size()) {
      failed = true;
      return false;
    }
    return true;
  }

  uint8_t Byte() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  }

  Hash ReadHash() {
    Hash h{};
    if (!Need(32)) return h;
    std::memcpy(h.data(), data.data() + pos, 32);
    pos += 32;
    return h;
  }

  std::string ReadString() {
    const uint64_t n = U64();
    if (failed || !Need(n)) {
      failed = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
};

}  // namespace

void SerializeHeader(const BlockHeader& header, Bytes* out) {
  AppendUint64(out, header.height);
  AppendUint64(out, header.timestamp);
  AppendHash(out, header.prev_hash);
  AppendHash(out, header.tx_root);
  AppendHash(out, header.state_root);
  AppendUint64(out, header.nonce);
  AppendUint64(out, header.difficulty_bits);
}

void SerializeTransaction(const Transaction& tx, Bytes* out) {
  AppendUint64(out, tx.seq);
  AppendVarString(out, tx.contract);
  AppendVarString(out, tx.method);
  AppendUint64(out, tx.gas_used);
  out->push_back(tx.ok ? 1 : 0);
  AppendVarString(out, tx.error);
}

Bytes SerializeChain(const Blockchain& chain) {
  Bytes out;
  out.push_back(kFormatVersion);
  AppendUint64(&out, chain.difficulty_bits());
  AppendUint64(&out, chain.blocks().size());
  for (const Block& block : chain.blocks()) {
    SerializeHeader(block.header, &out);
    AppendUint64(&out, block.transactions.size());
    for (const Transaction& tx : block.transactions) {
      SerializeTransaction(tx, &out);
    }
  }
  return out;
}

std::optional<Blockchain> ParseChain(const Bytes& data, std::string* error) {
  return ParseChain(std::span<const uint8_t>(data.data(), data.size()), error);
}

std::optional<Blockchain> ParseChain(std::span<const uint8_t> data,
                                     std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Blockchain> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  Reader r{data};
  if (r.Byte() != kFormatVersion) return fail("unsupported format version");
  const uint64_t difficulty = r.U64();
  if (difficulty > 256) return fail("bad chain difficulty");
  const uint64_t num_blocks = r.U64();
  if (r.failed) return fail("truncated chain header");
  if (num_blocks == 0 || num_blocks > (1ull << 32)) return fail("bad block count");

  std::vector<Block> blocks;
  blocks.reserve(num_blocks);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    Block block;
    block.header.height = r.U64();
    block.header.timestamp = r.U64();
    block.header.prev_hash = r.ReadHash();
    block.header.tx_root = r.ReadHash();
    block.header.state_root = r.ReadHash();
    block.header.nonce = r.U64();
    const uint64_t bits = r.U64();
    if (bits > 256) return fail("bad block difficulty");
    block.header.difficulty_bits = static_cast<uint32_t>(bits);
    const uint64_t num_txs = r.U64();
    if (r.failed || num_txs > (1ull << 32)) return fail("truncated block");
    block.transactions.reserve(num_txs);
    for (uint64_t t = 0; t < num_txs; ++t) {
      Transaction tx;
      tx.seq = r.U64();
      tx.contract = r.ReadString();
      tx.method = r.ReadString();
      tx.gas_used = r.U64();
      tx.ok = r.Byte() != 0;
      tx.error = r.ReadString();
      if (r.failed) return fail("truncated transaction");
      block.transactions.push_back(std::move(tx));
    }
    blocks.push_back(std::move(block));
  }
  if (r.pos != data.size()) return fail("trailing bytes after chain");

  Blockchain chain =
      Blockchain::FromBlocks(std::move(blocks), static_cast<uint32_t>(difficulty));
  std::string validate_error;
  if (!chain.Validate(&validate_error)) {
    return fail("deserialized chain failed validation: " + validate_error);
  }
  return chain;
}

}  // namespace gem2::chain
