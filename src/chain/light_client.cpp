#include "chain/light_client.h"

#include <stdexcept>

#include "crypto/merkle.h"

namespace gem2::chain {

LightClient::LightClient(BlockHeader genesis) {
  if (genesis.height != 0) {
    throw std::invalid_argument("light client must anchor at a genesis header");
  }
  headers_.push_back(std::move(genesis));
}

bool LightClient::Accept(const BlockHeader& header) {
  const BlockHeader& tip = headers_.back();
  if (header.height != tip.height + 1) return false;
  if (header.prev_hash != tip.Digest()) return false;
  if (!SatisfiesPow(header.Digest(), header.difficulty_bits)) return false;
  headers_.push_back(header);
  return true;
}

size_t LightClient::Sync(const Blockchain& chain) {
  size_t accepted = 0;
  const std::vector<Block>& blocks = chain.blocks();
  for (size_t h = headers_.size(); h < blocks.size(); ++h) {
    if (!Accept(blocks[h].header)) break;
    ++accepted;
  }
  return accepted;
}

bool LightClient::VerifyStateAtTip(const AuthenticatedState& state,
                                   std::string* error) const {
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (state.header.Digest() != tip().Digest()) {
    return fail("state is not anchored at the light client's tip");
  }
  if (!Environment::VerifyAuthenticatedState(state)) {
    return fail("inclusion proofs do not reach the tip's state root");
  }
  return true;
}

}  // namespace gem2::chain
