#include "chain/blockchain.h"

#include <cstring>
#include <stdexcept>

#include "crypto/digest.h"
#include "crypto/keccak.h"
#include "crypto/keccak_batch.h"
#include "crypto/merkle.h"

namespace gem2::chain {
namespace {

void PutUint64Be(uint64_t v, uint8_t* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>((v >> (8 * (7 - i))) & 0xff);
  }
}

/// Serializes the exact byte stream Transaction::Digest absorbs. Returns
/// false (buffer untouched) when it would overflow `cap` — the caller then
/// hashes the transaction scalar instead of batching it.
bool SerializeTxPreimage(const Transaction& tx, uint8_t* out, size_t cap,
                         size_t* len) {
  const size_t total = 6 * 8 + tx.contract.size() + tx.method.size() + tx.error.size();
  if (total > cap) return false;
  uint8_t* p = out;
  PutUint64Be(tx.seq, p); p += 8;
  PutUint64Be(tx.gas_used, p); p += 8;
  PutUint64Be(tx.ok ? 1 : 0, p); p += 8;
  PutUint64Be(tx.contract.size(), p); p += 8;
  std::memcpy(p, tx.contract.data(), tx.contract.size()); p += tx.contract.size();
  PutUint64Be(tx.method.size(), p); p += 8;
  std::memcpy(p, tx.method.data(), tx.method.size()); p += tx.method.size();
  PutUint64Be(tx.error.size(), p); p += 8;
  std::memcpy(p, tx.error.data(), tx.error.size()); p += tx.error.size();
  *len = total;
  return true;
}

}  // namespace

Hash Transaction::Digest() const {
  // Absorbed directly — the byte stream is identical to the old Bytes
  // staging buffer, so digests are unchanged.
  crypto::Keccak256Hasher h;
  h.UpdateUint64(seq);
  h.UpdateUint64(gas_used);
  h.UpdateUint64(ok ? 1 : 0);
  // Length-prefix the variable fields: hashing bare concatenations would let
  // bytes migrate between fields without changing the digest.
  h.UpdateUint64(contract.size());
  h.Update(contract);
  h.UpdateUint64(method.size());
  h.Update(method);
  h.UpdateUint64(error.size());
  h.Update(error);
  return h.Finalize();
}

Hash BlockHeader::Digest() const {
  crypto::Keccak256Hasher h;
  h.UpdateUint64(height);
  h.UpdateUint64(timestamp);
  h.Update(prev_hash);
  h.Update(tx_root);
  h.Update(state_root);
  h.UpdateUint64(nonce);
  h.UpdateUint64(difficulty_bits);
  return h.Finalize();
}

bool SatisfiesPow(const Hash& digest, uint32_t bits) {
  uint32_t remaining = bits;
  for (uint8_t byte : digest) {
    if (remaining == 0) return true;
    if (remaining >= 8) {
      if (byte != 0) return false;
      remaining -= 8;
    } else {
      return (byte >> (8 - remaining)) == 0;
    }
  }
  return remaining == 0;
}

Hash ComputeTxRoot(const std::vector<Transaction>& txs) {
  // Leaf digests are independent, and a typical transaction record (short
  // contract/method names, empty error) fits one sponge block, so they ride
  // the 8-way batcher; oversized records fall back to the scalar Digest().
  std::vector<Hash> leaves(txs.size());
  crypto::Keccak256Batcher batcher;
  uint8_t msg[crypto::Keccak256Batcher::kMaxMessageLen];
  for (size_t i = 0; i < txs.size(); ++i) {
    size_t len = 0;
    if (SerializeTxPreimage(txs[i], msg, sizeof(msg), &len)) {
      batcher.Add(msg, len, &leaves[i]);
    } else {
      leaves[i] = txs[i].Digest();
    }
  }
  batcher.Flush();
  return crypto::BinaryMerkleTree::RootOf(leaves);
}

Blockchain::Blockchain(uint32_t difficulty_bits) : difficulty_bits_(difficulty_bits) {
  Block genesis;
  genesis.header.height = 0;
  genesis.header.timestamp = 0;
  genesis.header.tx_root = ComputeTxRoot({});
  genesis.header.state_root = crypto::EmptyTreeDigest();
  genesis.header.difficulty_bits = difficulty_bits_;
  genesis.header.nonce = MineNonce(&genesis.header);
  blocks_.push_back(std::move(genesis));
}

uint64_t Blockchain::MineNonce(BlockHeader* header) const {
  for (uint64_t nonce = 0;; ++nonce) {
    header->nonce = nonce;
    if (SatisfiesPow(header->Digest(), header->difficulty_bits)) return nonce;
  }
}

Blockchain::Blockchain(AdoptTag, std::vector<Block> blocks, uint32_t difficulty_bits)
    : blocks_(std::move(blocks)), difficulty_bits_(difficulty_bits) {
  if (blocks_.empty()) throw std::invalid_argument("chain needs a genesis block");
}

Blockchain Blockchain::FromBlocks(std::vector<Block> blocks,
                                  uint32_t difficulty_bits) {
  return Blockchain(AdoptTag{}, std::move(blocks), difficulty_bits);
}

const Block& Blockchain::Append(std::vector<Transaction> txs, const Hash& state_root,
                                uint64_t timestamp) {
  Block block;
  block.header.height = blocks_.size();
  block.header.timestamp = timestamp;
  block.header.prev_hash = blocks_.back().header.Digest();
  block.header.tx_root = ComputeTxRoot(txs);
  block.header.state_root = state_root;
  block.header.difficulty_bits = difficulty_bits_;
  block.transactions = std::move(txs);
  block.header.nonce = MineNonce(&block.header);
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

bool Blockchain::Validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Block& block = blocks_[i];
    if (block.header.height != i) return fail("bad height at block " + std::to_string(i));
    if (i > 0 && block.header.prev_hash != blocks_[i - 1].header.Digest()) {
      return fail("broken hash chain at block " + std::to_string(i));
    }
    if (block.header.tx_root != ComputeTxRoot(block.transactions)) {
      return fail("tx root mismatch at block " + std::to_string(i));
    }
    if (!SatisfiesPow(block.header.Digest(), block.header.difficulty_bits)) {
      return fail("invalid proof of work at block " + std::to_string(i));
    }
  }
  return true;
}

}  // namespace gem2::chain
