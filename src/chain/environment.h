/// \file environment.h
/// The execution host tying contracts to the ledger. It meters each contract
/// invocation as one transaction (rolling back storage on out-of-gas), batches
/// transactions into blocks, commits contract digests into the block state
/// root, and serves authenticated state (VO_chain) with inclusion proofs.
#ifndef GEM2_CHAIN_ENVIRONMENT_H_
#define GEM2_CHAIN_ENVIRONMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "chain/contract.h"
#include "crypto/merkle.h"
#include "crypto/mpt.h"
#include "gas/meter.h"
#include "gas/schedule.h"
#include "telemetry/telemetry.h"

namespace gem2::chain {

/// How contract digests are committed into block headers.
enum class StateCommitment {
  /// Binary Merkle tree over (contract, label, digest) leaves.
  kBinaryMerkle,
  /// Ethereum-style Merkle Patricia Trie keyed by contract/label.
  kPatriciaTrie,
};

struct EnvironmentOptions {
  gas::Schedule schedule = gas::kEthereumSchedule;
  StateCommitment state_commitment = StateCommitment::kBinaryMerkle;
  gas::Gas gas_limit = gas::kDefaultGasLimit;
  /// Transactions accumulated before a block is sealed automatically.
  size_t txs_per_block = 16;
  /// PoW difficulty in leading zero bits (0 = trivial sealing, for benches).
  uint32_t difficulty_bits = 0;
  /// Flat intrinsic fee charged per transaction (Ethereum: 21,000). Defaults
  /// to 0 for parity with the paper's per-operation accounting; batching
  /// experiments enable it.
  gas::Gas tx_base_fee = 0;
  /// When true (and the telemetry tracer has at least one sink), every
  /// receipt carries the transaction's span tree in `TxReceipt::trace`.
  bool capture_tx_trace = false;
};

/// Outcome of one contract invocation.
struct TxReceipt {
  bool ok = true;
  gas::Gas gas_used = 0;
  gas::GasBreakdown breakdown;
  gas::OpCounts op_counts;
  std::string error;
  /// Span tree of this transaction (empty unless
  /// EnvironmentOptions::capture_tx_trace and telemetry are active). Spans
  /// appear in close order (children before their parent); the last record
  /// is the root "tx.<method>" span whose gas equals `gas_used`.
  std::vector<telemetry::SpanRecord> trace;
};

/// Authenticated digest together with its state-root inclusion proof.
/// Exactly one of the proof members is populated, matching the environment's
/// StateCommitment mode.
struct ProvenDigest {
  DigestEntry entry;
  crypto::MerkleProof proof;            // kBinaryMerkle
  crypto::PatriciaTrie::Proof mpt_proof;  // kPatriciaTrie
};

/// What a client retrieves from the blockchain for a contract: the digests,
/// their proofs, and the header they commit into.
struct AuthenticatedState {
  std::string contract;
  StateCommitment commitment = StateCommitment::kBinaryMerkle;
  std::vector<ProvenDigest> digests;
  BlockHeader header;
};

class Environment {
 public:
  explicit Environment(EnvironmentOptions options = {});

  /// Registers a contract (non-owning; the caller keeps it alive).
  void Register(Contract* contract);

  /// Runs `body` against `contract` as a metered transaction. On
  /// gas::OutOfGasError the storage is rolled back and the receipt reports
  /// failure; any other exception propagates after rollback.
  TxReceipt Execute(Contract& contract, const std::string& method,
                    const std::function<void(gas::Meter&)>& body);

  /// Seals pending transactions (if any) plus the current state commitment
  /// into a new block. Called automatically every `txs_per_block` executes.
  void SealBlock();

  /// Seals any pending transactions so the latest header reflects the current
  /// contract state; then returns digests + proofs for `contract_name`.
  AuthenticatedState ReadAuthenticatedState(const std::string& contract_name);

  /// Client-side check: header committed by the chain, proofs valid.
  static bool VerifyAuthenticatedState(const AuthenticatedState& state);

  /// State root over the registered contracts' current digests — what the
  /// next sealed block will commit. Unmetered introspection: the fault
  /// harness compares it across an aborted transaction to prove the rollback
  /// left no trace.
  Hash CurrentStateRoot() const { return ComputeStateRoot(); }

  const Blockchain& blockchain() const { return blockchain_; }
  const EnvironmentOptions& options() const { return options_; }
  uint64_t total_gas_used() const { return total_gas_used_; }
  uint64_t num_transactions() const { return next_seq_; }

 private:
  /// Leaf digests of the state MHT: one per (contract, digest entry), in
  /// deterministic (contract name, entry order) order.
  std::vector<Hash> StateLeaves() const;
  static Hash StateLeaf(const std::string& contract, const DigestEntry& entry);

  /// MPT key for one digest entry (kPatriciaTrie mode).
  static Bytes StateKey(const std::string& contract, const std::string& label);
  /// Builds the state MPT over every contract digest.
  crypto::PatriciaTrie BuildStateTrie() const;
  /// Root under the configured commitment mode.
  Hash ComputeStateRoot() const;

  EnvironmentOptions options_;
  Blockchain blockchain_;
  std::map<std::string, Contract*> contracts_;
  std::vector<Transaction> pending_;
  uint64_t next_seq_ = 0;
  uint64_t clock_ = 1;
  uint64_t total_gas_used_ = 0;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_ENVIRONMENT_H_
