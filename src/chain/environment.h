/// \file environment.h
/// The execution host tying contracts to the ledger. It meters each contract
/// invocation as one transaction (rolling back storage on out-of-gas), batches
/// transactions into blocks, commits contract digests into the block state
/// root, and serves authenticated state (VO_chain) with inclusion proofs.
///
/// Throughput machinery (all off-meter; gas is bit-identical either way, see
/// docs/PERFORMANCE.md "Simulator fast path"):
///   - the state commitment is maintained *incrementally*: one persistent
///     trie / Merkle tree absorbs only the digest entries that changed since
///     the last seal, instead of a from-scratch rebuild per block;
///   - block sealing is *pipelined*: the transaction-root computation, PoW
///     nonce search, and state-root hashing for block k run on the global
///     ThreadPool while transactions for block k+1 execute.
/// Set GEM2_STATE_CROSSCHECK=1 to re-derive every root from scratch and
/// compare (debug mode for the incremental path).
#ifndef GEM2_CHAIN_ENVIRONMENT_H_
#define GEM2_CHAIN_ENVIRONMENT_H_

#include <functional>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/blockchain.h"
#include "chain/contract.h"
#include "crypto/merkle.h"
#include "crypto/mpt.h"
#include "gas/meter.h"
#include "gas/schedule.h"
#include "telemetry/telemetry.h"

namespace gem2::chain {

/// How contract digests are committed into block headers.
enum class StateCommitment {
  /// Binary Merkle tree over (contract, label, digest) leaves.
  kBinaryMerkle,
  /// Ethereum-style Merkle Patricia Trie keyed by contract/label.
  kPatriciaTrie,
};

struct EnvironmentOptions {
  gas::Schedule schedule = gas::kEthereumSchedule;
  StateCommitment state_commitment = StateCommitment::kBinaryMerkle;
  gas::Gas gas_limit = gas::kDefaultGasLimit;
  /// Transactions accumulated before a block is sealed automatically.
  size_t txs_per_block = 16;
  /// PoW difficulty in leading zero bits (0 = trivial sealing, for benches).
  uint32_t difficulty_bits = 0;
  /// Flat intrinsic fee charged per transaction (Ethereum: 21,000). Defaults
  /// to 0 for parity with the paper's per-operation accounting; batching
  /// experiments enable it.
  gas::Gas tx_base_fee = 0;
  /// When true (and the telemetry tracer has at least one sink), every
  /// receipt carries the transaction's span tree in `TxReceipt::trace`.
  bool capture_tx_trace = false;
  /// Maintain the state commitment incrementally (default). Off = rebuild
  /// from scratch every time, the pre-overhaul behaviour; kept as a
  /// reference mode for the equivalence suite and bench comparisons.
  bool incremental_commitment = true;
  /// Overlap block k's seal (tx root, PoW, state-root hashing) with block
  /// k+1's transaction execution on the global ThreadPool. Automatically
  /// disabled when the pool has no workers (GEM2_THREADS=1) or telemetry
  /// tracing is active; the sealed chain is byte-identical either way.
  bool pipeline_sealing = true;
};

/// Outcome of one contract invocation.
struct TxReceipt {
  bool ok = true;
  gas::Gas gas_used = 0;
  gas::GasBreakdown breakdown;
  gas::OpCounts op_counts;
  std::string error;
  /// Span tree of this transaction (empty unless
  /// EnvironmentOptions::capture_tx_trace and telemetry are active). Spans
  /// appear in close order (children before their parent); the last record
  /// is the root "tx.<method>" span whose gas equals `gas_used`.
  std::vector<telemetry::SpanRecord> trace;
};

/// Authenticated digest together with its state-root inclusion proof.
/// Exactly one of the proof members is populated, matching the environment's
/// StateCommitment mode.
struct ProvenDigest {
  DigestEntry entry;
  crypto::MerkleProof proof;            // kBinaryMerkle
  crypto::PatriciaTrie::Proof mpt_proof;  // kPatriciaTrie
};

/// What a client retrieves from the blockchain for a contract: the digests,
/// their proofs, and the header they commit into.
struct AuthenticatedState {
  std::string contract;
  StateCommitment commitment = StateCommitment::kBinaryMerkle;
  std::vector<ProvenDigest> digests;
  BlockHeader header;
};

/// Counters for the incremental state commitment (bench introspection).
struct StateCommitStats {
  uint64_t root_computations = 0;  // total state-root requests
  uint64_t full_rebuilds = 0;      // computed from scratch
  uint64_t entries_seen = 0;       // digest entries scanned across requests
  uint64_t entries_updated = 0;    // entries actually (re)hashed into the
                                   // persistent structure
};

class Environment {
 public:
  explicit Environment(EnvironmentOptions options = {});
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Registers a contract (non-owning; the caller keeps it alive).
  void Register(Contract* contract);

  /// Runs `body` against `contract` as a metered transaction. On
  /// gas::OutOfGasError the storage is rolled back and the receipt reports
  /// failure; any other exception propagates after rollback.
  TxReceipt Execute(Contract& contract, const std::string& method,
                    const std::function<void(gas::Meter&)>& body);

  /// Seals pending transactions (if any) plus the current state commitment
  /// into a new block. Called automatically every `txs_per_block` executes.
  void SealBlock();

  /// Seals any pending transactions so the latest header reflects the current
  /// contract state; then returns digests + proofs for `contract_name`.
  AuthenticatedState ReadAuthenticatedState(const std::string& contract_name);

  /// Multi-contract read: one AuthenticatedState per name, all anchored at
  /// the SAME sealed header (the first read seals; later reads observe an
  /// unchanged root). This is what a sharded client retrieves to verify a
  /// composite response — every shard digest under one state commitment.
  std::vector<AuthenticatedState> ReadAuthenticatedStates(
      const std::vector<std::string>& contract_names);

  /// Client-side check: header committed by the chain, proofs valid.
  static bool VerifyAuthenticatedState(const AuthenticatedState& state);

  /// State root over the registered contracts' current digests — what the
  /// next sealed block will commit. Unmetered introspection: the fault
  /// harness compares it across an aborted transaction to prove the rollback
  /// left no trace.
  Hash CurrentStateRoot() const { return ComputeStateRoot(); }

  /// Blocks until any in-flight pipelined seal has landed, then returns the
  /// chain. Every read goes through here so callers never observe a block
  /// mid-seal.
  const Blockchain& blockchain() const {
    DrainSeal();
    return blockchain_;
  }
  const EnvironmentOptions& options() const { return options_; }
  uint64_t total_gas_used() const { return total_gas_used_; }
  uint64_t num_transactions() const { return next_seq_; }
  const StateCommitStats& commit_stats() const { return commit_stats_; }

 private:
  /// One gathered digest entry; `contract` points at the contracts_ map key
  /// (stable for the environment's lifetime).
  struct StateEntry {
    const std::string* contract;
    std::string label;
    Hash digest{};
  };

  /// Digest view of every registered contract, in deterministic
  /// (contract name, ledger/entry order) order. Cheap relative to hashing:
  /// ledger-backed contracts answer without touching their ADS.
  std::vector<StateEntry> GatherStateEntries() const;

  static Hash StateLeaf(const std::string& contract, const DigestEntry& entry);
  static Hash StateLeafOf(const StateEntry& e);
  /// MPT key for one digest entry (kPatriciaTrie mode).
  static Bytes StateKey(const std::string& contract, const std::string& label);

  static crypto::PatriciaTrie TrieFromEntries(const std::vector<StateEntry>& cur);
  static std::vector<Hash> LeavesFromEntries(const std::vector<StateEntry>& cur);

  /// Computes the root for `cur`, updating the persistent commitment caches.
  /// Callers must hold the seal pipeline drained (or be the seal task).
  Hash ComputeStateRootFrom(const std::vector<StateEntry>& cur) const;
  /// Drains the pipeline, gathers, and computes.
  Hash ComputeStateRoot() const;

  /// Blocks until the in-flight seal (if any) finishes, helping the pool
  /// drain queues meanwhile; rethrows the seal's exception.
  void DrainSeal() const;
  bool PipelineActive(bool traced) const;

  EnvironmentOptions options_;
  Blockchain blockchain_;
  std::map<std::string, Contract*> contracts_;
  std::vector<Transaction> pending_;
  uint64_t next_seq_ = 0;
  uint64_t clock_ = 1;
  uint64_t total_gas_used_ = 0;
  bool crosscheck_ = false;  // GEM2_STATE_CROSSCHECK

  // --- incremental commitment caches (guarded by the seal pipeline: only
  // the in-flight seal task or a drained caller touches them) --------------
  mutable bool commit_valid_ = false;
  // kPatriciaTrie: persistent trie + applied (key -> digest) map. The MPT
  // supports no deletion, so a vanished label forces a rebuild; additions
  // and digest changes apply in place.
  mutable crypto::PatriciaTrie state_trie_;
  mutable std::unordered_map<std::string, Hash> trie_applied_;
  // kBinaryMerkle: persistent tree + the (contract, label, digest) layout it
  // was built over. Leaves are positional, so any layout change rebuilds;
  // digest-only changes patch via UpdateLeaf.
  mutable std::optional<crypto::BinaryMerkleTree> state_tree_;
  mutable std::vector<StateEntry> last_entries_;
  mutable StateCommitStats commit_stats_;

  // --- pipelined sealing ---------------------------------------------------
  mutable std::future<void> seal_future_;
};

}  // namespace gem2::chain

#endif  // GEM2_CHAIN_ENVIRONMENT_H_
