/// \file meter.h
/// Transaction-scoped gas meter. Every metered resource (storage words,
/// memory words, hash invocations) charges through one of these; exceeding
/// the limit raises OutOfGasError, which aborts the enclosing transaction
/// exactly like EVM execution running past gasLimit.
#ifndef GEM2_GAS_METER_H_
#define GEM2_GAS_METER_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "gas/schedule.h"

namespace gem2::gas {

/// Per-category gas breakdown, for cost-model validation and benchmarking.
struct GasBreakdown {
  Gas sload = 0;
  Gas sstore = 0;
  Gas supdate = 0;
  Gas mem = 0;
  Gas hash = 0;
  /// Flat per-transaction charges (e.g. Ethereum's 21,000 intrinsic fee).
  Gas intrinsic = 0;

  Gas total() const { return sload + sstore + supdate + mem + hash + intrinsic; }

  GasBreakdown& operator+=(const GasBreakdown& o) {
    sload += o.sload;
    sstore += o.sstore;
    supdate += o.supdate;
    mem += o.mem;
    hash += o.hash;
    intrinsic += o.intrinsic;
    return *this;
  }

  /// Componentwise difference; callers must guarantee o <= *this per
  /// category (true for snapshots of one monotonically growing meter).
  GasBreakdown& operator-=(const GasBreakdown& o) {
    sload -= o.sload;
    sstore -= o.sstore;
    supdate -= o.supdate;
    mem -= o.mem;
    hash -= o.hash;
    intrinsic -= o.intrinsic;
    return *this;
  }

  friend bool operator==(const GasBreakdown& a, const GasBreakdown& b) = default;
};

/// Counts of metered operations (not gas), useful for analytic validation.
struct OpCounts {
  uint64_t sload = 0;
  uint64_t sstore = 0;
  uint64_t supdate = 0;
  uint64_t mem_words = 0;
  uint64_t hash_calls = 0;
  uint64_t hash_bytes = 0;

  friend bool operator==(const OpCounts& a, const OpCounts& b) = default;
};

/// Thrown when cumulative gas exceeds the transaction gas limit. Carries the
/// partial per-category breakdown and op counts at the moment of abort, so
/// failure receipts can still explain where the gas went.
class OutOfGasError : public std::runtime_error {
 public:
  OutOfGasError(Gas used, Gas limit, GasBreakdown breakdown = {},
                OpCounts op_counts = {})
      : std::runtime_error("out of gas: used " + std::to_string(used) +
                           " > limit " + std::to_string(limit)),
        used_(used),
        limit_(limit),
        breakdown_(breakdown),
        op_counts_(op_counts) {}

  Gas used() const { return used_; }
  Gas limit() const { return limit_; }
  const GasBreakdown& breakdown() const { return breakdown_; }
  const OpCounts& op_counts() const { return op_counts_; }

 private:
  Gas used_;
  Gas limit_;
  GasBreakdown breakdown_;
  OpCounts op_counts_;
};

/// The metered resource categories, in GasBreakdown field order.
enum class GasCategory { kSload, kSstore, kSupdate, kMem, kHash, kIntrinsic };
inline constexpr int kNumGasCategories = 6;
const char* GasCategoryName(GasCategory category);

class Meter;

/// Observer hook: the telemetry layer attaches one of these to watch every
/// charge without the gas library depending on telemetry. Callbacks run
/// synchronously on the charging thread, after the meter's accounting has
/// been updated and before the limit check (so an out-of-gas charge is still
/// observed). Observers must not charge the meter.
class MeterObserver {
 public:
  virtual ~MeterObserver() = default;
  virtual void OnCharge(const Meter& meter, GasCategory category, Gas delta) = 0;
};

/// Accumulates gas against a schedule and a limit.
class Meter {
 public:
  explicit Meter(const Schedule& schedule = kEthereumSchedule,
                 Gas limit = kDefaultGasLimit)
      : schedule_(schedule), limit_(limit) {}

  void ChargeSload(uint64_t words = 1);
  /// Flat charge (per-transaction intrinsic fee).
  void ChargeIntrinsic(Gas amount);
  void ChargeSstore(uint64_t words = 1);
  void ChargeSupdate(uint64_t words = 1);
  void ChargeMem(uint64_t words);
  void ChargeHash(uint64_t bytes);

  /// Charges the analytic in-memory sort cost used by the paper's model:
  /// n * log2(n) memory-word accesses (Section IV-B).
  void ChargeSortCost(uint64_t n);

  Gas used() const { return breakdown_.total(); }
  Gas limit() const { return limit_; }
  const GasBreakdown& breakdown() const { return breakdown_; }
  const OpCounts& op_counts() const { return ops_; }
  const Schedule& schedule() const { return schedule_; }

  /// Zeroes accumulated gas (start of a new transaction).
  void Reset();

  /// Attaches (or detaches, with nullptr) a charge observer. Non-owning; the
  /// observer must outlive the meter or be detached first.
  void set_observer(MeterObserver* observer) { observer_ = observer; }
  MeterObserver* observer() const { return observer_; }

 private:
  void CheckLimit();
  void Notify(GasCategory category, Gas delta) {
    if (observer_ != nullptr) observer_->OnCharge(*this, category, delta);
  }

  Schedule schedule_;
  Gas limit_;
  GasBreakdown breakdown_;
  OpCounts ops_;
  MeterObserver* observer_ = nullptr;
};

}  // namespace gem2::gas

#endif  // GEM2_GAS_METER_H_
