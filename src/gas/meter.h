/// \file meter.h
/// Transaction-scoped gas meter. Every metered resource (storage words,
/// memory words, hash invocations) charges through one of these; exceeding
/// the limit raises OutOfGasError, which aborts the enclosing transaction
/// exactly like EVM execution running past gasLimit.
#ifndef GEM2_GAS_METER_H_
#define GEM2_GAS_METER_H_

#include <cstdint>
#include <stdexcept>
#include <string>

#include "gas/schedule.h"

namespace gem2::gas {

/// Thrown when cumulative gas exceeds the transaction gas limit.
class OutOfGasError : public std::runtime_error {
 public:
  OutOfGasError(Gas used, Gas limit)
      : std::runtime_error("out of gas: used " + std::to_string(used) +
                           " > limit " + std::to_string(limit)),
        used_(used),
        limit_(limit) {}

  Gas used() const { return used_; }
  Gas limit() const { return limit_; }

 private:
  Gas used_;
  Gas limit_;
};

/// Per-category gas breakdown, for cost-model validation and benchmarking.
struct GasBreakdown {
  Gas sload = 0;
  Gas sstore = 0;
  Gas supdate = 0;
  Gas mem = 0;
  Gas hash = 0;
  /// Flat per-transaction charges (e.g. Ethereum's 21,000 intrinsic fee).
  Gas intrinsic = 0;

  Gas total() const { return sload + sstore + supdate + mem + hash + intrinsic; }

  GasBreakdown& operator+=(const GasBreakdown& o) {
    sload += o.sload;
    sstore += o.sstore;
    supdate += o.supdate;
    mem += o.mem;
    hash += o.hash;
    intrinsic += o.intrinsic;
    return *this;
  }
};

/// Counts of metered operations (not gas), useful for analytic validation.
struct OpCounts {
  uint64_t sload = 0;
  uint64_t sstore = 0;
  uint64_t supdate = 0;
  uint64_t mem_words = 0;
  uint64_t hash_calls = 0;
  uint64_t hash_bytes = 0;
};

/// Accumulates gas against a schedule and a limit.
class Meter {
 public:
  explicit Meter(const Schedule& schedule = kEthereumSchedule,
                 Gas limit = kDefaultGasLimit)
      : schedule_(schedule), limit_(limit) {}

  void ChargeSload(uint64_t words = 1);
  /// Flat charge (per-transaction intrinsic fee).
  void ChargeIntrinsic(Gas amount);
  void ChargeSstore(uint64_t words = 1);
  void ChargeSupdate(uint64_t words = 1);
  void ChargeMem(uint64_t words);
  void ChargeHash(uint64_t bytes);

  /// Charges the analytic in-memory sort cost used by the paper's model:
  /// n * log2(n) memory-word accesses (Section IV-B).
  void ChargeSortCost(uint64_t n);

  Gas used() const { return breakdown_.total(); }
  Gas limit() const { return limit_; }
  const GasBreakdown& breakdown() const { return breakdown_; }
  const OpCounts& op_counts() const { return ops_; }
  const Schedule& schedule() const { return schedule_; }

  /// Zeroes accumulated gas (start of a new transaction).
  void Reset();

 private:
  void CheckLimit();

  Schedule schedule_;
  Gas limit_;
  GasBreakdown breakdown_;
  OpCounts ops_;
};

}  // namespace gem2::gas

#endif  // GEM2_GAS_METER_H_
