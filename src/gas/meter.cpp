#include "gas/meter.h"

#include <bit>

namespace gem2::gas {

const char* GasCategoryName(GasCategory category) {
  switch (category) {
    case GasCategory::kSload: return "sload";
    case GasCategory::kSstore: return "sstore";
    case GasCategory::kSupdate: return "supdate";
    case GasCategory::kMem: return "mem";
    case GasCategory::kHash: return "hash";
    case GasCategory::kIntrinsic: return "intrinsic";
  }
  return "unknown";
}

void Meter::ChargeIntrinsic(Gas amount) {
  breakdown_.intrinsic += amount;
  Notify(GasCategory::kIntrinsic, amount);
  CheckLimit();
}

void Meter::ChargeSload(uint64_t words) {
  breakdown_.sload += schedule_.sload * words;
  ops_.sload += words;
  Notify(GasCategory::kSload, schedule_.sload * words);
  CheckLimit();
}

void Meter::ChargeSstore(uint64_t words) {
  breakdown_.sstore += schedule_.sstore * words;
  ops_.sstore += words;
  Notify(GasCategory::kSstore, schedule_.sstore * words);
  CheckLimit();
}

void Meter::ChargeSupdate(uint64_t words) {
  breakdown_.supdate += schedule_.supdate * words;
  ops_.supdate += words;
  Notify(GasCategory::kSupdate, schedule_.supdate * words);
  CheckLimit();
}

void Meter::ChargeMem(uint64_t words) {
  breakdown_.mem += schedule_.mem * words;
  ops_.mem_words += words;
  Notify(GasCategory::kMem, schedule_.mem * words);
  CheckLimit();
}

void Meter::ChargeHash(uint64_t bytes) {
  const Gas cost = schedule_.HashCost(bytes);
  breakdown_.hash += cost;
  ops_.hash_calls += 1;
  ops_.hash_bytes += bytes;
  Notify(GasCategory::kHash, cost);
  CheckLimit();
}

void Meter::ChargeSortCost(uint64_t n) {
  if (n <= 1) return;
  // ceil(log2(n)) comparisons per element, one memory word touch each.
  uint64_t log2n = 64 - std::countl_zero(n - 1);
  ChargeMem(n * log2n);
}

void Meter::Reset() {
  breakdown_ = GasBreakdown{};
  ops_ = OpCounts{};
}

void Meter::CheckLimit() {
  if (used() > limit_) throw OutOfGasError(used(), limit_, breakdown_, ops_);
}

}  // namespace gem2::gas
