#include "gas/meter.h"

#include <bit>

namespace gem2::gas {

void Meter::ChargeIntrinsic(Gas amount) {
  breakdown_.intrinsic += amount;
  CheckLimit();
}

void Meter::ChargeSload(uint64_t words) {
  breakdown_.sload += schedule_.sload * words;
  ops_.sload += words;
  CheckLimit();
}

void Meter::ChargeSstore(uint64_t words) {
  breakdown_.sstore += schedule_.sstore * words;
  ops_.sstore += words;
  CheckLimit();
}

void Meter::ChargeSupdate(uint64_t words) {
  breakdown_.supdate += schedule_.supdate * words;
  ops_.supdate += words;
  CheckLimit();
}

void Meter::ChargeMem(uint64_t words) {
  breakdown_.mem += schedule_.mem * words;
  ops_.mem_words += words;
  CheckLimit();
}

void Meter::ChargeHash(uint64_t bytes) {
  breakdown_.hash += schedule_.HashCost(bytes);
  ops_.hash_calls += 1;
  ops_.hash_bytes += bytes;
  CheckLimit();
}

void Meter::ChargeSortCost(uint64_t n) {
  if (n <= 1) return;
  // ceil(log2(n)) comparisons per element, one memory word touch each.
  uint64_t log2n = 64 - std::countl_zero(n - 1);
  ChargeMem(n * log2n);
}

void Meter::Reset() {
  breakdown_ = GasBreakdown{};
  ops_ = OpCounts{};
}

void Meter::CheckLimit() {
  if (used() > limit_) throw OutOfGasError(used(), limit_);
}

}  // namespace gem2::gas
