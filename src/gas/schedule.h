/// \file schedule.h
/// The Ethereum gas fee schedule of Table I in the paper, plus the block
/// gasLimit. All on-chain cost accounting in the library derives from these
/// constants; benchmarks can supply modified schedules for ablation studies.
#ifndef GEM2_GAS_SCHEDULE_H_
#define GEM2_GAS_SCHEDULE_H_

#include <cstdint>

namespace gem2::gas {

using Gas = uint64_t;

/// Fee schedule (paper Table I; values from the Ethereum yellow paper).
struct Schedule {
  /// Csload: load a word from contract storage.
  Gas sload = 200;
  /// Csstore: store a word to a previously empty storage slot.
  Gas sstore = 20'000;
  /// Csupdate: overwrite a word in an occupied storage slot.
  Gas supdate = 5'000;
  /// Cmem: access a word in (volatile) EVM memory.
  Gas mem = 3;
  /// Chash base and per-word costs: hashing data of w words costs
  /// hash_base + hash_word * w.
  Gas hash_base = 30;
  Gas hash_word = 6;

  /// Gas cost of hashing `bytes` bytes of data.
  Gas HashCost(uint64_t bytes) const {
    return hash_base + hash_word * ((bytes + 31) / 32);
  }
};

/// Default Ethereum schedule.
inline constexpr Schedule kEthereumSchedule{};

/// Default per-transaction gas limit (paper Section II-B).
inline constexpr Gas kDefaultGasLimit = 8'000'000;

}  // namespace gem2::gas

#endif  // GEM2_GAS_SCHEDULE_H_
