#include "shard/sharded_db.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/thread_pool.h"
#include "core/observe.h"
#include "telemetry/telemetry.h"

namespace gem2::shard {
namespace {

bool TelemetryOn() {
  return telemetry::kCompiledIn && telemetry::Tracer::Global().enabled();
}

}  // namespace

void ShardOptions::Validate() const {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument("ShardOptions: " + what);
  };
  if (base.shared_env != nullptr) {
    reject("base.shared_env must be null (set ShardOptions::shared_env)");
  }
  if (contract_prefix.empty()) {
    reject("contract_prefix must be non-empty");
  }
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0 && bounds[i] <= bounds[i - 1]) {
      reject("partition bounds must be strictly ascending");
    }
  }
  // Per-shard ADS options (including the env the shared chain is built from)
  // get the same scrutiny an unsharded construction would apply.
  base.Validate();
}

std::string ShardedDb::ShardContractName(size_t shard) {
  return "shard" + std::to_string(shard);
}

std::string ShardedDb::ContractName(size_t shard) const {
  return options_.contract_prefix + std::to_string(shard);
}

ShardedDb::ShardedDb(ShardOptions options)
    : options_(std::move(options)),
      write_counters_(telemetry::MetricsRegistry::Global(), "shard.writes",
                      options_.num_shards()),
      slice_counters_(telemetry::MetricsRegistry::Global(), "shard.slices",
                      options_.num_shards()),
      slice_latency_(telemetry::MetricsRegistry::Global(), "shard.slice_ns",
                     options_.num_shards()) {
  options_.Validate();
  if (options_.shared_env != nullptr) {
    env_ = options_.shared_env;
  } else {
    owned_env_ = std::make_unique<chain::Environment>(options_.base.env);
    env_ = owned_env_.get();
  }
  const size_t shards = options_.num_shards();
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    core::DbOptions per_shard = options_.base;
    per_shard.contract_name = ContractName(i);
    per_shard.shared_env = env_;
    shards_.push_back(std::make_unique<core::AuthenticatedDb>(std::move(per_shard)));
  }
  scatter_pool_ = options_.base.sp_pool;
}

ShardedDb::~ShardedDb() = default;

void ShardedDb::ApplySpPool(common::ThreadPool* pool) {
  scatter_pool_ = pool != nullptr ? pool : options_.base.sp_pool;
  for (const auto& shard : shards_) ApplySpPoolTo(*shard, pool);
}

size_t ShardedDb::ShardOf(Key key) const {
  const std::vector<Key>& b = options_.bounds;
  return static_cast<size_t>(std::upper_bound(b.begin(), b.end(), key) -
                             b.begin());
}

chain::TxReceipt ShardedDb::Insert(const Object& object) {
  const size_t s = ShardOf(object.key);
  if (TelemetryOn()) write_counters_.at(s).Add(1);
  return shards_[s]->Insert(object);
}

chain::TxReceipt ShardedDb::Update(const Object& object) {
  const size_t s = ShardOf(object.key);
  if (TelemetryOn()) write_counters_.at(s).Add(1);
  return shards_[s]->Update(object);
}

chain::TxReceipt ShardedDb::Delete(Key key) {
  const size_t s = ShardOf(key);
  if (TelemetryOn()) write_counters_.at(s).Add(1);
  return shards_[s]->Delete(key);
}

chain::TxReceipt ShardedDb::InsertBatch(const std::vector<Object>& objects) {
  // Group by owning shard, preserving in-shard order; one transaction per
  // shard touched. Shard order is deterministic (ascending) so replays and
  // gas accounting are reproducible.
  std::vector<std::vector<Object>> per_shard(shards_.size());
  for (const Object& obj : objects) {
    per_shard[ShardOf(obj.key)].push_back(obj);
  }
  chain::TxReceipt last;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    if (TelemetryOn()) write_counters_.at(s).Add(per_shard[s].size());
    last = shards_[s]->InsertBatch(per_shard[s]);
    if (!last.ok) return last;
  }
  return last;
}

bool ShardedDb::Contains(Key key) const {
  return shards_[ShardOf(key)]->Contains(key);
}

uint64_t ShardedDb::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::vector<ShardedDb::SubRange> ShardedDb::ScatterPlan(Key lb, Key ub) const {
  std::vector<SubRange> plan;
  if (ub < lb) return plan;
  const std::vector<Key>& b = options_.bounds;
  const size_t first = ShardOf(lb);
  const size_t last = ShardOf(ub);
  plan.reserve(last - first + 1);
  for (size_t s = first; s <= last; ++s) {
    SubRange sub;
    sub.shard = s;
    sub.lb = s == first ? lb : b[s - 1];
    sub.ub = s == last ? ub : b[s] - 1;
    plan.push_back(sub);
  }
  return plan;
}

core::QueryResponse ShardedDb::QueryPredicate(uint32_t attr, Key lb,
                                              Key ub) const {
  if (attr != 0) {
    throw std::invalid_argument("ShardedDb: unknown attribute");
  }
  // Parent span of the scatter: every slice — answered inline or on a pool
  // worker — continues this trace with the parent span id, so the span tree
  // (one shard.query, `slices` sp.query children) is identical serial vs
  // parallel.
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  telemetry::Span span("shard.query");
  core::QueryResponse response;
  response.lb = lb;
  response.ub = ub;
  response.trace = span.context();
  const std::vector<SubRange> plan = ScatterPlan(lb, ub);
  response.slices.resize(plan.size());
  const telemetry::TraceContext slice_ctx = span.context();
  const bool telemetry_on = TelemetryOn();
  auto answer = [&](size_t i) {
    telemetry::TraceScope slice_scope(slice_ctx);
    const uint64_t t0 = telemetry_on ? telemetry::Tracer::NowNs() : 0;
    response.slices[i].shard = static_cast<uint32_t>(plan[i].shard);
    response.slices[i].response =
        shards_[plan[i].shard]->Query(plan[i].lb, plan[i].ub);
    if (telemetry_on) {
      slice_latency_.at(plan[i].shard).Observe(telemetry::Tracer::NowNs() - t0);
    }
  };
  if (scatter_pool_ != nullptr && plan.size() > 1) {
    scatter_pool_->ParallelFor(0, plan.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) answer(i);
    });
  } else {
    for (size_t i = 0; i < plan.size(); ++i) answer(i);
  }
  if (telemetry_on) {
    for (const SubRange& sub : plan) slice_counters_.at(sub.shard).Add(1);
    telemetry::MetricsRegistry::Global()
        .histogram("shard.query_slices")
        .Observe(plan.size());
  }
  return response;
}

std::optional<core::VerifiedResult> ShardedDb::CheckPlan(
    Key lb, Key ub, const core::QueryResponse& response,
    std::vector<SubRange>* plan) const {
  auto fail = [](const std::string& msg) {
    core::VerifiedResult out;
    out.ok = false;
    out.error = msg;
    return out;
  };
  if (response.lb != lb || response.ub != ub) {
    return fail("response range does not match the issued query");
  }
  if (!response.trees.empty() || !response.upper_splits.empty()) {
    return fail("composite response carries top-level single-response fields");
  }
  // The client derives the expected scatter from its OWN partition bounds
  // (static deployment config), never from the response: a malicious SP
  // cannot drop, duplicate, reorder, or seam-shift a slice without the plan
  // comparison failing here.
  *plan = ScatterPlan(lb, ub);
  if (response.slices.size() != plan->size()) {
    return fail("composite slice count does not match the shard layout");
  }
  for (size_t i = 0; i < plan->size(); ++i) {
    const core::ShardSlice& slice = response.slices[i];
    const SubRange& expect = (*plan)[i];
    if (slice.shard != expect.shard) {
      return fail("slice " + std::to_string(i) + " answers the wrong shard");
    }
    if (slice.response.lb != expect.lb || slice.response.ub != expect.ub) {
      return fail("slice " + std::to_string(i) +
                  " sub-range violates the shard seams");
    }
  }
  return std::nullopt;
}

bool ShardedDb::MergeSlice(core::VerifiedResult* total, size_t shard,
                           core::VerifiedResult&& slice_result) {
  if (!slice_result.ok) {
    total->ok = false;
    total->error = "shard " + std::to_string(shard) + ": " + slice_result.error;
    total->objects.clear();
    return false;
  }
  total->objects.insert(total->objects.end(),
                        std::make_move_iterator(slice_result.objects.begin()),
                        std::make_move_iterator(slice_result.objects.end()));
  total->tombstones_filtered += slice_result.tombstones_filtered;
  total->vo_chain_bytes += slice_result.vo_chain_bytes;
  return true;
}

core::VerifiedResult ShardedDb::VerifyFor(Key lb, Key ub,
                                          const core::QueryResponse& response) {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  core::VerifyObservation observe;
  TELEMETRY_SPAN("shard.verify");
  std::vector<SubRange> plan;
  if (auto failed = CheckPlan(lb, ub, response, &plan)) {
    observe.RecordRejection(BackendName(), failed->error);
    return *failed;
  }
  core::VerifiedResult total;
  total.ok = true;
  total.vo_sp_bytes = core::VoSpBytes(response);
  for (size_t i = 0; i < plan.size(); ++i) {
    // Full per-shard client path: chain read, light-client sync, then the
    // single-response checks of Algorithms 6 / 8 over the slice.
    core::VerifiedResult slice_result = shards_[plan[i].shard]->VerifyFor(
        plan[i].lb, plan[i].ub, response.slices[i].response);
    if (!MergeSlice(&total, plan[i].shard, std::move(slice_result))) {
      observe.RecordRejection(BackendName(), total.error);
      return total;
    }
  }
  return total;
}

core::VerifiedResult ShardedDb::VerifyPredicateFor(
    uint32_t attr, Key lb, Key ub, const core::QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) {
  if (attr != 0) {
    core::VerifiedResult out;
    out.ok = false;
    out.error = "predicate over unknown attribute";
    return out;
  }
  if (boundary == nullptr) return VerifyFor(lb, ub, response);
  // Boundary (aggregate) mode: the composite's plan discipline is unchanged —
  // a dropped or seam-shifted slice fails before any VO is checked — but each
  // slice verifies its stripped VO in boundary mode, contributing proven
  // in-range entries instead of result objects. Plan order ascends, so the
  // concatenated entries stay key-ordered.
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  core::VerifyObservation observe;
  TELEMETRY_SPAN("shard.verify");
  std::vector<SubRange> plan;
  if (auto failed = CheckPlan(lb, ub, response, &plan)) {
    observe.RecordRejection(BackendName(), failed->error);
    return *failed;
  }
  core::VerifiedResult total;
  total.ok = true;
  total.vo_sp_bytes = core::VoSpBytes(response);
  const size_t collected_before = boundary->size();
  for (size_t i = 0; i < plan.size(); ++i) {
    core::VerifiedResult slice_result = VerifyPredicateForOn(
        *shards_[plan[i].shard], 0, plan[i].lb, plan[i].ub,
        response.slices[i].response, boundary);
    if (!slice_result.ok) {
      total.ok = false;
      total.error =
          "shard " + std::to_string(plan[i].shard) + ": " + slice_result.error;
      boundary->resize(collected_before);
      observe.RecordRejection(BackendName(), total.error);
      return total;
    }
    total.vo_chain_bytes += slice_result.vo_chain_bytes;
  }
  return total;
}

core::VerifiedResult ShardedDb::VerifyPredicateAgainst(
    const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
    Key lb, Key ub, const core::QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) const {
  if (attr != 0) {
    core::VerifiedResult out;
    out.ok = false;
    out.error = "predicate over unknown attribute";
    return out;
  }
  if (boundary == nullptr) {
    if (response.lb != lb || response.ub != ub) {
      core::VerifiedResult out;
      out.ok = false;
      out.error = "response range does not match the issued query";
      return out;
    }
    return VerifyAgainst(states, response);
  }
  core::VerifyObservation observe;
  std::vector<SubRange> plan;
  if (auto failed = CheckPlan(lb, ub, response, &plan)) {
    observe.RecordRejection(BackendName(), failed->error);
    return *failed;
  }
  std::unordered_map<std::string, const chain::AuthenticatedState*> by_contract;
  for (const chain::AuthenticatedState& s : states) by_contract[s.contract] = &s;
  const ads::HashStrategy strategy = options_.base.client.batched_hashing
                                         ? ads::HashStrategy::kBatched
                                         : ads::HashStrategy::kSerial;
  core::VerifiedResult total;
  total.ok = true;
  total.vo_sp_bytes = core::VoSpBytes(response);
  const size_t collected_before = boundary->size();
  for (size_t i = 0; i < plan.size(); ++i) {
    auto it = by_contract.find(ContractName(plan[i].shard));
    if (it == by_contract.end()) {
      total.ok = false;
      total.error =
          "chain state does not cover shard " + std::to_string(plan[i].shard);
      boundary->resize(collected_before);
      observe.RecordRejection(BackendName(), total.error);
      return total;
    }
    core::VerifiedResult slice_result =
        core::VerifyResponse(*it->second, /*chain_valid=*/true,
                             options_.base.kind, response.slices[i].response,
                             strategy, boundary);
    if (!slice_result.ok) {
      total.ok = false;
      total.error =
          "shard " + std::to_string(plan[i].shard) + ": " + slice_result.error;
      boundary->resize(collected_before);
      observe.RecordRejection(BackendName(), total.error);
      return total;
    }
    total.vo_chain_bytes += slice_result.vo_chain_bytes;
  }
  return total;
}

std::vector<chain::AuthenticatedState> ShardedDb::ReadChainState() {
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) names.push_back(ContractName(i));
  return env_->ReadAuthenticatedStates(names);
}

core::VerifiedResult ShardedDb::VerifyAgainst(
    const std::vector<chain::AuthenticatedState>& states,
    const core::QueryResponse& response) const {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  core::VerifyObservation observe;
  std::vector<SubRange> plan;
  if (auto failed = CheckPlan(response.lb, response.ub, response, &plan)) {
    observe.RecordRejection(BackendName(), failed->error);
    return *failed;
  }
  std::unordered_map<std::string, const chain::AuthenticatedState*> by_contract;
  for (const chain::AuthenticatedState& s : states) by_contract[s.contract] = &s;
  const bool telemetry_on = TelemetryOn();
  const uint64_t t0 = telemetry_on ? telemetry::Tracer::NowNs() : 0;
  const ads::HashStrategy strategy = options_.base.client.batched_hashing
                                         ? ads::HashStrategy::kBatched
                                         : ads::HashStrategy::kSerial;
  // Pure-CPU per-slice verification; each slice is independent, so they can
  // run on the client pool. Every slice is verified, then merged in plan
  // order — the first failure in plan order wins, exactly as in the serial
  // loop (a serial run would not have verified later slices, but their
  // results cannot change the outcome).
  std::vector<const chain::AuthenticatedState*> slice_states(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    auto it = by_contract.find(ContractName(plan[i].shard));
    slice_states[i] = it == by_contract.end() ? nullptr : it->second;
  }
  const telemetry::TraceContext slice_ctx = telemetry::CurrentTrace();
  std::vector<core::VerifiedResult> results(plan.size());
  auto verify_slice = [&](size_t i) {
    if (slice_states[i] == nullptr) return;  // reported in plan order below
    telemetry::TraceScope slice_scope(slice_ctx);
    results[i] =
        core::VerifyResponse(*slice_states[i], /*chain_valid=*/true,
                             options_.base.kind, response.slices[i].response,
                             strategy);
  };
  common::ThreadPool* pool = options_.base.client.pool;
  if (pool != nullptr && plan.size() > 1) {
    pool->ParallelFor(0, plan.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) verify_slice(i);
    });
  } else {
    for (size_t i = 0; i < plan.size(); ++i) verify_slice(i);
  }
  core::VerifiedResult total;
  total.ok = true;
  total.vo_sp_bytes = core::VoSpBytes(response);
  for (size_t i = 0; i < plan.size(); ++i) {
    if (slice_states[i] == nullptr) {
      total.ok = false;
      total.error = "chain state does not cover shard " +
                    std::to_string(plan[i].shard);
      total.objects.clear();
      observe.RecordRejection(BackendName(), total.error);
      return total;
    }
    if (!MergeSlice(&total, plan[i].shard, std::move(results[i]))) {
      observe.RecordRejection(BackendName(), total.error);
      return total;
    }
  }
  if (telemetry_on) {
    telemetry::MetricsRegistry::Global()
        .histogram("client.verify_ns")
        .Observe(telemetry::Tracer::NowNs() - t0);
  }
  return total;
}

bool ShardedDb::poisoned() const {
  for (const auto& shard : shards_) {
    if (shard->poisoned()) return true;
  }
  return false;
}

std::string ShardedDb::BackendName() const {
  return "sharded(" + std::to_string(shards_.size()) + ")/" +
         core::AdsKindName(options_.base.kind);
}

void ShardedDb::CheckConsistency() const {
  for (const auto& shard : shards_) shard->CheckConsistency();
}

}  // namespace gem2::shard
