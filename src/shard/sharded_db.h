/// \file sharded_db.h
/// Range-partitioned multi-contract RangeStore: the keyspace is split at S-1
/// partition bounds into S shards, each an unmodified AuthenticatedDb whose
/// ADS contract registers in ONE shared chain::Environment — every shard
/// digest lives under the same state commitment, so one block header anchors
/// the whole deployment (see docs/SHARDING.md).
///
/// Semantics:
///   - shard i owns keys k with upper_bound(bounds, k) == i, i.e.
///     [bounds[i-1], bounds[i] - 1] (shard 0 from kKeyMin, the last shard to
///     kKeyMax). Writes route to the owning shard and run the contract
///     algorithms unchanged, so per-shard gas is bit-identical to an
///     unsharded db holding the same keys;
///   - a range query [lb, ub] scatters across the overlapping shards, each
///     answering its clamped sub-range; the sub-responses gather into a
///     composite QueryResponse (QueryResponse::slices, kind-tagged on the
///     wire);
///   - the client re-derives the scatter plan from its own copy of the
///     partition bounds (static deployment config) and accepts a composite
///     only if the slices match it exactly — shard indices, order, and
///     sub-ranges, which abut seam-to-seam (slice i's ub + 1 == slice i+1's
///     lb). A dropped, duplicated, reordered, or seam-shifted slice is
///     therefore rejected before any VO is even checked; each surviving
///     slice then verifies like a normal single response against that
///     shard's on-chain digests.
#ifndef GEM2_SHARD_SHARDED_DB_H_
#define GEM2_SHARD_SHARDED_DB_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/authenticated_db.h"
#include "core/range_store.h"
#include "telemetry/metrics.h"

namespace gem2::shard {

struct ShardOptions {
  /// Per-shard ADS configuration: kind, GEM2/LSM parameters, GEM2* split
  /// points, and the environment options for the single shared chain.
  /// `base.contract_name` and `base.shared_env` are managed by ShardedDb and
  /// must be left at their defaults.
  core::DbOptions base;
  /// Partition bounds: strictly ascending keys, one fewer than the shard
  /// count (empty = one shard). workload::WorkloadGenerator::ShardBounds
  /// derives load-balancing bounds from the expected key distribution.
  std::vector<Key> bounds;
  /// Host chain for every shard contract. nullptr (default): the sharded db
  /// constructs and owns its own Environment from base.env. Non-null: shard
  /// contracts register in the caller's environment (which must outlive the
  /// db) — this is how a multi-attribute deployment keeps several sharded
  /// attribute indexes under ONE state commitment.
  chain::Environment* shared_env = nullptr;
  /// Prefix shard contract names are formed from ("<prefix><i>"). The
  /// default keeps the historical "shard0", "shard1", ... names; a
  /// multi-attribute deployment namespaces per attribute ("attr2.shard0").
  std::string contract_prefix = "shard";

  size_t num_shards() const { return bounds.size() + 1; }

  /// Rejects malformed configurations (unsorted bounds, a caller-supplied
  /// base.shared_env, an empty contract_prefix, nonsensical base options)
  /// with std::invalid_argument.
  void Validate() const;
};

class ShardedDb : public core::RangeStore {
 public:
  /// Contract name shard i registers under ("shard0", "shard1", ...).
  static std::string ShardContractName(size_t shard);

  explicit ShardedDb(ShardOptions options);
  ~ShardedDb() override;

  ShardedDb(const ShardedDb&) = delete;
  ShardedDb& operator=(const ShardedDb&) = delete;

  // --- Data-owner interface (routes to the owning shard) -------------------

  chain::TxReceipt Insert(const Object& object) override;
  chain::TxReceipt Update(const Object& object) override;
  chain::TxReceipt Delete(Key key) override;
  /// Splits the batch by owning shard and runs ONE transaction per shard
  /// touched (batches cannot span contracts). Returns the last receipt; a
  /// failing shard receipt returns immediately (that shard is poisoned).
  chain::TxReceipt InsertBatch(const std::vector<Object>& objects) override;

  bool Contains(Key key) const override;
  uint64_t size() const override;

  // --- Client interface -----------------------------------------------------

  /// Composite verification: checks the scatter plan against this client's
  /// partition bounds (slice count, shard ids, order, seam-abutting
  /// sub-ranges), then verifies each slice as a single response against its
  /// shard's on-chain digests. Merged objects come back in ascending key
  /// order.
  core::VerifiedResult VerifyFor(Key lb, Key ub,
                                 const core::QueryResponse& response) override;

  // --- Blockchain interface -------------------------------------------------

  chain::Environment& environment() override { return *env_; }

  /// One AuthenticatedState per shard contract, all at the same header.
  std::vector<chain::AuthenticatedState> ReadChainState() override;

  core::VerifiedResult VerifyAgainst(
      const std::vector<chain::AuthenticatedState>& states,
      const core::QueryResponse& response) const override;

  // --- Introspection --------------------------------------------------------

  const ShardOptions& options() const { return options_; }
  /// Composite images use the base options' wire version; v3 dedups pruned
  /// subtree hashes shared across the gathered slices.
  core::WireVersion wire_version() const override {
    return options_.base.wire_version;
  }
  size_t num_shards() const { return shards_.size(); }
  const std::vector<Key>& bounds() const { return options_.bounds; }
  /// Owning shard index of `key`.
  size_t ShardOf(Key key) const;
  core::AuthenticatedDb& shard(size_t i) { return *shards_[i]; }
  const core::AuthenticatedDb& shard(size_t i) const { return *shards_[i]; }

  bool poisoned() const override;
  std::string BackendName() const override;
  void CheckConsistency() const override;

 protected:
  // --- Per-attribute primitives (RangeStore seam) --------------------------

  /// Scatter-gather: every overlapping shard answers its clamped sub-range
  /// (in parallel on the installed SP pool), gathered into a composite
  /// response in ascending shard order. A sharded db partitions one indexed
  /// attribute, so only attr == 0 is valid; the public Query(lb, ub) shim is
  /// exactly QueryPredicate(0, lb, ub).
  core::QueryResponse QueryPredicate(uint32_t attr, Key lb,
                                     Key ub) const override;

  /// Chain-reading per-conjunct verification. Boundary mode (non-null
  /// `boundary`) checks the scatter plan, verifies each slice's stripped VO
  /// in boundary mode against its shard's digests, and concatenates the
  /// proven in-range entries in plan order (sub-ranges ascend, so the merge
  /// stays key-ordered).
  core::VerifiedResult VerifyPredicateFor(
      uint32_t attr, Key lb, Key ub, const core::QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) override;

  /// As VerifyPredicateFor against already-retrieved chain state (one
  /// AuthenticatedState per shard contract, any order).
  core::VerifiedResult VerifyPredicateAgainst(
      const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
      Key lb, Key ub, const core::QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) const override;

  /// Forwards the pool to every shard's SP mirrors and uses it for query
  /// scatter fan-out. nullptr reverts to DbOptions::sp_pool of the base.
  void ApplySpPool(common::ThreadPool* pool) override;

 private:
  /// One shard's clamped share of a query range.
  struct SubRange {
    size_t shard = 0;
    Key lb = 0;
    Key ub = 0;
  };

  /// The shards overlapping [lb, ub], each with its clamped sub-range;
  /// consecutive entries abut (plan[i].ub + 1 == plan[i+1].lb). Both the SP
  /// (scatter) and the client (plan check) derive this from the same bounds.
  std::vector<SubRange> ScatterPlan(Key lb, Key ub) const;

  /// Checks a composite's shape and scatter plan against this client's
  /// bounds. On acceptance fills `plan` (matching response.slices 1:1) and
  /// returns std::nullopt; otherwise returns the failed result.
  std::optional<core::VerifiedResult> CheckPlan(
      Key lb, Key ub, const core::QueryResponse& response,
      std::vector<SubRange>* plan) const;

  /// Folds one verified slice into the composite result (objects concatenate
  /// in slice order — sub-ranges ascend, so the merge stays key-ordered).
  static bool MergeSlice(core::VerifiedResult* total, size_t shard,
                         core::VerifiedResult&& slice_result);

  /// Contract name shard i registers under ("<prefix><i>").
  std::string ContractName(size_t shard) const;

  ShardOptions options_;
  std::unique_ptr<chain::Environment> owned_env_;  // null when env is shared
  chain::Environment* env_;                        // never null
  std::vector<std::unique_ptr<core::AuthenticatedDb>> shards_;
  common::ThreadPool* scatter_pool_ = nullptr;
  /// Per-shard op/slice counters ("shard.writes.<i>", "shard.slices.<i>").
  mutable telemetry::IndexedCounters write_counters_;
  mutable telemetry::IndexedCounters slice_counters_;
  /// Per-shard slice latency ("shard.slice_ns.<i>"), the hotness signal for
  /// the ROADMAP's adaptive shard management: p50/p99/p999 per shard come
  /// from its reservoir.
  mutable telemetry::IndexedHistograms slice_latency_;
};

}  // namespace gem2::shard

#endif  // GEM2_SHARD_SHARDED_DB_H_
