#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gem2::workload {
namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

constexpr char kAlphabet[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta), zetan_(Zeta(n, theta)) {
  if (n_ < 2) throw std::invalid_argument("zipfian needs at least 2 items");
  if (theta_ <= 0.0 || theta_ >= 1.0) {
    throw std::invalid_argument("zipfian constant must be in (0, 1)");
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - Zeta(2, theta_) / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(v);
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfianGenerator::Mass(uint64_t i) const {
  return 1.0 / std::pow(static_cast<double>(i + 1), theta_) / zetan_;
}

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.zipf_buckets, options.zipf_constant) {
  if (options_.domain_min >= options_.domain_max) {
    throw std::invalid_argument("empty key domain");
  }
}

const std::vector<double>& WorkloadGenerator::Cumulative() const {
  if (cumulative_.empty()) {
    cumulative_.resize(options_.zipf_buckets);
    double acc = 0;
    for (uint64_t b = 0; b < options_.zipf_buckets; ++b) {
      acc += zipf_.Mass(b);
      cumulative_[b] = acc;
    }
    // Normalize the tail to exactly 1 (guards against rounding).
    for (double& c : cumulative_) c /= acc;
  }
  return cumulative_;
}

Key WorkloadGenerator::SampleAnyKey() {
  // Width of the domain minus one; avoids overflow for wide (but not full
  // 2^64) domains, which the constructor already guarantees.
  const uint64_t span_m1 = static_cast<uint64_t>(options_.domain_max) -
                           static_cast<uint64_t>(options_.domain_min);
  if (options_.distribution == KeyDistribution::kUniform) {
    return options_.domain_min + static_cast<Key>(rng_.Uniform(0, span_m1));
  }
  const uint64_t bucket = zipf_.Next(rng_);
  const uint64_t width =
      std::max<uint64_t>(1, span_m1 / options_.zipf_buckets + 1);
  const Key base = options_.domain_min + static_cast<Key>(bucket * width);
  return base + static_cast<Key>(rng_.Uniform(0, width - 1));
}

Key WorkloadGenerator::SampleFreshKey() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Key k = SampleAnyKey();
    if (used_.insert(k).second) return k;
  }
  // Dense domain fallback: probe forward from a random key.
  Key k = SampleAnyKey();
  while (!used_.insert(k).second) {
    k = (k < options_.domain_max) ? k + 1 : options_.domain_min;
  }
  return k;
}

std::string WorkloadGenerator::RandomValue() {
  std::string v;
  v.reserve(options_.value_size);
  for (size_t i = 0; i < options_.value_size; ++i) {
    v.push_back(kAlphabet[rng_.Uniform(0, sizeof(kAlphabet) - 2)]);
  }
  return v;
}

Operation WorkloadGenerator::Next() {
  Operation op;
  if (!inserted_.empty() && rng_.Chance(options_.update_ratio)) {
    op.type = Operation::Type::kUpdate;
    op.object.key = inserted_[rng_.Uniform(0, inserted_.size() - 1)];
  } else {
    op.type = Operation::Type::kInsert;
    op.object.key = SampleFreshKey();
    inserted_.push_back(op.object.key);
  }
  op.object.value = RandomValue();
  return op;
}

std::vector<Operation> WorkloadGenerator::Batch(size_t n) {
  std::vector<Operation> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) ops.push_back(Next());
  return ops;
}

Key WorkloadGenerator::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t span_m1 = static_cast<uint64_t>(options_.domain_max) -
                           static_cast<uint64_t>(options_.domain_min);
  if (options_.distribution == KeyDistribution::kUniform) {
    return options_.domain_min + static_cast<Key>(q * static_cast<double>(span_m1));
  }
  const std::vector<double>& cum = Cumulative();
  const auto it = std::lower_bound(cum.begin(), cum.end(), q);
  const uint64_t bucket =
      it == cum.end() ? options_.zipf_buckets - 1
                      : static_cast<uint64_t>(it - cum.begin());
  const double prev = bucket == 0 ? 0.0 : cum[bucket - 1];
  const double mass = std::max(1e-12, cum[bucket] - prev);
  const double frac = std::clamp((q - prev) / mass, 0.0, 1.0);
  const uint64_t width =
      std::max<uint64_t>(1, span_m1 / options_.zipf_buckets + 1);
  return options_.domain_min +
         static_cast<Key>((static_cast<double>(bucket) + frac) *
                          static_cast<double>(width));
}

RangeQuerySpec WorkloadGenerator::NextQuery(double selectivity) {
  selectivity = std::clamp(selectivity, 0.0, 1.0);
  const double start = rng_.NextDouble() * (1.0 - selectivity);
  RangeQuerySpec spec;
  spec.lb = Quantile(start);
  spec.ub = Quantile(start + selectivity);
  if (spec.ub < spec.lb) std::swap(spec.lb, spec.ub);
  return spec;
}

std::vector<Key> WorkloadGenerator::ShardBounds(size_t num_shards) const {
  std::vector<Key> bounds;
  if (num_shards <= 1) return bounds;
  bounds.reserve(num_shards - 1);
  bool quantiles_ok = true;
  for (size_t j = 1; j < num_shards; ++j) {
    const Key k =
        Quantile(static_cast<double>(j) / static_cast<double>(num_shards));
    if (k <= (bounds.empty() ? options_.domain_min : bounds.back()) ||
        k > options_.domain_max) {
      quantiles_ok = false;
      break;
    }
    bounds.push_back(k);
  }
  if (quantiles_ok) return bounds;
  // Extreme skew can collapse adjacent quantiles onto one key; unlike
  // SplitPoints (which may return fewer points), a sharded deployment needs
  // exactly num_shards - 1 bounds, so fall back to even domain splits.
  bounds.clear();
  const uint64_t span_m1 = static_cast<uint64_t>(options_.domain_max) -
                           static_cast<uint64_t>(options_.domain_min);
  const uint64_t step = std::max<uint64_t>(1, span_m1 / num_shards);
  for (size_t j = 1; j < num_shards; ++j) {
    bounds.push_back(options_.domain_min + static_cast<Key>(step * j));
  }
  return bounds;
}

std::vector<Key> WorkloadGenerator::SplitPoints(size_t num_regions) const {
  std::vector<Key> splits;
  if (num_regions <= 1) return splits;
  splits.reserve(num_regions - 1);
  for (size_t j = 1; j < num_regions; ++j) {
    const Key k = Quantile(static_cast<double>(j) / static_cast<double>(num_regions));
    if (splits.empty() || k > splits.back()) splits.push_back(k);
  }
  return splits;
}

}  // namespace gem2::workload
