/// \file workload.h
/// YCSB-style workload generation (paper Section VII-A): synthetic update
/// streams with uniform or zipfian(0.8) search keys, configurable
/// insert/update mixes, 100-byte values, and range queries with controlled
/// selectivity. Everything is deterministic given the seed.
#ifndef GEM2_WORKLOAD_WORKLOAD_H_
#define GEM2_WORKLOAD_WORKLOAD_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace gem2::workload {

enum class KeyDistribution { kUniform, kZipfian };

struct WorkloadOptions {
  KeyDistribution distribution = KeyDistribution::kUniform;
  /// Zipfian skew (YCSB default for skewed runs; the paper uses 0.8).
  double zipf_constant = 0.8;
  /// Number of buckets the key domain is carved into for the zipfian draw.
  uint64_t zipf_buckets = 1 << 16;
  /// Key domain [domain_min, domain_max], inclusive.
  Key domain_min = 0;
  Key domain_max = 1'000'000'000;
  /// Fraction of operations that update an existing key (rest insert).
  double update_ratio = 0.0;
  /// Payload size in bytes (paper: 100-byte values).
  size_t value_size = 100;
  uint64_t seed = 42;
};

/// An operation in a data-owner stream.
struct Operation {
  enum class Type { kInsert, kUpdate };
  Type type = Type::kInsert;
  Object object;
};

/// A range query [lb, ub].
struct RangeQuerySpec {
  Key lb = 0;
  Key ub = 0;
};

/// YCSB-style zipfian rank generator over [0, n) with skew theta (Gray et
/// al.'s method, as used by YCSB's ZipfianGenerator).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;
  uint64_t n() const { return n_; }

  /// Probability mass of rank i (for quantile computations).
  double Mass(uint64_t i) const;

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options = {});

  /// Draws the next operation: an insert of a fresh key, or (with probability
  /// update_ratio, once keys exist) an update of a previously inserted key.
  Operation Next();
  std::vector<Operation> Batch(size_t n);

  /// Draws a range covering ~`selectivity` of the key-distribution's mass,
  /// uniformly positioned (paper Figs. 9-10 use 1%..10%).
  RangeQuerySpec NextQuery(double selectivity);

  /// Upper-level split points for a GEM2*-tree with `num_regions` regions:
  /// quantiles of the configured key distribution (paper Section VI-A).
  std::vector<Key> SplitPoints(size_t num_regions) const;

  /// Partition bounds for a sharded keyspace: exactly `num_shards - 1`
  /// strictly ascending keys inside the open domain, so shard i owns
  /// [bounds[i-1], bounds[i] - 1] (see shard/sharded_db.h). Prefers the
  /// distribution's quantiles (balancing load like SplitPoints); falls back
  /// to evenly spaced domain splits when quantiles collapse under skew.
  std::vector<Key> ShardBounds(size_t num_shards) const;

  const std::vector<Key>& inserted_keys() const { return inserted_; }
  const WorkloadOptions& options() const { return options_; }

  /// Switches the insert/update mix mid-stream (e.g. preload with inserts,
  /// then drive a mixed phase against the same key population).
  void set_update_ratio(double ratio) { options_.update_ratio = ratio; }

 private:
  Key SampleFreshKey();
  Key SampleAnyKey();
  /// Key at cumulative probability q of the configured distribution.
  Key Quantile(double q) const;
  std::string RandomValue();

  WorkloadOptions options_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::vector<Key> inserted_;
  std::unordered_set<Key> used_;
  /// Cumulative bucket masses (zipfian only), lazily built.
  mutable std::vector<double> cumulative_;

  const std::vector<double>& Cumulative() const;
};

}  // namespace gem2::workload

#endif  // GEM2_WORKLOAD_WORKLOAD_H_
