#include "ads/static_tree.h"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.h"
#include "crypto/digest.h"

namespace gem2::ads {
namespace {

bool Overlaps(Key a_lo, Key a_hi, Key b_lo, Key b_hi) {
  return a_lo <= b_hi && b_lo <= a_hi;
}

/// Node-count grain for parallel level construction: below this many nodes
/// per level the submit overhead outweighs the hashing.
constexpr size_t kParallelGrain = 64;

}  // namespace

void StaticTree::RecomputeLeaf(size_t index) {
  Node& node = levels_[0][index];
  node.lo = entries_[node.child_begin].key;
  node.hi = entries_[node.child_begin + node.child_count - 1].key;
  std::vector<Hash> digests;
  digests.reserve(node.child_count);
  for (size_t i = 0; i < node.child_count; ++i) {
    const Entry& e = entries_[node.child_begin + i];
    digests.push_back(crypto::EntryDigest(e.key, e.value_hash));
  }
  node.content = crypto::ContentDigest(digests);
  node.digest = crypto::WrapDigest(node.lo, node.hi, node.content);
}

void StaticTree::RecomputeInternal(size_t level, size_t index) {
  Node& node = levels_[level][index];
  const std::vector<Node>& prev = levels_[level - 1];
  node.lo = prev[node.child_begin].lo;
  node.hi = prev[node.child_begin + node.child_count - 1].hi;
  std::vector<Hash> digests;
  digests.reserve(node.child_count);
  for (size_t i = 0; i < node.child_count; ++i) {
    digests.push_back(prev[node.child_begin + i].digest);
  }
  node.content = crypto::ContentDigest(digests);
  node.digest = crypto::WrapDigest(node.lo, node.hi, node.content);
}

StaticTree::StaticTree(EntryList entries, int fanout, common::ThreadPool* pool)
    : entries_(std::move(entries)), fanout_(fanout) {
  if (fanout_ < 2) throw std::invalid_argument("fanout must be >= 2");
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i - 1].key >= entries_[i].key) {
      throw std::invalid_argument("entries must be sorted with unique keys");
    }
  }
  if (entries_.empty()) {
    root_digest_ = crypto::EmptyTreeDigest();
    return;
  }

  // The level structure (chunk boundaries) is a pure function of
  // (size, fanout), so we can lay out each level first and fill the digests
  // either serially or with a ParallelFor over node indices — the bits are
  // identical either way because every node only reads its own children.
  const size_t f = static_cast<size_t>(fanout_);
  auto layout = [f](size_t child_total) {
    std::vector<Node> nodes;
    nodes.reserve((child_total + f - 1) / f);
    for (size_t begin = 0; begin < child_total; begin += f) {
      Node node;
      node.child_begin = begin;
      node.child_count = std::min(f, child_total - begin);
      nodes.push_back(node);
    }
    return nodes;
  };
  auto fill = [this, pool](size_t level) {
    const size_t n = levels_[level].size();
    auto body = [this, level](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (level == 0) {
          RecomputeLeaf(i);
        } else {
          RecomputeInternal(level, i);
        }
      }
    };
    if (pool != nullptr && n >= 2 * kParallelGrain) {
      pool->ParallelFor(0, n, kParallelGrain, body);
    } else {
      body(0, n);
    }
  };

  levels_.push_back(layout(entries_.size()));
  fill(0);
  while (levels_.back().size() > 1) {
    levels_.push_back(layout(levels_.back().size()));
    fill(levels_.size() - 1);
  }
  root_digest_ = levels_.back()[0].digest;
}

bool StaticTree::UpdateValueHash(Key key, const Hash& value_hash) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return false;
  it->value_hash = value_hash;

  size_t index = static_cast<size_t>(it - entries_.begin()) /
                 static_cast<size_t>(fanout_);
  RecomputeLeaf(index);
  for (size_t level = 1; level < levels_.size(); ++level) {
    index /= static_cast<size_t>(fanout_);
    RecomputeInternal(level, index);
  }
  root_digest_ = levels_.back()[0].digest;
  return true;
}

Key StaticTree::lo() const {
  if (empty()) throw std::logic_error("empty tree has no boundaries");
  return levels_.back()[0].lo;
}

Key StaticTree::hi() const {
  if (empty()) throw std::logic_error("empty tree has no boundaries");
  return levels_.back()[0].hi;
}

TreeVo StaticTree::RangeQuery(Key lb, Key ub, EntryList* result) const {
  TreeVo vo;
  if (empty()) {
    vo.empty_tree = true;
    return vo;
  }
  vo.root = QueryNode(levels_.size() - 1, 0, lb, ub, result);
  return vo;
}

VoChild StaticTree::QueryNode(size_t level, size_t index, Key lb, Key ub,
                              EntryList* result) const {
  const Node& node = levels_[level][index];
  if (!Overlaps(node.lo, node.hi, lb, ub)) {
    return VoPruned{node.lo, node.hi, node.content};
  }
  auto out = std::make_unique<VoNode>();
  out->children.reserve(node.child_count);
  if (level == 0) {
    for (size_t i = 0; i < node.child_count; ++i) {
      const Entry& e = entries_[node.child_begin + i];
      const bool in_range = e.key >= lb && e.key <= ub;
      out->children.push_back(VoEntry{e.key, e.value_hash, in_range});
      if (in_range && result != nullptr) result->push_back(e);
    }
  } else {
    for (size_t i = 0; i < node.child_count; ++i) {
      out->children.push_back(
          QueryNode(level - 1, node.child_begin + i, lb, ub, result));
    }
  }
  return VoChild(std::move(out));
}

Hash CanonicalRootDigest(std::span<const Entry> sorted, int fanout, gas::Meter* meter) {
  if (fanout < 2) throw std::invalid_argument("fanout must be >= 2");
  if (sorted.empty()) return crypto::EmptyTreeDigest();

  struct Item {
    Key lo;
    Key hi;
    Hash digest;
  };

  // Entry digests.
  std::vector<Item> level;
  level.reserve(sorted.size());
  for (const Entry& e : sorted) {
    if (meter != nullptr) meter->ChargeHash(crypto::EntryDigestBytes());
    level.push_back({e.key, e.key, crypto::EntryDigest(e.key, e.value_hash)});
  }

  // Fold fanout-sized chunks until a single root remains. At least one fold
  // always happens: entry digests must be wrapped into a leaf node digest.
  bool folded = false;
  while (!folded || level.size() > 1) {
    folded = true;
    std::vector<Item> next;
    next.reserve((level.size() + fanout - 1) / fanout);
    for (size_t begin = 0; begin < level.size(); begin += fanout) {
      size_t count = std::min<size_t>(fanout, level.size() - begin);
      std::vector<Hash> digests;
      digests.reserve(count);
      for (size_t i = 0; i < count; ++i) digests.push_back(level[begin + i].digest);
      if (meter != nullptr) {
        meter->ChargeHash(crypto::ContentDigestBytes(count));
        meter->ChargeHash(crypto::WrapDigestBytes());
      }
      Hash content = crypto::ContentDigest(digests);
      Key lo = level[begin].lo;
      Key hi = level[begin + count - 1].hi;
      next.push_back({lo, hi, crypto::WrapDigest(lo, hi, content)});
    }
    level = std::move(next);
  }
  return level[0].digest;
}

}  // namespace gem2::ads
