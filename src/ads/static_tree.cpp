#include "ads/static_tree.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "crypto/digest.h"
#include "crypto/keccak_batch.h"

namespace gem2::ads {
namespace {

bool Overlaps(Key a_lo, Key a_hi, Key b_lo, Key b_hi) {
  return a_lo <= b_hi && b_lo <= a_hi;
}

/// Node-count grain for parallel level construction: below this many nodes
/// per level the submit overhead outweighs the hashing.
constexpr size_t kParallelGrain = 64;

}  // namespace

void StaticTree::RecomputeLeaf(size_t index) {
  Node& node = levels_[0][index];
  node.lo = entries_[node.child_begin].key;
  node.hi = entries_[node.child_begin + node.child_count - 1].key;
  std::vector<Hash> digests;
  digests.reserve(node.child_count);
  for (size_t i = 0; i < node.child_count; ++i) {
    const Entry& e = entries_[node.child_begin + i];
    digests.push_back(crypto::EntryDigest(e.key, e.value_hash));
  }
  node.content = crypto::ContentDigest(digests);
  node.digest = crypto::WrapDigest(node.lo, node.hi, node.content);
}

void StaticTree::RecomputeInternal(size_t level, size_t index) {
  Node& node = levels_[level][index];
  const std::vector<Node>& prev = levels_[level - 1];
  node.lo = prev[node.child_begin].lo;
  node.hi = prev[node.child_begin + node.child_count - 1].hi;
  std::vector<Hash> digests;
  digests.reserve(node.child_count);
  for (size_t i = 0; i < node.child_count; ++i) {
    digests.push_back(prev[node.child_begin + i].digest);
  }
  node.content = crypto::ContentDigest(digests);
  node.digest = crypto::WrapDigest(node.lo, node.hi, node.content);
}

StaticTree::StaticTree(EntryList entries, int fanout, common::ThreadPool* pool)
    : entries_(std::move(entries)), fanout_(fanout) {
  if (fanout_ < 2) throw std::invalid_argument("fanout must be >= 2");
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i - 1].key >= entries_[i].key) {
      throw std::invalid_argument("entries must be sorted with unique keys");
    }
  }
  if (entries_.empty()) {
    root_digest_ = crypto::EmptyTreeDigest();
    return;
  }

  // The level structure (chunk boundaries) is a pure function of
  // (size, fanout), so we can lay out each level first and fill the digests
  // either serially or with a ParallelFor over node indices — the bits are
  // identical either way because every node only reads its own children.
  const size_t f = static_cast<size_t>(fanout_);
  auto layout = [f](size_t child_total) {
    std::vector<Node> nodes;
    nodes.reserve((child_total + f - 1) / f);
    for (size_t begin = 0; begin < child_total; begin += f) {
      Node node;
      node.child_begin = begin;
      node.child_count = std::min(f, child_total - begin);
      nodes.push_back(node);
    }
    return nodes;
  };
  auto fill = [this, pool](size_t level) {
    const size_t n = levels_[level].size();
    auto body = [this, level](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (level == 0) {
          RecomputeLeaf(i);
        } else {
          RecomputeInternal(level, i);
        }
      }
    };
    if (pool != nullptr && n >= 2 * kParallelGrain) {
      pool->ParallelFor(0, n, kParallelGrain, body);
    } else {
      body(0, n);
    }
  };

  levels_.push_back(layout(entries_.size()));
  fill(0);
  while (levels_.back().size() > 1) {
    levels_.push_back(layout(levels_.back().size()));
    fill(levels_.size() - 1);
  }
  root_digest_ = levels_.back()[0].digest;
}

bool StaticTree::UpdateValueHash(Key key, const Hash& value_hash) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return false;
  it->value_hash = value_hash;

  size_t index = static_cast<size_t>(it - entries_.begin()) /
                 static_cast<size_t>(fanout_);
  RecomputeLeaf(index);
  for (size_t level = 1; level < levels_.size(); ++level) {
    index /= static_cast<size_t>(fanout_);
    RecomputeInternal(level, index);
  }
  root_digest_ = levels_.back()[0].digest;
  return true;
}

Key StaticTree::lo() const {
  if (empty()) throw std::logic_error("empty tree has no boundaries");
  return levels_.back()[0].lo;
}

Key StaticTree::hi() const {
  if (empty()) throw std::logic_error("empty tree has no boundaries");
  return levels_.back()[0].hi;
}

TreeVo StaticTree::RangeQuery(Key lb, Key ub, EntryList* result) const {
  TreeVo vo;
  if (empty()) {
    vo.empty_tree = true;
    return vo;
  }
  vo.root = QueryNode(levels_.size() - 1, 0, lb, ub, result);
  return vo;
}

VoChild StaticTree::QueryNode(size_t level, size_t index, Key lb, Key ub,
                              EntryList* result) const {
  const Node& node = levels_[level][index];
  if (!Overlaps(node.lo, node.hi, lb, ub)) {
    return VoPruned{node.lo, node.hi, node.content};
  }
  auto out = std::make_unique<VoNode>();
  out->children.reserve(node.child_count);
  if (level == 0) {
    for (size_t i = 0; i < node.child_count; ++i) {
      const Entry& e = entries_[node.child_begin + i];
      const bool in_range = e.key >= lb && e.key <= ub;
      out->children.push_back(VoEntry{e.key, e.value_hash, in_range});
      if (in_range && result != nullptr) result->push_back(e);
    }
  } else {
    for (size_t i = 0; i < node.child_count; ++i) {
      out->children.push_back(
          QueryNode(level - 1, node.child_begin + i, lb, ub, result));
    }
  }
  return VoChild(std::move(out));
}

LeafDigestCache::Slot& LeafDigestCache::FindSlot(Key key) {
  // Fibonacci hash spreads consecutive keys; table size is a power of two.
  const size_t mask = slots_.size() - 1;
  size_t i = (static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull >> 17) & mask;
  while (slots_[i].occupied && slots_[i].key != key) i = (i + 1) & mask;
  return slots_[i];
}

void LeafDigestCache::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  for (Slot& s : old) {
    if (s.occupied) FindSlot(s.key) = s;
  }
}

void LeafDigestCache::Reserve(size_t additional) {
  while ((used_ + additional) * 4 >= slots_.size() * 3) Grow();
}

void LeafDigestCache::GetBatch(std::span<const Entry> entries, Hash* out) {
  Reserve(entries.size());
  crypto::Keccak256Batcher batcher;
  // Misses hash straight into their (rehash-stable) slots; the copies to
  // `out` wait until the flush has made every queued digest valid.
  std::vector<std::pair<const Hash*, Hash*>> pending;
  uint8_t msg[40];
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    Slot& slot = FindSlot(e.key);
    if (slot.occupied && slot.value_hash == e.value_hash) {
      ++hits_;
      out[i] = slot.digest;
      continue;
    }
    if (!slot.occupied) {
      slot.occupied = true;
      slot.key = e.key;
      ++used_;
    }
    slot.value_hash = e.value_hash;
    ++misses_;
    crypto::EncodeEntryPreimage(e.key, e.value_hash, msg);
    batcher.Add(msg, sizeof(msg), &slot.digest);
    pending.push_back({&slot.digest, &out[i]});
  }
  batcher.Flush();
  for (auto& [src, dst] : pending) *dst = *src;
}

const Hash& LeafDigestCache::Get(Key key, const Hash& value_hash) {
  if (used_ * 4 >= slots_.size() * 3) Grow();
  Slot& slot = FindSlot(key);
  if (!slot.occupied || slot.value_hash != value_hash) {
    if (!slot.occupied) {
      slot.occupied = true;
      slot.key = key;
      ++used_;
    }
    slot.value_hash = value_hash;
    slot.digest = crypto::EntryDigest(key, value_hash);
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.digest;
}

Hash CanonicalRootDigest(std::span<const Entry> sorted, int fanout, gas::Meter* meter,
                         LeafDigestCache* cache) {
  if (fanout < 2) throw std::invalid_argument("fanout must be >= 2");
  if (sorted.empty()) return crypto::EmptyTreeDigest();

  const size_t f = static_cast<size_t>(fanout);
  const size_t n = sorted.size();
  crypto::Keccak256Batcher batcher;

  // Entry digests. Charges are issued first, in the same per-entry order the
  // scalar loop used: Chash depends only on message sizes, never on digest
  // values, so hoisting the hashes after the charges leaves the meter's
  // charge sequence — and thus every out-of-gas abort point — bit-identical.
  // The gas charge is unconditional; the cache only decides whether the
  // Keccak actually runs.
  if (meter != nullptr) {
    for (size_t i = 0; i < n; ++i) meter->ChargeHash(crypto::EntryDigestBytes());
  }
  std::vector<Key> lo(n);
  std::vector<Key> hi(n);
  std::vector<Hash> digests(n);
  for (size_t i = 0; i < n; ++i) {
    lo[i] = sorted[i].key;
    hi[i] = sorted[i].key;
  }
  if (cache != nullptr) {
    cache->GetBatch(sorted, digests.data());
  } else {
    uint8_t msg[40];
    for (size_t i = 0; i < n; ++i) {
      crypto::EncodeEntryPreimage(sorted[i].key, sorted[i].value_hash, msg);
      batcher.Add(msg, sizeof(msg), &digests[i]);
    }
    batcher.Flush();
  }

  // Fold fanout-sized chunks until a single root remains. At least one fold
  // always happens: entry digests must be wrapped into a leaf node digest.
  // Per level: charge every chunk in the original content/wrap interleaved
  // order, then batch all content digests, then all wrap digests. Hashes
  // within a level are independent, so the two flushed passes produce the
  // exact bits of the chunk-at-a-time loop.
  bool folded = false;
  while (!folded || digests.size() > 1) {
    folded = true;
    const size_t level_n = digests.size();
    const size_t chunks = (level_n + f - 1) / f;
    if (meter != nullptr) {
      for (size_t begin = 0; begin < level_n; begin += f) {
        meter->ChargeHash(crypto::ContentDigestBytes(std::min(f, level_n - begin)));
        meter->ChargeHash(crypto::WrapDigestBytes());
      }
    }
    std::vector<Hash> contents(chunks);
    for (size_t c = 0, begin = 0; begin < level_n; ++c, begin += f) {
      const size_t count = std::min(f, level_n - begin);
      // The level's digests are contiguous, so the chunk is its own preimage.
      batcher.Add(digests[begin].data(), 32 * count, &contents[c]);
    }
    batcher.Flush();
    std::vector<Key> next_lo(chunks);
    std::vector<Key> next_hi(chunks);
    std::vector<Hash> next(chunks);
    uint8_t msg[48];
    for (size_t c = 0, begin = 0; begin < level_n; ++c, begin += f) {
      const size_t count = std::min(f, level_n - begin);
      next_lo[c] = lo[begin];
      next_hi[c] = hi[begin + count - 1];
      crypto::EncodeWrapPreimage(next_lo[c], next_hi[c], contents[c], msg);
      batcher.Add(msg, sizeof(msg), &next[c]);
    }
    batcher.Flush();
    lo = std::move(next_lo);
    hi = std::move(next_hi);
    digests = std::move(next);
  }
  return digests[0];
}

}  // namespace gem2::ads
