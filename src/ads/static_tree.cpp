#include "ads/static_tree.h"

#include <stdexcept>

#include "crypto/digest.h"

namespace gem2::ads {
namespace {

bool Overlaps(Key a_lo, Key a_hi, Key b_lo, Key b_hi) {
  return a_lo <= b_hi && b_lo <= a_hi;
}

}  // namespace

StaticTree::StaticTree(EntryList entries, int fanout)
    : entries_(std::move(entries)), fanout_(fanout) {
  if (fanout_ < 2) throw std::invalid_argument("fanout must be >= 2");
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i - 1].key >= entries_[i].key) {
      throw std::invalid_argument("entries must be sorted with unique keys");
    }
  }
  if (entries_.empty()) {
    root_digest_ = crypto::EmptyTreeDigest();
    return;
  }

  // Leaf level: chunks of `fanout_` entries.
  std::vector<Node> leaves;
  for (size_t begin = 0; begin < entries_.size(); begin += fanout_) {
    size_t count = std::min<size_t>(fanout_, entries_.size() - begin);
    Node node;
    node.child_begin = begin;
    node.child_count = count;
    node.lo = entries_[begin].key;
    node.hi = entries_[begin + count - 1].key;
    std::vector<Hash> digests;
    digests.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      digests.push_back(
          crypto::EntryDigest(entries_[begin + i].key, entries_[begin + i].value_hash));
    }
    node.content = crypto::ContentDigest(digests);
    node.digest = crypto::WrapDigest(node.lo, node.hi, node.content);
    leaves.push_back(node);
  }
  levels_.push_back(std::move(leaves));

  // Internal levels: chunks of `fanout_` nodes.
  while (levels_.back().size() > 1) {
    const std::vector<Node>& prev = levels_.back();
    std::vector<Node> next;
    for (size_t begin = 0; begin < prev.size(); begin += fanout_) {
      size_t count = std::min<size_t>(fanout_, prev.size() - begin);
      Node node;
      node.child_begin = begin;
      node.child_count = count;
      node.lo = prev[begin].lo;
      node.hi = prev[begin + count - 1].hi;
      std::vector<Hash> digests;
      digests.reserve(count);
      for (size_t i = 0; i < count; ++i) digests.push_back(prev[begin + i].digest);
      node.content = crypto::ContentDigest(digests);
      node.digest = crypto::WrapDigest(node.lo, node.hi, node.content);
      next.push_back(node);
    }
    levels_.push_back(std::move(next));
  }
  root_digest_ = levels_.back()[0].digest;
}

Key StaticTree::lo() const {
  if (empty()) throw std::logic_error("empty tree has no boundaries");
  return levels_.back()[0].lo;
}

Key StaticTree::hi() const {
  if (empty()) throw std::logic_error("empty tree has no boundaries");
  return levels_.back()[0].hi;
}

TreeVo StaticTree::RangeQuery(Key lb, Key ub, EntryList* result) const {
  TreeVo vo;
  if (empty()) {
    vo.empty_tree = true;
    return vo;
  }
  vo.root = QueryNode(levels_.size() - 1, 0, lb, ub, result);
  return vo;
}

VoChild StaticTree::QueryNode(size_t level, size_t index, Key lb, Key ub,
                              EntryList* result) const {
  const Node& node = levels_[level][index];
  if (!Overlaps(node.lo, node.hi, lb, ub)) {
    return VoPruned{node.lo, node.hi, node.content};
  }
  auto out = std::make_unique<VoNode>();
  out->children.reserve(node.child_count);
  if (level == 0) {
    for (size_t i = 0; i < node.child_count; ++i) {
      const Entry& e = entries_[node.child_begin + i];
      const bool in_range = e.key >= lb && e.key <= ub;
      out->children.push_back(VoEntry{e.key, e.value_hash, in_range});
      if (in_range && result != nullptr) result->push_back(e);
    }
  } else {
    for (size_t i = 0; i < node.child_count; ++i) {
      out->children.push_back(
          QueryNode(level - 1, node.child_begin + i, lb, ub, result));
    }
  }
  return VoChild(std::move(out));
}

Hash CanonicalRootDigest(std::span<const Entry> sorted, int fanout, gas::Meter* meter) {
  if (fanout < 2) throw std::invalid_argument("fanout must be >= 2");
  if (sorted.empty()) return crypto::EmptyTreeDigest();

  struct Item {
    Key lo;
    Key hi;
    Hash digest;
  };

  // Entry digests.
  std::vector<Item> level;
  level.reserve(sorted.size());
  for (const Entry& e : sorted) {
    if (meter != nullptr) meter->ChargeHash(crypto::EntryDigestBytes());
    level.push_back({e.key, e.key, crypto::EntryDigest(e.key, e.value_hash)});
  }

  // Fold fanout-sized chunks until a single root remains. At least one fold
  // always happens: entry digests must be wrapped into a leaf node digest.
  bool folded = false;
  while (!folded || level.size() > 1) {
    folded = true;
    std::vector<Item> next;
    next.reserve((level.size() + fanout - 1) / fanout);
    for (size_t begin = 0; begin < level.size(); begin += fanout) {
      size_t count = std::min<size_t>(fanout, level.size() - begin);
      std::vector<Hash> digests;
      digests.reserve(count);
      for (size_t i = 0; i < count; ++i) digests.push_back(level[begin + i].digest);
      if (meter != nullptr) {
        meter->ChargeHash(crypto::ContentDigestBytes(count));
        meter->ChargeHash(crypto::WrapDigestBytes());
      }
      Hash content = crypto::ContentDigest(digests);
      Key lo = level[begin].lo;
      Key hi = level[begin + count - 1].hi;
      next.push_back({lo, hi, crypto::WrapDigest(lo, hi, content)});
    }
    level = std::move(next);
  }
  return level[0].digest;
}

}  // namespace gem2::ads
