/// \file query.h
/// The unit of an authenticated-query exchange: one tree's contribution to a
/// range query. A full SP response is a list of TreeAnswers whose labels
/// match the authenticated digest labels in VO_chain (paper Algorithms 5-8).
#ifndef GEM2_ADS_QUERY_H_
#define GEM2_ADS_QUERY_H_

#include <string>
#include <vector>

#include "ads/entry.h"
#include "ads/vo.h"

namespace gem2::ads {

struct TreeAnswer {
  /// Matches a chain::DigestEntry label from VO_chain.
  std::string label;
  /// Entries of this tree falling in the query range.
  EntryList result;
  /// Proof for this tree.
  TreeVo vo;
};

}  // namespace gem2::ads

#endif  // GEM2_ADS_QUERY_H_
