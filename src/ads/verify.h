/// \file verify.h
/// Client-side verification of a single tree's VO against its trusted root
/// digest (one invocation of "MBTreeVerify" in the paper's Algorithms 6/8).
///
/// Soundness: the root digest is reconstructed bottom-up from the returned
/// objects (re-hashed locally), the boundary entries, and the pruned-subtree
/// preimages; it must equal the digest retrieved from the blockchain.
///
/// Completeness: the VO's in-order traversal must be strictly increasing, a
/// pruned subtree's [lo, hi] must not intersect the query range, and every
/// exposed entry inside the range must be a returned result. Together these
/// guarantee no in-range key of the tree can be withheld.
#ifndef GEM2_ADS_VERIFY_H_
#define GEM2_ADS_VERIFY_H_

#include <string>
#include <vector>

#include "ads/vo.h"
#include "common/types.h"

namespace gem2::ads {

struct VerifyOutcome {
  bool ok = true;
  std::string error;

  static VerifyOutcome Ok() { return {}; }
  static VerifyOutcome Fail(std::string msg) { return {false, std::move(msg)}; }
  explicit operator bool() const { return ok; }
};

/// How VerifyTreeVo recomputes the VO's digests.
///
/// kSerial walks the VO once, hashing each element in-order. kBatched runs
/// the completeness/ordering pass first (in the identical traversal order,
/// producing the identical first error), then recomputes the digests in
/// level-order batches through crypto::Keccak256Batcher — 8 independent
/// hashes per AVX-512 pass. The two strategies agree bit-for-bit on every
/// accept/reject decision and error string: structural failures are found
/// before any hashing in both, and a hash mismatch is only observable at the
/// final root comparison.
enum class HashStrategy {
  kSerial,
  kBatched,
};

/// Verifies one tree's VO.
///   [lb, ub]       — the query range (inclusive).
///   vo             — the SP-produced VO for this tree.
///   trusted_root   — this tree's digest obtained from VO_chain.
///   result         — the objects the SP claims this tree contributes.
VerifyOutcome VerifyTreeVo(Key lb, Key ub, const TreeVo& vo, const Hash& trusted_root,
                           const std::vector<Object>& result,
                           HashStrategy strategy = HashStrategy::kSerial);

/// Boundary-mode verification, for server-computed aggregates: the response
/// ships no result objects, so every in-range entry must appear as a
/// boundary entry carrying its explicit value hash (core::StripForAggregate
/// produces exactly this shape). Runs the same traversal — same ordering,
/// interval, and root-digest checks, so soundness and completeness carry
/// over verbatim — but instead of demanding in-range entries be returned
/// results, it appends them (ascending, the traversal order) to `*in_range`.
/// A VO still marking result entries is rejected.
VerifyOutcome VerifyTreeVoBoundary(Key lb, Key ub, const TreeVo& vo,
                                   const Hash& trusted_root,
                                   std::vector<VoEntry>* in_range,
                                   HashStrategy strategy = HashStrategy::kSerial);

}  // namespace gem2::ads

#endif  // GEM2_ADS_VERIFY_H_
