/// \file entry.h
/// The unit indexed by every authenticated tree: a search key plus the hash
/// of the object's payload (only the hash lives on-chain).
#ifndef GEM2_ADS_ENTRY_H_
#define GEM2_ADS_ENTRY_H_

#include <vector>

#include "common/types.h"

namespace gem2::ads {

struct Entry {
  Key key = 0;
  Hash value_hash{};

  friend bool operator==(const Entry& a, const Entry& b) = default;
};

inline bool EntryKeyLess(const Entry& a, const Entry& b) { return a.key < b.key; }

using EntryList = std::vector<Entry>;

}  // namespace gem2::ads

#endif  // GEM2_ADS_ENTRY_H_
