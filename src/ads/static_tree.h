/// \file static_tree.h
/// The canonical F-ary Merkle tree over a *sorted* run of entries.
///
/// Both sides of the system build this exact shape over an SMB-tree's data:
/// the smart contract computes only the root digest on the fly (suppressed
/// structure, Section IV-B), while the service provider materializes the tree
/// to answer range queries with VOs (Fig. 4, right side). The shape is fully
/// determined by (sorted entries, fanout): leaves are consecutive chunks of
/// `fanout` entries, upper levels chunk `fanout` nodes, so the two sides agree
/// on every digest bit-for-bit.
#ifndef GEM2_ADS_STATIC_TREE_H_
#define GEM2_ADS_STATIC_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ads/entry.h"
#include "ads/vo.h"
#include "common/types.h"
#include "gas/meter.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::ads {

class StaticTree {
 public:
  /// `entries` must be sorted by key with unique keys; `fanout` >= 2.
  /// When `pool` is non-null each level's node digests are computed in
  /// parallel (chunks are independent); the resulting tree is bit-identical
  /// to the serial build because the level structure is deterministic.
  /// Only unmetered (SP-side) callers may pass a pool.
  StaticTree(EntryList entries, int fanout, common::ThreadPool* pool = nullptr);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  int fanout() const { return fanout_; }

  /// Root digest; EmptyTreeDigest() when empty.
  const Hash& root_digest() const { return root_digest_; }

  /// Key boundaries of the whole tree (valid only when non-empty).
  Key lo() const;
  Key hi() const;

  /// Range query: appends matches to `result` and returns the VO.
  TreeVo RangeQuery(Key lb, Key ub, EntryList* result) const;

  /// Replaces the value hash of an existing key and rehashes only the
  /// leaf-to-root path (O(fanout * log_F n) hash calls instead of the O(n)
  /// full rebuild). Returns false (tree unchanged) when `key` is absent.
  /// The updated tree is bit-identical to a fresh build over the modified
  /// entry list — parallel_equivalence_test asserts this invariant.
  bool UpdateValueHash(Key key, const Hash& value_hash);

  const EntryList& entries() const { return entries_; }

 private:
  struct Node {
    Key lo = 0;
    Key hi = 0;
    Hash content{};
    Hash digest{};
    size_t child_begin = 0;   // index into entries_ (level 0) or previous level
    size_t child_count = 0;
  };

  VoChild QueryNode(size_t level, size_t index, Key lb, Key ub,
                    EntryList* result) const;
  /// Recomputes lo/hi/content/digest of one leaf node from entries_.
  void RecomputeLeaf(size_t index);
  /// Same for an internal node at `level` >= 1 from the level below.
  void RecomputeInternal(size_t level, size_t index);

  EntryList entries_;
  int fanout_;
  // levels_[0] = leaf nodes over entries_, levels_.back() = { root }.
  std::vector<std::vector<Node>> levels_;
  Hash root_digest_;
};

/// Memo for EntryDigest(key, value_hash) computations across repeated
/// CanonicalRootDigest calls. In the GEM2 merge cascades the same entries are
/// re-hashed every time their partition is rebuilt; since EntryDigest is a
/// pure function of (key, value_hash), the simulator can reuse the digest —
/// the *gas charge* for the hash is still applied in full by the caller, so
/// metered results stay bit-identical with or without a cache.
///
/// Open-addressing with linear probing: Get sits on the hot fold path (one
/// lookup per entry per rebuild) and a node-based map's pointer chase was
/// measurably slower than the probe over this flat array.
class LeafDigestCache {
 public:
  LeafDigestCache() : slots_(kInitialCapacity) {}

  /// Digest for (key, value_hash); recomputed (and memoized) on a miss or
  /// when the key's cached value hash differs.
  const Hash& Get(Key key, const Hash& value_hash);

  /// Batched Get over a sorted duplicate-free run: out[i] receives the entry
  /// digest of entries[i]. Misses are hashed 8 at a time (keccak_batch.h);
  /// hit/miss memoization is identical to per-entry Get. Gas, as with Get, is
  /// the caller's concern.
  void GetBatch(std::span<const Entry> entries, Hash* out);

  size_t size() const { return used_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  static constexpr size_t kInitialCapacity = 1024;  // power of two

  struct Slot {
    Key key = 0;
    bool occupied = false;
    Hash value_hash{};
    Hash digest{};
  };

  Slot& FindSlot(Key key);
  void Grow();
  /// Grows until `additional` more distinct keys fit without a rehash —
  /// GetBatch queues digest writes into slots, so slots must not move while
  /// a batch is pending.
  void Reserve(size_t additional);

  std::vector<Slot> slots_;
  size_t used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Computes the StaticTree root digest of a sorted run without materializing
/// the tree — this is what the smart contract executes when it rebuilds a
/// suppressed SMB-tree. When `meter` is non-null, every hash invocation is
/// charged (Chash = 30 + 6*words) exactly as the metered computation performs
/// it. Sorting and storage loads are charged by the caller. A non-null
/// `cache` memoizes per-entry digests across calls (gas is unaffected; the
/// charge is applied whether or not the Keccak actually runs).
Hash CanonicalRootDigest(std::span<const Entry> sorted, int fanout,
                         gas::Meter* meter = nullptr,
                         LeafDigestCache* cache = nullptr);

}  // namespace gem2::ads

#endif  // GEM2_ADS_STATIC_TREE_H_
