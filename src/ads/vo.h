/// \file vo.h
/// Verification objects (VO_sp) as partial Merkle trees.
///
/// A range query against one authenticated tree yields a `TreeVo`: the tree
/// with every subtree irrelevant to the query *pruned* down to its boundary
/// interval plus content hash, every visited leaf *expanded* into its entries,
/// and result entries flagged so the client reconstructs their hashes from the
/// returned objects. Reconstructing the root digest from a TreeVo and
/// comparing against the on-chain digest establishes soundness; the interval /
/// ordering checks establish completeness (see ads/verify.h).
#ifndef GEM2_ADS_VO_H_
#define GEM2_ADS_VO_H_

#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace gem2::ads {

/// An object exposed in the VO. For `is_result` entries the value hash is
/// implied by the returned object (the client recomputes it), so only the key
/// is shipped; boundary/non-result entries carry the hash explicitly.
struct VoEntry {
  Key key = 0;
  Hash value_hash{};
  bool is_result = false;
};

/// A subtree the SP pruned: its key range and the *preimage* of its node
/// digest (content hash), so the client can recompute
/// digest = H(lo || hi || content_hash) and thereby trust the claimed range.
struct VoPruned {
  Key lo = 0;
  Key hi = 0;
  Hash content_hash{};
};

struct VoNode;
using VoNodePtr = std::unique_ptr<VoNode>;
using VoChild = std::variant<VoEntry, VoPruned, VoNodePtr>;

/// An expanded node: all of its children, in key order, each either an entry
/// (leaf level), a pruned subtree, or a further expanded node.
struct VoNode {
  std::vector<VoChild> children;
};

/// The VO for one whole tree.
struct TreeVo {
  /// True when the tree indexes no entries (digest must be EmptyTreeDigest).
  bool empty_tree = false;
  /// Present unless empty_tree; a VoPruned when the whole tree was pruned.
  std::optional<VoChild> root;
};

/// Deep copies (VoNodePtr makes VOs move-only by default).
VoChild CloneChild(const VoChild& child);
TreeVo CloneVo(const TreeVo& vo);

/// Serialized size in bytes (what would go over the wire): result entries
/// ship 8-byte keys; boundary entries 8 + 32; pruned subtrees 8 + 8 + 32;
/// one tag byte per element plus a 2-byte child count per expanded node.
uint64_t VoSizeBytes(const TreeVo& vo);

/// Deepest node nesting ParseTreeVo accepts. Real trees are shallow (depth
/// log_F(n)), but the codec parses adversarial bytes: without a cap, a wire
/// image of nested node tags drives the recursive parser arbitrarily deep
/// and can exhaust the stack before verification ever runs.
inline constexpr uint32_t kMaxVoDepth = 512;

/// Compact binary serialization (round-trips through ParseTreeVo).
Bytes SerializeTreeVo(const TreeVo& vo);
/// Parses a serialized VO; returns std::nullopt on malformed input (including
/// nesting deeper than kMaxVoDepth).
std::optional<TreeVo> ParseTreeVo(const Bytes& data);

}  // namespace gem2::ads

#endif  // GEM2_ADS_VO_H_
