#include "ads/vo.h"

#include <cstring>

namespace gem2::ads {
namespace {

constexpr uint8_t kTagEntryResult = 1;
constexpr uint8_t kTagEntryBoundary = 2;
constexpr uint8_t kTagPruned = 3;
constexpr uint8_t kTagNode = 4;

void SerializeChild(const VoChild& child, Bytes* out);

void SerializeNode(const VoNode& node, Bytes* out) {
  out->push_back(kTagNode);
  const uint16_t n = static_cast<uint16_t>(node.children.size());
  out->push_back(static_cast<uint8_t>(n >> 8));
  out->push_back(static_cast<uint8_t>(n & 0xff));
  for (const VoChild& c : node.children) SerializeChild(c, out);
}

void SerializeChild(const VoChild& child, Bytes* out) {
  if (const auto* e = std::get_if<VoEntry>(&child)) {
    if (e->is_result) {
      out->push_back(kTagEntryResult);
      AppendKey(out, e->key);
    } else {
      out->push_back(kTagEntryBoundary);
      AppendKey(out, e->key);
      AppendHash(out, e->value_hash);
    }
  } else if (const auto* p = std::get_if<VoPruned>(&child)) {
    out->push_back(kTagPruned);
    AppendKey(out, p->lo);
    AppendKey(out, p->hi);
    AppendHash(out, p->content_hash);
  } else {
    SerializeNode(*std::get<VoNodePtr>(child), out);
  }
}

struct Parser {
  const Bytes& data;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    if (pos + n > data.size()) {
      failed = true;
      return false;
    }
    return true;
  }

  uint8_t Byte() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  Key ReadKey() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return static_cast<Key>(v);
  }

  Hash ReadHash() {
    Hash h{};
    if (!Need(32)) return h;
    std::memcpy(h.data(), data.data() + pos, 32);
    pos += 32;
    return h;
  }

  std::optional<VoChild> ParseChild(uint32_t depth) {
    if (depth > kMaxVoDepth) {
      failed = true;
      return std::nullopt;
    }
    uint8_t tag = Byte();
    if (failed) return std::nullopt;
    switch (tag) {
      case kTagEntryResult: {
        VoEntry e;
        e.key = ReadKey();
        e.is_result = true;
        if (failed) return std::nullopt;
        return VoChild(e);
      }
      case kTagEntryBoundary: {
        VoEntry e;
        e.key = ReadKey();
        e.value_hash = ReadHash();
        e.is_result = false;
        if (failed) return std::nullopt;
        return VoChild(e);
      }
      case kTagPruned: {
        VoPruned p;
        p.lo = ReadKey();
        p.hi = ReadKey();
        p.content_hash = ReadHash();
        if (failed) return std::nullopt;
        return VoChild(p);
      }
      case kTagNode: {
        if (!Need(2)) return std::nullopt;
        uint16_t n = static_cast<uint16_t>((data[pos] << 8) | data[pos + 1]);
        pos += 2;
        auto node = std::make_unique<VoNode>();
        node->children.reserve(n);
        for (uint16_t i = 0; i < n; ++i) {
          auto c = ParseChild(depth + 1);
          if (!c) return std::nullopt;
          node->children.push_back(std::move(*c));
        }
        return VoChild(std::move(node));
      }
      default:
        failed = true;
        return std::nullopt;
    }
  }
};

uint64_t ChildSize(const VoChild& child) {
  if (const auto* e = std::get_if<VoEntry>(&child)) {
    return e->is_result ? (1 + 8) : (1 + 8 + 32);
  }
  if (std::holds_alternative<VoPruned>(child)) return 1 + 8 + 8 + 32;
  const VoNode& node = *std::get<VoNodePtr>(child);
  uint64_t size = 1 + 2;
  for (const VoChild& c : node.children) size += ChildSize(c);
  return size;
}

}  // namespace

VoChild CloneChild(const VoChild& child) {
  if (const auto* e = std::get_if<VoEntry>(&child)) return VoChild(*e);
  if (const auto* p = std::get_if<VoPruned>(&child)) return VoChild(*p);
  const VoNode& node = *std::get<VoNodePtr>(child);
  auto copy = std::make_unique<VoNode>();
  copy->children.reserve(node.children.size());
  for (const VoChild& c : node.children) copy->children.push_back(CloneChild(c));
  return VoChild(std::move(copy));
}

TreeVo CloneVo(const TreeVo& vo) {
  TreeVo copy;
  copy.empty_tree = vo.empty_tree;
  if (vo.root) copy.root = CloneChild(*vo.root);
  return copy;
}

uint64_t VoSizeBytes(const TreeVo& vo) {
  if (vo.empty_tree || !vo.root) return 1;
  return 1 + ChildSize(*vo.root);
}

Bytes SerializeTreeVo(const TreeVo& vo) {
  Bytes out;
  if (vo.empty_tree || !vo.root) {
    out.push_back(0);
    return out;
  }
  out.push_back(1);
  SerializeChild(*vo.root, &out);
  return out;
}

std::optional<TreeVo> ParseTreeVo(const Bytes& data) {
  if (data.empty()) return std::nullopt;
  TreeVo vo;
  if (data[0] == 0) {
    vo.empty_tree = true;
    if (data.size() != 1) return std::nullopt;
    return vo;
  }
  if (data[0] != 1) return std::nullopt;
  Parser parser{data, 1};
  auto child = parser.ParseChild(0);
  if (!child || parser.failed || parser.pos != data.size()) return std::nullopt;
  vo.root = std::move(*child);
  return vo;
}

}  // namespace gem2::ads
