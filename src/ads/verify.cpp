#include "ads/verify.h"

#include <map>

#include "crypto/digest.h"

namespace gem2::ads {
namespace {

/// Verification context threaded through the recursive digest reconstruction.
struct Context {
  Key lb;
  Key ub;
  const std::map<Key, const Object*>& result_by_key;
  size_t consumed = 0;
  bool have_prev = false;
  Key prev_hi = 0;
  std::string error;

  bool Fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  bool InRange(Key k) const { return k >= lb && k <= ub; }

  /// Global in-order check: each element's range must start strictly after
  /// everything seen so far.
  bool Advance(Key lo, Key hi) {
    if (lo > hi) return Fail("element with inverted boundaries");
    if (have_prev && lo <= prev_hi) return Fail("VO elements out of order");
    have_prev = true;
    prev_hi = hi;
    return true;
  }
};

struct SubtreeDigest {
  Hash digest{};
  Key lo = 0;
  Key hi = 0;
};

bool ReconstructChild(const VoChild& child, Context* ctx, SubtreeDigest* out) {
  if (const auto* entry = std::get_if<VoEntry>(&child)) {
    if (!ctx->Advance(entry->key, entry->key)) return false;
    Hash value_hash;
    if (entry->is_result) {
      if (!ctx->InRange(entry->key)) {
        return ctx->Fail("result entry outside query range");
      }
      auto it = ctx->result_by_key.find(entry->key);
      if (it == ctx->result_by_key.end()) {
        return ctx->Fail("VO marks a result entry missing from the result set");
      }
      value_hash = crypto::ValueHash(it->second->value);
      ++ctx->consumed;
    } else {
      if (ctx->InRange(entry->key)) {
        return ctx->Fail("in-range entry not returned as a result (withheld answer)");
      }
      value_hash = entry->value_hash;
    }
    out->digest = crypto::EntryDigest(entry->key, value_hash);
    out->lo = out->hi = entry->key;
    return true;
  }

  if (const auto* pruned = std::get_if<VoPruned>(&child)) {
    if (!ctx->Advance(pruned->lo, pruned->hi)) return false;
    if (pruned->lo <= ctx->ub && ctx->lb <= pruned->hi) {
      return ctx->Fail("pruned subtree overlaps the query range");
    }
    out->digest = crypto::WrapDigest(pruned->lo, pruned->hi, pruned->content_hash);
    out->lo = pruned->lo;
    out->hi = pruned->hi;
    return true;
  }

  const VoNode& node = *std::get<VoNodePtr>(child);
  if (node.children.empty()) return ctx->Fail("expanded node with no children");
  std::vector<Hash> digests;
  digests.reserve(node.children.size());
  Key lo = 0;
  Key hi = 0;
  for (size_t i = 0; i < node.children.size(); ++i) {
    SubtreeDigest sub;
    if (!ReconstructChild(node.children[i], ctx, &sub)) return false;
    if (i == 0) lo = sub.lo;
    hi = sub.hi;
    digests.push_back(sub.digest);
  }
  Hash content = crypto::ContentDigest(digests);
  out->digest = crypto::WrapDigest(lo, hi, content);
  out->lo = lo;
  out->hi = hi;
  return true;
}

}  // namespace

VerifyOutcome VerifyTreeVo(Key lb, Key ub, const TreeVo& vo, const Hash& trusted_root,
                           const std::vector<Object>& result) {
  if (lb > ub) return VerifyOutcome::Fail("invalid query range");

  std::map<Key, const Object*> by_key;
  for (const Object& obj : result) {
    if (!by_key.emplace(obj.key, &obj).second) {
      return VerifyOutcome::Fail("duplicate key in result set");
    }
  }

  if (vo.empty_tree) {
    if (trusted_root != crypto::EmptyTreeDigest()) {
      return VerifyOutcome::Fail("VO claims empty tree but on-chain digest disagrees");
    }
    if (!result.empty()) {
      return VerifyOutcome::Fail("results claimed from an empty tree");
    }
    return VerifyOutcome::Ok();
  }

  if (!vo.root) return VerifyOutcome::Fail("missing VO root");
  if (std::holds_alternative<VoEntry>(*vo.root)) {
    return VerifyOutcome::Fail("bare entry cannot be a tree root");
  }

  Context ctx{lb, ub, by_key, 0, false, 0, {}};
  SubtreeDigest root;
  if (!ReconstructChild(*vo.root, &ctx, &root)) {
    return VerifyOutcome::Fail(ctx.error);
  }
  if (root.digest != trusted_root) {
    return VerifyOutcome::Fail("reconstructed root digest does not match VO_chain");
  }
  if (ctx.consumed != result.size()) {
    return VerifyOutcome::Fail("result set contains objects not proven by the VO");
  }
  return VerifyOutcome::Ok();
}

}  // namespace gem2::ads
