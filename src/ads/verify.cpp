#include "ads/verify.h"

#include <map>

#include "crypto/digest.h"
#include "crypto/keccak_batch.h"
#include "telemetry/telemetry.h"

namespace gem2::ads {
namespace {

/// Verification context threaded through the recursive digest reconstruction.
struct Context {
  Key lb;
  Key ub;
  const std::map<Key, const Object*>& result_by_key;
  /// Boundary mode (VerifyTreeVoBoundary): in-range entries are collected
  /// here instead of being matched against the result set; result-marked
  /// entries are rejected. nullptr = normal result-set verification.
  std::vector<VoEntry>* collect = nullptr;
  size_t consumed = 0;
  bool have_prev = false;
  Key prev_hi = 0;
  std::string error;

  bool Fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  bool InRange(Key k) const { return k >= lb && k <= ub; }

  /// Global in-order check: each element's range must start strictly after
  /// everything seen so far.
  bool Advance(Key lo, Key hi) {
    if (lo > hi) return Fail("element with inverted boundaries");
    if (have_prev && lo <= prev_hi) return Fail("VO elements out of order");
    have_prev = true;
    prev_hi = hi;
    return true;
  }
};

struct SubtreeDigest {
  Hash digest{};
  Key lo = 0;
  Key hi = 0;
  size_t slot = 0;  // batched path only: index into the flat digest array
};

bool ReconstructChild(const VoChild& child, Context* ctx, SubtreeDigest* out) {
  if (const auto* entry = std::get_if<VoEntry>(&child)) {
    if (!ctx->Advance(entry->key, entry->key)) return false;
    Hash value_hash;
    if (entry->is_result) {
      if (ctx->collect != nullptr) {
        return ctx->Fail("boundary VO must not mark result entries");
      }
      if (!ctx->InRange(entry->key)) {
        return ctx->Fail("result entry outside query range");
      }
      auto it = ctx->result_by_key.find(entry->key);
      if (it == ctx->result_by_key.end()) {
        return ctx->Fail("VO marks a result entry missing from the result set");
      }
      value_hash = crypto::ValueHash(it->second->value);
      ++ctx->consumed;
    } else {
      if (ctx->InRange(entry->key)) {
        if (ctx->collect == nullptr) {
          return ctx->Fail("in-range entry not returned as a result (withheld answer)");
        }
        ctx->collect->push_back(*entry);
      }
      value_hash = entry->value_hash;
    }
    out->digest = crypto::EntryDigest(entry->key, value_hash);
    out->lo = out->hi = entry->key;
    return true;
  }

  if (const auto* pruned = std::get_if<VoPruned>(&child)) {
    if (!ctx->Advance(pruned->lo, pruned->hi)) return false;
    if (pruned->lo <= ctx->ub && ctx->lb <= pruned->hi) {
      return ctx->Fail("pruned subtree overlaps the query range");
    }
    out->digest = crypto::WrapDigest(pruned->lo, pruned->hi, pruned->content_hash);
    out->lo = pruned->lo;
    out->hi = pruned->hi;
    return true;
  }

  const VoNode& node = *std::get<VoNodePtr>(child);
  if (node.children.empty()) return ctx->Fail("expanded node with no children");
  std::vector<Hash> digests;
  digests.reserve(node.children.size());
  Key lo = 0;
  Key hi = 0;
  for (size_t i = 0; i < node.children.size(); ++i) {
    SubtreeDigest sub;
    if (!ReconstructChild(node.children[i], ctx, &sub)) return false;
    if (i == 0) lo = sub.lo;
    hi = sub.hi;
    digests.push_back(sub.digest);
  }
  Hash content = crypto::ContentDigest(digests);
  out->digest = crypto::WrapDigest(lo, hi, content);
  out->lo = lo;
  out->hi = hi;
  return true;
}

// ---------------------------------------------------------------------------
// Batched digest recomputation.
//
// The serial path above interleaves completeness checks with hashing, but the
// two are separable: every structural failure (ordering, range, withheld
// answer, empty node) is detected by the traversal alone, and a wrong hash is
// only observable at the final root comparison. The batched path exploits
// this: pass 1 repeats the serial traversal checks in the identical order
// (hence the identical first error) while recording a flat hash plan; pass 2
// executes the plan bottom-up, eight independent Keccak messages per AVX-512
// pass. Within one level every digest is independent, so the batches are:
// all result value hashes, then all entry digests + pruned wraps, then per
// node level (deepest first) the content digests followed by the wrap
// digests.

/// One VO element's pending digest, addressed by its slot in a flat array so
/// parent nodes can reference child digests before they are computed.
struct EntryJob {
  Key key = 0;
  const Object* obj = nullptr;      // result entries: hash this value
  const Hash* boundary = nullptr;   // boundary entries: shipped value hash
  size_t slot = 0;
};

struct PrunedJob {
  Key lo = 0;
  Key hi = 0;
  const Hash* content = nullptr;
  size_t slot = 0;
};

struct NodeJob {
  Key lo = 0;
  Key hi = 0;
  size_t slot = 0;
  size_t child_begin = 0;  // range into HashPlan::child_slots
  size_t child_count = 0;
};

struct HashPlan {
  std::vector<EntryJob> entries;
  std::vector<PrunedJob> pruned;
  std::vector<std::vector<NodeJob>> nodes_by_depth;
  std::vector<size_t> child_slots;
  size_t slot_count = 0;
};

/// Pass 1: the serial traversal's checks, verbatim, plus plan recording.
/// Mirrors ReconstructChild line for line — any edit there must land here.
bool CollectChild(const VoChild& child, uint32_t depth, Context* ctx,
                  HashPlan* plan, SubtreeDigest* out) {
  if (const auto* entry = std::get_if<VoEntry>(&child)) {
    if (!ctx->Advance(entry->key, entry->key)) return false;
    EntryJob job;
    job.key = entry->key;
    if (entry->is_result) {
      if (ctx->collect != nullptr) {
        return ctx->Fail("boundary VO must not mark result entries");
      }
      if (!ctx->InRange(entry->key)) {
        return ctx->Fail("result entry outside query range");
      }
      auto it = ctx->result_by_key.find(entry->key);
      if (it == ctx->result_by_key.end()) {
        return ctx->Fail("VO marks a result entry missing from the result set");
      }
      job.obj = it->second;
      ++ctx->consumed;
    } else {
      if (ctx->InRange(entry->key)) {
        if (ctx->collect == nullptr) {
          return ctx->Fail("in-range entry not returned as a result (withheld answer)");
        }
        ctx->collect->push_back(*entry);
      }
      job.boundary = &entry->value_hash;
    }
    job.slot = plan->slot_count++;
    plan->entries.push_back(job);
    out->lo = out->hi = entry->key;
    out->slot = job.slot;
    return true;
  }

  if (const auto* pruned = std::get_if<VoPruned>(&child)) {
    if (!ctx->Advance(pruned->lo, pruned->hi)) return false;
    if (pruned->lo <= ctx->ub && ctx->lb <= pruned->hi) {
      return ctx->Fail("pruned subtree overlaps the query range");
    }
    PrunedJob job;
    job.lo = pruned->lo;
    job.hi = pruned->hi;
    job.content = &pruned->content_hash;
    job.slot = plan->slot_count++;
    plan->pruned.push_back(job);
    out->lo = pruned->lo;
    out->hi = pruned->hi;
    out->slot = job.slot;
    return true;
  }

  const VoNode& node = *std::get<VoNodePtr>(child);
  if (node.children.empty()) return ctx->Fail("expanded node with no children");
  std::vector<size_t> child_slots;
  child_slots.reserve(node.children.size());
  Key lo = 0;
  Key hi = 0;
  for (size_t i = 0; i < node.children.size(); ++i) {
    SubtreeDigest sub;
    if (!CollectChild(node.children[i], depth + 1, ctx, plan, &sub)) return false;
    if (i == 0) lo = sub.lo;
    hi = sub.hi;
    child_slots.push_back(sub.slot);
  }
  NodeJob job;
  job.lo = lo;
  job.hi = hi;
  job.slot = plan->slot_count++;
  job.child_begin = plan->child_slots.size();
  job.child_count = child_slots.size();
  plan->child_slots.insert(plan->child_slots.end(), child_slots.begin(),
                           child_slots.end());
  if (plan->nodes_by_depth.size() <= depth) plan->nodes_by_depth.resize(depth + 1);
  plan->nodes_by_depth[depth].push_back(job);
  out->lo = lo;
  out->hi = hi;
  out->slot = job.slot;
  return true;
}

/// Pass 2: executes the plan, writing every slot's digest; returns the root
/// slot's digest (the last slot allocated — post-order, so the root is last).
Hash ExecutePlan(const HashPlan& plan) {
  std::vector<Hash> digests(plan.slot_count);
  std::vector<Hash> value_hashes(plan.entries.size());
  crypto::Keccak256Batcher batcher;

  // Batch 1: value hashes of the returned objects (arbitrary length; the
  // batcher falls back to scalar past one rate block).
  for (size_t i = 0; i < plan.entries.size(); ++i) {
    const EntryJob& job = plan.entries[i];
    if (job.obj != nullptr) {
      batcher.Add(reinterpret_cast<const uint8_t*>(job.obj->value.data()),
                  job.obj->value.size(), &value_hashes[i]);
    }
  }
  batcher.Flush();

  // Batch 2: every leaf-level digest — entries and pruned-subtree wraps.
  uint8_t preimage[48];
  for (size_t i = 0; i < plan.entries.size(); ++i) {
    const EntryJob& job = plan.entries[i];
    const Hash& value_hash =
        job.obj != nullptr ? value_hashes[i] : *job.boundary;
    crypto::EncodeEntryPreimage(job.key, value_hash, preimage);
    batcher.Add(preimage, 40, &digests[job.slot]);
  }
  for (const PrunedJob& job : plan.pruned) {
    crypto::EncodeWrapPreimage(job.lo, job.hi, *job.content, preimage);
    batcher.Add(preimage, 48, &digests[job.slot]);
  }
  batcher.Flush();

  // Node levels, deepest first: children's digests are complete, so each
  // level needs one content batch and one wrap batch.
  std::vector<Hash> contents;
  std::vector<const Hash*> parts;
  for (size_t depth = plan.nodes_by_depth.size(); depth-- > 0;) {
    const std::vector<NodeJob>& level = plan.nodes_by_depth[depth];
    if (level.empty()) continue;
    contents.resize(level.size());
    for (size_t i = 0; i < level.size(); ++i) {
      const NodeJob& job = level[i];
      parts.resize(job.child_count);
      for (size_t c = 0; c < job.child_count; ++c) {
        parts[c] = &digests[plan.child_slots[job.child_begin + c]];
      }
      batcher.AddConcat(parts.data(), parts.size(), &contents[i]);
    }
    batcher.Flush();
    for (size_t i = 0; i < level.size(); ++i) {
      const NodeJob& job = level[i];
      crypto::EncodeWrapPreimage(job.lo, job.hi, contents[i], preimage);
      batcher.Add(preimage, 48, &digests[job.slot]);
    }
    batcher.Flush();
  }
  return digests[plan.slot_count - 1];
}

/// Shared implementation of both verification modes. `collect == nullptr` is
/// the normal result-set mode; non-null is boundary mode (result must be
/// empty, in-range entries are collected).
VerifyOutcome VerifyTree(Key lb, Key ub, const TreeVo& vo, const Hash& trusted_root,
                         const std::vector<Object>& result,
                         std::vector<VoEntry>* collect, HashStrategy strategy) {
  if (lb > ub) return VerifyOutcome::Fail("invalid query range");

  std::map<Key, const Object*> by_key;
  for (const Object& obj : result) {
    if (!by_key.emplace(obj.key, &obj).second) {
      return VerifyOutcome::Fail("duplicate key in result set");
    }
  }

  if (vo.empty_tree) {
    if (trusted_root != crypto::EmptyTreeDigest()) {
      return VerifyOutcome::Fail("VO claims empty tree but on-chain digest disagrees");
    }
    if (!result.empty()) {
      return VerifyOutcome::Fail("results claimed from an empty tree");
    }
    return VerifyOutcome::Ok();
  }

  if (!vo.root) return VerifyOutcome::Fail("missing VO root");
  if (std::holds_alternative<VoEntry>(*vo.root)) {
    return VerifyOutcome::Fail("bare entry cannot be a tree root");
  }

  Context ctx{lb, ub, by_key, collect, 0, false, 0, {}};
  SubtreeDigest root;
  if (strategy == HashStrategy::kBatched) {
    HashPlan plan;
    {
      TELEMETRY_SPAN("client.completeness");
      if (!CollectChild(*vo.root, 0, &ctx, &plan, &root)) {
        return VerifyOutcome::Fail(ctx.error);
      }
    }
    TELEMETRY_SPAN("client.hash_recompute");
    root.digest = ExecutePlan(plan);
  } else {
    if (!ReconstructChild(*vo.root, &ctx, &root)) {
      return VerifyOutcome::Fail(ctx.error);
    }
  }
  if (root.digest != trusted_root) {
    return VerifyOutcome::Fail("reconstructed root digest does not match VO_chain");
  }
  if (ctx.consumed != result.size()) {
    return VerifyOutcome::Fail("result set contains objects not proven by the VO");
  }
  return VerifyOutcome::Ok();
}

}  // namespace

VerifyOutcome VerifyTreeVo(Key lb, Key ub, const TreeVo& vo, const Hash& trusted_root,
                           const std::vector<Object>& result,
                           HashStrategy strategy) {
  return VerifyTree(lb, ub, vo, trusted_root, result, nullptr, strategy);
}

VerifyOutcome VerifyTreeVoBoundary(Key lb, Key ub, const TreeVo& vo,
                                   const Hash& trusted_root,
                                   std::vector<VoEntry>* in_range,
                                   HashStrategy strategy) {
  const std::vector<Object> kNoResults;
  const size_t collected_before = in_range->size();
  VerifyOutcome outcome =
      VerifyTree(lb, ub, vo, trusted_root, kNoResults, in_range, strategy);
  // Failed traversals may have collected a prefix; never expose it.
  if (!outcome.ok) in_range->resize(collected_before);
  return outcome;
}

}  // namespace gem2::ads
