#include "lsm/lsm.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/digest.h"
#include "telemetry/telemetry.h"

namespace gem2::lsm {
namespace {

// Storage layout: level i occupies region (kRegionLevelBase + i); slot j holds
// the j-th record of the level's sorted run. Region kRegionRoots slot i holds
// level i's root digest.
constexpr uint32_t kRegionRoots = 1;
constexpr uint32_t kRegionLevelBase = 16;

Word RootWord(const Hash& h) {
  Word w;
  std::copy(h.begin(), h.end(), w.begin());
  return w;
}

/// Merges two sorted runs (keys are globally unique).
ads::EntryList MergeRuns(const ads::EntryList& a, const ads::EntryList& b) {
  ads::EntryList out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             ads::EntryKeyLess);
  return out;
}

size_t LowerBoundPos(const ads::EntryList& entries, Key key) {
  auto it = std::lower_bound(entries.begin(), entries.end(), key,
                             [](const ads::Entry& e, Key k) { return e.key < k; });
  return static_cast<size_t>(it - entries.begin());
}

}  // namespace

LsmTreeContract::LsmTreeContract(std::string name, LsmOptions options)
    : chain::Contract(std::move(name)), options_(options) {
  levels_.push_back({{}, crypto::EmptyTreeDigest()});
  // Ledger-maintained committed digests: level i at order i, kept current by
  // RefreshRoot (every level mutation funnels through it).
  EnableDigestLedger().Set(0, "lsm.L0", levels_[0].root);
}

void LsmTreeContract::RefreshRoot(size_t i, gas::Meter& meter) {
  TELEMETRY_SPAN("lsm.refresh_root");
  Level& level = levels_[i];
  // Load the level's records to recompute its digest.
  for (size_t j = 0; j < level.entries.size(); ++j) {
    storage().Load(chain::Slot{kRegionLevelBase + static_cast<uint32_t>(i), j}, meter);
  }
  level.root =
      ads::CanonicalRootDigest(level.entries, options_.fanout, &meter, &leaf_cache_);
  storage().Store(chain::Slot{kRegionRoots, i}, RootWord(level.root), meter);
  digest_ledger()->Set(i, "lsm.L" + std::to_string(i), level.root);
}

void LsmTreeContract::Insert(Key key, const Hash& value_hash, gas::Meter& meter) {
  TELEMETRY_SPAN("lsm.insert");
  if (level_of_.count(key) != 0) {
    throw std::invalid_argument("LsmTreeContract::Insert: key already present");
  }
  Level& l0 = levels_[0];
  // Binary-search the insert position (one sload per probe).
  meter.ChargeSload(l0.entries.empty()
                        ? 1
                        : (64 - static_cast<uint64_t>(
                                    std::countl_zero(l0.entries.size()))));
  const size_t pos = LowerBoundPos(l0.entries, key);
  // Keep the run sorted in place: every record from `pos` onward shifts one
  // slot right. The tail lands in a fresh slot (sstore); the rest are
  // overwrites (supdates).
  const size_t n0 = l0.entries.size();
  storage().Store(chain::Slot{kRegionLevelBase, n0}, WordFromKey(key), meter);
  if (n0 > pos) meter.ChargeSupdate(n0 - pos);
  l0.entries.insert(l0.entries.begin() + pos, {key, value_hash});
  level_of_.emplace(key, 0);
  ++size_;

  RefreshRoot(0, meter);

  if (l0.entries.size() > Capacity(0)) MergeDown(0, meter);
}

void LsmTreeContract::MergeDown(size_t i, gas::Meter& meter) {
  TELEMETRY_SPAN("lsm.merge_down");
  if (i + 1 >= levels_.size()) {
    levels_.push_back({{}, crypto::EmptyTreeDigest()});
  }
  Level& src = levels_[i];
  Level& dst = levels_[i + 1];

  // Load both runs.
  meter.ChargeSload(src.entries.size() + dst.entries.size());
  ads::EntryList merged = MergeRuns(src.entries, dst.entries);
  meter.ChargeSortCost(merged.size());

  // Write the merged run into the destination region: the first |dst| slots
  // are overwrites, the rest are fresh.
  const uint32_t dst_region = kRegionLevelBase + static_cast<uint32_t>(i + 1);
  for (size_t j = 0; j < merged.size(); ++j) {
    storage().Store(chain::Slot{dst_region, j}, WordFromKey(merged[j].key), meter);
  }
  // Discard the source run (zero-stores, charged as updates).
  const uint32_t src_region = kRegionLevelBase + static_cast<uint32_t>(i);
  for (size_t j = 0; j < src.entries.size(); ++j) {
    storage().Store(chain::Slot{src_region, j}, chain::kZeroWord, meter);
  }

  for (const ads::Entry& e : src.entries) level_of_[e.key] = i + 1;
  dst.entries = std::move(merged);
  src.entries.clear();

  RefreshRoot(i, meter);
  RefreshRoot(i + 1, meter);

  if (dst.entries.size() > Capacity(i + 1)) MergeDown(i + 1, meter);
}

void LsmTreeContract::Update(Key key, const Hash& value_hash, gas::Meter& meter) {
  TELEMETRY_SPAN("lsm.update");
  auto it = level_of_.find(key);
  if (it == level_of_.end()) {
    throw std::invalid_argument("LsmTreeContract::Update: unknown key");
  }
  const size_t i = it->second;
  Level& level = levels_[i];
  meter.ChargeSload(64 - static_cast<uint64_t>(std::countl_zero(level.entries.size())));
  const size_t pos = LowerBoundPos(level.entries, key);
  level.entries[pos].value_hash = value_hash;
  storage().Store(chain::Slot{kRegionLevelBase + static_cast<uint32_t>(i), pos},
                  WordFromKey(key), meter);
  RefreshRoot(i, meter);
}

std::vector<chain::DigestEntry> LsmTreeContract::AuthenticatedDigests() const {
  std::vector<chain::DigestEntry> out;
  out.reserve(levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    out.push_back({"lsm.L" + std::to_string(i), levels_[i].root});
  }
  return out;
}

const ads::StaticTree& LsmMirror::Level::Tree(int fanout) const {
  if (cache == nullptr) cache = std::make_unique<ads::StaticTree>(entries, fanout);
  return *cache;
}

LsmMirror::LsmMirror(LsmOptions options) : options_(options) {
  levels_.emplace_back();
}

void LsmMirror::Insert(Key key, const Hash& value_hash) {
  if (level_of_.count(key) != 0) {
    throw std::invalid_argument("LsmMirror::Insert: key already present");
  }
  Level& l0 = levels_[0];
  const size_t pos = LowerBoundPos(l0.entries, key);
  l0.entries.insert(l0.entries.begin() + pos, {key, value_hash});
  l0.cache.reset();
  level_of_.emplace(key, 0);
  ++size_;
  if (l0.entries.size() > (options_.level0_capacity << 0)) MergeDown(0);
}

void LsmMirror::MergeDown(size_t i) {
  if (i + 1 >= levels_.size()) levels_.emplace_back();
  Level& src = levels_[i];
  Level& dst = levels_[i + 1];
  dst.entries = MergeRuns(src.entries, dst.entries);
  for (const ads::Entry& e : src.entries) level_of_[e.key] = i + 1;
  src.entries.clear();
  src.cache.reset();
  dst.cache.reset();
  if (dst.entries.size() > (options_.level0_capacity << (i + 1))) MergeDown(i + 1);
}

void LsmMirror::Update(Key key, const Hash& value_hash) {
  auto it = level_of_.find(key);
  if (it == level_of_.end()) {
    throw std::invalid_argument("LsmMirror::Update: unknown key");
  }
  Level& level = levels_[it->second];
  const size_t pos = LowerBoundPos(level.entries, key);
  level.entries[pos].value_hash = value_hash;
  // A materialized level only needs its leaf-to-root path rehashed — value
  // updates never change the level's entry set, so the tree shape is stable.
  if (level.cache != nullptr && !level.cache->UpdateValueHash(key, value_hash)) {
    level.cache.reset();
  }
}

const ads::StaticTree& LsmMirror::MaterializedTree(size_t i) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return levels_[i].Tree(options_.fanout);
}

Hash LsmMirror::level_root(size_t i) const {
  return MaterializedTree(i).root_digest();
}

ads::TreeVo LsmMirror::RangeQuery(size_t i, Key lb, Key ub,
                                  ads::EntryList* result) const {
  return MaterializedTree(i).RangeQuery(lb, ub, result);
}

}  // namespace gem2::lsm
