/// \file lsm.h
/// The LSM-tree comparator the paper evaluates against (Sections V-D, VII).
///
/// On-chain (LsmTreeContract): a multilevel structure with *materialized,
/// sorted* runs in contract storage — exactly the properties Section V-D
/// identifies as fatal under the gas model:
///   - inserts keep level 0 sorted in place (shifting records costs one
///     supdate per shifted word),
///   - when a level overflows it is merge-sorted into the next level, writing
///     the merged run to fresh slots (sstores) and discarding the old runs
///     (zero-stores, charged as supdates),
///   - every affected level's Merkle root is recomputed and rewritten.
/// Merge cost grows linearly with level size, so large merges blow past the
/// block gasLimit — reproducing the paper's observation that the LSM-tree
/// cannot support more than ~10^4 objects.
///
/// One deviation, documented in DESIGN.md: updates are applied in place in
/// the level holding the key (instead of appending duplicate-key records), so
/// authenticated-query semantics stay uniform across all ADSs. The
/// gas-relevant behaviours (sorted lists, materialized merges) are untouched.
///
/// SP-side (LsmMirror): materialized levels with lazy canonical trees; a
/// range query fans out over every level.
#ifndef GEM2_LSM_LSM_H_
#define GEM2_LSM_LSM_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ads/entry.h"
#include "ads/static_tree.h"
#include "ads/vo.h"
#include "chain/contract.h"
#include "gas/meter.h"

namespace gem2::lsm {

struct LsmOptions {
  /// Capacity of level 0; level i holds up to `level0_capacity << i` entries.
  uint64_t level0_capacity = 8;
  int fanout = 4;
};

class LsmTreeContract : public chain::Contract {
 public:
  explicit LsmTreeContract(std::string name, LsmOptions options = {});

  void Insert(Key key, const Hash& value_hash, gas::Meter& meter);
  void Update(Key key, const Hash& value_hash, gas::Meter& meter);

  std::vector<chain::DigestEntry> AuthenticatedDigests() const override;

  size_t size() const { return size_; }
  size_t num_levels() const { return levels_.size(); }
  const ads::EntryList& level(size_t i) const { return levels_[i].entries; }
  Hash level_root(size_t i) const { return levels_[i].root; }
  const LsmOptions& options() const { return options_; }

 private:
  struct Level {
    ads::EntryList entries;  // sorted
    Hash root;
  };

  uint64_t Capacity(size_t level) const { return options_.level0_capacity << level; }

  /// Merge-sorts level `i` into level `i+1`, charging the storage writes, and
  /// cascades further overflows.
  void MergeDown(size_t i, gas::Meter& meter);

  /// Recomputes and rewrites level i's root digest (loads + hashes + write).
  void RefreshRoot(size_t i, gas::Meter& meter);

  LsmOptions options_;
  std::vector<Level> levels_;
  std::unordered_map<Key, size_t> level_of_;  // key -> level index
  size_t size_ = 0;
  /// Memoizes metered EntryDigest hashes across merge cascades (gas is
  /// unaffected; see ads::LeafDigestCache).
  ads::LeafDigestCache leaf_cache_;
};

/// SP-side materialized levels for authenticated queries.
class LsmMirror {
 public:
  explicit LsmMirror(LsmOptions options = {});

  void Insert(Key key, const Hash& value_hash);
  void Update(Key key, const Hash& value_hash);

  size_t num_levels() const { return levels_.size(); }
  size_t size() const { return size_; }

  /// Root digest of level i (must agree with the contract's).
  Hash level_root(size_t i) const;

  /// Range query against level i.
  ads::TreeVo RangeQuery(size_t i, Key lb, Key ub, ads::EntryList* result) const;

 private:
  struct Level {
    ads::EntryList entries;  // sorted
    mutable std::unique_ptr<ads::StaticTree> cache;

    const ads::StaticTree& Tree(int fanout) const;
  };

  /// Lazy level materialization, serialized so concurrent query threads do
  /// not race on the cache pointer (mutations run under the query engine's
  /// exclusive lock and never overlap with readers).
  const ads::StaticTree& MaterializedTree(size_t i) const;

  void MergeDown(size_t i);

  LsmOptions options_;
  std::vector<Level> levels_;
  std::unordered_map<Key, size_t> level_of_;
  mutable std::mutex cache_mutex_;
  size_t size_ = 0;
};

}  // namespace gem2::lsm

#endif  // GEM2_LSM_LSM_H_
