/// \file multiattr_db.h
/// Multi-attribute RangeStore: records carrying K indexed attributes, each
/// attribute served by its own GEM2-tree (or any other ADS) under ONE shared
/// chain::Environment — every attribute index commits into the same state
/// root, so one block header anchors the whole deployment and a boolean
/// QuerySpec (AND/OR over per-attribute ranges) verifies end-to-end against
/// that single commitment.
///
/// Key packing: attribute k of record r indexes under the composite tree key
///
///     tree_key = r.attrs[k] * 2^id_bits + r.id
///
/// (addition, not OR: the product stays sign-correct for negative attribute
/// values, so composite keys order primarily by attribute value and secondarily
/// by record id). A predicate [lb, ub] over attribute values therefore maps to
/// the tree range [lb * 2^id_bits, ub * 2^id_bits + 2^id_bits - 1], which the
/// unmodified single-attribute query/verify machinery answers with its usual
/// soundness and completeness guarantees. Record ids live in
/// [0, 2^id_bits - 2]; the top id slot (2^id_bits - 1) is reserved so a
/// provably-recordless singleton range exists for predicates that miss the
/// attribute domain entirely.
///
/// The stored object value of every attribute index is the SAME canonical
/// record encoding (id, all attributes, payload), so the client's boolean
/// composition can cross-check that conjuncts agree on each record bit-for-bit
/// before intersecting or uniting.
#ifndef GEM2_MULTIATTR_MULTIATTR_DB_H_
#define GEM2_MULTIATTR_MULTIATTR_DB_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/authenticated_db.h"
#include "core/range_store.h"
#include "shard/sharded_db.h"

namespace gem2::multiattr {

/// One record: an application id, K indexed attribute values, and an opaque
/// payload. The id identifies the record across every attribute index.
struct MultiAttrRecord {
  int64_t id = 0;
  std::vector<Key> attrs;
  std::string value;

  bool operator==(const MultiAttrRecord&) const = default;
};

/// Canonical record codec (the object value stored in every attribute index):
///   [u64 id][u32 nattrs][nattrs x i64 attr][u64 len][len payload bytes]
/// all big-endian. DecodeRecord is fail-closed: any truncation, trailing
/// bytes, or id outside the signed range returns std::nullopt.
std::string EncodeRecord(const MultiAttrRecord& record);
std::optional<MultiAttrRecord> DecodeRecord(const std::string& encoded);

struct MultiAttrOptions {
  /// Per-attribute-index ADS configuration (kind, GEM2/LSM parameters, the
  /// env options of the single shared chain). `base.contract_name` and
  /// `base.shared_env` are managed by MultiAttrDb and must stay defaulted.
  core::DbOptions base;
  /// Number of indexed attributes per record (>= 1).
  uint32_t num_attrs = 2;
  /// Bits of the composite key reserved for the record id. Ids live in
  /// [0, 2^id_bits - 2]; attribute values in
  /// [-2^(63 - id_bits), 2^(63 - id_bits) - 1].
  uint32_t id_bits = 20;
  /// Empty: each attribute index is one AuthenticatedDb contract ("attr<k>").
  /// Non-empty: each attribute index is a shard::ShardedDb partitioned at
  /// these ATTRIBUTE-VALUE bounds (strictly ascending, within the attribute
  /// domain), its shard contracts named "attr<k>.shard<i>" — all still in the
  /// one shared environment.
  std::vector<Key> shard_bounds;

  /// Rejects nonsensical configurations with std::invalid_argument.
  void Validate() const;
};

/// K-attribute records under one state commitment. The data-owner surface is
/// record-oriented (InsertRecord / UpdateRecord / DeleteRecord — the
/// Object-level RangeStore owner ops throw std::logic_error); the SP and
/// client surfaces are the RangeStore spec machinery: ExecuteSpec answers
/// AND/OR/aggregate specs over the attribute indexes, VerifySpecFor composes
/// per-conjunct verified results by record id.
class MultiAttrDb : public core::RangeStore {
 public:
  /// Contract name attribute k's index registers under ("attr0", ...), or —
  /// sharded — the prefix its shard contracts are named from.
  static std::string AttrContractName(uint32_t attr);

  explicit MultiAttrDb(MultiAttrOptions options);
  ~MultiAttrDb() override;

  MultiAttrDb(const MultiAttrDb&) = delete;
  MultiAttrDb& operator=(const MultiAttrDb&) = delete;

  // --- Data-owner interface (record-oriented) ------------------------------

  /// Inserts a fresh record: one metered transaction per attribute index
  /// (per shard touched, when sharded). Returns the last receipt; a failing
  /// receipt returns immediately (that index is then poisoned). Throws
  /// std::invalid_argument for a duplicate id, an id outside
  /// [0, 2^id_bits - 2], a wrong attribute count, or an attribute value
  /// outside the domain.
  chain::TxReceipt InsertRecord(const MultiAttrRecord& record);

  /// Updates an existing record's payload (attribute values are immutable —
  /// delete and re-insert to move a record between index positions).
  chain::TxReceipt UpdateRecord(int64_t id, const std::string& value);

  /// Deletes a record: tombstones its entry in every attribute index.
  chain::TxReceipt DeleteRecord(int64_t id);

  /// Object-level owner ops are not meaningful on multi-attribute records;
  /// all four throw std::logic_error.
  chain::TxReceipt Insert(const Object& object) override;
  chain::TxReceipt Update(const Object& object) override;
  chain::TxReceipt Delete(Key key) override;
  chain::TxReceipt InsertBatch(const std::vector<Object>& objects) override;

  /// True when record id `key` is live.
  bool Contains(Key key) const override;
  /// Live records.
  uint64_t size() const override;

  /// The owner's copy of a live record (nullptr when absent/deleted).
  const MultiAttrRecord* FindRecord(int64_t id) const;

  // --- Client interface ----------------------------------------------------

  /// Legacy single-range verification over attribute 0's index, in the
  /// composite tree-key domain (the domain Query/QueryPredicate answer in).
  core::VerifiedResult VerifyFor(Key lb, Key ub,
                                 const core::QueryResponse& response) override;

  // --- Blockchain interface ------------------------------------------------

  chain::Environment& environment() override { return *env_; }

  /// One AuthenticatedState per contract across ALL attribute indexes
  /// (attr-major, shard-minor order), all anchored at the same header.
  std::vector<chain::AuthenticatedState> ReadChainState() override;

  core::VerifiedResult VerifyAgainst(
      const std::vector<chain::AuthenticatedState>& states,
      const core::QueryResponse& response) const override;

  // --- Introspection -------------------------------------------------------

  const MultiAttrOptions& options() const { return options_; }
  uint32_t num_attributes() const override { return options_.num_attrs; }
  core::WireVersion wire_version() const override {
    return options_.base.wire_version;
  }
  /// Smallest / largest indexable attribute value for this id_bits choice.
  Key AttrMin() const;
  Key AttrMax() const;
  /// The composite tree key (value, id) packs to (exposed for tests).
  Key CompositeKey(Key value, int64_t id) const;
  /// Attribute k's index (a core::AuthenticatedDb or shard::ShardedDb).
  core::RangeStore& attr_index(uint32_t attr) { return *stores_[attr]; }
  const core::RangeStore& attr_index(uint32_t attr) const {
    return *stores_[attr];
  }

  bool poisoned() const override;
  std::string BackendName() const override;
  void CheckConsistency() const override;

 protected:
  // --- Per-attribute primitives (RangeStore seam) --------------------------

  /// Answers one predicate against attribute `attr`'s index, in the
  /// composite tree-key domain. Throws std::invalid_argument for an unknown
  /// attribute.
  core::QueryResponse QueryPredicate(uint32_t attr, Key lb,
                                     Key ub) const override;

  core::VerifiedResult VerifyPredicateFor(
      uint32_t attr, Key lb, Key ub, const core::QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) override;

  core::VerifiedResult VerifyPredicateAgainst(
      const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
      Key lb, Key ub, const core::QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) const override;

  /// Maps an attribute-value range into the composite tree-key domain,
  /// clamping to the attribute domain; a range that misses the domain
  /// entirely maps to the reserved recordless singleton.
  void MapPredicateRange(uint32_t attr, Key lb, Key ub, Key* tree_lb,
                         Key* tree_ub) const override;

  /// Attribute value half of a composite key (floor(tree_key / 2^id_bits)).
  Key DecodeAttrValue(uint32_t attr, Key tree_key) const override;

  /// Decodes the canonical record, cross-checks the composite key against
  /// the record's own (attrs[attr], id), and emits {record id, encoded
  /// record} so conjuncts over different attributes compose by record.
  bool CanonicalizeSpecObject(uint32_t attr, const Object& in, Object* out,
                              std::string* error) const override;

  void ApplySpPool(common::ThreadPool* pool) override;

 private:
  /// States belonging to attribute `attr`'s contract(s), in index order.
  std::vector<chain::AuthenticatedState> SliceStates(
      uint32_t attr, const std::vector<chain::AuthenticatedState>& states) const;

  MultiAttrOptions options_;
  std::unique_ptr<chain::Environment> env_;
  /// Attribute k's index: AuthenticatedDb (unsharded) or ShardedDb.
  std::vector<std::unique_ptr<core::RangeStore>> stores_;
  /// Contract names backing attribute k (one, or one per shard).
  std::vector<std::vector<std::string>> contract_names_;
  /// Owner's record map (the SP raw store analogue for records).
  std::map<int64_t, MultiAttrRecord> records_;
};

}  // namespace gem2::multiattr

#endif  // GEM2_MULTIATTR_MULTIATTR_DB_H_
