#include "multiattr/multiattr_db.h"

#include <algorithm>
#include <stdexcept>

namespace gem2::multiattr {
namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool GetU32(const std::string& s, size_t* pos, uint32_t* v) {
  if (s.size() - *pos < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v = (*v << 8) | static_cast<uint8_t>(s[(*pos)++]);
  }
  return true;
}

bool GetU64(const std::string& s, size_t* pos, uint64_t* v) {
  if (s.size() - *pos < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v = (*v << 8) | static_cast<uint8_t>(s[(*pos)++]);
  }
  return true;
}

}  // namespace

std::string EncodeRecord(const MultiAttrRecord& record) {
  std::string out;
  out.reserve(8 + 4 + 8 * record.attrs.size() + 8 + record.value.size());
  PutU64(&out, static_cast<uint64_t>(record.id));
  PutU32(&out, static_cast<uint32_t>(record.attrs.size()));
  for (Key a : record.attrs) PutU64(&out, static_cast<uint64_t>(a));
  PutU64(&out, record.value.size());
  out += record.value;
  return out;
}

std::optional<MultiAttrRecord> DecodeRecord(const std::string& encoded) {
  MultiAttrRecord record;
  size_t pos = 0;
  uint64_t id = 0;
  uint32_t nattrs = 0;
  if (!GetU64(encoded, &pos, &id)) return std::nullopt;
  record.id = static_cast<int64_t>(id);
  if (!GetU32(encoded, &pos, &nattrs)) return std::nullopt;
  // An attribute count the remaining bytes cannot possibly hold is rejected
  // before the reserve (fail-closed against allocation bombs).
  if (nattrs > (encoded.size() - pos) / 8) return std::nullopt;
  record.attrs.reserve(nattrs);
  for (uint32_t k = 0; k < nattrs; ++k) {
    uint64_t a = 0;
    if (!GetU64(encoded, &pos, &a)) return std::nullopt;
    record.attrs.push_back(static_cast<Key>(a));
  }
  uint64_t len = 0;
  if (!GetU64(encoded, &pos, &len)) return std::nullopt;
  if (len != encoded.size() - pos) return std::nullopt;  // trailing/short bytes
  record.value = encoded.substr(pos);
  return record;
}

void MultiAttrOptions::Validate() const {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument("MultiAttrOptions: " + what);
  };
  if (base.shared_env != nullptr) {
    reject("base.shared_env must be null (the multi-attr db owns its chain)");
  }
  if (num_attrs == 0) reject("num_attrs must be >= 1");
  if (num_attrs > 256) reject("num_attrs must be <= 256");
  if (id_bits < 1 || id_bits > 40) reject("id_bits must be in [1, 40]");
  const Key lo = -(Key(1) << (63 - id_bits));
  const Key hi = (Key(1) << (63 - id_bits)) - 1;
  for (size_t i = 0; i < shard_bounds.size(); ++i) {
    if (shard_bounds[i] < lo || shard_bounds[i] > hi) {
      reject("shard bound outside the attribute domain");
    }
    if (i > 0 && shard_bounds[i] <= shard_bounds[i - 1]) {
      reject("shard bounds must be strictly ascending");
    }
  }
  base.Validate();
}

std::string MultiAttrDb::AttrContractName(uint32_t attr) {
  return "attr" + std::to_string(attr);
}

MultiAttrDb::MultiAttrDb(MultiAttrOptions options)
    : options_(std::move(options)) {
  options_.Validate();
  env_ = std::make_unique<chain::Environment>(options_.base.env);
  stores_.reserve(options_.num_attrs);
  contract_names_.resize(options_.num_attrs);
  const Key unit = Key(1) << options_.id_bits;
  for (uint32_t k = 0; k < options_.num_attrs; ++k) {
    if (options_.shard_bounds.empty()) {
      core::DbOptions per_attr = options_.base;
      per_attr.contract_name = AttrContractName(k);
      per_attr.shared_env = env_.get();
      contract_names_[k] = {per_attr.contract_name};
      stores_.push_back(
          std::make_unique<core::AuthenticatedDb>(std::move(per_attr)));
    } else {
      shard::ShardOptions per_attr;
      per_attr.base = options_.base;
      per_attr.bounds.reserve(options_.shard_bounds.size());
      // A partition bound at attribute value v cuts the composite keyspace at
      // v * 2^id_bits: every (v, id) pairing lands in the upper shard.
      for (Key b : options_.shard_bounds) per_attr.bounds.push_back(b * unit);
      per_attr.shared_env = env_.get();
      per_attr.contract_prefix = AttrContractName(k) + ".shard";
      for (size_t i = 0; i < per_attr.num_shards(); ++i) {
        contract_names_[k].push_back(per_attr.contract_prefix +
                                     std::to_string(i));
      }
      stores_.push_back(std::make_unique<shard::ShardedDb>(std::move(per_attr)));
    }
  }
}

MultiAttrDb::~MultiAttrDb() = default;

Key MultiAttrDb::AttrMin() const {
  return -(Key(1) << (63 - options_.id_bits));
}

Key MultiAttrDb::AttrMax() const {
  return (Key(1) << (63 - options_.id_bits)) - 1;
}

Key MultiAttrDb::CompositeKey(Key value, int64_t id) const {
  return value * (Key(1) << options_.id_bits) + id;
}

chain::TxReceipt MultiAttrDb::InsertRecord(const MultiAttrRecord& record) {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument("MultiAttrDb: " + what);
  };
  const int64_t max_id = (int64_t(1) << options_.id_bits) - 2;
  if (record.id < 0 || record.id > max_id) reject("record id out of range");
  if (record.attrs.size() != options_.num_attrs) {
    reject("record attribute count does not match the schema");
  }
  for (Key a : record.attrs) {
    if (a < AttrMin() || a > AttrMax()) {
      reject("attribute value outside the indexable domain");
    }
  }
  if (records_.count(record.id) != 0) reject("duplicate record id");
  const std::string encoded = EncodeRecord(record);
  chain::TxReceipt last;
  for (uint32_t k = 0; k < options_.num_attrs; ++k) {
    last = stores_[k]->Insert({CompositeKey(record.attrs[k], record.id), encoded});
    if (!last.ok) return last;
  }
  records_[record.id] = record;
  return last;
}

chain::TxReceipt MultiAttrDb::UpdateRecord(int64_t id,
                                           const std::string& value) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::invalid_argument("MultiAttrDb: unknown record id");
  }
  MultiAttrRecord updated = it->second;
  updated.value = value;
  const std::string encoded = EncodeRecord(updated);
  chain::TxReceipt last;
  for (uint32_t k = 0; k < options_.num_attrs; ++k) {
    last = stores_[k]->Update({CompositeKey(updated.attrs[k], id), encoded});
    if (!last.ok) return last;
  }
  it->second = std::move(updated);
  return last;
}

chain::TxReceipt MultiAttrDb::DeleteRecord(int64_t id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::invalid_argument("MultiAttrDb: unknown record id");
  }
  chain::TxReceipt last;
  for (uint32_t k = 0; k < options_.num_attrs; ++k) {
    last = stores_[k]->Delete(CompositeKey(it->second.attrs[k], id));
    if (!last.ok) return last;
  }
  records_.erase(it);
  return last;
}

chain::TxReceipt MultiAttrDb::Insert(const Object&) {
  throw std::logic_error("MultiAttrDb: use InsertRecord");
}

chain::TxReceipt MultiAttrDb::Update(const Object&) {
  throw std::logic_error("MultiAttrDb: use UpdateRecord");
}

chain::TxReceipt MultiAttrDb::Delete(Key) {
  throw std::logic_error("MultiAttrDb: use DeleteRecord");
}

chain::TxReceipt MultiAttrDb::InsertBatch(const std::vector<Object>&) {
  throw std::logic_error("MultiAttrDb: use InsertRecord");
}

bool MultiAttrDb::Contains(Key key) const {
  return records_.count(key) != 0;
}

uint64_t MultiAttrDb::size() const { return records_.size(); }

const MultiAttrRecord* MultiAttrDb::FindRecord(int64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

core::QueryResponse MultiAttrDb::QueryPredicate(uint32_t attr, Key lb,
                                                Key ub) const {
  if (attr >= options_.num_attrs) {
    throw std::invalid_argument("MultiAttrDb: unknown attribute");
  }
  return stores_[attr]->Query(lb, ub);
}

core::VerifiedResult MultiAttrDb::VerifyFor(
    Key lb, Key ub, const core::QueryResponse& response) {
  return stores_[0]->VerifyFor(lb, ub, response);
}

core::VerifiedResult MultiAttrDb::VerifyPredicateFor(
    uint32_t attr, Key lb, Key ub, const core::QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) {
  if (attr >= options_.num_attrs) {
    core::VerifiedResult out;
    out.ok = false;
    out.error = "predicate over unknown attribute";
    return out;
  }
  return VerifyPredicateForOn(*stores_[attr], 0, lb, ub, response, boundary);
}

core::VerifiedResult MultiAttrDb::VerifyPredicateAgainst(
    const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
    Key lb, Key ub, const core::QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) const {
  if (attr >= options_.num_attrs) {
    core::VerifiedResult out;
    out.ok = false;
    out.error = "predicate over unknown attribute";
    return out;
  }
  return VerifyPredicateAgainstOn(*stores_[attr], SliceStates(attr, states), 0,
                                  lb, ub, response, boundary);
}

void MultiAttrDb::MapPredicateRange(uint32_t /*attr*/, Key lb, Key ub,
                                    Key* tree_lb, Key* tree_ub) const {
  const Key lo = AttrMin();
  const Key hi = AttrMax();
  const Key unit = Key(1) << options_.id_bits;
  if (lb > hi || ub < lo) {
    // The predicate misses the attribute domain entirely. The reserved top id
    // slot is never inserted, so this singleton is provably recordless: the
    // query still yields a full completeness proof of an empty answer.
    *tree_lb = *tree_ub = lo * unit + (unit - 1);
    return;
  }
  const Key lb_c = lb < lo ? lo : lb;
  const Key ub_c = ub > hi ? hi : ub;
  *tree_lb = lb_c * unit;
  *tree_ub = ub_c * unit + (unit - 1);
}

Key MultiAttrDb::DecodeAttrValue(uint32_t /*attr*/, Key tree_key) const {
  // Arithmetic shift = floor division by 2^id_bits (C++20), undoing
  // value * 2^id_bits + id for 0 <= id < 2^id_bits at either sign.
  return tree_key >> options_.id_bits;
}

bool MultiAttrDb::CanonicalizeSpecObject(uint32_t attr, const Object& in,
                                         Object* out,
                                         std::string* error) const {
  std::optional<MultiAttrRecord> record = DecodeRecord(in.value);
  if (!record.has_value()) {
    *error = "undecodable record payload";
    return false;
  }
  if (record->attrs.size() != options_.num_attrs) {
    *error = "record attribute count does not match the schema";
    return false;
  }
  const int64_t max_id = (int64_t(1) << options_.id_bits) - 2;
  if (record->id < 0 || record->id > max_id) {
    *error = "record id out of range";
    return false;
  }
  // The index position must be the record's own claim: a payload swapped
  // under another composite key (or vice versa) dies here.
  if (in.key != CompositeKey(record->attrs[attr], record->id)) {
    *error = "composite key does not match the record";
    return false;
  }
  out->key = record->id;
  out->value = in.value;
  return true;
}

std::vector<chain::AuthenticatedState> MultiAttrDb::ReadChainState() {
  std::vector<std::string> names;
  for (const auto& per_attr : contract_names_) {
    names.insert(names.end(), per_attr.begin(), per_attr.end());
  }
  return env_->ReadAuthenticatedStates(names);
}

std::vector<chain::AuthenticatedState> MultiAttrDb::SliceStates(
    uint32_t attr, const std::vector<chain::AuthenticatedState>& states) const {
  const std::vector<std::string>& names = contract_names_[attr];
  std::vector<chain::AuthenticatedState> out;
  out.reserve(names.size());
  for (const chain::AuthenticatedState& s : states) {
    if (std::find(names.begin(), names.end(), s.contract) != names.end()) {
      out.push_back(s);
    }
  }
  return out;
}

core::VerifiedResult MultiAttrDb::VerifyAgainst(
    const std::vector<chain::AuthenticatedState>& states,
    const core::QueryResponse& response) const {
  return stores_[0]->VerifyAgainst(SliceStates(0, states), response);
}

void MultiAttrDb::ApplySpPool(common::ThreadPool* pool) {
  for (const auto& store : stores_) ApplySpPoolTo(*store, pool);
}

bool MultiAttrDb::poisoned() const {
  for (const auto& store : stores_) {
    if (store->poisoned()) return true;
  }
  return false;
}

std::string MultiAttrDb::BackendName() const {
  return "multiattr(" + std::to_string(options_.num_attrs) + ")/" +
         stores_[0]->BackendName();
}

void MultiAttrDb::CheckConsistency() const {
  for (const auto& store : stores_) store->CheckConsistency();
  for (const auto& [id, record] : records_) {
    for (uint32_t k = 0; k < options_.num_attrs; ++k) {
      if (!stores_[k]->Contains(CompositeKey(record.attrs[k], id))) {
        throw std::logic_error(
            "MultiAttrDb: record missing from an attribute index");
      }
    }
  }
}

}  // namespace gem2::multiattr
