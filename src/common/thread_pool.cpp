#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

namespace gem2::common {
namespace {

/// Index of the calling thread within its pool, or SIZE_MAX for external
/// threads. Thread-local so one process can host several pools; a thread
/// only ever belongs to one.
thread_local size_t tls_worker_index = SIZE_MAX;
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

size_t ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("GEM2_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<size_t>(parsed) - 1;  // caller counts
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  wakeup_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(Task task) {
  if (queues_.empty()) {
    // No workers: degrade to immediate execution on the caller.
    task();
    return;
  }
  size_t target = tls_worker_pool == this ? tls_worker_index
                                          : next_queue_.fetch_add(
                                                1, std::memory_order_relaxed) %
                                                queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // The empty critical section pairs with the predicate check inside
  // wakeup_.wait(): without it a worker that just saw pending_ == 0 could go
  // to sleep after this notify and miss the task forever.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  wakeup_.notify_one();
}

bool ThreadPool::PopTask(size_t preferred, Task* out) {
  const size_t n = queues_.size();
  if (n == 0) return false;
  // Own deque back (LIFO), then steal round-robin from the front (FIFO).
  if (preferred < n) {
    Queue& own = *queues_[preferred];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  const size_t start = preferred < n ? preferred + 1 : 0;
  for (size_t k = 0; k < n; ++k) {
    Queue& victim = *queues_[(start + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  Task task;
  const size_t preferred =
      tls_worker_pool == this ? tls_worker_index : SIZE_MAX;
  if (!PopTask(preferred, &task)) return false;
  pending_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker_index = index;
  tls_worker_pool = this;
  while (true) {
    if (TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wakeup_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const size_t total = end - begin;
  const size_t chunks = (total + grain - 1) / grain;

  // One shared cursor hands out chunks; whoever grabs a chunk runs it. The
  // caller participates, so a zero-worker pool is plain serial execution.
  struct Shared {
    std::atomic<size_t> cursor;
    std::atomic<size_t> active_helpers{0};
    std::atomic<bool> failed{false};
    std::exception_ptr exception;
    std::mutex exception_mutex;
  };
  auto shared = std::make_shared<Shared>();
  shared->cursor.store(begin, std::memory_order_relaxed);

  auto drain = [shared, end, grain, &body] {
    while (true) {
      const size_t chunk =
          shared->cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk >= end || shared->failed.load(std::memory_order_acquire)) break;
      try {
        body(chunk, std::min(chunk + grain, end));
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->exception_mutex);
        if (!shared->exception) shared->exception = std::current_exception();
        shared->failed.store(true, std::memory_order_release);
        break;
      }
    }
  };

  const size_t helpers = std::min(num_threads(), chunks > 0 ? chunks - 1 : 0);
  for (size_t i = 0; i < helpers; ++i) {
    shared->active_helpers.fetch_add(1, std::memory_order_acq_rel);
    // Helpers capture `shared` by value (not `body` by reference via drain's
    // lifetime): the lambda below must outlive this stack frame only until
    // active_helpers drops to zero, which the caller waits for.
    Submit([shared, drain] {
      drain();
      shared->active_helpers.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  drain();

  // Wait for helpers, stealing other pool work instead of spinning so that
  // nested ParallelFor calls from pool tasks cannot deadlock.
  while (shared->active_helpers.load(std::memory_order_acquire) > 0) {
    if (!TryRunOneTask()) std::this_thread::yield();
  }
  if (shared->exception) std::rethrow_exception(shared->exception);
}

}  // namespace gem2::common
