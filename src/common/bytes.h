/// \file bytes.h
/// Byte-buffer helpers: fixed-width big-endian encoding of integral types,
/// word <-> integer conversion, and hex formatting. All encodings are
/// deterministic so that digests computed by the smart contract and by the
/// service provider agree bit-for-bit.
#ifndef GEM2_COMMON_BYTES_H_
#define GEM2_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gem2 {

using Bytes = std::vector<uint8_t>;

/// Appends `v` to `out` as 8 big-endian bytes (two's complement for signed).
void AppendUint64(Bytes* out, uint64_t v);
void AppendKey(Bytes* out, Key k);

/// Appends the raw 32 bytes of a hash/word.
void AppendHash(Bytes* out, const Hash& h);

/// Appends the raw bytes of a string payload.
void AppendString(Bytes* out, const std::string& s);

/// Packs an unsigned integer into a 32-byte word (big-endian, zero padded).
Word WordFromUint64(uint64_t v);
uint64_t Uint64FromWord(const Word& w);

/// Packs a signed key into a word and back (two's complement in low 8 bytes).
Word WordFromKey(Key k);
Key KeyFromWord(const Word& w);

/// Lower-case hex string of arbitrary bytes; `HexAbbrev` keeps the first
/// `n` bytes ("1a2b3c..").
std::string ToHex(const uint8_t* data, size_t len);
std::string ToHex(const Hash& h);
std::string HexAbbrev(const Hash& h, size_t n = 4);

/// Number of 32-byte words needed to hold `byte_len` bytes (rounded up).
inline uint64_t WordsForBytes(uint64_t byte_len) { return (byte_len + 31) / 32; }

}  // namespace gem2

#endif  // GEM2_COMMON_BYTES_H_
