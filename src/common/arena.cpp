#include "common/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gem2::common {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

FileMappedArena::~FileMappedArena() {
  if (base_ != nullptr) munmap(base_, capacity_);
  if (fd_ >= 0) close(fd_);
}

std::unique_ptr<FileMappedArena> FileMappedArena::Create(
    const std::string& path, size_t capacity, std::string* error) {
  // mmap of zero bytes is invalid; a zero-capacity checkpoint still needs a
  // mappable file.
  if (capacity == 0) capacity = 1;
  int fd = open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open " + path);
    return nullptr;
  }
  if (ftruncate(fd, static_cast<off_t>(capacity)) != 0) {
    if (error != nullptr) *error = Errno("ftruncate " + path);
    close(fd);
    return nullptr;
  }
  void* base =
      mmap(nullptr, capacity, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    if (error != nullptr) *error = Errno("mmap " + path);
    close(fd);
    return nullptr;
  }
  auto arena = std::unique_ptr<FileMappedArena>(new FileMappedArena);
  arena->path_ = path;
  arena->base_ = static_cast<uint8_t*>(base);
  arena->capacity_ = capacity;
  arena->fd_ = fd;
  arena->writable_ = true;
  return arena;
}

std::unique_ptr<FileMappedArena> FileMappedArena::OpenReadOnly(
    const std::string& path, std::string* error) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open " + path);
    return nullptr;
  }
  struct stat st {};
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    if (error != nullptr) *error = Errno("fstat " + path);
    close(fd);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    if (error != nullptr) *error = "empty file: " + path;
    close(fd);
    return nullptr;
  }
  void* base = mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    if (error != nullptr) *error = Errno("mmap " + path);
    close(fd);
    return nullptr;
  }
  auto arena = std::unique_ptr<FileMappedArena>(new FileMappedArena);
  arena->path_ = path;
  arena->base_ = static_cast<uint8_t*>(base);
  arena->capacity_ = size;
  arena->used_ = size;
  arena->fd_ = fd;
  arena->writable_ = false;
  return arena;
}

uint8_t* FileMappedArena::Allocate(size_t size) {
  if (!writable_ || used_ + size > capacity_) return nullptr;
  uint8_t* out = base_ + used_;
  used_ += size;
  return out;
}

bool FileMappedArena::Seal(std::string* error) {
  if (!writable_) {
    if (error != nullptr) *error = "Seal on a read-only mapping";
    return false;
  }
  if (msync(base_, capacity_, MS_SYNC) != 0) {
    if (error != nullptr) *error = Errno("msync " + path_);
    return false;
  }
  const size_t final_size = used_ == 0 ? 1 : used_;
  if (ftruncate(fd_, static_cast<off_t>(final_size)) != 0) {
    if (error != nullptr) *error = Errno("ftruncate " + path_);
    return false;
  }
  // Make the shrunk length itself durable before the caller renames the file
  // into place — rename-to-publish promises the *whole* checkpoint is on
  // stable storage.
  if (fsync(fd_) != 0) {
    if (error != nullptr) *error = Errno("fsync " + path_);
    return false;
  }
  return true;
}

}  // namespace gem2::common
