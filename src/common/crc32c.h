/// \file crc32c.h
/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// integrity checksum framing every byte the durable store writes to disk:
/// journal record frames, segment headers, and checkpoint page footers.
///
/// CRC32C detects all single-bit and all burst errors up to 32 bits, so a
/// record whose checksum matches was not hit by the bit-rot or torn-write
/// faults the recovery scan is defending against; a mismatch is attributable
/// corruption, never ambiguity. The implementation is a portable slice-by-4
/// table walk — no SSE4.2 dependency, bit-identical on every host.
#ifndef GEM2_COMMON_CRC32C_H_
#define GEM2_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace gem2::common {

/// CRC32C of `data[0..len)` continuing from `seed` (pass 0 to start; chain
/// calls to checksum discontiguous spans as one stream).
uint32_t Crc32c(const uint8_t* data, size_t len, uint32_t seed = 0);

}  // namespace gem2::common

#endif  // GEM2_COMMON_CRC32C_H_
