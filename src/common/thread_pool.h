/// \file thread_pool.h
/// A small work-stealing thread pool for the off-chain (SP/client) side of
/// the system. On-chain gas metering stays strictly single-threaded — pools
/// are only ever handed to unmetered code paths.
///
/// Design (see docs/PERFORMANCE.md):
///   - one lock-guarded deque per worker; owners pop LIFO (cache-hot), idle
///     workers steal FIFO from victims (oldest work first);
///   - ParallelFor carves [begin, end) into grain-sized chunks handed out
///     through one shared atomic cursor, so chunks self-balance across
///     workers regardless of per-chunk cost;
///   - the calling thread always participates, and while waiting for helpers
///     it steals other pool work instead of blocking, which makes *nested*
///     ParallelFor calls from inside pool tasks deadlock-free;
///   - a pool with zero worker threads degrades to plain serial execution
///     (the caller runs every chunk), which is also the fallback wherever a
///     `ThreadPool*` parameter is nullptr.
#ifndef GEM2_COMMON_THREAD_POOL_H_
#define GEM2_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gem2::common {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `num_threads` worker threads in addition to callers; 0 means
  /// DefaultThreads(). The pool is ready immediately.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues one task. Pool-thread callers push to their own deque
  /// (LIFO locality); external callers round-robin across workers.
  void Submit(Task task);

  /// Runs body(chunk_begin, chunk_end) over [begin, end) in grain-sized
  /// chunks, on the pool plus the calling thread. Returns when every chunk
  /// has finished. The first exception thrown by any chunk is rethrown on
  /// the caller. `grain` < 1 is treated as 1.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Process-wide pool, sized by GEM2_THREADS (default: hardware threads
  /// minus one, so the caller's thread brings the total to the hardware
  /// concurrency). Created on first use.
  static ThreadPool& Global();

  /// Worker count Global() would use (reads GEM2_THREADS).
  static size_t DefaultThreads();

  /// Runs one queued task if any is available (own deque first for pool
  /// threads, then stealing). Returns false when every deque was empty.
  /// Public so a caller blocked on pool-produced work (e.g. a pipelined
  /// block seal) can help drain queues instead of sleeping.
  bool TryRunOneTask();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);
  bool PopTask(size_t preferred, Task* out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mutex_;
  std::condition_variable wakeup_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gem2::common

#endif  // GEM2_COMMON_THREAD_POOL_H_
