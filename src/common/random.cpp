#include "common/random.h"

namespace gem2 {

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

}  // namespace gem2
