#include "common/bytes.h"

namespace gem2 {

void AppendUint64(Bytes* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void AppendKey(Bytes* out, Key k) { AppendUint64(out, static_cast<uint64_t>(k)); }

void AppendHash(Bytes* out, const Hash& h) { out->insert(out->end(), h.begin(), h.end()); }

void AppendString(Bytes* out, const std::string& s) {
  out->insert(out->end(), s.begin(), s.end());
}

Word WordFromUint64(uint64_t v) {
  Word w{};
  for (int i = 0; i < 8; ++i) {
    w[31 - i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
  return w;
}

uint64_t Uint64FromWord(const Word& w) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(w[31 - i]) << (8 * i);
  }
  return v;
}

Word WordFromKey(Key k) { return WordFromUint64(static_cast<uint64_t>(k)); }

Key KeyFromWord(const Word& w) { return static_cast<Key>(Uint64FromWord(w)); }

std::string ToHex(const uint8_t* data, size_t len) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kDigits[data[i] >> 4]);
    s.push_back(kDigits[data[i] & 0x0f]);
  }
  return s;
}

std::string ToHex(const Hash& h) { return ToHex(h.data(), h.size()); }

std::string HexAbbrev(const Hash& h, size_t n) {
  return ToHex(h.data(), n < h.size() ? n : h.size()) + "..";
}

}  // namespace gem2
