/// \file arena.h
/// Bump (arena) allocator for node graphs that are built once and torn down
/// together — Merkle Patricia Trie nodes in particular. A naive trie pays one
/// heap allocation per node plus one free per node on teardown; an arena turns
/// both into pointer bumps over a handful of large blocks.
///
/// Objects are allocated with New<T>(); non-trivially-destructible types have
/// their destructors registered and run on Clear() or arena destruction, so
/// nodes may freely own vectors/strings. Clear() keeps the blocks (epoch
/// reuse): a structure rebuilt every block reuses the same memory instead of
/// round-tripping through the heap.
///
/// Not thread-safe: one arena belongs to one single-threaded structure (the
/// metered chain side). Allocation stats feed bench/simulator_throughput's
/// arena-vs-heap accounting.
#ifndef GEM2_COMMON_ARENA_H_
#define GEM2_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace gem2::common {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1 << 16;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < 64 ? 64 : block_bytes) {}

  ~Arena() { RunDestructors(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Constructs a T inside the arena. The pointer stays valid until Clear()
  /// or destruction; never delete it.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    ++stats_.allocations;
    GlobalStats().allocations += 1;
    return obj;
  }

  /// Raw aligned allocation from the current block (a fresh block is chained
  /// on when the request does not fit; oversized requests get a dedicated
  /// block).
  void* Allocate(size_t size, size_t align) {
    if (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      size_t aligned = (b.used + align - 1) & ~(align - 1);
      if (aligned + size <= b.capacity) {
        b.used = aligned + size;
        stats_.bytes += size;
        return b.data.get() + aligned;
      }
      // Try the next retained block (after Clear()) before growing.
      if (active_ + 1 < blocks_.size()) {
        ++active_;
        return Allocate(size, align);
      }
    }
    const size_t cap = size + align > block_bytes_ ? size + align : block_bytes_;
    blocks_.push_back({std::make_unique<char[]>(cap), cap, 0});
    active_ = blocks_.size() - 1;
    ++stats_.blocks;
    return Allocate(size, align);
  }

  /// Runs pending destructors and resets every block's bump pointer without
  /// releasing the memory — the epoch-reuse path for rebuild-heavy callers.
  void Clear() {
    RunDestructors();
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
    ++stats_.epochs;
  }

  struct Stats {
    uint64_t allocations = 0;  // objects placed via New<T>()
    uint64_t bytes = 0;        // payload bytes handed out
    uint64_t blocks = 0;       // heap blocks ever acquired
    uint64_t epochs = 0;       // Clear() calls (block-reuse cycles)
  };

  const Stats& stats() const { return stats_; }

  /// Process-wide allocation counter across every arena, for the
  /// arena-vs-heap comparison in BENCH_simulator.json. Not atomic: arenas
  /// live on the single-threaded metered side.
  static Stats& GlobalStats() {
    static Stats stats;
    return stats;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };
  struct DtorRecord {
    void (*fn)(void*);
    void* obj;
  };

  void RunDestructors() {
    // Reverse order: later objects may reference earlier ones.
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) it->fn(it->obj);
    dtors_.clear();
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t active_ = 0;
  std::vector<DtorRecord> dtors_;
  Stats stats_;
};

}  // namespace gem2::common

#endif  // GEM2_COMMON_ARENA_H_
