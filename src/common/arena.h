/// \file arena.h
/// Bump (arena) allocator for node graphs that are built once and torn down
/// together — Merkle Patricia Trie nodes in particular. A naive trie pays one
/// heap allocation per node plus one free per node on teardown; an arena turns
/// both into pointer bumps over a handful of large blocks.
///
/// Objects are allocated with New<T>(); non-trivially-destructible types have
/// their destructors registered and run on Clear() or arena destruction, so
/// nodes may freely own vectors/strings. Clear() keeps the blocks (epoch
/// reuse): a structure rebuilt every block reuses the same memory instead of
/// round-tripping through the heap.
///
/// Not thread-safe: one arena belongs to one single-threaded structure (the
/// metered chain side). Allocation stats feed bench/simulator_throughput's
/// arena-vs-heap accounting.
#ifndef GEM2_COMMON_ARENA_H_
#define GEM2_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace gem2::common {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1 << 16;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < 64 ? 64 : block_bytes) {}

  ~Arena() { RunDestructors(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Constructs a T inside the arena. The pointer stays valid until Clear()
  /// or destruction; never delete it.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    ++stats_.allocations;
    GlobalStats().allocations += 1;
    return obj;
  }

  /// Raw aligned allocation from the current block (a fresh block is chained
  /// on when the request does not fit; oversized requests get a dedicated
  /// block).
  void* Allocate(size_t size, size_t align) {
    if (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      size_t aligned = (b.used + align - 1) & ~(align - 1);
      if (aligned + size <= b.capacity) {
        b.used = aligned + size;
        stats_.bytes += size;
        return b.data.get() + aligned;
      }
      // Try the next retained block (after Clear()) before growing.
      if (active_ + 1 < blocks_.size()) {
        ++active_;
        return Allocate(size, align);
      }
    }
    const size_t cap = size + align > block_bytes_ ? size + align : block_bytes_;
    blocks_.push_back({std::make_unique<char[]>(cap), cap, 0});
    active_ = blocks_.size() - 1;
    ++stats_.blocks;
    return Allocate(size, align);
  }

  /// Runs pending destructors and resets every block's bump pointer without
  /// releasing the memory — the epoch-reuse path for rebuild-heavy callers.
  void Clear() {
    RunDestructors();
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
    ++stats_.epochs;
  }

  struct Stats {
    uint64_t allocations = 0;  // objects placed via New<T>()
    uint64_t bytes = 0;        // payload bytes handed out
    uint64_t blocks = 0;       // heap blocks ever acquired
    uint64_t epochs = 0;       // Clear() calls (block-reuse cycles)
  };

  const Stats& stats() const { return stats_; }

  /// Process-wide allocation counter across every arena, for the
  /// arena-vs-heap comparison in BENCH_simulator.json. Not atomic: arenas
  /// live on the single-threaded metered side.
  static Stats& GlobalStats() {
    static Stats stats;
    return stats;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };
  struct DtorRecord {
    void (*fn)(void*);
    void* obj;
  };

  void RunDestructors() {
    // Reverse order: later objects may reference earlier ones.
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) it->fn(it->obj);
    dtors_.clear();
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t active_ = 0;
  std::vector<DtorRecord> dtors_;
  Stats stats_;
};

/// Bump arena whose backing memory is a file mapping (mmap): the page store
/// the durable SP engine checkpoints ADS state into at epoch boundaries.
///
/// A writer Create()s the arena over a fresh file sized to `capacity`, bumps
/// checkpoint pages into the mapping with Allocate(), then Seal()s: the file
/// is msync'd and truncated to the bytes actually used, after which the
/// caller publishes it with an atomic rename. A reader OpenReadOnly()s the
/// published file and walks the mapped bytes in place — no read syscalls, no
/// copy; the kernel pages data in on demand, which is what lets a checkpoint
/// restore stream at memory bandwidth instead of replaying the op log.
///
/// Unlike Arena this is fixed-capacity (checkpoint sizes are known up front)
/// and holds raw bytes only — no destructor registry; integrity is the
/// caller's page-footer checksums, not the arena's concern. Not thread-safe.
class FileMappedArena {
 public:
  ~FileMappedArena();

  FileMappedArena(const FileMappedArena&) = delete;
  FileMappedArena& operator=(const FileMappedArena&) = delete;

  /// Creates (truncating) `path` sized to `capacity` bytes and maps it
  /// read-write. Returns nullptr with `*error` set on any syscall failure.
  static std::unique_ptr<FileMappedArena> Create(const std::string& path,
                                                 size_t capacity,
                                                 std::string* error);

  /// Maps an existing file read-only (used() == capacity() == file size).
  static std::unique_ptr<FileMappedArena> OpenReadOnly(const std::string& path,
                                                       std::string* error);

  /// Bumps `size` bytes out of the mapping (write mode only). Returns nullptr
  /// when the request exceeds the remaining capacity.
  uint8_t* Allocate(size_t size);

  /// Flushes the mapping to stable storage (msync) and shrinks the file to
  /// the allocated length. The arena stays mapped and readable.
  bool Seal(std::string* error);

  const uint8_t* data() const { return base_; }
  uint8_t* mutable_data() { return writable_ ? base_ : nullptr; }
  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  const std::string& path() const { return path_; }

 private:
  FileMappedArena() = default;

  std::string path_;
  uint8_t* base_ = nullptr;
  size_t capacity_ = 0;
  size_t used_ = 0;
  int fd_ = -1;
  bool writable_ = false;
};

}  // namespace gem2::common

#endif  // GEM2_COMMON_ARENA_H_
