#include "common/crc32c.h"

#include <array>

namespace gem2::common {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t len, uint32_t seed) {
  uint32_t crc = ~seed;
  // Slice-by-4 over aligned quads, byte-at-a-time for the tail.
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    data += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *data++) & 0xFF];
  }
  return ~crc;
}

}  // namespace gem2::common
