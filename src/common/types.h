/// \file types.h
/// Core value types shared by every module of the GEM2-tree library.
#ifndef GEM2_COMMON_TYPES_H_
#define GEM2_COMMON_TYPES_H_

#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace gem2 {

/// Search key of a data object. The paper uses 4-byte keys; we use a signed
/// 64-bit integer and account storage at 32-byte word granularity, which packs
/// identically into one EVM word.
using Key = int64_t;

/// Smallest / largest representable search keys (used as open boundaries).
inline constexpr Key kKeyMin = std::numeric_limits<Key>::min();
inline constexpr Key kKeyMax = std::numeric_limits<Key>::max();

/// A 256-bit digest (Keccak-256 output) and, equivalently, one EVM storage word.
using Hash = std::array<uint8_t, 32>;
using Word = Hash;

/// A data object as produced by a data owner: search key plus opaque payload.
/// Only `h(value)` ever reaches the blockchain; the raw value lives at the SP.
struct Object {
  Key key = 0;
  std::string value;

  friend bool operator==(const Object& a, const Object& b) = default;
};

/// One-based storage location inside the append-only on-chain key log
/// (`key_storage` in the paper). Location 0 means "not present".
using Loc = uint64_t;

}  // namespace gem2

#endif  // GEM2_COMMON_TYPES_H_
