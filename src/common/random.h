/// \file random.h
/// Deterministic pseudo-random number utilities. Every stochastic component of
/// the library (workload generation, PoW nonce search in tests) goes through
/// this RNG so runs are reproducible given a seed.
#ifndef GEM2_COMMON_RANDOM_H_
#define GEM2_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace gem2 {

/// Thin wrapper around a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  uint64_t Uniform(uint64_t lo, uint64_t hi);
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gem2

#endif  // GEM2_COMMON_RANDOM_H_
