#include "telemetry/event_log.h"

#include <cstdlib>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

#ifndef GEM2_TELEMETRY_DISABLED

namespace gem2::telemetry {
namespace {

thread_local std::vector<std::pair<std::string, std::string>> g_thread_fields;

}  // namespace

EventLog& EventLog::Global() {
  static EventLog* log = [] {
    auto* l = new EventLog();
    if (const char* path = std::getenv("GEM2_EVENT_LOG");
        path != nullptr && path[0] != '\0') {
      l->Open(path);
    }
    return l;
  }();
  return *log;
}

bool EventLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    path_.clear();
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "[gem2.telemetry] cannot open event log '%s'\n",
                 path.c_str());
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  file_ = f;
  path_ = path;
  lines_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
}

std::string EventLog::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

void EventLog::Emit(Event event) {
  if (!enabled()) return;

  // Serialize outside the file lock: only the write itself is contended.
  std::string line;
  line.reserve(160);
  line += "{\"type\":\"";
  line += JsonEscape(event.type_);
  line += "\",\"ts_ns\":";
  line += std::to_string(Tracer::NowNs());
  line += ",\"thread\":";
  line += std::to_string(Tracer::ThreadId());
  const TraceContext trace = CurrentTrace();
  if (trace.valid()) {
    line += ",\"trace\":\"";
    line += trace.TraceIdHex();
    line += "\"";
  }
  for (const auto& [key, value] : event.numbers_) {
    line += ",\"";
    line += JsonEscape(key);
    line += "\":";
    line += std::to_string(value);
  }
  for (const auto& [key, value] : event.strings_) {
    line += ",\"";
    line += JsonEscape(key);
    line += "\":\"";
    line += JsonEscape(value);
    line += "\"";
  }
  for (const auto& [key, value] : g_thread_fields) {
    line += ",\"";
    line += JsonEscape(key);
    line += "\":\"";
    line += JsonEscape(value);
    line += "\"";
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;  // closed between the gate and here
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

ScopedEventFields::ScopedEventFields(
    std::initializer_list<std::pair<std::string_view, std::string>> fields) {
  for (const auto& [key, value] : fields) {
    g_thread_fields.emplace_back(std::string(key), value);
    ++pushed_;
  }
}

ScopedEventFields::~ScopedEventFields() {
  g_thread_fields.resize(g_thread_fields.size() - pushed_);
}

std::vector<std::pair<std::string, std::string>> ScopedEventFields::Current() {
  return g_thread_fields;
}

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_DISABLED
