/// \file introspect.h
/// Live introspection surface: renders the process's full observability state
/// — metrics registry, reservoir quantiles, and any registered provider facts
/// (Keccak permutation count, arena stats, ...) — as Prometheus text
/// exposition or JSON, on demand, at process exit (GEM2_METRICS_DUMP), or on
/// SIGUSR1 (GEM2_INTROSPECT_SIGUSR1 / InstallSigUsr1Dump).
///
/// Providers exist because the telemetry library sits below crypto/chain in
/// the layering: higher layers push callbacks down (RegisterProvider) instead
/// of telemetry reaching up.
#ifndef GEM2_TELEMETRY_INTROSPECT_H_
#define GEM2_TELEMETRY_INTROSPECT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace gem2::telemetry {

/// Snapshot of one subsystem's facts: ("keccak.permutations", 12345), ...
using ProviderFacts = std::vector<std::pair<std::string, uint64_t>>;
using ProviderFn = std::function<ProviderFacts()>;

/// Process-wide set of named fact providers. Registration replaces any
/// previous provider of the same name (idempotent re-registration).
class Introspection {
 public:
  static Introspection& Global();

  void RegisterProvider(const std::string& name, ProviderFn fn);
  void UnregisterProvider(const std::string& name);

  /// Every provider's facts, keys prefixed "provider." and sorted.
  ProviderFacts Collect() const;

 private:
  Introspection() = default;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, ProviderFn>> providers_;
};

/// A metric name as exported to Prometheus: lowercased, '.'/'-' become '_',
/// anything else non-alphanumeric dropped, "gem2_" prefix prepended.
std::string PrometheusName(const std::string& name);

/// Renders `snapshot` plus `facts` in Prometheus text exposition format
/// (counters as <name>_total, histograms as summaries with quantile labels).
std::string PrometheusExposition(const MetricsSnapshot& snapshot,
                                 const ProviderFacts& facts);

/// PrometheusExposition of the global registry and global providers.
std::string PrometheusExposition();

/// Same content as one JSON object (counters/gauges/histograms/providers).
std::string IntrospectionJson();

/// Installs a SIGUSR1 handler (async-signal-safe: it only sets a flag) plus a
/// detached watcher thread that services the flag by writing the current
/// exposition to GEM2_INTROSPECT_PATH (appending) or stderr. Idempotent.
void InstallSigUsr1Dump();

/// Dumps serviced since InstallSigUsr1Dump (lets tests await the watcher).
uint64_t SigUsr1DumpCount();

/// Arms the process-exit and signal hooks from the environment (idempotent;
/// called lazily from MetricsRegistry::Global()):
///   GEM2_METRICS_DUMP=<path>    append a full exposition at process exit
///   GEM2_INTROSPECT_SIGUSR1=1   InstallSigUsr1Dump()
void ArmProcessDumpHooksFromEnv();

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_INTROSPECT_H_
