/// \file metrics.h
/// Process-wide registry of named counters, gauges, and histograms.
///
/// Registration (first use of a name) takes a mutex; every subsequent
/// increment is a plain atomic op on a stable object, so hot paths hold no
/// locks. Snapshots are deterministic: metrics are reported sorted by name,
/// and identical workloads produce identical snapshots.
#ifndef GEM2_TELEMETRY_METRICS_H_
#define GEM2_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gem2::telemetry {

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two bucketed histogram: bucket i counts observations v with
/// 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). Tracks count/sum/min/max.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const;  // 0 when empty
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }
  double mean() const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;       // sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;          // sorted by name
  struct HistogramStats {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0;
  };
  std::vector<HistogramStats> histograms;  // sorted by name

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&);
};

bool operator==(const MetricsSnapshot::HistogramStats& a,
                const MetricsSnapshot::HistogramStats& b);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// The returned reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric (names stay registered).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// A counter family "prefix.0" ... "prefix.<n-1>": the registry lookup (mutex
/// + string build) is paid once per index at construction, so per-index hot
/// paths — e.g. one counter per shard — increment a cached atomic directly.
class IndexedCounters {
 public:
  IndexedCounters(MetricsRegistry& registry, const std::string& prefix,
                  size_t n) {
    counters_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      counters_.push_back(&registry.counter(prefix + "." + std::to_string(i)));
    }
  }

  Counter& at(size_t i) { return *counters_[i]; }
  size_t size() const { return counters_.size(); }

 private:
  std::vector<Counter*> counters_;
};

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_METRICS_H_
