/// \file metrics.h
/// Process-wide registry of named counters, gauges, and histograms.
///
/// Registration (first use of a name) takes a mutex; every subsequent
/// increment is a plain atomic op on a stable object, so hot paths hold no
/// locks. Snapshots are deterministic: metrics are reported sorted by name,
/// and identical workloads produce identical snapshots.
///
/// Histograms carry two representations: lock-free power-of-two buckets with
/// count/sum/min/max (bit-deterministic, cheap), and a fixed-memory reservoir
/// sample (Vitter's Algorithm R) from which exact-data quantiles — p50, p99,
/// p999 — are computed at snapshot time. The reservoir is exact while the
/// observation count fits its capacity and an unbiased uniform sample after.
#ifndef GEM2_TELEMETRY_METRICS_H_
#define GEM2_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gem2::telemetry {

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Quantile summary of a histogram's reservoir sample. Values are exact order
/// statistics of the sampled data (exact over *all* data while count <=
/// reservoir capacity).
struct QuantileSummary {
  uint64_t samples = 0;  // reservoir occupancy the quantiles were cut from
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// Power-of-two bucketed histogram: bucket i counts observations v with
/// 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). Tracks count/sum/min/max
/// plus a fixed-memory reservoir for exact-quantile reporting.
///
/// Reset() vs concurrent readers is coordinated by a single generation
/// counter (odd while a reset is in flight, bumped to even when it
/// completes), so snapshot readers never publish a count/sum pair torn
/// across a reset epoch.
class Histogram {
 public:
  static constexpr int kBuckets = 65;
  static constexpr size_t kReservoirCapacity = 4096;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const;  // 0 when empty
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }
  double mean() const;

  /// Order statistic at rank q (0 <= q <= 1) of the reservoir sample, with
  /// linear interpolation between adjacent samples; 0 when empty.
  double Quantile(double q) const;

  /// p50/p99/p999 from one consistent copy of the reservoir (one lock, one
  /// sort — cheaper than three Quantile calls).
  QuantileSummary Quantiles() const;

  /// Even outside a reset; odd while one is in flight. Readers needing a
  /// coherent multi-field view read it before and after (see Reset()).
  uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

  void Reset();

 private:
  friend class MetricsRegistry;

  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  /// Reset-epoch generation: incremented to odd at reset start, to even at
  /// reset end. Observe() never touches it, so readers cannot livelock.
  std::atomic<uint64_t> generation_{0};
  /// Observations offered to the reservoir this epoch (assigns slots while
  /// filling, then drives the Algorithm R replacement probability).
  std::atomic<uint64_t> reservoir_n_{0};
  mutable std::mutex reservoir_mutex_;
  uint64_t reservoir_[kReservoirCapacity] = {};  // guarded by reservoir_mutex_
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;       // sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;          // sorted by name
  struct HistogramStats {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0;
    /// Reservoir quantiles. Excluded from operator== — the reservoir's
    /// contents depend on thread interleaving once it overflows, and
    /// equality is used to assert serial/parallel metric equivalence.
    QuantileSummary quantiles;
  };
  std::vector<HistogramStats> histograms;  // sorted by name

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&);
};

bool operator==(const MetricsSnapshot::HistogramStats& a,
                const MetricsSnapshot::HistogramStats& b);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// The returned reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric (names stay registered).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Cap on indexed-metric families: indices at or above the bound share one
/// ".overflow" metric instead of minting a fresh registry entry, so an
/// adversarial or buggy shard id cannot grow the registry without bound.
inline constexpr size_t kDefaultMaxIndexedMetrics = 1024;

/// A counter family "prefix.0" ... "prefix.<n-1>": the registry lookup (mutex
/// + string build) is paid once per index at construction, so per-index hot
/// paths — e.g. one counter per shard — increment a cached atomic directly.
/// Construction clamps `n` to `max_index` (logging once to stderr) and any
/// out-of-range at(i) lands on "prefix.overflow".
class IndexedCounters {
 public:
  IndexedCounters(MetricsRegistry& registry, const std::string& prefix, size_t n,
                  size_t max_index = kDefaultMaxIndexedMetrics);

  Counter& at(size_t i) {
    return i < counters_.size() ? *counters_[i] : *overflow_;
  }
  /// Number of dedicated (non-overflow) counters.
  size_t size() const { return counters_.size(); }

 private:
  std::vector<Counter*> counters_;
  Counter* overflow_;
};

/// Histogram family "prefix.0" ... "prefix.<n-1>" with the same caching,
/// clamping, and overflow behaviour as IndexedCounters — e.g. one latency
/// histogram per shard.
class IndexedHistograms {
 public:
  IndexedHistograms(MetricsRegistry& registry, const std::string& prefix,
                    size_t n, size_t max_index = kDefaultMaxIndexedMetrics);

  Histogram& at(size_t i) {
    return i < histograms_.size() ? *histograms_[i] : *overflow_;
  }
  size_t size() const { return histograms_.size(); }

 private:
  std::vector<Histogram*> histograms_;
  Histogram* overflow_;
};

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_METRICS_H_
