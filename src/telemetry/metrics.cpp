#include "telemetry/metrics.h"

#include "telemetry/introspect.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <thread>

namespace gem2::telemetry {
namespace {

/// Per-thread deterministic RNG for reservoir replacement: seeded from a
/// process-wide counter, so single-threaded runs sample reproducibly and
/// multi-threaded runs stay contention-free.
uint64_t NextRand() {
  static std::atomic<uint64_t> seed_source{0x6a09e667f3bcc908ull};
  thread_local uint64_t state =
      seed_source.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }

  // Reservoir (Vitter's Algorithm R). While filling, every observation takes
  // a slot; after, observation n replaces a random slot with probability
  // capacity/n, so the lock is touched ever more rarely on hot histograms.
  const uint64_t n = reservoir_n_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n <= kReservoirCapacity) {
    std::lock_guard<std::mutex> lock(reservoir_mutex_);
    reservoir_[n - 1] = value;
  } else {
    const uint64_t j = NextRand() % n;
    if (j < kReservoirCapacity) {
      std::lock_guard<std::mutex> lock(reservoir_mutex_);
      reservoir_[j] = value;
    }
  }
}

uint64_t Histogram::min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

namespace {

double OrderStatistic(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return static_cast<double>(sorted.front());
  if (q >= 1.0) return static_cast<double>(sorted.back());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const double a = static_cast<double>(sorted[lo]);
  const double b = static_cast<double>(sorted[std::min(lo + 1, sorted.size() - 1)]);
  return a + (b - a) * frac;
}

}  // namespace

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> sample;
  {
    std::lock_guard<std::mutex> lock(reservoir_mutex_);
    const uint64_t n =
        std::min<uint64_t>(reservoir_n_.load(std::memory_order_relaxed),
                           kReservoirCapacity);
    sample.assign(reservoir_, reservoir_ + n);
  }
  std::sort(sample.begin(), sample.end());
  return OrderStatistic(sample, q);
}

QuantileSummary Histogram::Quantiles() const {
  std::vector<uint64_t> sample;
  {
    std::lock_guard<std::mutex> lock(reservoir_mutex_);
    const uint64_t n =
        std::min<uint64_t>(reservoir_n_.load(std::memory_order_relaxed),
                           kReservoirCapacity);
    sample.assign(reservoir_, reservoir_ + n);
  }
  std::sort(sample.begin(), sample.end());
  QuantileSummary s;
  s.samples = sample.size();
  s.p50 = OrderStatistic(sample, 0.50);
  s.p99 = OrderStatistic(sample, 0.99);
  s.p999 = OrderStatistic(sample, 0.999);
  return s;
}

void Histogram::Reset() {
  // Mark the reset in flight (generation goes odd) so snapshot readers spin
  // or retry instead of publishing a half-cleared count/sum pair.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reservoir_mutex_);
    reservoir_n_.store(0, std::memory_order_relaxed);
    std::fill(reservoir_, reservoir_ + kReservoirCapacity, 0);
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

bool operator==(const MetricsSnapshot::HistogramStats& a,
                const MetricsSnapshot::HistogramStats& b) {
  return a.name == b.name && a.count == b.count && a.sum == b.sum &&
         a.min == b.min && a.max == b.max;
}

bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  return a.counters == b.counters && a.gauges == b.gauges &&
         a.histograms == b.histograms;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  // Arm the CI/exit dump hooks here: every instrumented process touches the
  // global registry, and atexit handlers registered after `registry` is
  // constructed run before its destruction.
  ArmProcessDumpHooksFromEnv();
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

/// Reads one histogram's multi-field stats under the generation protocol:
/// wait out an in-flight reset, read, and retry if a reset raced the read.
MetricsSnapshot::HistogramStats ReadHistogram(const std::string& name,
                                              const Histogram& h) {
  MetricsSnapshot::HistogramStats stats;
  stats.name = name;
  for (;;) {
    uint64_t g = h.generation();
    while (g & 1) {  // reset in flight; resets are short, so just yield
      std::this_thread::yield();
      g = h.generation();
    }
    stats.count = h.count();
    stats.sum = h.sum();
    stats.min = h.min();
    stats.max = h.max();
    stats.mean = h.mean();
    stats.quantiles = h.Quantiles();
    if (h.generation() == g) return stats;
  }
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(ReadHistogram(name, *h));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

IndexedCounters::IndexedCounters(MetricsRegistry& registry,
                                 const std::string& prefix, size_t n,
                                 size_t max_index) {
  if (n > max_index) {
    std::fprintf(stderr,
                 "[gem2.telemetry] indexed counter family '%s' requested %zu "
                 "indices; clamping to %zu (excess lands on '%s.overflow')\n",
                 prefix.c_str(), n, max_index, prefix.c_str());
    n = max_index;
  }
  counters_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    counters_.push_back(&registry.counter(prefix + "." + std::to_string(i)));
  }
  overflow_ = &registry.counter(prefix + ".overflow");
}

IndexedHistograms::IndexedHistograms(MetricsRegistry& registry,
                                     const std::string& prefix, size_t n,
                                     size_t max_index) {
  if (n > max_index) {
    std::fprintf(stderr,
                 "[gem2.telemetry] indexed histogram family '%s' requested %zu "
                 "indices; clamping to %zu (excess lands on '%s.overflow')\n",
                 prefix.c_str(), n, max_index, prefix.c_str());
    n = max_index;
  }
  histograms_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    histograms_.push_back(&registry.histogram(prefix + "." + std::to_string(i)));
  }
  overflow_ = &registry.histogram(prefix + ".overflow");
}

}  // namespace gem2::telemetry
