#include "telemetry/metrics.h"

#include <bit>

namespace gem2::telemetry {

void Histogram::Observe(uint64_t value) {
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

bool operator==(const MetricsSnapshot::HistogramStats& a,
                const MetricsSnapshot::HistogramStats& b) {
  return a.name == b.name && a.count == b.count && a.sum == b.sum &&
         a.min == b.min && a.max == b.max;
}

bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  return a.counters == b.counters && a.gauges == b.gauges &&
         a.histograms == b.histograms;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->count(), h->sum(), h->min(), h->max(), h->mean()});
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace gem2::telemetry
