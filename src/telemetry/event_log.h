/// \file event_log.h
/// Structured JSONL event log: one JSON object per line, append-only, flushed
/// per event. The audit channel for things that must survive a crashed or
/// failing run — most importantly every verification rejection, stamped with
/// the query's trace id, the driving mutation operator and seed (when the
/// fault layer annotates the thread), and the rejection reason.
///
/// Design constraints (see docs/OBSERVABILITY.md):
///   - Events are telemetry-only: nothing verified reads the log, and an
///     unopened log makes Emit() a single relaxed atomic load.
///   - Durable by default: each event is one fflush'd line, so `tail` of the
///     log after a crash or CI failure is complete up to the last event.
///   - Context rides on the thread: ScopedEventFields pushes key/value pairs
///     (e.g. the fault sweep's operator and seed) that every event emitted
///     below the scope inherits, without threading parameters through the
///     verification call graph.
#ifndef GEM2_TELEMETRY_EVENT_LOG_H_
#define GEM2_TELEMETRY_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/trace.h"

namespace gem2::telemetry {

#ifndef GEM2_TELEMETRY_DISABLED

/// One event under construction. Field order is preserved in the output line;
/// the log prepends `type`, `ts_ns`, `thread`, and (when a trace is active)
/// `trace` automatically, then appends any ScopedEventFields context.
class Event {
 public:
  explicit Event(std::string_view type) : type_(type) {}

  Event&& Str(std::string_view key, std::string_view value) && {
    strings_.emplace_back(std::string(key), std::string(value));
    return std::move(*this);
  }
  Event&& Num(std::string_view key, uint64_t value) && {
    numbers_.emplace_back(std::string(key), value);
    return std::move(*this);
  }

 private:
  friend class EventLog;
  std::string type_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<std::pair<std::string, uint64_t>> numbers_;
};

/// Process-wide JSONL sink. Opened explicitly or from the GEM2_EVENT_LOG
/// environment variable on first use of Global().
class EventLog {
 public:
  static EventLog& Global();

  /// True when a log file is open (single relaxed atomic load; the fast-path
  /// gate every Emit call and every call-site `if` takes).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens (appending) `path` as the log target, closing any previous one.
  /// Returns false (log stays closed) when the file cannot be opened.
  bool Open(const std::string& path);
  void Close();
  std::string path() const;

  /// Serializes and writes one event line. No-op when !enabled().
  void Emit(Event event);

  /// Events written since Open (diagnostic; not persisted).
  uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  EventLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> lines_{0};
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;  // guarded by mutex_
  std::string path_;           // guarded by mutex_
};

/// RAII: pushes key/value context onto this thread's annotation stack; every
/// event emitted on the thread while the scope is open carries the fields.
/// The fault layer brackets each forgery round with the operator name and
/// seed so rejection events are attributable without plumbing.
class ScopedEventFields {
 public:
  ScopedEventFields(
      std::initializer_list<std::pair<std::string_view, std::string>> fields);
  ~ScopedEventFields();

  ScopedEventFields(const ScopedEventFields&) = delete;
  ScopedEventFields& operator=(const ScopedEventFields&) = delete;

  /// The thread's current annotation stack, bottom-up (for Emit).
  static std::vector<std::pair<std::string, std::string>> Current();

 private:
  size_t pushed_ = 0;
};

#else  // GEM2_TELEMETRY_DISABLED

class Event {
 public:
  explicit Event(std::string_view) {}
  Event&& Str(std::string_view, std::string_view) && { return std::move(*this); }
  Event&& Num(std::string_view, uint64_t) && { return std::move(*this); }
};

class EventLog {
 public:
  static EventLog& Global() {
    static EventLog log;
    return log;
  }
  bool enabled() const { return false; }
  bool Open(const std::string&) { return false; }
  void Close() {}
  std::string path() const { return ""; }
  void Emit(Event) {}
  uint64_t lines_written() const { return 0; }
};

class ScopedEventFields {
 public:
  ScopedEventFields(
      std::initializer_list<std::pair<std::string_view, std::string>>) {}
  ScopedEventFields(const ScopedEventFields&) = delete;
  ScopedEventFields& operator=(const ScopedEventFields&) = delete;
  static std::vector<std::pair<std::string, std::string>> Current() {
    return {};
  }
};

#endif  // GEM2_TELEMETRY_DISABLED

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_EVENT_LOG_H_
