/// \file telemetry.h
/// Gas-trace telemetry: RAII spans that attribute wall-clock time and gas to
/// named phases of a transaction, plus the process-wide Tracer that routes
/// finished spans to pluggable sinks (Chrome trace JSON, CSV, in-memory).
///
/// Design constraints (see docs/OBSERVABILITY.md):
///   - Spans never charge gas and never perturb the meter: gas attribution
///     works by snapshotting the active gas::Meter's breakdown at span open
///     and close, so for any span  inclusive == self + sum(children) and the
///     root span of a transaction equals the receipt's gas_used exactly.
///   - Zero cost when disabled: compiling with GEM2_TELEMETRY_DISABLED turns
///     TELEMETRY_SPAN into nothing; at runtime, a tracer with no sinks makes
///     Span construction a single relaxed atomic load.
///   - Thread safety: the span stack and active meter are thread-local; sink
///     registration is mutex-guarded; sinks serialize their own output.
#ifndef GEM2_TELEMETRY_TELEMETRY_H_
#define GEM2_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gas/meter.h"
#include "telemetry/trace.h"

namespace gem2::telemetry {

/// One finished span, as delivered to sinks.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  uint32_t depth = 0;      // 0 = root span
  uint64_t thread_id = 0;
  /// 128-bit trace id active while the span was open (0 when none): the
  /// cross-role identity that groups an owner→SP→client round trip. A span
  /// opened on a fresh stack under a propagated TraceContext parents onto
  /// that context's `parent_span` even across threads.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  std::string name;
  uint64_t start_ns = 0;     // steady-clock, process-relative
  uint64_t duration_ns = 0;  // wall time inside the span
  /// Gas charged to the active meter while the span was open, including
  /// child spans (zero when no meter was active).
  gas::GasBreakdown gas;
  /// gas.total() minus the inclusive totals of direct children: what this
  /// phase itself charged.
  gas::Gas self_gas = 0;

  gas::Gas gas_total() const { return gas.total(); }
};

/// A point event (e.g. a block seal), as delivered to sinks.
struct InstantEvent {
  std::string name;
  uint64_t ts_ns = 0;
  uint64_t thread_id = 0;
  std::vector<std::pair<std::string, double>> args;
};

/// Receives finished spans and instant events. Implementations must be
/// thread-safe: spans from concurrent transactions arrive unordered.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void OnSpan(const SpanRecord& span) = 0;
  virtual void OnInstant(const InstantEvent& event) { (void)event; }
  /// Called when the sink is removed from the tracer (and on destruction of
  /// file-backed sinks); must leave any output parse-valid.
  virtual void Flush() {}
};

/// Process-wide router from instrumentation sites to sinks.
class Tracer {
 public:
  static Tracer& Global();

  /// True when at least one sink is installed (single relaxed atomic load;
  /// this is the fast-path gate every Span constructor takes).
  bool enabled() const { return sink_count_.load(std::memory_order_relaxed) > 0; }

  void AddSink(std::shared_ptr<Sink> sink);
  /// Flushes and removes every sink.
  void ClearSinks();

  /// Declares `meter` the attribution target for spans opened on this thread
  /// until the returned value is passed to RestoreMeter. Typically bracketed
  /// by ScopedMeter.
  gas::Meter* SetActiveMeter(gas::Meter* meter);
  void RestoreMeter(gas::Meter* previous);
  gas::Meter* active_meter() const;

  /// Starts collecting every span closed on this thread (used by the chain
  /// environment to attach a trace to the transaction receipt).
  void BeginTxCapture();
  std::vector<SpanRecord> EndTxCapture();

  void EmitInstant(InstantEvent event);

  /// Monotonic nanoseconds since process start (steady clock).
  static uint64_t NowNs();
  /// Small dense id of the calling thread (stable for the thread's lifetime).
  static uint64_t ThreadId();

 private:
  friend class Span;

  Tracer() = default;

  void EmitSpan(const SpanRecord& record);

  std::atomic<int> sink_count_{0};
  // Sink list: copy-on-write under a mutex; readers grab a shared_ptr.
  std::shared_ptr<const std::vector<std::shared_ptr<Sink>>> sinks_ =
      std::make_shared<const std::vector<std::shared_ptr<Sink>>>();
  std::atomic<uint64_t> next_span_id_{1};
};

/// RAII scope measuring one named phase. Open with the TELEMETRY_SPAN macro
/// (compiled out under GEM2_TELEMETRY_DISABLED) or construct directly when
/// the name is dynamic (e.g. "tx." + method) or when the span's id is needed
/// to parent work handed to other threads (Span::context()). Under
/// GEM2_TELEMETRY_DISABLED the class is an empty stub, so explicit Span
/// construction is also zero-cost in disabled builds.
#ifdef GEM2_TELEMETRY_DISABLED
class Span {
 public:
  explicit Span(std::string_view) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  uint64_t id() const { return 0; }
  TraceContext context() const { return {}; }
  gas::Gas gas_so_far() const { return 0; }
};
#else
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id; 0 when the tracer had no sink at construction.
  uint64_t id() const { return id_; }

  /// The context under which work on other threads (or the peer role) should
  /// continue this span's trace: the thread's current trace id with this
  /// span as the parent.
  TraceContext context() const;

  /// Gas charged to the active meter since this span opened (live view).
  gas::Gas gas_so_far() const;

 private:
  bool active_ = false;
  uint64_t id_ = 0;
  uint64_t start_ns_ = 0;
  gas::Gas open_gas_ = 0;
};
#endif  // GEM2_TELEMETRY_DISABLED

#ifdef GEM2_TELEMETRY_DISABLED
#define TELEMETRY_SPAN(name)
#else
#define TELEMETRY_SPAN_CAT2(a, b) a##b
#define TELEMETRY_SPAN_CAT(a, b) TELEMETRY_SPAN_CAT2(a, b)
#define TELEMETRY_SPAN(name) \
  ::gem2::telemetry::Span TELEMETRY_SPAN_CAT(gem2_telemetry_span_, __LINE__)(name)
#endif

/// Installs `meter` as the thread's attribution target for the scope.
class ScopedMeter {
 public:
  explicit ScopedMeter(gas::Meter* meter)
      : previous_(Tracer::Global().SetActiveMeter(meter)) {}
  ~ScopedMeter() { Tracer::Global().RestoreMeter(previous_); }

  ScopedMeter(const ScopedMeter&) = delete;
  ScopedMeter& operator=(const ScopedMeter&) = delete;

 private:
  gas::Meter* previous_;
};

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_TELEMETRY_H_
