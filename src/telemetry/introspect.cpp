#include "telemetry/introspect.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "telemetry/json.h"

namespace gem2::telemetry {

Introspection& Introspection::Global() {
  static Introspection* instance = new Introspection();
  return *instance;
}

void Introspection::RegisterProvider(const std::string& name, ProviderFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, existing_fn] : providers_) {
    if (existing == name) {
      existing_fn = std::move(fn);
      return;
    }
  }
  providers_.emplace_back(name, std::move(fn));
}

void Introspection::UnregisterProvider(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(providers_,
                [&](const auto& entry) { return entry.first == name; });
}

ProviderFacts Introspection::Collect() const {
  std::vector<std::pair<std::string, ProviderFn>> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    providers = providers_;
  }
  ProviderFacts facts;
  for (const auto& [name, fn] : providers) {
    for (auto& [key, value] : fn()) {
      facts.emplace_back(name + "." + key, value);
    }
  }
  std::sort(facts.begin(), facts.end());
  return facts;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "gem2_";
  for (char c : name) {
    if (c == '.' || c == '-' || c == ' ' || c == '_') {
      out += '_';
    } else if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string PrometheusExposition(const MetricsSnapshot& snapshot,
                                 const ProviderFacts& facts) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string prom = PrometheusName(h.name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} " + FormatDouble(h.quantiles.p50) + "\n";
    out += prom + "{quantile=\"0.99\"} " + FormatDouble(h.quantiles.p99) + "\n";
    out += prom + "{quantile=\"0.999\"} " + FormatDouble(h.quantiles.p999) + "\n";
    out += prom + "_sum " + std::to_string(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
    out += prom + "_min " + std::to_string(h.min) + "\n";
    out += prom + "_max " + std::to_string(h.max) + "\n";
  }
  for (const auto& [name, value] : facts) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  return out;
}

std::string PrometheusExposition() {
  return PrometheusExposition(MetricsRegistry::Global().Snapshot(),
                              Introspection::Global().Collect());
}

std::string IntrospectionJson() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const ProviderFacts facts = Introspection::Global().Collect();

  JsonObject counters, gauges, providers;
  for (const auto& [name, value] : snapshot.counters) {
    counters.emplace_back(name, JsonValue(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.emplace_back(
        name, value >= 0 ? JsonValue(static_cast<uint64_t>(value))
                         : JsonValue(static_cast<double>(value)));
  }
  JsonObject histograms;
  for (const auto& h : snapshot.histograms) {
    JsonObject entry;
    entry.emplace_back("count", JsonValue(h.count));
    entry.emplace_back("sum", JsonValue(h.sum));
    entry.emplace_back("min", JsonValue(h.min));
    entry.emplace_back("max", JsonValue(h.max));
    entry.emplace_back("mean", JsonValue(h.mean));
    entry.emplace_back("p50", JsonValue(h.quantiles.p50));
    entry.emplace_back("p99", JsonValue(h.quantiles.p99));
    entry.emplace_back("p999", JsonValue(h.quantiles.p999));
    entry.emplace_back("samples", JsonValue(h.quantiles.samples));
    histograms.emplace_back(h.name, JsonValue(std::move(entry)));
  }
  for (const auto& [name, value] : facts) {
    providers.emplace_back(name, JsonValue(value));
  }

  JsonObject root;
  root.emplace_back("counters", JsonValue(std::move(counters)));
  root.emplace_back("gauges", JsonValue(std::move(gauges)));
  root.emplace_back("histograms", JsonValue(std::move(histograms)));
  root.emplace_back("providers", JsonValue(std::move(providers)));
  return JsonValue(std::move(root)).Dump();
}

namespace {

// SIGUSR1 machinery: the handler is async-signal-safe (one store to a
// lock-free atomic); a detached watcher thread services the flag and does
// the real work. The flag must be atomic, not volatile sig_atomic_t — the
// handler and the watcher run on different threads.
std::atomic<int> g_sigusr1_pending{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");
std::atomic<uint64_t> g_sigusr1_dumps{0};

void SigUsr1Handler(int) {
  g_sigusr1_pending.store(1, std::memory_order_relaxed);
}

void WriteExpositionTo(const char* path) {
  const std::string text = PrometheusExposition();
  if (path != nullptr && path[0] != '\0') {
    if (std::FILE* f = std::fopen(path, "a"); f != nullptr) {
      std::fprintf(f, "# gem2 introspection dump pid=%d\n", getpid());
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      return;
    }
  }
  std::fprintf(stderr, "# gem2 introspection dump pid=%d\n%s", getpid(),
               text.c_str());
}

void ExitDump() {
  const char* path = std::getenv("GEM2_METRICS_DUMP");
  if (path == nullptr || path[0] == '\0') return;
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty()) {
    return;  // nothing registered in this process; keep shared dumps readable
  }
  WriteExpositionTo(path);
}

}  // namespace

void InstallSigUsr1Dump() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa = {};
    sa.sa_handler = SigUsr1Handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGUSR1, &sa, nullptr);
    std::thread([] {
      for (;;) {
        if (g_sigusr1_pending.exchange(0, std::memory_order_relaxed) != 0) {
          WriteExpositionTo(std::getenv("GEM2_INTROSPECT_PATH"));
          g_sigusr1_dumps.fetch_add(1, std::memory_order_release);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }).detach();
  });
}

uint64_t SigUsr1DumpCount() {
  return g_sigusr1_dumps.load(std::memory_order_acquire);
}

void ArmProcessDumpHooksFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* dump = std::getenv("GEM2_METRICS_DUMP");
        dump != nullptr && dump[0] != '\0') {
      std::atexit(ExitDump);
    }
    if (const char* sig = std::getenv("GEM2_INTROSPECT_SIGUSR1");
        sig != nullptr && sig[0] == '1') {
      InstallSigUsr1Dump();
    }
  });
}

}  // namespace gem2::telemetry
