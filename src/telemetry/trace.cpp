#include "telemetry/trace.h"

#include <atomic>
#include <random>

namespace gem2::telemetry {

std::string TraceContext::TraceIdHex() const {
  if (!valid()) return "";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[i] = kHex[(trace_hi >> (60 - 4 * i)) & 0xf];
    out[16 + i] = kHex[(trace_lo >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

#ifndef GEM2_TELEMETRY_DISABLED

namespace {

thread_local TraceContext g_current_trace;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext NewTrace() {
  static const uint64_t process_salt = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<uint64_t> counter{1};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_hi = SplitMix64(process_salt ^ n);
  // The low word alone guarantees valid(): SplitMix64 maps exactly one input
  // to zero, so force the last bit.
  ctx.trace_lo = SplitMix64(n) | 1;
  return ctx;
}

TraceContext CurrentTrace() { return g_current_trace; }

TraceContext ContinueTrace() {
  return g_current_trace.valid() ? g_current_trace : NewTrace();
}

TraceScope::TraceScope(const TraceContext& ctx)
    : context_(ctx), previous_(g_current_trace) {
  g_current_trace = ctx;
}

TraceScope::~TraceScope() { g_current_trace = previous_; }

#endif  // GEM2_TELEMETRY_DISABLED

}  // namespace gem2::telemetry
