#include "telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gem2::telemetry {
namespace {

void DumpTo(const JsonValue& v, std::string* out);

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(s);
  out->push_back('"');
}

void DumpNumber(double d, std::string* out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(d) ? d : 0.0);
  *out += buf;
}

void DumpTo(const JsonValue& v, std::string* out) { *out += v.Dump(); }

struct Parser {
  std::string_view text;
  size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 128;

  void SkipWs() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return std::nullopt;
      char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point (surrogates pass through as-is;
          // the validator does not need round-trip fidelity there).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos;
    if (Consume('-')) {
    }
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return std::nullopt;
    }
    if (text[pos] == '0') {
      ++pos;
    } else {
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return std::nullopt;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return std::nullopt;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    double d = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + pos, d);
    if (ec != std::errc() || ptr != text.data() + pos) return std::nullopt;
    return JsonValue(d);
  }

  std::optional<JsonValue> ParseValue() {
    if (++depth > kMaxDepth) return std::nullopt;
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth};
    SkipWs();
    if (pos >= text.size()) return std::nullopt;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      JsonObject obj;
      SkipWs();
      if (Consume('}')) return JsonValue(std::move(obj));
      while (true) {
        SkipWs();
        auto key = ParseString();
        if (!key) return std::nullopt;
        SkipWs();
        if (!Consume(':')) return std::nullopt;
        auto value = ParseValue();
        if (!value) return std::nullopt;
        obj.emplace_back(std::move(*key), std::move(*value));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return JsonValue(std::move(obj));
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      JsonArray arr;
      SkipWs();
      if (Consume(']')) return JsonValue(std::move(arr));
      while (true) {
        auto value = ParseValue();
        if (!value) return std::nullopt;
        arr.push_back(std::move(*value));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return JsonValue(std::move(arr));
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = ParseString();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (Literal("true")) return JsonValue(true);
    if (Literal("false")) return JsonValue(false);
    if (Literal("null")) return JsonValue(nullptr);
    return ParseNumber();
  }
};

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  std::string out;
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out = "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out = *b ? "true" : "false";
  } else if (const auto* u = std::get_if<uint64_t>(&value_)) {
    out = std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    DumpNumber(*d, &out);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    DumpString(*s, &out);
  } else if (const auto* arr = std::get_if<JsonArray>(&value_)) {
    out.push_back('[');
    for (size_t i = 0; i < arr->size(); ++i) {
      if (i > 0) out.push_back(',');
      DumpTo((*arr)[i], &out);
    }
    out.push_back(']');
  } else {
    const JsonObject& obj = std::get<JsonObject>(value_);
    out.push_back('{');
    for (size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out.push_back(',');
      DumpString(obj[i].first, &out);
      out.push_back(':');
      DumpTo(obj[i].second, &out);
    }
    out.push_back('}');
  }
  return out;
}

std::optional<JsonValue> JsonParse(std::string_view text) {
  Parser parser{text};
  auto value = parser.ParseValue();
  if (!value) return std::nullopt;
  parser.SkipWs();
  if (parser.pos != text.size()) return std::nullopt;
  return value;
}

}  // namespace gem2::telemetry
