#include "telemetry/exporters.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "telemetry/json.h"

namespace gem2::telemetry {
namespace {

JsonObject BreakdownJson(const gas::GasBreakdown& b) {
  return JsonObject{
      {"sload", JsonValue(b.sload)},       {"sstore", JsonValue(b.sstore)},
      {"supdate", JsonValue(b.supdate)},   {"mem", JsonValue(b.mem)},
      {"hash", JsonValue(b.hash)},         {"intrinsic", JsonValue(b.intrinsic)},
  };
}

bool WriteFileAtomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << content;
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

// --- ChromeTraceSink -------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::string path) : path_(std::move(path)) {}

ChromeTraceSink::~ChromeTraceSink() { Flush(); }

void ChromeTraceSink::OnSpan(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(span);
}

void ChromeTraceSink::OnInstant(const InstantEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  instants_.push_back(event);
}

void ChromeTraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonArray events;
  events.reserve(spans_.size() + instants_.size());
  for (const SpanRecord& s : spans_) {
    JsonObject args = BreakdownJson(s.gas);
    args.emplace_back("gas_total", JsonValue(s.gas_total()));
    args.emplace_back("self_gas", JsonValue(s.self_gas));
    args.emplace_back("span_id", JsonValue(s.id));
    args.emplace_back("parent_id", JsonValue(s.parent_id));
    events.push_back(JsonValue(JsonObject{
        {"name", JsonValue(s.name)},
        {"cat", JsonValue("gem2")},
        {"ph", JsonValue("X")},
        {"ts", JsonValue(static_cast<double>(s.start_ns) / 1000.0)},
        {"dur", JsonValue(static_cast<double>(s.duration_ns) / 1000.0)},
        {"pid", JsonValue(uint64_t{1})},
        {"tid", JsonValue(s.thread_id)},
        {"args", JsonValue(std::move(args))},
    }));
  }
  for (const InstantEvent& e : instants_) {
    JsonObject args;
    for (const auto& [k, v] : e.args) args.emplace_back(k, JsonValue(v));
    events.push_back(JsonValue(JsonObject{
        {"name", JsonValue(e.name)},
        {"cat", JsonValue("gem2")},
        {"ph", JsonValue("i")},
        {"s", JsonValue("g")},
        {"ts", JsonValue(static_cast<double>(e.ts_ns) / 1000.0)},
        {"pid", JsonValue(uint64_t{1})},
        {"tid", JsonValue(e.thread_id)},
        {"args", JsonValue(std::move(args))},
    }));
  }
  const JsonValue doc(JsonObject{{"traceEvents", JsonValue(std::move(events))}});
  WriteFileAtomically(path_, doc.Dump());
}

// --- CsvSink ---------------------------------------------------------------

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {
  buffer_ =
      "id,parent_id,depth,thread,name,start_ns,duration_ns,"
      "gas_total,self_gas,sload,sstore,supdate,mem,hash,intrinsic\n";
}

CsvSink::~CsvSink() { Flush(); }

void CsvSink::OnSpan(const SpanRecord& s) {
  std::ostringstream row;
  // Span names are dot-separated identifiers; quote defensively anyway.
  row << s.id << ',' << s.parent_id << ',' << s.depth << ',' << s.thread_id
      << ",\"" << s.name << "\"," << s.start_ns << ',' << s.duration_ns << ','
      << s.gas_total() << ',' << s.self_gas << ',' << s.gas.sload << ','
      << s.gas.sstore << ',' << s.gas.supdate << ',' << s.gas.mem << ','
      << s.gas.hash << ',' << s.gas.intrinsic << '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  buffer_ += row.str();
}

void CsvSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  WriteFileAtomically(path_, buffer_);
}

// --- CollectorSink ---------------------------------------------------------

void CollectorSink::OnSpan(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(span);
}

void CollectorSink::OnInstant(const InstantEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  instants_.push_back(event);
}

std::vector<SpanRecord> CollectorSink::TakeSpans() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(spans_);
}

std::vector<InstantEvent> CollectorSink::TakeInstants() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(instants_);
}

size_t CollectorSink::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

// --- MeterMetricsObserver --------------------------------------------------

MeterMetricsObserver::MeterMetricsObserver(MetricsRegistry* registry) {
  MetricsRegistry& reg = registry != nullptr ? *registry : MetricsRegistry::Global();
  for (int i = 0; i < gas::kNumGasCategories; ++i) {
    const char* name = gas::GasCategoryName(static_cast<gas::GasCategory>(i));
    used_[i] = &reg.counter(std::string("gas.used.") + name);
    ops_[i] = &reg.counter(std::string("gas.ops.") + name);
  }
}

void MeterMetricsObserver::OnCharge(const gas::Meter& meter,
                                    gas::GasCategory category, gas::Gas delta) {
  (void)meter;
  const int i = static_cast<int>(category);
  used_[i]->Add(delta);
  ops_[i]->Add(1);
}

// --- BenchReporter ---------------------------------------------------------

BenchReporter& BenchReporter::Global() {
  static BenchReporter reporter;
  return reporter;
}

void BenchReporter::Record(BenchRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

size_t BenchReporter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::string BenchRecordJson(const BenchRecord& r) {
  JsonObject obj{
      {"bench", JsonValue(r.bench)},
      {"name", JsonValue(r.name)},
      {"ads", JsonValue(r.ads)},
      {"dist", JsonValue(r.dist)},
      {"dataset_size", JsonValue(r.dataset_size)},
      {"ops", JsonValue(r.ops)},
      {"gas_total", JsonValue(r.gas_total)},
      {"gas_mean", JsonValue(r.gas_mean)},
      {"wall_ms", JsonValue(r.wall_ms)},
      {"breakdown", JsonValue(BreakdownJson(r.breakdown))},
  };
  JsonObject extra;
  for (const auto& [k, v] : r.extra) extra.emplace_back(k, JsonValue(v));
  obj.emplace_back("extra", JsonValue(std::move(extra)));
  return JsonValue(std::move(obj)).Dump();
}

bool AppendBenchRecords(const std::string& path,
                        const std::vector<BenchRecord>& records) {
  JsonArray array;
  if (auto existing = JsonParse(ReadFile(path));
      existing.has_value() && existing->is_array()) {
    array = std::move(existing->array());
  }
  for (const BenchRecord& r : records) {
    auto parsed = JsonParse(BenchRecordJson(r));
    if (!parsed) return false;
    array.push_back(std::move(*parsed));
  }
  return WriteFileAtomically(path, JsonValue(std::move(array)).Dump());
}

std::vector<std::string> BenchReporter::WriteFiles(const std::string& dir) {
  std::vector<BenchRecord> records;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records = std::move(records_);
  }
  std::string base = dir;
  if (base.empty()) {
    const char* env = std::getenv("GEM2_BENCH_JSON_DIR");
    base = env != nullptr ? env : ".";
  }
  // Group by bench name, preserving record order.
  std::map<std::string, std::vector<BenchRecord>> by_bench;
  for (BenchRecord& r : records) by_bench[r.bench].push_back(std::move(r));
  std::vector<std::string> paths;
  for (auto& [bench, group] : by_bench) {
    const std::string path = base + "/BENCH_" + bench + ".json";
    if (AppendBenchRecords(path, group)) paths.push_back(path);
  }
  return paths;
}

}  // namespace gem2::telemetry
