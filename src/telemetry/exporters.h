/// \file exporters.h
/// Telemetry sinks and the machine-readable bench emitter.
///
///   ChromeTraceSink  -> chrome://tracing / Perfetto "traceEvents" JSON
///   CsvSink          -> one row per span, stable column order
///   CollectorSink    -> in-memory (tests, receipt assembly)
///   NullSink         -> swallows everything (overhead measurement)
///   BenchReporter    -> appends run records to BENCH_<name>.json (JSON array)
#ifndef GEM2_TELEMETRY_EXPORTERS_H_
#define GEM2_TELEMETRY_EXPORTERS_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gas/meter.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::telemetry {

/// Buffers spans/instants and writes a Chrome-trace JSON object
/// ({"traceEvents":[...]}) to `path` on Flush and destruction.
class ChromeTraceSink : public Sink {
 public:
  explicit ChromeTraceSink(std::string path);
  ~ChromeTraceSink() override;

  void OnSpan(const SpanRecord& span) override;
  void OnInstant(const InstantEvent& event) override;
  void Flush() override;

 private:
  std::mutex mutex_;
  std::string path_;
  std::vector<SpanRecord> spans_;
  std::vector<InstantEvent> instants_;
};

/// Streams one CSV row per span to `path`. Header:
///   id,parent_id,depth,thread,name,start_ns,duration_ns,
///   gas_total,self_gas,sload,sstore,supdate,mem,hash,intrinsic
class CsvSink : public Sink {
 public:
  explicit CsvSink(std::string path);
  ~CsvSink() override;

  void OnSpan(const SpanRecord& span) override;
  void Flush() override;

 private:
  std::mutex mutex_;
  std::string path_;
  std::string buffer_;
};

/// Keeps every span/instant in memory; used by tests and trace assembly.
class CollectorSink : public Sink {
 public:
  void OnSpan(const SpanRecord& span) override;
  void OnInstant(const InstantEvent& event) override;

  std::vector<SpanRecord> TakeSpans();
  std::vector<InstantEvent> TakeInstants();
  size_t span_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<InstantEvent> instants_;
};

/// Discards everything. Installing it keeps the tracer "enabled" (spans are
/// measured and emitted) without any I/O — the overhead-measurement baseline.
class NullSink : public Sink {
 public:
  void OnSpan(const SpanRecord&) override {}
  void OnInstant(const InstantEvent&) override {}
};

/// gas::MeterObserver that mirrors every charge into the metrics registry
/// ("gas.used.<category>" counters and "gas.ops.<category>" counts).
class MeterMetricsObserver : public gas::MeterObserver {
 public:
  explicit MeterMetricsObserver(MetricsRegistry* registry = nullptr);

  void OnCharge(const gas::Meter& meter, gas::GasCategory category,
                gas::Gas delta) override;

 private:
  Counter* used_[6];
  Counter* ops_[6];
};

/// One figure-reproduction data point, as appended to BENCH_<bench>.json.
struct BenchRecord {
  std::string bench;  // e.g. "fig7"
  std::string name;   // full benchmark name, e.g. "Fig7/GEM2-tree/uniform/N:1000"
  std::string ads;    // ADS under test ("" when not applicable)
  std::string dist;   // key distribution ("" when not applicable)
  uint64_t dataset_size = 0;
  uint64_t ops = 0;
  double gas_total = 0;
  double gas_mean = 0;
  double wall_ms = 0;
  gas::GasBreakdown breakdown;  // summed over the run
  /// Free-form extra metrics (VO bytes, proof depth, ...), emitted sorted.
  std::map<std::string, double> extra;
};

class BenchReporter {
 public:
  static BenchReporter& Global();

  void Record(BenchRecord record);

  /// Appends every recorded data point to `<dir>/BENCH_<bench>.json` (one
  /// file per distinct `bench`, each a JSON array that stays parse-valid
  /// across appends), then clears the buffer. `dir` defaults to
  /// $GEM2_BENCH_JSON_DIR or ".". Returns the paths written.
  std::vector<std::string> WriteFiles(const std::string& dir = "");

  size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::vector<BenchRecord> records_;
};

/// Serializes one bench record (exposed for tests).
std::string BenchRecordJson(const BenchRecord& record);

/// Appends `records` to the JSON array in `path` (creating it if missing or
/// unparseable). Returns false on I/O failure.
bool AppendBenchRecords(const std::string& path,
                        const std::vector<BenchRecord>& records);

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_EXPORTERS_H_
