/// \file trace.h
/// Cross-role distributed-tracing identity: a 128-bit trace id plus the span
/// to parent onto, propagated from a RangeStore entry point through the SP's
/// scatter-gather and back to the client's verification — across threads and
/// across roles.
///
/// Design constraints (see docs/OBSERVABILITY.md):
///   - Identity is telemetry-only. A TraceContext rides *alongside* the
///     authenticated protocol (an in-memory QueryResponse field, or the
///     Wrap/UnwrapTracedWire envelope around a wire image), never inside it:
///     gas numbers and VO images are bit-identical with tracing on or off,
///     and fail-closed wire parsing is untouched.
///   - Zero cost when compiled out: under GEM2_TELEMETRY_DISABLED every type
///     here collapses to an empty inline stub.
///   - Thread propagation is explicit: installing a TraceScope on a worker
///     thread (capturing the parent's context by value) is what carries a
///     trace across a ParallelFor fan-out.
#ifndef GEM2_TELEMETRY_TRACE_H_
#define GEM2_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>

namespace gem2::telemetry {

/// False when the library was compiled with GEM2_TELEMETRY_DISABLED; every
/// instrumentation site folds away behind `if constexpr (kCompiledIn)`.
#ifdef GEM2_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// One query's identity as it crosses role boundaries. `trace_hi/trace_lo`
/// name the whole owner→SP→client round trip; `parent_span` is the span a
/// continuation (another thread's slice, or the client's verify) should
/// attach under when it opens a fresh span stack.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t parent_span = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// Same 128-bit trace id (parent span may differ).
  bool SameTraceAs(const TraceContext& other) const {
    return trace_hi == other.trace_hi && trace_lo == other.trace_lo;
  }

  /// 32-char lowercase hex trace id; "" when !valid().
  std::string TraceIdHex() const;

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

#ifdef GEM2_TELEMETRY_DISABLED

inline TraceContext NewTrace() { return {}; }
inline TraceContext CurrentTrace() { return {}; }
inline TraceContext ContinueTrace() { return {}; }

class TraceScope {
 public:
  explicit TraceScope(const TraceContext&) {}
  TraceContext context() const { return {}; }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

#else

/// Fresh, never-zero 128-bit trace id (no parent span). Unique within the
/// process and salted per-process, so logs from concurrent runs don't
/// collide. Trace ids are diagnostic identity, not protocol data — nothing
/// verified depends on them.
TraceContext NewTrace();

/// The context installed on this thread ({} when none is active).
TraceContext CurrentTrace();

/// CurrentTrace() when one is active, else NewTrace(): what an entry point
/// installs so nested work joins the caller's trace when there is one.
TraceContext ContinueTrace();

/// RAII: installs `ctx` as this thread's active trace context; restores the
/// previous context on destruction. Capture a parent's context by value into
/// a worker lambda and open a TraceScope there to carry a trace across
/// threads.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  const TraceContext& context() const { return context_; }

 private:
  TraceContext context_;
  TraceContext previous_;
};

#endif  // GEM2_TELEMETRY_DISABLED

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_TRACE_H_
