#include "telemetry/telemetry.h"

#include <chrono>
#include <mutex>

namespace gem2::telemetry {
namespace {

/// Per-thread frame of an open span. Records everything the Span object
/// itself does not carry, so Span stays two words wide.
struct Frame {
  uint64_t id = 0;
  std::string name;
  uint64_t start_ns = 0;
  /// Trace context active when the span opened; stamped into the record so
  /// sinks can group spans by cross-role trace id.
  TraceContext trace;
  gas::GasBreakdown open_gas;
  /// Sum of direct children's inclusive gas, accumulated as they close.
  gas::Gas children_gas = 0;
};

struct ThreadState {
  std::vector<Frame> stack;
  gas::Meter* meter = nullptr;
  bool capturing = false;
  std::vector<SpanRecord> capture;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

std::mutex& SinkMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::AddSink(std::shared_ptr<Sink> sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(SinkMutex());
  auto next = std::make_shared<std::vector<std::shared_ptr<Sink>>>(*sinks_);
  next->push_back(std::move(sink));
  std::atomic_store_explicit(&sinks_,
                             std::shared_ptr<const std::vector<std::shared_ptr<Sink>>>(
                                 std::move(next)),
                             std::memory_order_release);
  sink_count_.store(static_cast<int>(sinks_->size()), std::memory_order_relaxed);
}

void Tracer::ClearSinks() {
  std::shared_ptr<const std::vector<std::shared_ptr<Sink>>> old;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    old = sinks_;
    std::atomic_store_explicit(
        &sinks_,
        std::make_shared<const std::vector<std::shared_ptr<Sink>>>(),
        std::memory_order_release);
    sink_count_.store(0, std::memory_order_relaxed);
  }
  for (const auto& sink : *old) sink->Flush();
}

gas::Meter* Tracer::SetActiveMeter(gas::Meter* meter) {
  ThreadState& state = State();
  gas::Meter* previous = state.meter;
  state.meter = meter;
  return previous;
}

void Tracer::RestoreMeter(gas::Meter* previous) { State().meter = previous; }

gas::Meter* Tracer::active_meter() const { return State().meter; }

void Tracer::BeginTxCapture() {
  ThreadState& state = State();
  state.capturing = true;
  state.capture.clear();
}

std::vector<SpanRecord> Tracer::EndTxCapture() {
  ThreadState& state = State();
  state.capturing = false;
  return std::move(state.capture);
}

void Tracer::EmitSpan(const SpanRecord& record) {
  auto sinks = std::atomic_load_explicit(&sinks_, std::memory_order_acquire);
  for (const auto& sink : *sinks) sink->OnSpan(record);
  ThreadState& state = State();
  if (state.capturing) state.capture.push_back(record);
}

void Tracer::EmitInstant(InstantEvent event) {
  event.ts_ns = NowNs();
  event.thread_id = ThreadId();
  auto sinks = std::atomic_load_explicit(&sinks_, std::memory_order_acquire);
  for (const auto& sink : *sinks) sink->OnInstant(event);
}

uint64_t Tracer::NowNs() {
  static const auto origin = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - origin)
                                   .count());
}

uint64_t Tracer::ThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

#ifndef GEM2_TELEMETRY_DISABLED

Span::Span(std::string_view name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  ThreadState& state = State();
  Frame frame;
  frame.id = tracer.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  frame.name.assign(name.data(), name.size());
  frame.start_ns = Tracer::NowNs();
  frame.trace = CurrentTrace();
  if (state.meter != nullptr) frame.open_gas = state.meter->breakdown();
  id_ = frame.id;
  start_ns_ = frame.start_ns;
  if (state.meter != nullptr) open_gas_ = state.meter->used();
  state.stack.push_back(std::move(frame));
}

Span::~Span() {
  if (!active_) return;
  ThreadState& state = State();
  if (state.stack.empty()) return;  // sinks cleared mid-span on another thread
  Frame frame = std::move(state.stack.back());
  state.stack.pop_back();

  SpanRecord record;
  record.id = frame.id;
  record.parent_id = state.stack.empty() ? 0 : state.stack.back().id;
  // A root-of-stack span opened under a propagated trace context parents onto
  // the context's span: this is how a worker thread's slice span (or the
  // client's verify span) attaches under the SP's query span.
  if (record.parent_id == 0 && frame.trace.parent_span != 0) {
    record.parent_id = frame.trace.parent_span;
  }
  record.depth = static_cast<uint32_t>(state.stack.size());
  record.thread_id = Tracer::ThreadId();
  record.trace_hi = frame.trace.trace_hi;
  record.trace_lo = frame.trace.trace_lo;
  record.name = std::move(frame.name);
  record.start_ns = frame.start_ns;
  record.duration_ns = Tracer::NowNs() - frame.start_ns;
  if (state.meter != nullptr) {
    record.gas = state.meter->breakdown();
    record.gas -= frame.open_gas;
  }
  record.self_gas = record.gas.total() - frame.children_gas;
  if (!state.stack.empty()) {
    state.stack.back().children_gas += record.gas.total();
  }
  Tracer::Global().EmitSpan(record);
}

TraceContext Span::context() const {
  TraceContext ctx = CurrentTrace();
  ctx.parent_span = id_;
  return ctx;
}

gas::Gas Span::gas_so_far() const {
  if (!active_) return 0;
  const gas::Meter* meter = State().meter;
  return meter != nullptr ? meter->used() - open_gas_ : 0;
}

#endif  // GEM2_TELEMETRY_DISABLED

}  // namespace gem2::telemetry
