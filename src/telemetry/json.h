/// \file json.h
/// Minimal JSON value: enough to write the telemetry exports (Chrome trace,
/// BENCH_*.json) and to re-parse/validate them without external dependencies.
/// Numbers are stored as doubles on parse; writing supports unsigned 64-bit
/// integers losslessly.
#ifndef GEM2_TELEMETRY_JSON_H_
#define GEM2_TELEMETRY_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gem2::telemetry {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered object (deterministic output).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<uint64_t>(i < 0 ? 0 : i)) {
    if (i < 0) value_ = static_cast<double>(i);
  }
  JsonValue(uint64_t u) : value_(u) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<uint64_t>(value_);
  }

  JsonArray& array() { return std::get<JsonArray>(value_); }
  const JsonArray& array() const { return std::get<JsonArray>(value_); }
  JsonObject& object() { return std::get<JsonObject>(value_); }
  const JsonObject& object() const { return std::get<JsonObject>(value_); }
  const std::string& string() const { return std::get<std::string>(value_); }
  double number() const {
    if (const auto* u = std::get_if<uint64_t>(&value_)) {
      return static_cast<double>(*u);
    }
    return std::get<double>(value_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes to compact JSON (no insignificant whitespace).
  std::string Dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, uint64_t, std::string, JsonArray,
               JsonObject>
      value_;
};

/// Escapes `s` as the *inside* of a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// Full-document parse; std::nullopt on any syntax error or trailing junk.
std::optional<JsonValue> JsonParse(std::string_view text);

/// True when `text` is one syntactically valid JSON document.
inline bool JsonValid(std::string_view text) { return JsonParse(text).has_value(); }

}  // namespace gem2::telemetry

#endif  // GEM2_TELEMETRY_JSON_H_
