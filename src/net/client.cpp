#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "telemetry/metrics.h"

namespace gem2::net {
namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

}  // namespace

FrameClient::~FrameClient() { Close(); }

void FrameClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

bool FrameClient::Connect(uint16_t port, int timeout_ms) {
  Close();
  error_.clear();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = "socket failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      error_ = std::string("connect: ") + std::strerror(errno);
      Close();
      return false;
    }
    pollfd pfd{fd_, POLLOUT, 0};
    if (poll(&pfd, 1, timeout_ms) <= 0) {
      error_ = "connect timed out";
      Close();
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      error_ = std::string("connect: ") + std::strerror(err);
      Close();
      return false;
    }
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool FrameClient::Send(const Bytes& bytes, int timeout_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (poll(&pfd, 1, RemainingMs(deadline)) <= 0) {
        error_ = "send timed out";
        return false;
      }
      continue;
    }
    error_ = std::string("send: ") + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

bool FrameClient::SendQuery(uint64_t request_id, Key lb, Key ub,
                            int timeout_ms) {
  return Send(EncodeQueryFrame(request_id, lb, ub), timeout_ms);
}

bool FrameClient::SendQuerySpec(uint64_t request_id,
                                const core::QuerySpec& spec, int timeout_ms) {
  return Send(EncodeQuery2Frame(request_id, spec), timeout_ms);
}

std::optional<Frame> FrameClient::ReadFrame(int timeout_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return std::nullopt;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  uint8_t buf[64 * 1024];
  Frame frame;
  while (true) {
    switch (decoder_.Next(&frame)) {
      case FrameDecoder::Result::kFrame:
        return frame;
      case FrameDecoder::Result::kError:
        error_ = "framing error: " + decoder_.error();
        Close();
        return std::nullopt;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    const int wait_ms = RemainingMs(deadline);
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = poll(&pfd, 1, wait_ms);
    if (pr <= 0) {
      error_ = "read timed out";
      return std::nullopt;
    }
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    error_ = n == 0 ? "connection closed by server"
                    : std::string("read: ") + std::strerror(errno);
    Close();
    return std::nullopt;
  }
}

RetryingSocketClient::RetryingSocketClient(core::RangeStore& verifier,
                                           uint16_t port,
                                           fault::RetryPolicy policy,
                                           uint64_t seed)
    : verifier_(verifier), port_(port), policy_(policy), rng_(seed) {}

SocketOutcome RetryingSocketClient::AuthenticatedRange(Key lb, Key ub) {
  SocketOutcome outcome;
  std::string last_error = "no attempt made";
  auto& metrics = telemetry::MetricsRegistry::Global();
  const auto deadline =
      Clock::now() + std::chrono::microseconds(policy_.deadline_us);
  const int attempt_ms = static_cast<int>(
      std::max<uint64_t>(1, policy_.attempt_timeout_us / 1000));

  while (outcome.attempts < policy_.max_attempts && Clock::now() < deadline) {
    ++outcome.attempts;
    if (!conn_.connected()) {
      ++outcome.reconnects;
      if (!conn_.Connect(port_, attempt_ms)) {
        last_error = conn_.error();
        metrics.counter("client.socket.connect_failures").Add(1);
        continue;
      }
    }
    const uint64_t request_id = next_request_id_++;
    if (!conn_.SendQuery(request_id, lb, ub, attempt_ms)) {
      last_error = conn_.error();
      conn_.Close();
      continue;
    }
    // Pull frames until ours arrives: a stale (reordered or duplicated)
    // frame answering an earlier request id is skipped, not trusted. Every
    // read is budgeted against the overall deadline so a server streaming
    // mismatched ids cannot stretch one attempt past policy_.deadline_us.
    std::optional<Frame> frame;
    bool deadline_hit = false;
    while (true) {
      const int wait_ms = std::min(attempt_ms, RemainingMs(deadline));
      if (wait_ms <= 0) {
        deadline_hit = true;
        break;
      }
      frame = conn_.ReadFrame(wait_ms);
      if (!frame.has_value() || frame->request_id == request_id) break;
      metrics.counter("client.socket.stale_responses").Add(1);
      frame.reset();  // never act on a stale frame left behind at deadline
    }
    if (deadline_hit) {
      last_error = "overall deadline exceeded while awaiting response";
      conn_.Close();
    } else if (!frame.has_value()) {
      last_error = conn_.error();
      // Timeouts keep the connection; decode errors already closed it. Reset
      // on timeout too: a half-delivered frame would desync the stream.
      conn_.Close();
    } else if (frame->type == FrameType::kBusy) {
      ++outcome.busy_responses;
      last_error = "server busy (load shed)";
      metrics.counter("client.socket.busy").Add(1);
    } else if (frame->type == FrameType::kError) {
      last_error = "server error: " +
                   std::string(frame->body.begin(), frame->body.end());
      metrics.counter("client.socket.server_errors").Add(1);
    } else if (frame->type == FrameType::kResponse) {
      core::VerifiedResult vr =
          verifier_.VerifyWire(lb, ub, frame->body);
      if (vr.ok) {
        outcome.ok = true;
        outcome.result = std::move(vr);
        break;
      }
      last_error = vr.error;
      metrics.counter("client.socket.verify_rejected").Add(1);
    } else {
      last_error = "unexpected frame type from server";
      conn_.Close();
    }

    if (outcome.attempts < policy_.max_attempts && Clock::now() < deadline) {
      const uint64_t backoff_us = policy_.BackoffUs(outcome.attempts, rng_);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }

  metrics.counter("client.socket.attempts").Add(outcome.attempts);
  if (!outcome.ok) {
    outcome.degraded = true;
    outcome.error = "degraded after " + std::to_string(outcome.attempts) +
                    " attempts: " + last_error;
    metrics.counter("client.socket.degraded").Add(1);
  } else if (outcome.attempts > 1) {
    metrics.counter("client.socket.recovered").Add(1);
  }
  return outcome;
}

SpecSocketOutcome RetryingSocketClient::AuthenticatedSpec(
    const core::QuerySpec& spec) {
  // Mirrors AuthenticatedRange line for line: same deadline/backoff/stale-id
  // discipline, with kQuery2 on the wire and VerifySpecWire as the accept
  // gate.
  SpecSocketOutcome outcome;
  std::string last_error = "no attempt made";
  auto& metrics = telemetry::MetricsRegistry::Global();
  const auto deadline =
      Clock::now() + std::chrono::microseconds(policy_.deadline_us);
  const int attempt_ms = static_cast<int>(
      std::max<uint64_t>(1, policy_.attempt_timeout_us / 1000));

  while (outcome.attempts < policy_.max_attempts && Clock::now() < deadline) {
    ++outcome.attempts;
    if (!conn_.connected()) {
      ++outcome.reconnects;
      if (!conn_.Connect(port_, attempt_ms)) {
        last_error = conn_.error();
        metrics.counter("client.socket.connect_failures").Add(1);
        continue;
      }
    }
    const uint64_t request_id = next_request_id_++;
    if (!conn_.SendQuerySpec(request_id, spec, attempt_ms)) {
      last_error = conn_.error();
      conn_.Close();
      continue;
    }
    std::optional<Frame> frame;
    bool deadline_hit = false;
    while (true) {
      const int wait_ms = std::min(attempt_ms, RemainingMs(deadline));
      if (wait_ms <= 0) {
        deadline_hit = true;
        break;
      }
      frame = conn_.ReadFrame(wait_ms);
      if (!frame.has_value() || frame->request_id == request_id) break;
      metrics.counter("client.socket.stale_responses").Add(1);
      frame.reset();
    }
    if (deadline_hit) {
      last_error = "overall deadline exceeded while awaiting response";
      conn_.Close();
    } else if (!frame.has_value()) {
      last_error = conn_.error();
      conn_.Close();
    } else if (frame->type == FrameType::kBusy) {
      ++outcome.busy_responses;
      last_error = "server busy (load shed)";
      metrics.counter("client.socket.busy").Add(1);
    } else if (frame->type == FrameType::kError) {
      last_error = "server error: " +
                   std::string(frame->body.begin(), frame->body.end());
      metrics.counter("client.socket.server_errors").Add(1);
    } else if (frame->type == FrameType::kResponse) {
      core::VerifiedSpecResult vr = verifier_.VerifySpecWire(spec, frame->body);
      if (vr.ok) {
        outcome.ok = true;
        outcome.result = std::move(vr);
        break;
      }
      last_error = vr.error;
      metrics.counter("client.socket.verify_rejected").Add(1);
    } else {
      last_error = "unexpected frame type from server";
      conn_.Close();
    }

    if (outcome.attempts < policy_.max_attempts && Clock::now() < deadline) {
      const uint64_t backoff_us = policy_.BackoffUs(outcome.attempts, rng_);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }

  metrics.counter("client.socket.attempts").Add(outcome.attempts);
  if (!outcome.ok) {
    outcome.degraded = true;
    outcome.error = "degraded after " + std::to_string(outcome.attempts) +
                    " attempts: " + last_error;
    metrics.counter("client.socket.degraded").Add(1);
  } else if (outcome.attempts > 1) {
    metrics.counter("client.socket.recovered").Add(1);
  }
  return outcome;
}

}  // namespace gem2::net
