#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <vector>

namespace gem2::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("epoll_create1");
  event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    close(epoll_fd_);
    ThrowErrno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kWakeupTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    close(event_fd_);
    close(epoll_fd_);
    ThrowErrno("epoll_ctl(eventfd)");
  }
}

Reactor::~Reactor() {
  if (event_fd_ >= 0) close(event_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void Reactor::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.u64 = tag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) ThrowErrno("epoll_ctl(add)");
}

void Reactor::Modify(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.u64 = tag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) ThrowErrno("epoll_ctl(mod)");
}

void Reactor::Remove(int fd) {
  // Ignore failures: the fd may already have been closed by the kernel side.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int Reactor::Wait(Event* events, int max_events, int timeout_ms) {
  std::vector<epoll_event> raw(static_cast<size_t>(max_events));
  int n;
  do {
    n = epoll_wait(epoll_fd_, raw.data(), max_events, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) ThrowErrno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    events[i].tag = raw[static_cast<size_t>(i)].data.u64;
    events[i].events = raw[static_cast<size_t>(i)].events;
    if (events[i].tag == kWakeupTag) {
      // Drain the eventfd so the edge re-arms; the tick count is irrelevant.
      uint64_t tick = 0;
      while (read(event_fd_, &tick, sizeof(tick)) > 0) {
      }
    }
  }
  return n;
}

void Reactor::Wakeup() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t rc = write(event_fd_, &one, sizeof(one));
}

}  // namespace gem2::net
