/// \file client.h
/// Client-side halves of the frame protocol:
///
///   - FrameClient: a thin synchronous connection (nonblocking socket +
///     poll deadlines underneath) used by tests, the chaos harness, and any
///     caller that wants one request on the wire at a time;
///   - RetryingSocketClient: the fault layer's retry discipline
///     (fault::RetryPolicy — capped exponential backoff with deterministic
///     jitter, per-query deadline, graceful degradation) carried over live
///     sockets: timeouts, kBusy sheds, kError frames, framing damage, and
///     verification failures all trigger a reconnect-and-retry, and the
///     query only succeeds when the response *verifies* against the chain.
///
/// Both are single-threaded objects; the open-loop load harness drives its
/// ten thousand connections through its own epoll loop instead (see
/// bench/service_load.cpp).
#ifndef GEM2_NET_CLIENT_H_
#define GEM2_NET_CLIENT_H_

#include <optional>
#include <string>

#include "common/random.h"
#include "core/range_store.h"
#include "fault/transport.h"
#include "net/frame.h"

namespace gem2::net {

/// One synchronous client connection speaking the frame protocol.
class FrameClient {
 public:
  FrameClient() = default;
  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// Connects to 127.0.0.1:`port`. False (with error()) on failure.
  bool Connect(uint16_t port, int timeout_ms = 1000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends raw bytes, handling partial writes, within `timeout_ms`.
  bool Send(const Bytes& bytes, int timeout_ms = 1000);
  bool SendQuery(uint64_t request_id, Key lb, Key ub, int timeout_ms = 1000);
  /// Sends a kQuery2 frame carrying a typed spec. Throws
  /// std::invalid_argument for a structurally invalid spec.
  bool SendQuerySpec(uint64_t request_id, const core::QuerySpec& spec,
                     int timeout_ms = 1000);

  /// Blocks until one complete frame arrives or the deadline passes.
  /// std::nullopt on timeout, EOF, or a framing error (error() explains;
  /// the connection is closed on EOF/decode errors, left open on timeout).
  std::optional<Frame> ReadFrame(int timeout_ms);

  const std::string& error() const { return error_; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::string error_;
};

/// Outcome of one retried query over sockets; mirrors fault::ClientOutcome
/// with socket-flavoured extras.
struct SocketOutcome {
  bool ok = false;
  /// Graceful degradation: deadline or attempt budget exhausted.
  bool degraded = false;
  core::VerifiedResult result;
  uint32_t attempts = 0;
  uint64_t busy_responses = 0;  ///< kBusy sheds seen along the way
  uint64_t reconnects = 0;
  std::string error;
};

/// Outcome of one retried spec query over sockets.
struct SpecSocketOutcome {
  bool ok = false;
  bool degraded = false;
  core::VerifiedSpecResult result;
  uint32_t attempts = 0;
  uint64_t busy_responses = 0;
  uint64_t reconnects = 0;
  std::string error;
};

class RetryingSocketClient {
 public:
  /// `verifier` supplies client-side verification (VerifyWire /
  /// VerifySpecWire) — typically the same RangeStore the server wraps,
  /// playing its client facet. Backoffs sleep for real microseconds (they
  /// are already sub-50ms capped).
  RetryingSocketClient(core::RangeStore& verifier, uint16_t port,
                       fault::RetryPolicy policy, uint64_t seed);

  SocketOutcome AuthenticatedRange(Key lb, Key ub);

  /// The typed analogue: sends kQuery2 and only succeeds when the spec
  /// answer *verifies* (VerifySpecWire) against the chain.
  SpecSocketOutcome AuthenticatedSpec(const core::QuerySpec& spec);

  const FrameClient& connection() const { return conn_; }

 private:
  core::RangeStore& verifier_;
  uint16_t port_;
  fault::RetryPolicy policy_;
  Rng rng_;
  FrameClient conn_;
  uint64_t next_request_id_ = 1;
};

}  // namespace gem2::net

#endif  // GEM2_NET_CLIENT_H_
