/// \file chaos.h
/// In-process socket chaos: a TCP proxy that sits in front of the real SP
/// listener and replays the fault layer's deterministic flaky-channel
/// operators — drop, truncate, corrupt, reorder/stale, duplicate, latency —
/// against *live* response traffic.
///
/// Requests pass upstream untouched. Each complete response frame coming
/// back is pushed through a seeded fault::FlakyChannel: the resulting
/// packets (zero = dropped, two = duplicated, possibly corrupted, truncated,
/// or a stale earlier frame) are delivered downstream after the channel's
/// injected latency, scaled to real time. Because the operators run on the
/// framed bytes, damage lands exactly where a hostile network would put it:
/// in the frame header (client framing fails closed, reconnect + retry) or
/// in the authenticated image (client verification rejects — the 100%
/// forgery-rejection property, now demonstrated over real sockets).
///
/// Every schedule is a pure function of the seed, like every other fault
/// stream (fault.h): a failing chaos run reproduces from the logged seed.
#ifndef GEM2_NET_CHAOS_H_
#define GEM2_NET_CHAOS_H_

#include <cstdint>
#include <memory>

#include "fault/transport.h"

namespace gem2::net {

struct ChaosOptions {
  /// Per-response-frame fault operators (the same knobs FlakyChannel takes
  /// in the in-memory harness).
  fault::ChannelOptions channel;
  uint64_t seed = 1;
  /// Injected virtual latency is delivered as `latency_us * latency_scale`
  /// real microseconds; 0 delivers immediately.
  double latency_scale = 1.0;
};

class ChaosProxy {
 public:
  /// Proxies 127.0.0.1:<ephemeral> -> 127.0.0.1:upstream_port.
  ChaosProxy(uint16_t upstream_port, ChaosOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  void Start();
  void Stop();

  /// The port clients should connect to (valid after Start()).
  uint16_t port() const;

  /// The underlying channel's operator counts (sent/dropped/corrupted/...).
  fault::ChannelStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gem2::net

#endif  // GEM2_NET_CHAOS_H_
