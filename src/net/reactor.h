/// \file reactor.h
/// A thin edge-triggered epoll wrapper with an eventfd wakeup channel: the
/// event-demultiplexing core of the SP service front-end.
///
/// One thread owns the reactor and sits in Wait(); any other thread may call
/// Wakeup() (async-signal-safe, lock-free) to interrupt the wait — this is
/// how worker threads hand completed responses back to the event loop.
/// Registration is edge-triggered (EPOLLET is OR'd into every Add/Modify),
/// so the owner must drain readable/writable fds to EAGAIN before the next
/// Wait — the server's read/write loops do exactly that.
#ifndef GEM2_NET_REACTOR_H_
#define GEM2_NET_REACTOR_H_

#include <cstdint>

namespace gem2::net {

class Reactor {
 public:
  /// Tag Wait() reports for eventfd wakeups. User tags must not collide.
  static constexpr uint64_t kWakeupTag = ~0ull;

  /// Throws std::system_error if epoll_create1 or eventfd fails.
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT; EPOLLET is implied).
  /// `tag` comes back in Event::tag.
  void Add(int fd, uint32_t events, uint64_t tag);
  void Modify(int fd, uint32_t events, uint64_t tag);
  void Remove(int fd);

  struct Event {
    uint64_t tag = 0;
    uint32_t events = 0;
  };

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`. Returns
  /// the number of events delivered; eventfd ticks surface as kWakeupTag
  /// (already drained). EINTR is retried internally.
  int Wait(Event* events, int max_events, int timeout_ms);

  /// Interrupts a concurrent Wait(). Callable from any thread.
  void Wakeup();

  int fd() const { return epoll_fd_; }

 private:
  int epoll_fd_ = -1;
  int event_fd_ = -1;
};

}  // namespace gem2::net

#endif  // GEM2_NET_REACTOR_H_
