/// \file frame.h
/// Length-prefixed framing for the SP service protocol: the byte-stream
/// record layer the reactor speaks on every connection. A frame is a
/// fixed-size header followed by a variable body:
///
///   header (20 bytes):
///     [0..3]   magic "G2F1"
///     [4]      type   (FrameType)
///     [5]      flags  (must be 0 in this version)
///     [6..7]   reserved (must be 0)
///     [8..15]  request id, big-endian u64
///     [16..19] body length, big-endian u32
///   body:
///     kQuery:    16 bytes — lb, ub as big-endian two's-complement i64
///     kQuery2:   a canonical core::QuerySpec image (SerializeQuerySpec) —
///                the typed boolean/aggregate query. The decoder validates
///                the spec as part of framing: a malformed spec body poisons
///                the decoder exactly like a bad magic would.
///     kResponse: the traced-envelope + wire image exactly as QueryWire /
///                SpecWire produces it (the frame carries the GTW1 context
///                *alongside* the authenticated bytes, never inside them)
///     kBusy:     empty — explicit load-shed, the client should back off
///     kError:    UTF-8 diagnostic message
///
/// The request id correlates responses with requests: admission-controlled
/// servers may answer out of order, and a client may pipeline many requests
/// on one connection. Ids are chosen by the client and echoed verbatim.
///
/// Decoding is fail-closed in the same spirit as the wire codecs: a bad
/// magic, unknown type, nonzero flags/reserved bits, or a body length above
/// the configured cap is a framing error — the server answers kError and
/// drops the connection; it never guesses at resynchronization.
#ifndef GEM2_NET_FRAME_H_
#define GEM2_NET_FRAME_H_

#include <cstddef>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/types.h"
#include "core/query_spec.h"

namespace gem2::net {

enum class FrameType : uint8_t {
  kQuery = 1,
  kResponse = 2,
  kBusy = 3,
  kError = 4,
  kQuery2 = 5,
};

inline constexpr uint8_t kFrameMagic[4] = {'G', '2', 'F', '1'};
inline constexpr size_t kFrameHeaderBytes = 20;

/// Default body-length cap. Request frames are 16 bytes; response images for
/// sane selectivities are well under this. Anything larger is rejected
/// before a single body byte is buffered.
inline constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

struct FrameHeader {
  FrameType type = FrameType::kQuery;
  uint64_t request_id = 0;
  uint32_t length = 0;
};

/// One decoded frame (header + body copy).
struct Frame {
  FrameType type = FrameType::kQuery;
  uint64_t request_id = 0;
  Bytes body;
};

/// Appends a complete frame header. `length` must be the final body size.
void AppendFrameHeader(Bytes* out, FrameType type, uint64_t request_id,
                       uint32_t length);

/// Begins a frame whose body will be appended directly behind the header
/// (the no-copy serving path): writes a header with a zero length field and
/// returns its offset in `*out`. FinishFrame patches the length once the
/// body is in place.
size_t BeginFrame(Bytes* out, FrameType type, uint64_t request_id);

/// Patches the length field of the header at `header_offset` to cover all
/// bytes appended since BeginFrame. Throws std::length_error if the body
/// outgrew UINT32_MAX.
void FinishFrame(Bytes* out, size_t header_offset);

/// Encodes a full frame in one buffer.
Bytes EncodeFrame(FrameType type, uint64_t request_id, const Bytes& body);

/// Encodes a kQuery frame for [lb, ub].
Bytes EncodeQueryFrame(uint64_t request_id, Key lb, Key ub);

/// The query body payload.
struct QueryBody {
  Key lb = 0;
  Key ub = 0;
};

/// Parses a kQuery body; std::nullopt unless it is exactly 16 bytes.
std::optional<QueryBody> ParseQueryBody(const Bytes& body);

/// Encodes a kQuery2 frame carrying `spec` (canonical QuerySpec image).
/// Throws std::invalid_argument for a structurally invalid spec — an invalid
/// spec must never reach the wire (the receiving decoder would poison).
Bytes EncodeQuery2Frame(uint64_t request_id, const core::QuerySpec& spec);

/// Parses a kQuery2 body; std::nullopt unless the whole body is one valid
/// canonical spec image (core::ParseQuerySpec, fail-closed).
std::optional<core::QuerySpec> ParseQuery2Body(const Bytes& body);

/// Incremental fail-closed decoder over a connection's inbound byte stream.
/// Feed whatever read() produced; Next() pops complete frames. After an
/// error the decoder stays failed — the connection must be dropped, framing
/// is never resynchronized.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const uint8_t* data, size_t len);

  enum class Result {
    kFrame,     ///< *out holds the next frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream is malformed (see error()); decoder is dead
  };

  Result Next(Frame* out);

  const std::string& error() const { return error_; }
  bool failed() const { return failed_; }
  /// Bytes buffered but not yet consumed by a popped frame.
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  uint32_t max_frame_bytes_;
  Bytes buffer_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace gem2::net

#endif  // GEM2_NET_FRAME_H_
