#include "net/chaos.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <map>
#include <mutex>
#include <queue>
#include <system_error>
#include <thread>
#include <vector>

#include "net/frame.h"

namespace gem2::net {
namespace {

using Clock = std::chrono::steady_clock;

int MakeListener(uint16_t port, uint16_t* bound) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::system_error(errno, std::generic_category(), "socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 128) != 0) {
    const int saved = errno;
    close(fd);
    throw std::system_error(saved, std::generic_category(), "bind/listen");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound = ntohs(addr.sin_port);
  return fd;
}

int ConnectUpstream(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Nonblocking from here on; the connect itself was allowed to block (the
  // upstream listener is in-process and always accepting).
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) | O_NONBLOCK);
  return fd;
}

}  // namespace

struct ChaosProxy::Impl {
  uint16_t upstream_port;
  ChaosOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;

  mutable std::mutex channel_mutex;
  fault::FlakyChannel channel;

  struct Pair {
    uint64_t id = 0;
    int down_fd = -1;
    int up_fd = -1;
    FrameDecoder up_decoder;  ///< reassembles upstream response frames
    Bytes down_out;           ///< bytes owed to the client
    size_t down_off = 0;
    Bytes up_out;  ///< bytes owed to the server
    size_t up_off = 0;
  };
  std::map<uint64_t, Pair> pairs;
  uint64_t next_pair_id = 1;

  /// A packet the channel delayed: delivered to `pair_id`'s client at
  /// `due`. The heap keeps cross-connection delivery order honest.
  struct Delayed {
    Clock::time_point due;
    uint64_t pair_id;
    Bytes bytes;
    bool operator>(const Delayed& o) const { return due > o.due; }
  };
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<Delayed>>
      delayed;

  std::atomic<bool> stop{false};
  std::thread thread;
  bool started = false;

  Impl(uint16_t up, ChaosOptions opts)
      : upstream_port(up),
        options(opts),
        channel(opts.channel, opts.seed) {}

  void ClosePair(Pair& pair) {
    if (pair.down_fd >= 0) close(pair.down_fd);
    if (pair.up_fd >= 0) close(pair.up_fd);
    pairs.erase(pair.id);
  }

  /// Feeds one upstream read through the frame decoder and the flaky
  /// channel, scheduling the surviving packets for downstream delivery.
  bool MangleUpstream(Pair& pair, const uint8_t* data, size_t len) {
    pair.up_decoder.Feed(data, len);
    Frame frame;
    while (true) {
      const FrameDecoder::Result r = pair.up_decoder.Next(&frame);
      if (r == FrameDecoder::Result::kNeedMore) return true;
      if (r == FrameDecoder::Result::kError) return false;  // server bug; drop pair
      const Bytes encoded = EncodeFrame(frame.type, frame.request_id, frame.body);
      fault::FlakyChannel::Delivery delivery;
      {
        std::lock_guard<std::mutex> lock(channel_mutex);
        delivery = channel.Transmit(encoded);
      }
      const auto due =
          Clock::now() + std::chrono::microseconds(static_cast<uint64_t>(
                             static_cast<double>(delivery.latency_us) *
                             options.latency_scale));
      for (Bytes& packet : delivery.packets) {
        delayed.push(Delayed{due, pair.id, std::move(packet)});
      }
    }
  }

  /// Flushes as much of `buf` (from `*off`) as the socket accepts.
  /// Returns false on a hard error.
  static bool FlushBuffer(int fd, Bytes& buf, size_t* off) {
    while (*off < buf.size()) {
      const ssize_t n = send(fd, buf.data() + *off, buf.size() - *off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        *off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;
    }
    if (*off == buf.size()) {
      buf.clear();
      *off = 0;
    }
    return true;
  }

  void DeliverDue() {
    const auto now = Clock::now();
    while (!delayed.empty() && delayed.top().due <= now) {
      const Delayed& d = delayed.top();
      auto it = pairs.find(d.pair_id);
      if (it != pairs.end()) {
        it->second.down_out.insert(it->second.down_out.end(), d.bytes.begin(),
                                   d.bytes.end());
      }
      delayed.pop();
    }
  }

  void Loop() {
    std::vector<pollfd> fds;
    std::vector<std::pair<uint64_t, bool>> owners;  // pair id, is_down
    uint8_t buf[64 * 1024];
    while (!stop.load(std::memory_order_acquire)) {
      DeliverDue();
      // Flush pending buffers opportunistically, then poll on what remains.
      fds.clear();
      owners.clear();
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      owners.emplace_back(0, false);
      for (auto& [id, pair] : pairs) {
        short down_ev = POLLIN;
        if (!pair.down_out.empty()) down_ev |= POLLOUT;
        fds.push_back(pollfd{pair.down_fd, down_ev, 0});
        owners.emplace_back(id, true);
        short up_ev = POLLIN;
        if (!pair.up_out.empty()) up_ev |= POLLOUT;
        fds.push_back(pollfd{pair.up_fd, up_ev, 0});
        owners.emplace_back(id, false);
      }
      int timeout_ms = 50;
      if (!delayed.empty()) {
        const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
            delayed.top().due - Clock::now());
        timeout_ms = std::clamp<int>(static_cast<int>(until.count()), 0, 50);
      }
      const int pr = poll(fds.data(), fds.size(), timeout_ms);
      if (pr < 0 && errno != EINTR) break;
      if (pr <= 0) continue;

      // Accept new client connections, pairing each with its own upstream.
      if (fds[0].revents & POLLIN) {
        while (true) {
          const int down = accept4(listen_fd, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (down < 0) break;
          const int one = 1;
          setsockopt(down, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          const int up = ConnectUpstream(upstream_port);
          if (up < 0) {
            close(down);
            continue;
          }
          Pair pair;
          pair.id = next_pair_id++;
          pair.down_fd = down;
          pair.up_fd = up;
          pairs.emplace(pair.id, std::move(pair));
        }
      }

      std::vector<uint64_t> dead;
      for (size_t i = 1; i < fds.size(); ++i) {
        const auto [id, is_down] = owners[i];
        auto it = pairs.find(id);
        if (it == pairs.end()) continue;
        Pair& pair = it->second;
        const short revents = fds[i].revents;
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Half-close tolerance is not worth modelling here: a chaos pair
          // dies as a unit and the retrying client reconnects.
          if ((revents & (POLLERR | POLLNVAL)) ||
              (is_down ? pair.down_out.empty() : true)) {
            dead.push_back(id);
            continue;
          }
        }
        if (revents & POLLIN) {
          const int fd = is_down ? pair.down_fd : pair.up_fd;
          while (true) {
            const ssize_t n = read(fd, buf, sizeof(buf));
            if (n > 0) {
              bool ok = true;
              if (is_down) {
                // Requests pass through unmodified.
                pair.up_out.insert(pair.up_out.end(), buf, buf + n);
              } else {
                ok = MangleUpstream(pair, buf, static_cast<size_t>(n));
              }
              if (!ok) {
                dead.push_back(id);
                break;
              }
              if (n == static_cast<ssize_t>(sizeof(buf))) continue;
              break;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            dead.push_back(id);
            break;
          }
        }
      }
      for (uint64_t id : dead) {
        auto it = pairs.find(id);
        if (it != pairs.end()) ClosePair(it->second);
      }

      DeliverDue();
      std::vector<uint64_t> write_dead;
      for (auto& [id, pair] : pairs) {
        if (!FlushBuffer(pair.up_fd, pair.up_out, &pair.up_off) ||
            !FlushBuffer(pair.down_fd, pair.down_out, &pair.down_off)) {
          write_dead.push_back(id);
        }
      }
      for (uint64_t id : write_dead) {
        auto it = pairs.find(id);
        if (it != pairs.end()) ClosePair(it->second);
      }
    }
    for (auto it = pairs.begin(); it != pairs.end();) {
      Pair& pair = (it++)->second;
      ClosePair(pair);
    }
    if (listen_fd >= 0) {
      close(listen_fd);
      listen_fd = -1;
    }
  }
};

ChaosProxy::ChaosProxy(uint16_t upstream_port, ChaosOptions options)
    : impl_(std::make_unique<Impl>(upstream_port, options)) {}

ChaosProxy::~ChaosProxy() { Stop(); }

void ChaosProxy::Start() {
  if (impl_->started) return;
  impl_->listen_fd = MakeListener(0, &impl_->bound_port);
  impl_->started = true;
  impl_->thread = std::thread([this] { impl_->Loop(); });
}

void ChaosProxy::Stop() {
  if (!impl_->started) return;
  impl_->stop.store(true, std::memory_order_release);
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->started = false;
}

uint16_t ChaosProxy::port() const { return impl_->bound_port; }

fault::ChannelStats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(impl_->channel_mutex);
  return impl_->channel.stats();
}

}  // namespace gem2::net
