#include "net/frame.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace gem2::net {
namespace {

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kQuery) &&
         t <= static_cast<uint8_t>(FrameType::kQuery2);
}

uint32_t ReadU32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

/// Decodes a header from `len` available bytes. kNeedMore until 20 bytes are
/// present; kError on any malformed field.
enum class HeaderStatus { kOk, kNeedMore, kBad };

HeaderStatus DecodeHeader(const uint8_t* data, size_t len,
                          uint32_t max_frame_bytes, FrameHeader* out,
                          std::string* error) {
  if (len < kFrameHeaderBytes) return HeaderStatus::kNeedMore;
  if (std::memcmp(data, kFrameMagic, 4) != 0) {
    *error = "bad frame magic";
    return HeaderStatus::kBad;
  }
  if (!KnownType(data[4])) {
    *error = "unknown frame type";
    return HeaderStatus::kBad;
  }
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) {
    *error = "nonzero reserved frame bits";
    return HeaderStatus::kBad;
  }
  out->type = static_cast<FrameType>(data[4]);
  out->request_id = ReadU64(data + 8);
  out->length = ReadU32(data + 16);
  if (out->length > max_frame_bytes) {
    *error = "oversized frame";
    return HeaderStatus::kBad;
  }
  return HeaderStatus::kOk;
}

}  // namespace

void AppendFrameHeader(Bytes* out, FrameType type, uint64_t request_id,
                       uint32_t length) {
  out->insert(out->end(), kFrameMagic, kFrameMagic + 4);
  out->push_back(static_cast<uint8_t>(type));
  out->push_back(0);
  out->push_back(0);
  out->push_back(0);
  AppendUint64(out, request_id);
  out->push_back(static_cast<uint8_t>(length >> 24));
  out->push_back(static_cast<uint8_t>(length >> 16));
  out->push_back(static_cast<uint8_t>(length >> 8));
  out->push_back(static_cast<uint8_t>(length));
}

size_t BeginFrame(Bytes* out, FrameType type, uint64_t request_id) {
  const size_t offset = out->size();
  AppendFrameHeader(out, type, request_id, 0);
  return offset;
}

void FinishFrame(Bytes* out, size_t header_offset) {
  const size_t body = out->size() - header_offset - kFrameHeaderBytes;
  if (body > UINT32_MAX) throw std::length_error("frame body exceeds 4 GiB");
  uint8_t* p = out->data() + header_offset + 16;
  p[0] = static_cast<uint8_t>(body >> 24);
  p[1] = static_cast<uint8_t>(body >> 16);
  p[2] = static_cast<uint8_t>(body >> 8);
  p[3] = static_cast<uint8_t>(body);
}

Bytes EncodeFrame(FrameType type, uint64_t request_id, const Bytes& body) {
  if (body.size() > UINT32_MAX) {
    throw std::length_error("frame body exceeds 4 GiB");
  }
  Bytes out;
  out.reserve(kFrameHeaderBytes + body.size());
  AppendFrameHeader(&out, type, request_id,
                    static_cast<uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bytes EncodeQueryFrame(uint64_t request_id, Key lb, Key ub) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + 16);
  AppendFrameHeader(&out, FrameType::kQuery, request_id, 16);
  AppendKey(&out, lb);
  AppendKey(&out, ub);
  return out;
}

std::optional<QueryBody> ParseQueryBody(const Bytes& body) {
  if (body.size() != 16) return std::nullopt;
  QueryBody q;
  q.lb = static_cast<Key>(ReadU64(body.data()));
  q.ub = static_cast<Key>(ReadU64(body.data() + 8));
  return q;
}

Bytes EncodeQuery2Frame(uint64_t request_id, const core::QuerySpec& spec) {
  const std::string invalid = spec.Check();
  if (!invalid.empty()) {
    throw std::invalid_argument("EncodeQuery2Frame: " + invalid);
  }
  const Bytes body = core::SerializeQuerySpec(spec);
  Bytes out;
  out.reserve(kFrameHeaderBytes + body.size());
  AppendFrameHeader(&out, FrameType::kQuery2, request_id,
                    static_cast<uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<core::QuerySpec> ParseQuery2Body(const Bytes& body) {
  return core::ParseQuerySpec(body);
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (failed_ || len == 0) return;
  // Compact the consumed prefix before growing: a connection that pipelines
  // many frames would otherwise keep every byte it ever received buffered.
  if (pos_ > 0 && (pos_ == buffer_.size() || pos_ >= 4096)) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + len);
}

FrameDecoder::Result FrameDecoder::Next(Frame* out) {
  if (failed_) return Result::kError;
  FrameHeader header;
  const HeaderStatus status = DecodeHeader(
      buffer_.data() + pos_, buffer_.size() - pos_, max_frame_bytes_, &header,
      &error_);
  if (status == HeaderStatus::kBad) {
    failed_ = true;
    return Result::kError;
  }
  if (status == HeaderStatus::kNeedMore ||
      buffer_.size() - pos_ < kFrameHeaderBytes + header.length) {
    return Result::kNeedMore;
  }
  out->type = header.type;
  out->request_id = header.request_id;
  const uint8_t* body = buffer_.data() + pos_ + kFrameHeaderBytes;
  out->body.assign(body, body + header.length);
  pos_ += kFrameHeaderBytes + header.length;
  // Spec validity is part of framing: a kQuery2 body that is not one valid
  // canonical QuerySpec image poisons the decoder — the peer is either
  // confused or malicious, and resynchronizing would only guess.
  if (out->type == FrameType::kQuery2 &&
      !core::ParseQuerySpec(out->body).has_value()) {
    failed_ = true;
    error_ = "malformed query spec body";
    return Result::kError;
  }
  return Result::kFrame;
}

}  // namespace gem2::net
