/// \file server.h
/// The SP service front-end: an event-driven, non-blocking TCP server that
/// answers authenticated range queries over the frame protocol (frame.h),
/// built to hold thousands of mostly-idle light-client connections.
///
/// Architecture (docs/SERVICE.md):
///
///   - ONE reactor thread owns every socket: an edge-triggered epoll loop
///     (reactor.h) accepts connections, drains reads into per-connection
///     FrameDecoders, and drains bounded outbound buffers on EPOLLOUT. It
///     never computes a query and never blocks on a socket.
///   - a FIXED worker pool executes admitted queries against the
///     SpQueryEngine (whose own sp_pool parallelizes the tree walks) and
///     serializes each response *directly* into its frame buffer via
///     QueryWireInto — no per-response image copy anywhere on the path.
///     Workers hand finished frames back through a completion queue plus an
///     eventfd wakeup; only the reactor touches sockets.
///   - ADMISSION CONTROL: at most `max_in_flight` admitted-but-undelivered
///     queries exist at once. Past the bound the reactor answers kBusy
///     immediately — an explicit shed the client can see and back off from,
///     never a silent drop or an unbounded queue.
///   - WRITE BACKPRESSURE: each connection's outbound buffer is bounded by
///     `max_outbound_bytes`. A client that stops reading while responses
///     accumulate is disconnected (service.disconnect.slow) — one slow
///     client cannot hold worker output or reactor memory hostage.
///
/// Stop() is a clean shutdown: the listener closes first, every admitted
/// query still completes, and its response is flushed before the connection
/// closes (bounded by a drain deadline so a dead peer cannot wedge it).
#ifndef GEM2_NET_SERVER_H_
#define GEM2_NET_SERVER_H_

#include <cstdint>
#include <memory>

namespace gem2::core {
class SpQueryEngine;
}

namespace gem2::net {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  int listen_backlog = 1024;
  /// Worker threads executing queries. 0 = one per hardware thread.
  size_t worker_threads = 0;
  /// Admission bound: queued + executing + undelivered queries. Beyond it
  /// new queries are answered kBusy by the reactor thread.
  size_t max_in_flight = 1024;
  /// Largest acceptable frame body (requests are 16 bytes; this mostly
  /// bounds a malicious length prefix).
  uint32_t max_frame_bytes = 1u << 20;
  /// Per-connection outbound buffer bound; exceeding it disconnects the
  /// (slow) client.
  size_t max_outbound_bytes = 8u << 20;
  /// Connection cap; accepts past it are closed immediately.
  size_t max_connections = 100'000;
  /// How long Stop() keeps flushing undelivered responses before
  /// force-closing (milliseconds).
  int drain_deadline_ms = 5'000;
};

struct ServerStats {
  uint64_t accepted = 0;
  uint64_t active = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t shed = 0;
  uint64_t protocol_errors = 0;
  uint64_t disconnected_slow = 0;
  uint64_t disconnected_eof = 0;
  uint64_t rejected_connections = 0;
};

class SpServer {
 public:
  /// `engine` must outlive the server. The server is inert until Start().
  SpServer(core::SpQueryEngine& engine, ServerOptions options);
  ~SpServer();

  SpServer(const SpServer&) = delete;
  SpServer& operator=(const SpServer&) = delete;

  /// Binds, listens, and launches the reactor + worker threads. Throws
  /// std::system_error if the socket cannot be bound.
  void Start();

  /// Clean shutdown (idempotent): stop accepting, complete and flush every
  /// admitted query (bounded by drain_deadline_ms), join all threads.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const;

  bool running() const;

  /// Live counters (also exported as service.* metrics and through the
  /// introspection registry as provider "service").
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gem2::net

#endif  // GEM2_NET_SERVER_H_
