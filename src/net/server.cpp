#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/query_engine.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "telemetry/introspect.h"
#include "telemetry/metrics.h"

namespace gem2::net {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

constexpr uint64_t kListenTag = 0;
constexpr size_t kReadChunk = 64 * 1024;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

struct SpServer::Impl {
  core::SpQueryEngine& engine;
  ServerOptions options;

  // --- sockets & reactor (reactor thread only, after Start) ---------------
  int listen_fd = -1;
  /// Reserved descriptor released under EMFILE/ENFILE so queued connections
  /// can still be accepted (and immediately closed) instead of stranding the
  /// edge-triggered listener until a fresh SYN arrives.
  int idle_fd = -1;
  uint16_t bound_port = 0;
  Reactor reactor;

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    /// Outbound frames; the front buffer is written from `out_offset`.
    std::deque<Bytes> outbound;
    size_t out_offset = 0;
    size_t outbound_bytes = 0;
    /// Queries admitted on this connection and not yet delivered.
    uint32_t inflight = 0;
    bool out_armed = false;     ///< EPOLLOUT currently requested
    bool read_closed = false;   ///< peer sent FIN; it may still be reading
    bool closing = false;       ///< close as soon as outbound drains
    bool protocol_dead = false; ///< framing error: ignore further input
  };

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  uint64_t next_conn_id = 1;

  // --- admitted-query queue (reactor -> workers) --------------------------
  struct Request {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    Key lb = 0;
    Key ub = 0;
    /// kQuery2: the typed spec to execute (is_spec distinguishes, so a legacy
    /// query never pays a spec copy).
    bool is_spec = false;
    core::QuerySpec spec;
    uint64_t admitted_ns = 0;
  };
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Request> queue;
  bool workers_stop = false;

  // --- completion queue (workers -> reactor) ------------------------------
  struct Completion {
    uint64_t conn_id = 0;
    Bytes frame;
  };
  std::mutex completion_mutex;
  std::vector<Completion> completions;

  /// Admitted queries whose response has not yet been appended to a
  /// connection buffer (or dropped with it). This is the admission gauge.
  std::atomic<size_t> in_flight{0};

  std::atomic<bool> stopping{false};
  std::atomic<bool> started{false};
  std::atomic<bool> joined{false};
  std::thread reactor_thread;
  std::vector<std::thread> workers;

  // --- per-server stats (mirrored into the global service.* metrics) ------
  std::atomic<uint64_t> accepted{0}, active{0}, requests{0}, responses{0},
      shed{0}, protocol_errors{0}, disconnected_slow{0}, disconnected_eof{0},
      rejected_connections{0};

  telemetry::Counter* m_accepted;
  telemetry::Counter* m_requests;
  telemetry::Counter* m_responses;
  telemetry::Counter* m_shed;
  telemetry::Counter* m_protocol_errors;
  telemetry::Counter* m_disc_slow;
  telemetry::Counter* m_disc_eof;
  telemetry::Counter* m_rejected;
  telemetry::Gauge* m_active;
  telemetry::Gauge* m_in_flight;
  telemetry::Histogram* m_request_ns;

  Impl(core::SpQueryEngine& eng, ServerOptions opts)
      : engine(eng), options(opts) {
    auto& reg = telemetry::MetricsRegistry::Global();
    m_accepted = &reg.counter("service.accepted");
    m_requests = &reg.counter("service.requests");
    m_responses = &reg.counter("service.responses");
    m_shed = &reg.counter("service.shed");
    m_protocol_errors = &reg.counter("service.protocol_errors");
    m_disc_slow = &reg.counter("service.disconnect.slow");
    m_disc_eof = &reg.counter("service.disconnect.eof");
    m_rejected = &reg.counter("service.rejected_connections");
    m_active = &reg.gauge("service.active");
    m_in_flight = &reg.gauge("service.in_flight");
    m_request_ns = &reg.histogram("service.request_ns.query");
  }

  // ------------------------------------------------------------------ setup

  void Bind() {
    listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) ThrowErrno("socket");
    const int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options.port);
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      close(listen_fd);
      listen_fd = -1;
      errno = saved;
      ThrowErrno("bind");
    }
    if (listen(listen_fd, options.listen_backlog) != 0) {
      const int saved = errno;
      close(listen_fd);
      listen_fd = -1;
      errno = saved;
      ThrowErrno("listen");
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);
    idle_fd = open("/dev/null", O_RDONLY | O_CLOEXEC);
  }

  // ------------------------------------------------------- reactor-side ops

  Conn* Lookup(uint64_t id) {
    auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }

  void CloseConn(Conn* conn) {
    reactor.Remove(conn->fd);
    close(conn->fd);
    active.fetch_sub(1, std::memory_order_relaxed);
    m_active->Add(-1);
    conns.erase(conn->id);  // destroys *conn
  }

  void AcceptLoop() {
    while (true) {
      const int fd =
          accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == ECONNABORTED) continue;  // peer aborted; keep accepting
        if (errno == EMFILE || errno == ENFILE) {
          rejected_connections.fetch_add(1, std::memory_order_relaxed);
          m_rejected->Add(1);
          // Out of descriptors. Release the reserve fd, accept-and-close one
          // queued connection, then re-reserve; otherwise the edge-triggered
          // listener never fires again for connections already in the backlog.
          if (idle_fd >= 0) {
            close(idle_fd);
            idle_fd = -1;
            const int pending =
                accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (pending >= 0) close(pending);
            idle_fd = open("/dev/null", O_RDONLY | O_CLOEXEC);
            if (pending >= 0) continue;  // keep draining the backlog
          }
          return;
        }
        return;
      }
      if (conns.size() >= options.max_connections) {
        close(fd);
        rejected_connections.fetch_add(1, std::memory_order_relaxed);
        m_rejected->Add(1);
        continue;
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->decoder = FrameDecoder(options.max_frame_bytes);
      reactor.Add(fd, EPOLLIN, conn->id);
      accepted.fetch_add(1, std::memory_order_relaxed);
      active.fetch_add(1, std::memory_order_relaxed);
      m_accepted->Add(1);
      m_active->Add(1);
      conns.emplace(conn->id, std::move(conn));
    }
  }

  /// Appends a frame to the connection's bounded outbound buffer, enforcing
  /// the slow-client bound, and flushes as much as the socket accepts.
  /// Returns false when the append disconnected the client.
  bool AppendOutbound(Conn* conn, Bytes&& frame) {
    if (conn->outbound_bytes + frame.size() > options.max_outbound_bytes) {
      disconnected_slow.fetch_add(1, std::memory_order_relaxed);
      m_disc_slow->Add(1);
      CloseConn(conn);
      return false;
    }
    conn->outbound_bytes += frame.size();
    conn->outbound.push_back(std::move(frame));
    return Flush(conn);
  }

  /// Writes until EAGAIN or the buffer drains; arms/disarms EPOLLOUT as
  /// needed and completes a deferred close once drained. Returns false when
  /// the connection was closed.
  bool Flush(Conn* conn) {
    while (!conn->outbound.empty()) {
      const Bytes& front = conn->outbound.front();
      const ssize_t n =
          send(conn->fd, front.data() + conn->out_offset,
               front.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(conn);
        return false;
      }
      conn->out_offset += static_cast<size_t>(n);
      conn->outbound_bytes -= static_cast<size_t>(n);
      if (conn->out_offset == front.size()) {
        conn->outbound.pop_front();
        conn->out_offset = 0;
      }
    }
    const bool want_out = !conn->outbound.empty();
    if (want_out != conn->out_armed) {
      conn->out_armed = want_out;
      reactor.Modify(conn->fd, want_out ? (EPOLLIN | EPOLLOUT) : EPOLLIN,
                     conn->id);
    }
    if (!want_out && conn->closing && conn->inflight == 0) {
      CloseConn(conn);
      return false;
    }
    return true;
  }

  /// Framing/protocol violation: answer kError, then close once it flushes.
  void ProtocolError(Conn* conn, uint64_t request_id, const std::string& why) {
    protocol_errors.fetch_add(1, std::memory_order_relaxed);
    m_protocol_errors->Add(1);
    conn->protocol_dead = true;
    conn->closing = true;
    Bytes body(why.begin(), why.end());
    AppendOutbound(conn, EncodeFrame(FrameType::kError, request_id, body));
  }

  /// Admission control: past the in-flight bound (or during shutdown) the
  /// client gets an explicit kBusy frame — visible shed, never a silent
  /// drop, and the reactor thread never computes a query itself. Returns
  /// false when the request was shed (the connection may be gone).
  bool Admit(Conn* conn, uint64_t request_id) {
    requests.fetch_add(1, std::memory_order_relaxed);
    m_requests->Add(1);
    size_t current = in_flight.load(std::memory_order_relaxed);
    bool admitted = false;
    while (!stopping.load(std::memory_order_relaxed) &&
           current < options.max_in_flight) {
      if (in_flight.compare_exchange_weak(current, current + 1,
                                          std::memory_order_relaxed)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      shed.fetch_add(1, std::memory_order_relaxed);
      m_shed->Add(1);
      AppendOutbound(conn, EncodeFrame(FrameType::kBusy, request_id, {}));
      return false;
    }
    m_in_flight->Set(static_cast<int64_t>(in_flight.load()));
    conn->inflight++;
    return true;
  }

  void HandleQuery(Conn* conn, const Frame& frame) {
    const auto query = ParseQueryBody(frame.body);
    if (!query.has_value()) {
      ProtocolError(conn, frame.request_id, "malformed query body");
      return;
    }
    if (!Admit(conn, frame.request_id)) return;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      Request req;
      req.conn_id = conn->id;
      req.request_id = frame.request_id;
      req.lb = query->lb;
      req.ub = query->ub;
      req.admitted_ns = NowNs();
      queue.push_back(std::move(req));
    }
    queue_cv.notify_one();
  }

  void HandleQuery2(Conn* conn, const Frame& frame) {
    // The decoder already poisons on a malformed spec body, but re-parse
    // fail-closed anyway: this handler must not trust framing-layer
    // invariants it cannot see.
    auto spec = ParseQuery2Body(frame.body);
    if (!spec.has_value()) {
      ProtocolError(conn, frame.request_id, "malformed query spec body");
      return;
    }
    if (!Admit(conn, frame.request_id)) return;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      Request req;
      req.conn_id = conn->id;
      req.request_id = frame.request_id;
      req.is_spec = true;
      req.spec = std::move(*spec);
      req.admitted_ns = NowNs();
      queue.push_back(std::move(req));
    }
    queue_cv.notify_one();
  }

  void HandleRead(Conn* conn) {
    uint8_t buf[kReadChunk];
    while (true) {
      const ssize_t n = read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        if (!conn->protocol_dead) {
          conn->decoder.Feed(buf, static_cast<size_t>(n));
        }
        // A short read drained the socket buffer; a full chunk may leave
        // more behind, and EPOLLET requires reading to exhaustion.
        if (n == static_cast<ssize_t>(sizeof(buf))) continue;
        break;
      }
      if (n == 0) {
        conn->read_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn);
      return;
    }
    // Pop every complete frame buffered so far.
    Frame frame;
    while (!conn->protocol_dead) {
      const FrameDecoder::Result r = conn->decoder.Next(&frame);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kError) {
        ProtocolError(conn, 0, conn->decoder.error());
        return;  // conn may already be gone (slow-disconnect inside append)
      }
      if (frame.type != FrameType::kQuery && frame.type != FrameType::kQuery2) {
        ProtocolError(conn, frame.request_id, "unexpected frame type");
        return;
      }
      // The handlers can destroy *conn (outbound-bound disconnect or a failed
      // send inside AppendOutbound), so capture the id first and never touch
      // the pointer again until the lookup proves it still exists.
      const uint64_t conn_id = conn->id;
      if (frame.type == FrameType::kQuery2) {
        HandleQuery2(conn, frame);
      } else {
        HandleQuery(conn, frame);
      }
      if (Lookup(conn_id) == nullptr) return;  // closed while answering
    }
    if (conn->read_closed) {
      // Peer finished sending. Deliver what it is owed, then close.
      conn->closing = true;
      if (conn->inflight == 0 && conn->outbound.empty()) {
        disconnected_eof.fetch_add(1, std::memory_order_relaxed);
        m_disc_eof->Add(1);
        CloseConn(conn);
      }
    }
  }

  void DrainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completion_mutex);
      batch.swap(completions);
    }
    for (Completion& c : batch) {
      in_flight.fetch_sub(1, std::memory_order_relaxed);
      Conn* conn = Lookup(c.conn_id);
      if (conn == nullptr) continue;  // client left before its answer
      conn->inflight--;
      responses.fetch_add(1, std::memory_order_relaxed);
      m_responses->Add(1);
      AppendOutbound(conn, std::move(c.frame));
    }
    if (!batch.empty()) {
      m_in_flight->Set(static_cast<int64_t>(in_flight.load()));
    }
  }

  bool AnyOutbound() const {
    for (const auto& [id, conn] : conns) {
      if (!conn->outbound.empty()) return true;
    }
    return false;
  }

  void ReactorLoop() {
    constexpr int kMaxEvents = 256;
    std::vector<Reactor::Event> events(kMaxEvents);
    bool listener_open = true;
    Clock::time_point drain_deadline{};
    while (true) {
      const bool stop = stopping.load(std::memory_order_acquire);
      if (stop && listener_open) {
        reactor.Remove(listen_fd);
        close(listen_fd);
        listen_fd = -1;
        listener_open = false;
        drain_deadline = Clock::now() +
                         std::chrono::milliseconds(options.drain_deadline_ms);
      }
      if (stop) {
        const bool drained = in_flight.load(std::memory_order_acquire) == 0 &&
                             !AnyOutbound();
        if (drained || Clock::now() >= drain_deadline) break;
      }
      const int n = reactor.Wait(events.data(), kMaxEvents, stop ? 10 : 200);
      for (int i = 0; i < n; ++i) {
        const Reactor::Event& ev = events[i];
        if (ev.tag == Reactor::kWakeupTag) continue;
        if (ev.tag == kListenTag) {
          if (listener_open) AcceptLoop();
          continue;
        }
        Conn* conn = Lookup(ev.tag);
        if (conn == nullptr) continue;
        if (ev.events & (EPOLLERR | EPOLLHUP)) {
          disconnected_eof.fetch_add(1, std::memory_order_relaxed);
          m_disc_eof->Add(1);
          CloseConn(conn);
          continue;
        }
        if (ev.events & EPOLLOUT) {
          if (!Flush(conn)) continue;
        }
        if (ev.events & EPOLLIN) HandleRead(conn);
      }
      DrainCompletions();
    }
    // Force-close whatever remains (drain deadline expired or all drained).
    std::vector<Conn*> remaining;
    remaining.reserve(conns.size());
    for (auto& [id, conn] : conns) remaining.push_back(conn.get());
    for (Conn* conn : remaining) CloseConn(conn);
    if (listener_open && listen_fd >= 0) {
      close(listen_fd);
      listen_fd = -1;
    }
    if (idle_fd >= 0) {
      close(idle_fd);
      idle_fd = -1;
    }
  }

  void WorkerLoop() {
    Bytes scratch;
    while (true) {
      Request req;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return workers_stop || !queue.empty(); });
        if (queue.empty()) return;  // workers_stop && drained
        req = queue.front();
        queue.pop_front();
      }
      scratch.clear();
      const size_t header = BeginFrame(&scratch, FrameType::kResponse,
                                       req.request_id);
      bool ok = true;
      std::string error;
      try {
        // The response image is serialized straight into the frame buffer —
        // the no-copy path {Query,Spec}WireInto exists for.
        if (req.is_spec) {
          engine.SpecWireInto(req.spec, &scratch);
        } else {
          engine.QueryWireInto(req.lb, req.ub, &scratch);
        }
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
      if (ok) {
        FinishFrame(&scratch, header);
      } else {
        scratch.clear();
        Bytes body(error.begin(), error.end());
        scratch = EncodeFrame(FrameType::kError, req.request_id, body);
      }
      m_request_ns->Observe(NowNs() - req.admitted_ns);
      {
        std::lock_guard<std::mutex> lock(completion_mutex);
        completions.push_back(Completion{req.conn_id, std::move(scratch)});
      }
      scratch = Bytes{};
      reactor.Wakeup();
    }
  }
};

SpServer::SpServer(core::SpQueryEngine& engine, ServerOptions options)
    : impl_(std::make_unique<Impl>(engine, options)) {}

SpServer::~SpServer() { Stop(); }

void SpServer::Start() {
  if (impl_->started.exchange(true)) {
    throw std::logic_error("SpServer::Start called twice");
  }
  impl_->Bind();
  impl_->reactor.Add(impl_->listen_fd, EPOLLIN, kListenTag);
  size_t workers = impl_->options.worker_threads;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  impl_->reactor_thread = std::thread([this] { impl_->ReactorLoop(); });
  impl_->workers.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
  SpServer* self = this;
  telemetry::Introspection::Global().RegisterProvider("service", [self] {
    const ServerStats s = self->stats();
    return telemetry::ProviderFacts{
        {"service.port", self->port()},
        {"service.active_connections", s.active},
        {"service.in_flight", self->impl_->in_flight.load()},
        {"service.accepted_total", s.accepted},
        {"service.shed_total", s.shed},
        {"service.workers", self->impl_->workers.size()},
        {"service.max_in_flight", self->impl_->options.max_in_flight},
    };
  });
}

void SpServer::Stop() {
  if (!impl_->started.load() || impl_->joined.exchange(true)) return;
  telemetry::Introspection::Global().UnregisterProvider("service");
  impl_->stopping.store(true, std::memory_order_release);
  impl_->reactor.Wakeup();
  if (impl_->reactor_thread.joinable()) impl_->reactor_thread.join();
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->workers_stop = true;
  }
  impl_->queue_cv.notify_all();
  for (std::thread& t : impl_->workers) {
    if (t.joinable()) t.join();
  }
}

uint16_t SpServer::port() const { return impl_->bound_port; }

bool SpServer::running() const {
  return impl_->started.load() && !impl_->joined.load();
}

ServerStats SpServer::stats() const {
  ServerStats s;
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.active = impl_->active.load(std::memory_order_relaxed);
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.responses = impl_->responses.load(std::memory_order_relaxed);
  s.shed = impl_->shed.load(std::memory_order_relaxed);
  s.protocol_errors = impl_->protocol_errors.load(std::memory_order_relaxed);
  s.disconnected_slow = impl_->disconnected_slow.load(std::memory_order_relaxed);
  s.disconnected_eof = impl_->disconnected_eof.load(std::memory_order_relaxed);
  s.rejected_connections =
      impl_->rejected_connections.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gem2::net
