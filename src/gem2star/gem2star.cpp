#include "gem2star/gem2star.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "crypto/keccak.h"
#include "telemetry/telemetry.h"

namespace gem2::gem2star {
namespace {

/// Each region's chain gets a disjoint block of storage regions. A chain uses
/// 5 regions internally; we space them by 8 for clarity.
constexpr uint32_t kRegionsPerChain = 8;
/// Region ids below this are reserved for the upper level.
constexpr uint32_t kChainRegionBase = 16;

}  // namespace

Hash UpperLevelDigest(const std::vector<Key>& split_points) {
  crypto::Keccak256Hasher h;
  h.Update(std::string("GEM2STAR_UPPER"));
  for (Key k : split_points) h.UpdateKey(k);
  return h.Finalize();
}

Gem2StarEngine::Gem2StarEngine(Gem2Options options, std::vector<Key> split_points,
                               chain::MeteredStorage* storage)
    : options_(options),
      split_points_(std::move(split_points)),
      storage_(storage),
      p0_(options.fanout) {
  for (size_t i = 1; i < split_points_.size(); ++i) {
    if (split_points_[i - 1] >= split_points_[i]) {
      throw std::invalid_argument("split points must be strictly ascending");
    }
  }
  const size_t num_regions = split_points_.size() + 1;
  chains_.reserve(num_regions);
  for (size_t r = 0; r < num_regions; ++r) {
    chains_.push_back(std::make_unique<gem2tree::PartitionChain>(
        options_, &p0_, storage_,
        kChainRegionBase + static_cast<uint32_t>(r) * kRegionsPerChain));
  }
}

size_t Gem2StarEngine::RegionOf(Key key, gas::Meter* meter) const {
  TELEMETRY_SPAN("gem2star.locate_region");
  if (meter != nullptr && !split_points_.empty()) {
    // Binary search over the stored split points: one sload per probe.
    meter->ChargeSload(64 - static_cast<uint64_t>(
                                std::countl_zero(split_points_.size())));
  }
  auto it = std::upper_bound(split_points_.begin(), split_points_.end(), key);
  return static_cast<size_t>(it - split_points_.begin());
}

void Gem2StarEngine::Insert(Key key, const Hash& value_hash, gas::Meter* meter) {
  TELEMETRY_SPAN("gem2star.insert");
  chains_[RegionOf(key, meter)]->Insert(key, value_hash, meter);
}

void Gem2StarEngine::Update(Key key, const Hash& value_hash, gas::Meter* meter) {
  TELEMETRY_SPAN("gem2star.update");
  chains_[RegionOf(key, meter)]->Update(key, value_hash, meter);
}

bool Gem2StarEngine::Contains(Key key) const {
  return chains_[RegionOf(key)]->ContainsKey(key);
}

uint64_t Gem2StarEngine::size() const {
  uint64_t total = 0;
  for (const auto& c : chains_) total += c->total_inserted();
  return total;
}

std::vector<chain::DigestEntry> Gem2StarEngine::Digests() const {
  std::vector<chain::DigestEntry> out;
  out.push_back({"upper", UpperLevelDigest(split_points_)});
  out.push_back({"P0", p0_.root_digest()});
  for (size_t r = 0; r < chains_.size(); ++r) {
    chains_[r]->AppendDigests("R" + std::to_string(r) + ".", &out);
  }
  return out;
}

std::vector<size_t> Gem2StarEngine::RegionsOverlapping(Key lb, Key ub) const {
  const size_t li = RegionOf(lb);
  const size_t ui = RegionOf(ub);
  std::vector<size_t> regions;
  for (size_t r = li; r <= ui; ++r) regions.push_back(r);
  return regions;
}

std::vector<ads::TreeAnswer> Gem2StarEngine::Query(Key lb, Key ub) const {
  std::vector<ads::TreeAnswer> out;
  ads::TreeAnswer p0_answer;
  p0_answer.label = "P0";
  p0_answer.vo = p0_.RangeQuery(lb, ub, &p0_answer.result);
  out.push_back(std::move(p0_answer));
  for (size_t r : RegionsOverlapping(lb, ub)) {
    chains_[r]->Query(lb, ub, "R" + std::to_string(r) + ".", &out);
  }
  return out;
}

void Gem2StarEngine::CheckInvariants() const {
  p0_.CheckInvariants();
  for (const auto& c : chains_) c->CheckInvariants();
}

}  // namespace gem2::gem2star
