/// \file gem2star.h
/// The optimized GEM2*-tree (paper Section VI): an upper-level index that
/// splits the search-key domain into non-overlapping regions, a lower-level
/// GEM2 partition chain per region, and a *single* fully-structured MB-tree
/// P0 shared by all regions.
///
/// Maintenance (Section VI-A): locate the region by binary search over the
/// split points (charged as log2(R) sloads), then run the ordinary GEM2
/// insert/update inside that region's chain. Queries (Algorithm 7) binary-
/// search the regions overlapping [lb, ub] and fan out only into those.
///
/// The upper level itself is authenticated: VO_chain carries
/// H(split points), and the SP ships the split points with each response so
/// the client can re-derive which regions had to be queried (Algorithm 8).
#ifndef GEM2_GEM2STAR_GEM2STAR_H_
#define GEM2_GEM2STAR_GEM2STAR_H_

#include <memory>
#include <string>
#include <vector>

#include "ads/query.h"
#include "chain/contract.h"
#include "gem2/options.h"
#include "gem2/partition_chain.h"
#include "mbtree/mbtree.h"

namespace gem2::gem2star {

using gem2tree::Gem2Options;

/// Digest binding the upper-level split points into VO_chain.
Hash UpperLevelDigest(const std::vector<Key>& split_points);

class Gem2StarEngine {
 public:
  /// `split_points`: strictly ascending keys s_1 < ... < s_{R-1} defining R
  /// regions; region r (0-based) holds keys in [s_r, s_{r+1}) with s_0 = -inf
  /// and s_R = +inf. For maximum benefit choose quantiles of the expected key
  /// distribution (paper Section VI-A).
  explicit Gem2StarEngine(Gem2Options options = {},
                          std::vector<Key> split_points = {},
                          chain::MeteredStorage* storage = nullptr);

  /// Region index responsible for `key`; charges the upper-level binary
  /// search (log2 R sloads) when metered.
  size_t RegionOf(Key key, gas::Meter* meter = nullptr) const;

  void Insert(Key key, const Hash& value_hash, gas::Meter* meter = nullptr);
  void Update(Key key, const Hash& value_hash, gas::Meter* meter = nullptr);

  bool Contains(Key key) const;
  uint64_t size() const;
  size_t num_regions() const { return chains_.size(); }
  const std::vector<Key>& split_points() const { return split_points_; }

  /// VO_chain content: "upper" (split-point digest), "P0", and per-region
  /// partition tree roots labelled "R<r>.P<i>.Tl/Tr".
  std::vector<chain::DigestEntry> Digests() const;

  /// Algorithm 7: query P0 plus each region overlapping [lb, ub].
  std::vector<ads::TreeAnswer> Query(Key lb, Key ub) const;

  /// Labels of regions a correct SP must cover for [lb, ub] ("R<r>." prefix
  /// list); used by the client-side verifier (Algorithm 8).
  std::vector<size_t> RegionsOverlapping(Key lb, Key ub) const;

  const mbtree::MbTree& p0() const { return p0_; }
  const gem2tree::PartitionChain& region_chain(size_t r) const { return *chains_[r]; }

  /// SP-side only (see PartitionChain::set_thread_pool).
  void set_thread_pool(common::ThreadPool* pool) {
    p0_.set_thread_pool(pool);
    for (auto& chain : chains_) chain->set_thread_pool(pool);
  }

  /// Contract side only: routes every region chain's part_table root writes
  /// into `ledger`. Region r gets order base 2 + (r << 32) so regions stay
  /// in ascending order behind "upper" (0) and "P0" (1), matching Digests().
  void AttachLedger(chain::DigestLedger* ledger) {
    for (size_t r = 0; r < chains_.size(); ++r) {
      chains_[r]->AttachLedger(ledger, "R" + std::to_string(r) + ".",
                               2 + (static_cast<uint64_t>(r) << 32));
    }
  }

  void CheckInvariants() const;

 private:
  Gem2Options options_;
  std::vector<Key> split_points_;
  chain::MeteredStorage* storage_;
  mbtree::MbTree p0_;
  std::vector<std::unique_ptr<gem2tree::PartitionChain>> chains_;
};

/// The GEM2*-tree smart contract.
class Gem2StarContract : public chain::Contract {
 public:
  Gem2StarContract(std::string name, Gem2Options options,
                   std::vector<Key> split_points)
      : chain::Contract(std::move(name)),
        engine_(options, std::move(split_points), &storage()) {
    chain::DigestLedger& ledger = EnableDigestLedger();
    engine_.AttachLedger(&ledger);
    // The split points are immutable, so "upper" is written exactly once.
    ledger.Set(0, "upper", UpperLevelDigest(engine_.split_points()));
    ledger.Set(1, "P0", engine_.p0().root_digest());
  }

  void Insert(Key key, const Hash& value_hash, gas::Meter& meter) {
    engine_.Insert(key, value_hash, &meter);
    digest_ledger()->Set(1, "P0", engine_.p0().root_digest());
  }

  void Update(Key key, const Hash& value_hash, gas::Meter& meter) {
    engine_.Update(key, value_hash, &meter);
    digest_ledger()->Set(1, "P0", engine_.p0().root_digest());
  }

  std::vector<chain::DigestEntry> AuthenticatedDigests() const override {
    return engine_.Digests();
  }

  const Gem2StarEngine& engine() const { return engine_; }
  uint64_t size() const { return engine_.size(); }

 private:
  Gem2StarEngine engine_;
};

}  // namespace gem2::gem2star

#endif  // GEM2_GEM2STAR_GEM2STAR_H_
