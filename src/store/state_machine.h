/// \file state_machine.h
/// What the durable store persists: any deterministic state machine driven by
/// the data-owner operation stream.
///
/// DurableSpStore (durable_store.h) only needs four capabilities from the
/// state it protects — apply one journal entry, serialize the whole state for
/// a checkpoint, restore from such an image, and produce a digest for
/// equality checks against an independently rebuilt replica. Keeping this an
/// interface keeps the store engine honest: checkpoints really are
/// serialize/restore round-trips, not pointer sharing, and the engine works
/// for any derived SP state (the canonical implementation is SpObjectStore).
#ifndef GEM2_STORE_STATE_MACHINE_H_
#define GEM2_STORE_STATE_MACHINE_H_

#include <string>

#include "common/bytes.h"
#include "common/types.h"
#include "core/journal.h"

namespace gem2::store {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one committed data-owner operation. Must be deterministic:
  /// replaying the same entry sequence from the same state always yields the
  /// same state (and the same StateDigest()).
  virtual void Apply(const core::JournalEntry& entry) = 0;

  /// Serializes the full state. RestoreState(SnapshotState()) must be an
  /// identity, including the digest.
  virtual Bytes SnapshotState() const = 0;

  /// Replaces the state with a previously snapshotted image. False (state
  /// unspecified, caller must Reset) on a malformed image.
  virtual bool RestoreState(const Bytes& image) = 0;

  /// Collision-resistant digest of the current state, for bit-for-bit
  /// equality checks between recovery paths.
  virtual Hash StateDigest() const = 0;

  /// Back to the empty state.
  virtual void Reset() = 0;
};

}  // namespace gem2::store

#endif  // GEM2_STORE_STATE_MACHINE_H_
