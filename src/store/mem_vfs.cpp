#include <algorithm>

#include "store/vfs.h"

namespace gem2::store {
namespace {

constexpr const char* kPowerCut = "simulated power cut";

}  // namespace

/// Append handle over a MemVfs file: appends land in the volatile region,
/// Sync promotes them to durable. Named at namespace scope so the MemVfs
/// friend declaration reaches it.
class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(MemVfs* vfs, std::string path)
      : vfs_(vfs), path_(std::move(path)) {}

  IoStatus Append(const uint8_t* data, size_t len) override {
    if (vfs_->powered_off()) return IoStatus::Error(kPowerCut);
    MemVfs::MemFile* file = vfs_->Find(path_);
    if (file == nullptr) return IoStatus::Error("file removed: " + path_);
    file->volatile_.insert(file->volatile_.end(), data, data + len);
    return IoStatus::Ok();
  }

  IoStatus Sync() override {
    if (vfs_->powered_off()) return IoStatus::Error(kPowerCut);
    MemVfs::MemFile* file = vfs_->Find(path_);
    if (file == nullptr) return IoStatus::Error("file removed: " + path_);
    file->durable.insert(file->durable.end(), file->volatile_.begin(),
                         file->volatile_.end());
    file->volatile_.clear();
    return IoStatus::Ok();
  }

  IoStatus Close() override { return IoStatus::Ok(); }

 private:
  MemVfs* vfs_;
  std::string path_;
};

std::string MemVfs::Normalize(const std::string& path) const {
  // Collapse duplicate slashes so "dir//file" and "dir/file" alias.
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (c == '/' && !out.empty() && out.back() == '/') continue;
    out.push_back(c);
  }
  if (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

MemVfs::MemFile* MemVfs::Find(const std::string& path) {
  auto it = files_.find(Normalize(path));
  return it == files_.end() ? nullptr : &it->second;
}

IoStatus MemVfs::CreateDir(const std::string& path) {
  if (powered_off_) return IoStatus::Error(kPowerCut);
  dirs_[Normalize(path)] = true;
  return IoStatus::Ok();
}

std::optional<std::vector<std::string>> MemVfs::ListDir(
    const std::string& path) {
  if (powered_off_) return std::nullopt;
  const std::string prefix = Normalize(path) + "/";
  std::vector<std::string> names;
  for (const auto& [file_path, file] : files_) {
    if (file_path.rfind(prefix, 0) != 0) continue;
    const std::string rest = file_path.substr(prefix.size());
    if (rest.find('/') != std::string::npos) continue;  // nested
    names.push_back(rest);
  }
  if (names.empty() && dirs_.find(Normalize(path)) == dirs_.end()) {
    return std::nullopt;
  }
  return names;  // files_ is sorted by path already
}

bool MemVfs::FileExists(const std::string& path) {
  return !powered_off_ && Find(path) != nullptr;
}

std::optional<uint64_t> MemVfs::FileSize(const std::string& path) {
  if (powered_off_) return std::nullopt;
  MemFile* file = Find(path);
  if (file == nullptr) return std::nullopt;
  return file->durable.size() + file->volatile_.size();
}

IoStatus MemVfs::ReadFile(const std::string& path, Bytes* out) {
  if (powered_off_) return IoStatus::Error(kPowerCut);
  MemFile* file = Find(path);
  if (file == nullptr) return IoStatus::Error("no such file: " + path);
  *out = file->durable;
  out->insert(out->end(), file->volatile_.begin(), file->volatile_.end());
  return IoStatus::Ok();
}

IoStatus MemVfs::WriteFileAtomic(const std::string& path, const Bytes& data,
                                 bool sync) {
  if (powered_off_) return IoStatus::Error(kPowerCut);
  // Rename-to-publish semantics: the file appears fully written or not at
  // all. Unsynced publications ride the volatile region, so a power cut can
  // still lose (all of) them — but never tear them.
  MemFile& file = files_[Normalize(path)];
  if (sync) {
    file.durable = data;
    file.volatile_.clear();
  } else {
    file.durable.clear();
    file.volatile_ = data;
  }
  return IoStatus::Ok();
}

std::unique_ptr<WritableFile> MemVfs::OpenAppend(const std::string& path,
                                                 IoStatus* status) {
  if (powered_off_) {
    if (status != nullptr) *status = IoStatus::Error(kPowerCut);
    return nullptr;
  }
  files_.try_emplace(Normalize(path));
  if (status != nullptr) *status = IoStatus::Ok();
  return std::make_unique<MemWritableFile>(this, Normalize(path));
}

IoStatus MemVfs::RemoveFile(const std::string& path) {
  if (powered_off_) return IoStatus::Error(kPowerCut);
  if (files_.erase(Normalize(path)) == 0) {
    return IoStatus::Error("no such file: " + path);
  }
  return IoStatus::Ok();
}

IoStatus MemVfs::TruncateFile(const std::string& path, uint64_t size) {
  if (powered_off_) return IoStatus::Error(kPowerCut);
  MemFile* file = Find(path);
  if (file == nullptr) return IoStatus::Error("no such file: " + path);
  const uint64_t total = file->durable.size() + file->volatile_.size();
  if (size >= total) return IoStatus::Ok();
  if (size <= file->durable.size()) {
    file->durable.resize(size);
    file->volatile_.clear();
  } else {
    file->volatile_.resize(size - file->durable.size());
  }
  return IoStatus::Ok();
}

void MemVfs::CutPower(const std::function<size_t(size_t)>& keep_bytes) {
  for (auto& [path, file] : files_) {
    const size_t keep =
        std::min(keep_bytes(file.volatile_.size()), file.volatile_.size());
    file.durable.insert(file.durable.end(), file.volatile_.begin(),
                        file.volatile_.begin() + static_cast<long>(keep));
    file.volatile_.clear();
  }
  powered_off_ = true;
}

bool MemVfs::CorruptByte(const std::string& path, uint64_t offset,
                         uint8_t mask) {
  MemFile* file = Find(path);
  if (file == nullptr || mask == 0) return false;
  if (offset < file->durable.size()) {
    file->durable[offset] ^= mask;
    return true;
  }
  const uint64_t voff = offset - file->durable.size();
  if (voff < file->volatile_.size()) {
    file->volatile_[voff] ^= mask;
    return true;
  }
  return false;
}

std::optional<Bytes> MemVfs::Snapshot(const std::string& path) {
  MemFile* file = Find(path);
  if (file == nullptr) return std::nullopt;
  Bytes out = file->durable;
  out.insert(out.end(), file->volatile_.begin(), file->volatile_.end());
  return out;
}

std::vector<std::string> MemVfs::AllFiles() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

}  // namespace gem2::store
