#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/arena.h"
#include "store/vfs.h"

namespace gem2::store {
namespace {

IoStatus ErrnoStatus(const std::string& what) {
  return IoStatus::Error(what + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) close(fd_);
  }

  IoStatus Append(const uint8_t* data, size_t len) override {
    while (len > 0) {
      const ssize_t n = write(fd_, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write");
      }
      data += n;
      len -= static_cast<size_t>(n);
    }
    return IoStatus::Ok();
  }

  IoStatus Sync() override {
    if (fsync(fd_) != 0) return ErrnoStatus("fsync");
    return IoStatus::Ok();
  }

  IoStatus Close() override {
    if (fd_ >= 0 && close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close");
    }
    fd_ = -1;
    return IoStatus::Ok();
  }

 private:
  int fd_;
};

/// fsync the directory so a freshly created/renamed entry is itself durable.
IoStatus SyncDir(const std::string& dir) {
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir " + dir);
  return IoStatus::Ok();
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

IoStatus PosixVfs::CreateDir(const std::string& path) {
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    partial = path.substr(0, i == path.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir " + partial);
    }
  }
  return IoStatus::Ok();
}

std::optional<std::vector<std::string>> PosixVfs::ListDir(
    const std::string& path) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) return std::nullopt;
  std::vector<std::string> names;
  while (struct dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

bool PosixVfs::FileExists(const std::string& path) {
  struct stat st {};
  return stat(path.c_str(), &st) == 0;
}

std::optional<uint64_t> PosixVfs::FileSize(const std::string& path) {
  struct stat st {};
  if (stat(path.c_str(), &st) != 0 || st.st_size < 0) return std::nullopt;
  return static_cast<uint64_t>(st.st_size);
}

IoStatus PosixVfs::ReadFile(const std::string& path, Bytes* out) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return ErrnoStatus("read " + path);
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  close(fd);
  return IoStatus::Ok();
}

IoStatus PosixVfs::WriteFileAtomic(const std::string& path, const Bytes& data,
                                   bool sync) {
  // Stage the image straight into a file mapping: checkpoint pages land in
  // the mapped region, msync makes them durable, rename publishes.
  const std::string tmp = path + ".tmp";
  std::string error;
  auto arena = common::FileMappedArena::Create(tmp, data.size(), &error);
  if (arena == nullptr) return IoStatus::Error(error);
  if (!data.empty()) {
    uint8_t* dst = arena->Allocate(data.size());
    if (dst == nullptr) return IoStatus::Error("mapped arena exhausted");
    std::memcpy(dst, data.data(), data.size());
  }
  if (sync && !arena->Seal(&error)) return IoStatus::Error(error);
  arena.reset();  // unmap + close before the rename
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename " + tmp + " -> " + path);
  }
  if (sync) return SyncDir(DirName(path));
  return IoStatus::Ok();
}

std::unique_ptr<WritableFile> PosixVfs::OpenAppend(const std::string& path,
                                                   IoStatus* status) {
  int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    if (status != nullptr) *status = ErrnoStatus("open " + path);
    return nullptr;
  }
  if (status != nullptr) *status = IoStatus::Ok();
  return std::make_unique<PosixWritableFile>(fd);
}

IoStatus PosixVfs::RemoveFile(const std::string& path) {
  if (unlink(path.c_str()) != 0) return ErrnoStatus("unlink " + path);
  return IoStatus::Ok();
}

IoStatus PosixVfs::TruncateFile(const std::string& path, uint64_t size) {
  if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate " + path);
  }
  return IoStatus::Ok();
}

}  // namespace gem2::store
