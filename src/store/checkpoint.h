/// \file checkpoint.h
/// Epoch checkpoints: a full state-machine snapshot published atomically, so
/// recovery replays only the journal suffix past the checkpoint's seqno.
///
/// File format ("ckpt-<seqno, 20 digits>"):
///
///   header (32 bytes):
///     [magic "G2CKPT\0\0" 8B][seqno u64 BE][state_len u64 BE]
///     [page_payload u32 BE][CRC32C(first 28 bytes) u32 BE]
///   pages, back to back, each:
///     [payload, up to page_payload bytes][payload len u32 BE]
///     [CRC32C(payload) u32 BE]
///
/// Pages carry their own checksummed footers so bit rot inside a multi-MB
/// image is localized and detected without hashing the whole file into one
/// fragile checksum. Publication is Vfs::WriteFileAtomic (temp file + fsync +
/// rename + directory fsync): a crash mid-checkpoint leaves the previous
/// checkpoint untouched. Loading walks checkpoints newest-first and falls
/// back past damaged ones — a corrupt checkpoint costs replay time, never
/// correctness.
#ifndef GEM2_STORE_CHECKPOINT_H_
#define GEM2_STORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "store/vfs.h"

namespace gem2::store {

inline constexpr size_t kCheckpointHeaderBytes = 32;
inline constexpr uint32_t kCheckpointPagePayload = 64u << 10;  // 64 KiB

/// Serializes a checkpoint image for `state` as of journal seqno `seqno`.
Bytes EncodeCheckpoint(uint64_t seqno, const Bytes& state);

/// Parses and verifies a checkpoint image. Returns false (and `*error`) on
/// any header/page checksum or framing failure.
bool DecodeCheckpoint(const Bytes& image, uint64_t* seqno, Bytes* state,
                      std::string* error);

/// Checkpoint file name for a seqno ("ckpt-00000000000000000042").
std::string CheckpointFileName(uint64_t seqno);
bool ParseCheckpointFileName(const std::string& name, uint64_t* seqno);

/// Encodes and atomically publishes a checkpoint under `dir` (created if
/// missing), durable before the rename lands.
IoStatus WriteCheckpoint(Vfs* vfs, const std::string& dir, uint64_t seqno,
                         const Bytes& state);

struct CheckpointLoad {
  /// False when no readable checkpoint exists (recovery replays from seqno 0).
  bool found = false;
  uint64_t seqno = 0;
  Bytes state;
  /// Damaged checkpoints skipped on the way to a good one (recovery.*
  /// counters and the fsck report surface this).
  uint32_t discarded = 0;
  /// Why the last discarded candidate was rejected (diagnostic only).
  std::string error;
};

/// Loads the newest checkpoint in `dir` that decodes cleanly, skipping (not
/// deleting) damaged ones.
CheckpointLoad LoadLatestCheckpoint(Vfs* vfs, const std::string& dir);

}  // namespace gem2::store

#endif  // GEM2_STORE_CHECKPOINT_H_
