/// \file durable_journal.h
/// File-backed segmented operation journal — the durable half of the SP's
/// derived-state story.
///
/// DurableJournal implements core::JournalSink over checksummed on-disk
/// segments (store/segment.h): AuthenticatedDb hands it every committed
/// data-owner operation before acknowledging, and after a crash
/// RecoverJournal() rebuilds exactly the acknowledged prefix of the stream.
/// The fsync policy is the durability dial:
///
///   kEveryRecord  sync after every append — an acked op is never lost
///   kBatch        sync every `batch_records` appends — bounded-loss window
///   kNever        leave syncing to the OS — crash loses the unsynced tail
///
/// Recovery is recover-or-fail-closed: a torn or checksum-failed record at
/// the very tail of the *last* segment is truncated away (a lost tail, which
/// client verification against the on-chain digests then attributes), but
/// damage anywhere else — mid-stream corruption, a broken non-last segment,
/// a sequence-number gap between segments — refuses recovery entirely rather
/// than serve a stream with a hole.
#ifndef GEM2_STORE_DURABLE_JOURNAL_H_
#define GEM2_STORE_DURABLE_JOURNAL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/journal.h"
#include "store/segment.h"
#include "store/vfs.h"

namespace gem2::store {

enum class FsyncPolicy : uint8_t { kNever = 0, kBatch = 1, kEveryRecord = 2 };

const char* FsyncPolicyName(FsyncPolicy policy);

struct JournalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Rotate to a fresh segment once the current one exceeds this many bytes.
  uint64_t segment_bytes = 4ull << 20;
  /// kBatch: sync once every this many appended records.
  uint32_t batch_records = 64;
};

class DurableJournal : public core::JournalSink {
 public:
  /// Opens `dir` (created if missing) for appending with `next_seqno` as the
  /// sequence number of the next record. Always starts a fresh segment —
  /// recovery may have truncated or distrusted the previous tail, and a new
  /// header re-anchors the seqno chain. Nullptr + `*error` on I/O failure.
  static std::unique_ptr<DurableJournal> Open(Vfs* vfs, const std::string& dir,
                                              uint64_t next_seqno,
                                              const JournalOptions& options,
                                              std::string* error);

  /// core::JournalSink: frames, appends, and (per policy) syncs one entry.
  /// False on any I/O failure — the op must fail closed, so the journal
  /// also refuses all further appends until reopened.
  bool Append(const core::JournalEntry& entry) override;
  bool Sync() override;
  std::string last_error() const override { return last_error_; }

  uint64_t next_seqno() const { return next_seqno_; }
  const std::string& dir() const { return dir_; }

  /// Deletes whole segments every record of which has seqno < `seqno`
  /// (i.e. is covered by a checkpoint). Never touches the open segment.
  /// Returns the number of segments removed.
  size_t PruneSegmentsBelow(uint64_t seqno);

 private:
  DurableJournal(Vfs* vfs, std::string dir, uint64_t next_seqno,
                 const JournalOptions& options)
      : vfs_(vfs),
        dir_(std::move(dir)),
        next_seqno_(next_seqno),
        options_(options) {}

  bool StartSegment();
  bool Fail(const std::string& message);

  Vfs* vfs_;
  std::string dir_;
  uint64_t next_seqno_;
  JournalOptions options_;

  std::unique_ptr<WritableFile> segment_;
  uint64_t segment_base_ = 0;     // base seqno of the open segment
  uint64_t segment_bytes_ = 0;    // bytes written to the open segment
  uint32_t unsynced_records_ = 0;
  bool failed_ = false;
  std::string last_error_;
};

/// Everything a recovery scan learned about one segment file — enough for
/// gem2_fsck to report and (on --repair) truncate torn tails.
struct SegmentInfo {
  std::string name;
  uint64_t base_seqno = 0;
  uint64_t records = 0;
  SegmentScan::Outcome outcome = SegmentScan::Outcome::kCorrupt;
  uint64_t valid_bytes = 0;
  uint64_t truncated_bytes = 0;
  std::string error;
};

struct JournalRecovery {
  /// False means fail closed: the directory holds damage that truncation
  /// cannot attribute, and nothing recovered from it may be served.
  bool ok = false;
  std::string error;

  /// The recovered operation stream; entries[i] has sequence number
  /// first_seqno + i. Empty directory -> ok with no entries.
  std::vector<core::JournalEntry> entries;
  uint64_t first_seqno = 0;
  uint64_t next_seqno = 0;  // first_seqno + entries.size()

  /// Aggregate damage accounting (also exported as recovery.* counters).
  uint64_t replayed_ops = 0;
  uint64_t truncated_bytes = 0;
  uint32_t corrupt_records = 0;
  /// True when a torn/corrupt tail was dropped — acked-but-unsynced ops may
  /// be gone, distinguishable from `corrupt_records` damage by the caller.
  bool tail_lost = false;

  std::vector<SegmentInfo> segments;
};

/// Scans every segment in `dir` (oldest first), applying the cross-segment
/// fail-closed rules, and bumps the recovery.{replayed_ops,truncated_bytes,
/// corrupt_records,failed_closed} counters. Read-only: repair (truncating
/// torn tails) is gem2_fsck's job.
JournalRecovery RecoverJournal(Vfs* vfs, const std::string& dir);

}  // namespace gem2::store

#endif  // GEM2_STORE_DURABLE_JOURNAL_H_
