/// \file durable_store.h
/// The durable SP storage engine: checkpoint + journal-suffix recovery.
///
/// DurableSpStore owns one directory holding journal segments ("seg-*.log",
/// durable_journal.h) and epoch checkpoints ("ckpt-*", checkpoint.h) side by
/// side, and keeps one invariant: the driven StateMachine always equals the
/// checkpointed state plus the journal suffix past the checkpoint's seqno.
/// Open() proves it by construction — restore the newest good checkpoint
/// (falling back past damaged ones), replay the suffix, fail closed on any
/// damage truncation cannot attribute. Apply() maintains it — durable journal
/// append first, acknowledge (apply to the state machine) second, so a crash
/// at any instant loses at most un-acked work under FsyncPolicy::kEveryRecord.
#ifndef GEM2_STORE_DURABLE_STORE_H_
#define GEM2_STORE_DURABLE_STORE_H_

#include <memory>
#include <string>

#include "store/checkpoint.h"
#include "store/durable_journal.h"
#include "store/state_machine.h"
#include "store/vfs.h"

namespace gem2::store {

struct StoreOptions {
  JournalOptions journal;
  /// Publish a checkpoint automatically every this many applied ops
  /// (0 = only explicit Checkpoint() calls).
  uint64_t checkpoint_interval = 0;
  /// Delete journal segments fully covered by a published checkpoint.
  bool prune_after_checkpoint = true;
};

/// What Open() found and did; mirrored into the recovery.* counters.
struct RecoveryReport {
  bool ok = false;
  std::string error;

  bool used_checkpoint = false;
  uint64_t checkpoint_seqno = 0;
  uint32_t discarded_checkpoints = 0;

  /// Journal entries applied on top of the restored state.
  uint64_t replayed_ops = 0;
  uint64_t truncated_bytes = 0;
  uint32_t corrupt_records = 0;
  bool tail_lost = false;
  /// Segment files whose torn/corrupt tails Open() truncated away (or, for
  /// bad-header torn creations, removed) so the next recovery starts clean.
  uint32_t repaired_segments = 0;

  uint64_t next_seqno = 0;
};

class DurableSpStore {
 public:
  /// Recovers `state` from `dir` (which may be empty/missing: a fresh store)
  /// and opens the journal for appending. Returns nullptr with the failure
  /// recorded in `*report` when the directory is damaged beyond attributable
  /// truncation — serving from it would risk a silently wrong SP.
  /// `state` must outlive the store.
  static std::unique_ptr<DurableSpStore> Open(Vfs* vfs, const std::string& dir,
                                              StateMachine* state,
                                              const StoreOptions& options,
                                              RecoveryReport* report);

  /// Durably journals `entry`, then applies it to the state machine. False
  /// (entry NOT applied — fail closed) on journal I/O failure.
  bool Apply(const core::JournalEntry& entry);

  /// Snapshots the state machine, publishes it as a checkpoint at the current
  /// seqno, and prunes covered journal segments.
  bool Checkpoint(std::string* error);

  bool Sync() { return journal_->Sync(); }

  /// The underlying sink, for wiring into core::DbOptions::journal_sink.
  core::JournalSink* sink() { return journal_.get(); }

  uint64_t next_seqno() const { return journal_->next_seqno(); }
  const RecoveryReport& recovery() const { return recovery_; }
  std::string last_error() const { return journal_->last_error(); }

 private:
  DurableSpStore(Vfs* vfs, std::string dir, StateMachine* state,
                 StoreOptions options)
      : vfs_(vfs),
        dir_(std::move(dir)),
        state_(state),
        options_(std::move(options)) {}

  Vfs* vfs_;
  std::string dir_;
  StateMachine* state_;
  StoreOptions options_;
  std::unique_ptr<DurableJournal> journal_;
  RecoveryReport recovery_;
  uint64_t ops_since_checkpoint_ = 0;
};

}  // namespace gem2::store

#endif  // GEM2_STORE_DURABLE_STORE_H_
