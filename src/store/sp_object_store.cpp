#include "store/sp_object_store.h"

#include <vector>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace gem2::store {
namespace {

constexpr uint8_t kSnapshotVersion = 1;

}  // namespace

void SpObjectStore::Apply(const core::JournalEntry& entry) {
  switch (entry.op) {
    case core::JournalEntry::Op::kInsert:
    case core::JournalEntry::Op::kUpdate:
      objects_[entry.object.key] = entry.object.value;
      break;
    case core::JournalEntry::Op::kDelete:
      objects_.erase(entry.object.key);
      break;
  }
}

Bytes SpObjectStore::SnapshotState() const {
  // [version u8][count u64] then per object [key 8B][value_len u64][value].
  // std::map iteration is sorted, so the image is canonical.
  Bytes out;
  out.push_back(kSnapshotVersion);
  AppendUint64(&out, objects_.size());
  for (const auto& [key, value] : objects_) {
    AppendKey(&out, key);
    AppendUint64(&out, value.size());
    AppendString(&out, value);
  }
  return out;
}

bool SpObjectStore::RestoreState(const Bytes& image) {
  objects_.clear();
  size_t pos = 0;
  auto read_u64 = [&](uint64_t* v) {
    if (pos + 8 > image.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v = (*v << 8) | image[pos++];
    return true;
  };
  if (image.empty() || image[pos++] != kSnapshotVersion) return false;
  uint64_t count = 0;
  if (!read_u64(&count)) return false;
  Key prev_key = kKeyMin;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t raw_key = 0, len = 0;
    if (!read_u64(&raw_key) || !read_u64(&len)) return false;
    if (len > image.size() - pos) return false;
    const Key key = static_cast<Key>(raw_key);
    // Canonical images are strictly sorted; accepting unsorted input would
    // let two different images restore to the same state.
    if (i > 0 && key <= prev_key) return false;
    objects_.emplace_hint(objects_.end(), key,
                          std::string(image.begin() + static_cast<long>(pos),
                                      image.begin() +
                                          static_cast<long>(pos + len)));
    pos += len;
    prev_key = key;
  }
  return pos == image.size();
}

Hash SpObjectStore::StateDigest() const {
  if (objects_.empty()) return crypto::EmptyTreeDigest();
  std::vector<Hash> leaves;
  leaves.reserve(objects_.size());
  for (const auto& [key, value] : objects_) {
    leaves.push_back(crypto::EntryDigest(key, crypto::ValueHash(value)));
  }
  return crypto::ContentDigest(leaves);
}

}  // namespace gem2::store
