#include "store/durable_journal.h"

#include <algorithm>
#include <utility>

#include "telemetry/event_log.h"
#include "telemetry/metrics.h"

namespace gem2::store {
namespace {

void Bump(const char* name, uint64_t delta) {
  if (delta == 0) return;
  telemetry::MetricsRegistry::Global().counter(name).Add(delta);
}

void EmitRecoveryEvent(const JournalRecovery& recovery) {
  auto& log = telemetry::EventLog::Global();
  if (!log.enabled()) return;
  log.Emit(telemetry::Event("store.journal_recovery")
               .Num("ok", recovery.ok ? 1 : 0)
               .Num("replayed_ops", recovery.replayed_ops)
               .Num("truncated_bytes", recovery.truncated_bytes)
               .Num("corrupt_records", recovery.corrupt_records)
               .Num("tail_lost", recovery.tail_lost ? 1 : 0)
               .Str("error", recovery.error));
}

JournalRecovery FailClosed(JournalRecovery recovery, std::string error) {
  recovery.ok = false;
  recovery.error = std::move(error);
  recovery.entries.clear();
  recovery.replayed_ops = 0;
  Bump("recovery.failed_closed", 1);
  Bump("recovery.corrupt_records", recovery.corrupt_records);
  EmitRecoveryEvent(recovery);
  return recovery;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kEveryRecord:
      return "every_record";
  }
  return "unknown";
}

std::unique_ptr<DurableJournal> DurableJournal::Open(
    Vfs* vfs, const std::string& dir, uint64_t next_seqno,
    const JournalOptions& options, std::string* error) {
  if (IoStatus status = vfs->CreateDir(dir); !status) {
    if (error != nullptr) *error = status.message;
    return nullptr;
  }
  std::unique_ptr<DurableJournal> journal(
      new DurableJournal(vfs, dir, next_seqno, options));
  if (!journal->StartSegment()) {
    if (error != nullptr) *error = journal->last_error_;
    return nullptr;
  }
  return journal;
}

bool DurableJournal::Fail(const std::string& message) {
  failed_ = true;
  last_error_ = message;
  telemetry::MetricsRegistry::Global()
      .counter("store.journal_append_failures")
      .Add(1);
  return false;
}

bool DurableJournal::StartSegment() {
  if (segment_ != nullptr) {
    // Make the outgoing segment durable before the new one takes over the
    // seqno chain; a crash between the two must not lose its synced tail.
    if (unsynced_records_ > 0 || options_.fsync_policy != FsyncPolicy::kNever) {
      if (IoStatus status = segment_->Sync(); !status) {
        return Fail("segment rotation sync: " + status.message);
      }
      unsynced_records_ = 0;
    }
    if (IoStatus status = segment_->Close(); !status) {
      return Fail("segment rotation close: " + status.message);
    }
  }
  segment_base_ = next_seqno_;
  const std::string path = dir_ + "/" + SegmentFileName(segment_base_);
  // A leftover file at exactly this base holds records recovery never
  // validated (a dropped bad-header segment, or stale garbage); appending
  // after it would interleave trusted and untrusted bytes.
  if (vfs_->FileExists(path)) {
    if (IoStatus status = vfs_->RemoveFile(path); !status) {
      return Fail("remove stale segment " + path + ": " + status.message);
    }
  }
  IoStatus status = IoStatus::Ok();
  segment_ = vfs_->OpenAppend(path, &status);
  if (segment_ == nullptr) {
    return Fail("open segment " + path + ": " + status.message);
  }
  const Bytes header = SegmentHeader(segment_base_);
  if (status = segment_->Append(header.data(), header.size()); !status) {
    return Fail("write segment header: " + status.message);
  }
  // The header must be durable before any record relies on it framing them.
  if (options_.fsync_policy != FsyncPolicy::kNever) {
    if (status = segment_->Sync(); !status) {
      return Fail("sync segment header: " + status.message);
    }
  }
  segment_bytes_ = header.size();
  return true;
}

bool DurableJournal::Append(const core::JournalEntry& entry) {
  if (failed_) return false;  // fail closed until reopened
  if (segment_bytes_ >= options_.segment_bytes && !StartSegment()) {
    return false;
  }
  Bytes payload;
  core::AppendJournalEntryBody(&payload, entry);
  Bytes frame;
  AppendRecordFrame(&frame, payload);
  if (IoStatus status = segment_->Append(frame.data(), frame.size()); !status) {
    return Fail("append record: " + status.message);
  }
  segment_bytes_ += frame.size();
  ++next_seqno_;
  ++unsynced_records_;
  switch (options_.fsync_policy) {
    case FsyncPolicy::kNever:
      break;
    case FsyncPolicy::kBatch:
      if (unsynced_records_ >= options_.batch_records && !Sync()) return false;
      break;
    case FsyncPolicy::kEveryRecord:
      if (!Sync()) return false;
      break;
  }
  telemetry::MetricsRegistry::Global()
      .counter("store.journal_appends")
      .Add(1);
  return true;
}

bool DurableJournal::Sync() {
  if (failed_) return false;
  if (segment_ == nullptr) return true;
  if (IoStatus status = segment_->Sync(); !status) {
    return Fail("sync: " + status.message);
  }
  unsynced_records_ = 0;
  return true;
}

size_t DurableJournal::PruneSegmentsBelow(uint64_t seqno) {
  auto names = vfs_->ListDir(dir_);
  if (!names.has_value()) return 0;
  // A segment is prunable when the *next* segment's base seqno (which is the
  // first seqno it does not hold) is <= `seqno`. Collect bases first.
  std::vector<uint64_t> bases;
  for (const std::string& name : *names) {
    uint64_t base = 0;
    if (ParseSegmentFileName(name, &base)) bases.push_back(base);
  }
  std::sort(bases.begin(), bases.end());
  size_t removed = 0;
  for (size_t i = 0; i + 1 < bases.size(); ++i) {
    if (bases[i] >= segment_base_ || bases[i + 1] > seqno) break;
    if (vfs_->RemoveFile(dir_ + "/" + SegmentFileName(bases[i]))) ++removed;
  }
  return removed;
}

JournalRecovery RecoverJournal(Vfs* vfs, const std::string& dir) {
  JournalRecovery recovery;
  auto names = vfs->ListDir(dir);
  if (!names.has_value()) {
    // No directory at all: a fresh SP with nothing to replay.
    recovery.ok = true;
    EmitRecoveryEvent(recovery);
    return recovery;
  }

  std::vector<std::pair<uint64_t, std::string>> segments;  // (base, name)
  for (const std::string& name : *names) {
    uint64_t base = 0;
    if (ParseSegmentFileName(name, &base)) segments.emplace_back(base, name);
  }
  std::sort(segments.begin(), segments.end());
  if (segments.empty()) {
    recovery.ok = true;
    EmitRecoveryEvent(recovery);
    return recovery;
  }

  recovery.first_seqno = segments.front().first;
  uint64_t expected_base = recovery.first_seqno;
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [base, name] = segments[i];
    const bool last = i + 1 == segments.size();

    Bytes image;
    if (IoStatus status = vfs->ReadFile(dir + "/" + name, &image); !status) {
      return FailClosed(std::move(recovery),
                        "read " + name + ": " + status.message);
    }
    SegmentScan scan = ScanSegment(image);

    SegmentInfo info;
    info.name = name;
    info.base_seqno = scan.base_seqno;
    info.records = scan.entries.size();
    info.outcome = scan.outcome;
    info.valid_bytes = scan.valid_bytes;
    info.truncated_bytes = scan.truncated_bytes;
    info.error = scan.error;
    recovery.segments.push_back(info);

    if (scan.outcome == SegmentScan::Outcome::kBadHeader) {
      if (!last) {
        return FailClosed(std::move(recovery),
                          name + ": " + scan.error + " (non-final segment)");
      }
      // A final segment whose header never became durable (possible under
      // FsyncPolicy::kNever before the first rotation syncs it) is a torn
      // creation: it holds nothing attributable, drop the whole file.
      recovery.tail_lost = true;
      recovery.truncated_bytes += scan.truncated_bytes;
      break;
    }
    if (scan.failed_closed()) {
      recovery.corrupt_records += scan.corrupt_records;
      return FailClosed(std::move(recovery), name + ": " + scan.error);
    }
    if (scan.base_seqno != base) {
      return FailClosed(std::move(recovery),
                        name + ": header seqno " +
                            std::to_string(scan.base_seqno) +
                            " disagrees with file name");
    }
    if (base != expected_base) {
      // A hole between segments: records expected_base..base-1 are missing
      // entirely. Truncation cannot explain a gap, so fail closed.
      return FailClosed(std::move(recovery),
                        "sequence gap: expected segment base " +
                            std::to_string(expected_base) + ", found " +
                            name);
    }
    if (!last && scan.outcome != SegmentScan::Outcome::kClean) {
      // Damage in a non-last segment has data after it (the later segments),
      // which makes it mid-stream corruption no matter what the tail of this
      // file looks like.
      recovery.corrupt_records += scan.corrupt_records;
      return FailClosed(std::move(recovery),
                        name + ": torn/corrupt tail in a non-final segment");
    }

    recovery.corrupt_records += scan.corrupt_records;
    recovery.truncated_bytes += scan.truncated_bytes;
    if (scan.outcome != SegmentScan::Outcome::kClean) recovery.tail_lost = true;
    recovery.entries.insert(recovery.entries.end(), scan.entries.begin(),
                            scan.entries.end());
    expected_base = base + scan.entries.size();
  }

  recovery.ok = true;
  recovery.replayed_ops = recovery.entries.size();
  recovery.next_seqno = recovery.first_seqno + recovery.entries.size();
  Bump("recovery.replayed_ops", recovery.replayed_ops);
  Bump("recovery.truncated_bytes", recovery.truncated_bytes);
  Bump("recovery.corrupt_records", recovery.corrupt_records);
  if (recovery.tail_lost) Bump("recovery.tail_lost", 1);
  EmitRecoveryEvent(recovery);
  return recovery;
}

}  // namespace gem2::store
