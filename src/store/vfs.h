/// \file vfs.h
/// The seam between the durable SP storage engine and the operating system.
///
/// Every byte the engine persists flows through a Vfs, so the whole I/O
/// surface is mockable and — more importantly — *failable*: the deterministic
/// fault::FailpointVfs wraps any Vfs and injects short writes, EIO, lying
/// fsyncs, power-cut tail truncation, and bit rot at any syscall boundary,
/// reproducibly from one seed. Production uses PosixVfs; tests and the
/// failpoint sweep use MemVfs, whose durable-vs-volatile byte model makes a
/// power cut (lose unsynced bytes, tear the last write) an explicit, exact
/// operation instead of an accident of the page cache.
#ifndef GEM2_STORE_VFS_H_
#define GEM2_STORE_VFS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace gem2::store {

struct IoStatus {
  bool ok = true;
  std::string message;

  static IoStatus Ok() { return {}; }
  static IoStatus Error(std::string message) {
    return {false, std::move(message)};
  }
  explicit operator bool() const { return ok; }
};

/// An append-only file handle. Append buffers into the OS (or the in-memory
/// volatile shadow); Sync makes everything appended so far durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual IoStatus Append(const uint8_t* data, size_t len) = 0;
  virtual IoStatus Sync() = 0;
  virtual IoStatus Close() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Creates `path` (and missing parents) as a directory; ok if it exists.
  virtual IoStatus CreateDir(const std::string& path) = 0;

  /// File names (not paths, no subdirectories) in `path`, sorted.
  virtual std::optional<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual std::optional<uint64_t> FileSize(const std::string& path) = 0;

  /// Reads a whole file into `*out`.
  virtual IoStatus ReadFile(const std::string& path, Bytes* out) = 0;

  /// Publishes `data` at `path` atomically: write to a temp file in the same
  /// directory, make it durable when `sync`, then rename over `path`. After a
  /// crash the file holds either the old or the new content, never a mix.
  virtual IoStatus WriteFileAtomic(const std::string& path, const Bytes& data,
                                   bool sync) = 0;

  /// Opens `path` for appending, creating it when missing.
  virtual std::unique_ptr<WritableFile> OpenAppend(const std::string& path,
                                                   IoStatus* status) = 0;

  virtual IoStatus RemoveFile(const std::string& path) = 0;

  /// Shrinks `path` to `size` bytes (fsck's torn-tail repair).
  virtual IoStatus TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// Real filesystem. Atomic publication goes through a common::FileMappedArena
/// (ftruncate + mmap + msync) so checkpoint pages are staged straight into
/// the file mapping, then renamed into place.
class PosixVfs : public Vfs {
 public:
  IoStatus CreateDir(const std::string& path) override;
  std::optional<std::vector<std::string>> ListDir(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  std::optional<uint64_t> FileSize(const std::string& path) override;
  IoStatus ReadFile(const std::string& path, Bytes* out) override;
  IoStatus WriteFileAtomic(const std::string& path, const Bytes& data,
                           bool sync) override;
  std::unique_ptr<WritableFile> OpenAppend(const std::string& path,
                                           IoStatus* status) override;
  IoStatus RemoveFile(const std::string& path) override;
  IoStatus TruncateFile(const std::string& path, uint64_t size) override;
};

/// In-memory filesystem with explicit durability: per file, `durable` bytes
/// survive anything; `volatile` bytes (appended but not fsync'd) survive a
/// process crash but not a power cut. CutPower() keeps a caller-chosen prefix
/// of each file's volatile bytes (the torn tail a real disk leaves) and
/// fails every subsequent operation until Restart().
class MemVfs : public Vfs {
 public:
  IoStatus CreateDir(const std::string& path) override;
  std::optional<std::vector<std::string>> ListDir(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  std::optional<uint64_t> FileSize(const std::string& path) override;
  IoStatus ReadFile(const std::string& path, Bytes* out) override;
  IoStatus WriteFileAtomic(const std::string& path, const Bytes& data,
                           bool sync) override;
  std::unique_ptr<WritableFile> OpenAppend(const std::string& path,
                                           IoStatus* status) override;
  IoStatus RemoveFile(const std::string& path) override;
  IoStatus TruncateFile(const std::string& path, uint64_t size) override;

  /// Simulated power loss: for every file, volatile bytes past a
  /// `keep_fraction(volatile_size)`-chosen prefix are gone; durable bytes
  /// stay. All operations fail until Restart(). `keep_bytes` maps a file's
  /// volatile byte count to how many of them survive (identity = clean cut
  /// at the last write; 0 = lose everything unsynced).
  void CutPower(const std::function<size_t(size_t)>& keep_bytes);
  void Restart() { powered_off_ = false; }
  bool powered_off() const { return powered_off_; }

  /// XORs `mask` into the byte at `offset` of `path` (bit-rot injection).
  /// False when the file is missing or shorter than `offset`.
  bool CorruptByte(const std::string& path, uint64_t offset, uint8_t mask);

  /// Full visible content (durable + volatile) — what a recovery after a
  /// plain process crash reads. Nullopt when missing.
  std::optional<Bytes> Snapshot(const std::string& path);

  /// Every file path currently present (for artifact dumps).
  std::vector<std::string> AllFiles() const;

 private:
  friend class MemWritableFile;
  struct MemFile {
    Bytes durable;
    Bytes volatile_;  // appended after the last sync
  };

  std::string Normalize(const std::string& path) const;
  MemFile* Find(const std::string& path);

  std::map<std::string, MemFile> files_;
  std::map<std::string, bool> dirs_;
  bool powered_off_ = false;
};

}  // namespace gem2::store

#endif  // GEM2_STORE_VFS_H_
