/// \file segment.h
/// On-disk journal segment format and the crash-recovery scan.
///
/// A segment file is:
///
///   header (24 bytes):
///     [magic "G2SEG" + version u8 = 6B][base seqno u64 BE]
///     [reserved u16 = 0][pad u4... none] ... header CRC32C u32 BE over the
///     first 16 bytes, then 4 zero bytes reserved.
///   records, back to back:
///     [payload len u32 BE][CRC32C(payload) u32 BE][payload bytes]
///
/// where each payload is one core::JournalEntry body
/// (core::AppendJournalEntryBody). Records in a segment carry consecutive
/// sequence numbers starting at the header's base seqno.
///
/// The scan's contract is the durability headline: every byte-offset
/// truncation and every bit flip of a segment image yields either a valid
/// record prefix (a lost tail, reported with the truncated byte count) or a
/// fail-closed kCorrupt outcome — never a crash, never a silently wrong
/// record stream. A checksum failure with more data behind it is *mid-stream*
/// corruption: the bytes after the bad record cannot be trusted to be record
/// boundaries, so the scan refuses the whole segment instead of resyncing.
#ifndef GEM2_STORE_SEGMENT_H_
#define GEM2_STORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/journal.h"

namespace gem2::store {

inline constexpr size_t kSegmentHeaderBytes = 24;
inline constexpr uint32_t kMaxRecordBytes = 1u << 26;  // 64 MiB sanity cap

/// Serialized segment header for a segment whose first record is `base_seqno`.
Bytes SegmentHeader(uint64_t base_seqno);

/// Appends one framed record ([len][crc][payload]) to `out`.
void AppendRecordFrame(Bytes* out, const Bytes& payload);

struct SegmentScan {
  enum class Outcome : uint8_t {
    kClean,     // every byte accounted for by valid records
    kTornTail,  // trailing bytes do not form a whole record; prefix is valid
    kCorruptTail,  // last record's checksum failed; prefix is valid
    /// The header itself is short/damaged: nothing in the file is usable.
    /// Recovery treats a bad-header *final* segment as a torn creation
    /// (drop the file) and a bad-header earlier segment as fail-closed.
    kBadHeader,
    kCorrupt,   // mid-stream corruption: fail closed
  };

  Outcome outcome = Outcome::kCorrupt;
  uint64_t base_seqno = 0;
  std::vector<core::JournalEntry> entries;  // the valid prefix
  /// Bytes of the valid prefix (header + whole valid records): where a
  /// torn-tail repair truncates the file.
  uint64_t valid_bytes = 0;
  /// Bytes dropped after the valid prefix (torn or corrupt tail).
  uint64_t truncated_bytes = 0;
  /// Records whose checksum failed (0 or 1: the scan stops at the first).
  uint32_t corrupt_records = 0;
  std::string error;

  bool failed_closed() const { return outcome == Outcome::kCorrupt; }
};

/// Scans a whole segment image. Never throws; see the contract above.
SegmentScan ScanSegment(const Bytes& image);

/// Segment file name for a base sequence number ("seg-00000000000000000042").
std::string SegmentFileName(uint64_t base_seqno);

/// Parses a segment file name back to its base seqno; false when `name` is
/// not a segment file.
bool ParseSegmentFileName(const std::string& name, uint64_t* base_seqno);

}  // namespace gem2::store

#endif  // GEM2_STORE_SEGMENT_H_
