#include "store/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "telemetry/metrics.h"

namespace gem2::store {
namespace {

constexpr uint8_t kMagic[8] = {'G', '2', 'C', 'K', 'P', 'T', 0, 0};

void AppendU32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

uint32_t ReadU32(const Bytes& data, size_t pos) {
  return (static_cast<uint32_t>(data[pos]) << 24) |
         (static_cast<uint32_t>(data[pos + 1]) << 16) |
         (static_cast<uint32_t>(data[pos + 2]) << 8) |
         static_cast<uint32_t>(data[pos + 3]);
}

uint64_t ReadU64(const Bytes& data, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos + i];
  return v;
}

bool Reject(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

}  // namespace

Bytes EncodeCheckpoint(uint64_t seqno, const Bytes& state) {
  Bytes out;
  out.reserve(kCheckpointHeaderBytes + state.size() +
              8 * (state.size() / kCheckpointPagePayload + 1));
  out.insert(out.end(), kMagic, kMagic + 8);
  AppendUint64(&out, seqno);
  AppendUint64(&out, state.size());
  AppendU32(&out, kCheckpointPagePayload);
  AppendU32(&out, common::Crc32c(out.data(), out.size()));

  size_t pos = 0;
  // An empty state still writes one empty page, so every checkpoint has at
  // least one verifiable footer.
  do {
    const size_t len = std::min<size_t>(kCheckpointPagePayload,
                                        state.size() - pos);
    out.insert(out.end(), state.begin() + static_cast<long>(pos),
               state.begin() + static_cast<long>(pos + len));
    AppendU32(&out, static_cast<uint32_t>(len));
    AppendU32(&out, common::Crc32c(state.data() + pos, len));
    pos += len;
  } while (pos < state.size());
  return out;
}

bool DecodeCheckpoint(const Bytes& image, uint64_t* seqno, Bytes* state,
                      std::string* error) {
  if (image.size() < kCheckpointHeaderBytes) {
    return Reject(error, "shorter than the checkpoint header");
  }
  for (int i = 0; i < 8; ++i) {
    if (image[i] != kMagic[i]) return Reject(error, "bad checkpoint magic");
  }
  if (ReadU32(image, 28) != common::Crc32c(image.data(), 28)) {
    return Reject(error, "checkpoint header checksum mismatch");
  }
  *seqno = ReadU64(image, 8);
  const uint64_t state_len = ReadU64(image, 16);
  const uint32_t page_payload = ReadU32(image, 24);
  if (page_payload == 0) return Reject(error, "zero page payload size");

  state->clear();
  state->reserve(state_len);
  size_t pos = kCheckpointHeaderBytes;
  size_t page = 0;
  bool first_page = true;
  // An empty state still carries one (empty) page — hence the first_page
  // forcing one iteration.
  while (first_page || state->size() < state_len) {
    first_page = false;
    const uint64_t remaining = state_len - state->size();
    const uint64_t want =
        std::min<uint64_t>(page_payload, remaining);
    if (pos + want + 8 > image.size()) {
      return Reject(error, "truncated at page " + std::to_string(page));
    }
    const uint32_t len = ReadU32(image, pos + want);
    const uint32_t want_crc = ReadU32(image, pos + want + 4);
    if (len != want) {
      return Reject(error, "page " + std::to_string(page) +
                               " footer length mismatch");
    }
    if (common::Crc32c(image.data() + pos, want) != want_crc) {
      return Reject(error,
                    "page " + std::to_string(page) + " checksum mismatch");
    }
    state->insert(state->end(), image.begin() + static_cast<long>(pos),
                  image.begin() + static_cast<long>(pos + want));
    pos += want + 8;
    ++page;
  }
  if (pos != image.size()) {
    return Reject(error, "trailing bytes after the last page");
  }
  return true;
}

std::string CheckpointFileName(uint64_t seqno) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64, seqno);
  return buf;
}

bool ParseCheckpointFileName(const std::string& name, uint64_t* seqno) {
  if (name.size() != 5 + 20 || name.rfind("ckpt-", 0) != 0) return false;
  uint64_t value = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seqno = value;
  return true;
}

IoStatus WriteCheckpoint(Vfs* vfs, const std::string& dir, uint64_t seqno,
                         const Bytes& state) {
  if (IoStatus status = vfs->CreateDir(dir); !status) return status;
  const Bytes image = EncodeCheckpoint(seqno, state);
  IoStatus status =
      vfs->WriteFileAtomic(dir + "/" + CheckpointFileName(seqno), image,
                           /*sync=*/true);
  if (status) {
    telemetry::MetricsRegistry::Global()
        .counter("store.checkpoints_written")
        .Add(1);
  }
  return status;
}

CheckpointLoad LoadLatestCheckpoint(Vfs* vfs, const std::string& dir) {
  CheckpointLoad load;
  auto names = vfs->ListDir(dir);
  if (!names.has_value()) return load;

  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const std::string& name : *names) {
    uint64_t seqno = 0;
    if (ParseCheckpointFileName(name, &seqno)) {
      candidates.emplace_back(seqno, name);
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());  // newest first

  for (const auto& [seqno, name] : candidates) {
    Bytes image;
    if (IoStatus status = vfs->ReadFile(dir + "/" + name, &image); !status) {
      ++load.discarded;
      load.error = status.message;
      continue;
    }
    uint64_t decoded_seqno = 0;
    Bytes state;
    std::string error;
    if (!DecodeCheckpoint(image, &decoded_seqno, &state, &error) ||
        decoded_seqno != seqno) {
      ++load.discarded;
      load.error = error.empty() ? "file name / header seqno mismatch"
                                 : name + ": " + error;
      continue;
    }
    load.found = true;
    load.seqno = seqno;
    load.state = std::move(state);
    break;
  }
  if (load.discarded > 0) {
    telemetry::MetricsRegistry::Global()
        .counter("recovery.discarded_checkpoints")
        .Add(load.discarded);
  }
  return load;
}

}  // namespace gem2::store
