#include "store/segment.h"

#include <cinttypes>
#include <cstdio>

#include "common/crc32c.h"

namespace gem2::store {
namespace {

constexpr uint8_t kMagic[5] = {'G', '2', 'S', 'E', 'G'};
constexpr uint8_t kVersion = 1;

void AppendU32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

uint32_t ReadU32(const Bytes& data, size_t pos) {
  return (static_cast<uint32_t>(data[pos]) << 24) |
         (static_cast<uint32_t>(data[pos + 1]) << 16) |
         (static_cast<uint32_t>(data[pos + 2]) << 8) |
         static_cast<uint32_t>(data[pos + 3]);
}

uint64_t ReadU64(const Bytes& data, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos + i];
  return v;
}

}  // namespace

Bytes SegmentHeader(uint64_t base_seqno) {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 5);
  out.push_back(kVersion);
  AppendUint64(&out, base_seqno);
  out.push_back(0);  // reserved
  out.push_back(0);
  AppendU32(&out, common::Crc32c(out.data(), out.size()));
  while (out.size() < kSegmentHeaderBytes) out.push_back(0);
  return out;
}

void AppendRecordFrame(Bytes* out, const Bytes& payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, common::Crc32c(payload.data(), payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

SegmentScan ScanSegment(const Bytes& image) {
  SegmentScan scan;

  // --- header -------------------------------------------------------------
  const auto bad_header = [&](std::string why) {
    scan.outcome = SegmentScan::Outcome::kBadHeader;
    scan.error = std::move(why);
    scan.valid_bytes = 0;
    scan.truncated_bytes = image.size();
    return scan;
  };
  if (image.size() < kSegmentHeaderBytes) {
    return bad_header("segment shorter than its header");
  }
  for (int i = 0; i < 5; ++i) {
    if (image[i] != kMagic[i]) return bad_header("bad segment magic");
  }
  if (image[5] != kVersion) {
    return bad_header("unknown segment version " + std::to_string(image[5]));
  }
  const uint32_t header_crc = ReadU32(image, 16);
  if (header_crc != common::Crc32c(image.data(), 16)) {
    return bad_header("segment header checksum mismatch");
  }
  scan.base_seqno = ReadU64(image, 6);

  // --- records ------------------------------------------------------------
  size_t pos = kSegmentHeaderBytes;
  scan.valid_bytes = pos;
  while (pos < image.size()) {
    // A frame needs 8 bytes of [len][crc]; fewer remaining = a write torn
    // mid-frame.
    if (pos + 8 > image.size()) {
      scan.outcome = SegmentScan::Outcome::kTornTail;
      scan.truncated_bytes = image.size() - scan.valid_bytes;
      return scan;
    }
    const uint32_t len = ReadU32(image, pos);
    const uint32_t want_crc = ReadU32(image, pos + 4);
    if (len > kMaxRecordBytes) {
      // No honest writer frames a record this large; the length word itself
      // is damaged. Without a trustworthy length there is no next record
      // boundary to resync at, so the rest of the file is unusable: treat it
      // as the torn/corrupt tail and recover the prefix.
      scan.outcome = SegmentScan::Outcome::kCorruptTail;
      ++scan.corrupt_records;
      scan.truncated_bytes = image.size() - scan.valid_bytes;
      return scan;
    }
    if (pos + 8 + len > image.size()) {
      // The frame claims more payload than the file holds: a torn append.
      scan.outcome = SegmentScan::Outcome::kTornTail;
      scan.truncated_bytes = image.size() - scan.valid_bytes;
      return scan;
    }
    const uint32_t got_crc = common::Crc32c(image.data() + pos + 8, len);
    if (got_crc != want_crc) {
      ++scan.corrupt_records;
      if (pos + 8 + len == image.size()) {
        // The damaged record is the last one: recovering the prefix loses
        // only the tail, which client verification then attributes.
        scan.outcome = SegmentScan::Outcome::kCorruptTail;
        scan.truncated_bytes = image.size() - scan.valid_bytes;
        return scan;
      }
      // Data continues past the bad record: mid-stream corruption. The
      // following bytes may be valid records — but serving a stream with a
      // hole would be a silently wrong SP, so fail closed.
      scan.outcome = SegmentScan::Outcome::kCorrupt;
      scan.error = "record checksum mismatch at offset " + std::to_string(pos) +
                   " with " + std::to_string(image.size() - pos - 8 - len) +
                   " bytes after it";
      return scan;
    }
    // Payload integrity is proven; it must still be a well-formed entry.
    Bytes payload(image.begin() + static_cast<long>(pos + 8),
                  image.begin() + static_cast<long>(pos + 8 + len));
    core::JournalEntry entry;
    size_t entry_pos = 0;
    if (!core::ParseJournalEntryBody(payload, &entry_pos, &entry) ||
        entry_pos != payload.size()) {
      scan.outcome = SegmentScan::Outcome::kCorrupt;
      scan.error = "checksummed record is not a journal entry (offset " +
                   std::to_string(pos) + ")";
      return scan;
    }
    scan.entries.push_back(std::move(entry));
    pos += 8 + len;
    scan.valid_bytes = pos;
  }
  scan.outcome = SegmentScan::Outcome::kClean;
  return scan;
}

std::string SegmentFileName(uint64_t base_seqno) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "seg-%020" PRIu64 ".log", base_seqno);
  return buf;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* base_seqno) {
  if (name.size() != 4 + 20 + 4 || name.rfind("seg-", 0) != 0 ||
      name.substr(name.size() - 4) != ".log") {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *base_seqno = value;
  return true;
}

}  // namespace gem2::store
