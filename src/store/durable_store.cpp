#include "store/durable_store.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace gem2::store {
namespace {

RecoveryReport FailClosed(RecoveryReport report, std::string error) {
  report.ok = false;
  report.error = std::move(error);
  return report;
}

}  // namespace

std::unique_ptr<DurableSpStore> DurableSpStore::Open(
    Vfs* vfs, const std::string& dir, StateMachine* state,
    const StoreOptions& options, RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};

  // 1. Scan the journal. Any damage past an attributable tail fails here.
  JournalRecovery journal = RecoverJournal(vfs, dir);
  rep.replayed_ops = 0;
  rep.truncated_bytes = journal.truncated_bytes;
  rep.corrupt_records = journal.corrupt_records;
  rep.tail_lost = journal.tail_lost;
  if (!journal.ok) {
    rep = FailClosed(std::move(rep), journal.error);
    return nullptr;
  }
  // Repair what the scan attributed: truncate torn/corrupt tails to their
  // valid prefix and delete bad-header torn creations. Without this, the
  // leftover tail would sit *behind* the next segment we open and turn into
  // fail-closed "mid-stream" damage on the recovery after this one.
  for (const SegmentInfo& info : journal.segments) {
    const std::string path = dir + "/" + info.name;
    IoStatus repaired = IoStatus::Ok();
    switch (info.outcome) {
      case SegmentScan::Outcome::kTornTail:
      case SegmentScan::Outcome::kCorruptTail:
        repaired = vfs->TruncateFile(path, info.valid_bytes);
        break;
      case SegmentScan::Outcome::kBadHeader:
        repaired = vfs->RemoveFile(path);
        break;
      case SegmentScan::Outcome::kClean:
      case SegmentScan::Outcome::kCorrupt:
        continue;
    }
    if (!repaired) {
      rep = FailClosed(std::move(rep),
                       "repair " + info.name + ": " + repaired.message);
      return nullptr;
    }
    ++rep.repaired_segments;
  }

  // 2. Restore the newest good checkpoint (if any). A checkpoint whose pages
  // checksum but whose state image does not restore counts as damaged too —
  // fall back to full replay when the journal still covers seqno 0.
  state->Reset();
  uint64_t base_seqno = 0;
  CheckpointLoad ckpt = LoadLatestCheckpoint(vfs, dir);
  rep.discarded_checkpoints = ckpt.discarded;
  if (ckpt.found) {
    if (state->RestoreState(ckpt.state)) {
      rep.used_checkpoint = true;
      rep.checkpoint_seqno = ckpt.seqno;
      base_seqno = ckpt.seqno;
    } else {
      state->Reset();
      ++rep.discarded_checkpoints;
      telemetry::MetricsRegistry::Global()
          .counter("recovery.discarded_checkpoints")
          .Add(1);
    }
  }

  // 3. Replay the journal suffix past the restored seqno.
  if (!journal.entries.empty() || journal.next_seqno > 0) {
    if (journal.first_seqno > base_seqno) {
      // The journal starts after the state we restored: the records in
      // between are gone (over-pruned or deleted), and nothing can attest
      // what they held. Fail closed.
      rep = FailClosed(std::move(rep),
                       "journal starts at seqno " +
                           std::to_string(journal.first_seqno) +
                           " but recovered state ends at " +
                           std::to_string(base_seqno));
      return nullptr;
    }
    for (size_t i = base_seqno - journal.first_seqno;
         i < journal.entries.size(); ++i) {
      state->Apply(journal.entries[i]);
      ++rep.replayed_ops;
    }
  }
  rep.next_seqno = std::max(base_seqno, journal.next_seqno);

  // 4. Open for appending, re-anchoring the seqno chain in a new segment.
  std::unique_ptr<DurableSpStore> store(
      new DurableSpStore(vfs, dir, state, options));
  std::string error;
  store->journal_ = DurableJournal::Open(vfs, dir, rep.next_seqno,
                                         options.journal, &error);
  if (store->journal_ == nullptr) {
    rep = FailClosed(std::move(rep), "reopen journal: " + error);
    return nullptr;
  }
  rep.ok = true;
  if (rep.used_checkpoint) {
    telemetry::MetricsRegistry::Global()
        .counter("recovery.checkpoint_restores")
        .Add(1);
  }
  if (rep.repaired_segments > 0) {
    telemetry::MetricsRegistry::Global()
        .counter("recovery.repaired_segments")
        .Add(rep.repaired_segments);
  }
  store->recovery_ = rep;
  return store;
}

bool DurableSpStore::Apply(const core::JournalEntry& entry) {
  if (!journal_->Append(entry)) return false;
  state_->Apply(entry);
  ++ops_since_checkpoint_;
  if (options_.checkpoint_interval > 0 &&
      ops_since_checkpoint_ >= options_.checkpoint_interval) {
    std::string error;
    // A failed auto-checkpoint is not a lost op — the journal already holds
    // everything — so it degrades to slower recovery, not failure.
    Checkpoint(&error);
  }
  return true;
}

bool DurableSpStore::Checkpoint(std::string* error) {
  // Everything the checkpoint covers must be durable before the checkpoint
  // claims to cover it.
  if (!journal_->Sync()) {
    if (error != nullptr) *error = journal_->last_error();
    return false;
  }
  const uint64_t seqno = journal_->next_seqno();
  if (IoStatus status =
          WriteCheckpoint(vfs_, dir_, seqno, state_->SnapshotState());
      !status) {
    if (error != nullptr) *error = status.message;
    return false;
  }
  ops_since_checkpoint_ = 0;
  if (options_.prune_after_checkpoint) {
    journal_->PruneSegmentsBelow(seqno);
  }
  return true;
}

}  // namespace gem2::store
