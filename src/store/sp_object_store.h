/// \file sp_object_store.h
/// The canonical checkpointable SP state: the materialized object map.
///
/// This is the service provider's raw-object side of the hybrid-storage
/// model — key -> latest value, exactly what range-query result sets are
/// served from — reduced to the StateMachine interface so DurableSpStore can
/// checkpoint and replay it. Its digest chains EntryDigest(key, h(value))
/// leaves through ContentDigest in sorted key order, so two replicas agree on
/// the digest iff they hold identical objects.
#ifndef GEM2_STORE_SP_OBJECT_STORE_H_
#define GEM2_STORE_SP_OBJECT_STORE_H_

#include <map>
#include <string>

#include "store/state_machine.h"

namespace gem2::store {

class SpObjectStore : public StateMachine {
 public:
  void Apply(const core::JournalEntry& entry) override;
  Bytes SnapshotState() const override;
  bool RestoreState(const Bytes& image) override;
  Hash StateDigest() const override;
  void Reset() override { objects_.clear(); }

  size_t size() const { return objects_.size(); }
  const std::map<Key, std::string>& objects() const { return objects_; }

 private:
  std::map<Key, std::string> objects_;
};

}  // namespace gem2::store

#endif  // GEM2_STORE_SP_OBJECT_STORE_H_
