#include "fault/recovery.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "fault/fault.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::fault {
namespace {

constexpr Key kDomainHi = 1'000'000'000;

void Count(const char* name) {
  if (telemetry::kCompiledIn) {
    telemetry::MetricsRegistry::Global().counter(name).Add(1);
  }
}

Key FreshKey(const core::AuthenticatedDb& db, Rng& rng) {
  Key key;
  do {
    key = static_cast<Key>(rng.Uniform(0, kDomainHi));
  } while (db.Contains(key));
  return key;
}

}  // namespace

CrashReport CrashAndRecover(core::DbOptions options, uint64_t seed, size_t ops) {
  CrashReport report;
  report.seed = seed;
  Rng rng(DeriveSeed(seed, 0xc4));
  core::AuthenticatedDb reference(options);

  // Mixed data-owner stream, with one batch transaction mid-stream so the
  // journal covers every op kind the recovery path must replay.
  std::vector<Key> live;
  const size_t batch_at = ops / 2;
  for (size_t i = 0; i < ops; ++i) {
    if (i == batch_at) {
      std::vector<Object> batch;
      for (int j = 0; j < 16; ++j) {
        Key key;
        bool taken;
        do {
          key = static_cast<Key>(rng.Uniform(0, kDomainHi));
          taken = reference.Contains(key);
          for (const Object& b : batch) taken = taken || b.key == key;
        } while (taken);
        batch.push_back({key, "batch-" + std::to_string(j)});
      }
      reference.InsertBatch(batch);
      for (const Object& b : batch) live.push_back(b.key);
      continue;
    }
    const double dice = rng.NextDouble();
    if (dice < 0.60 || live.empty()) {
      const Key key = FreshKey(reference, rng);
      reference.Insert({key, "v" + std::to_string(i)});
      live.push_back(key);
    } else if (dice < 0.85) {
      const Key key = live[rng.Uniform(0, live.size() - 1)];
      reference.Update({key, "u" + std::to_string(i)});
    } else {
      const size_t at = rng.Uniform(0, live.size() - 1);
      reference.Delete(live[at]);
      live.erase(live.begin() + static_cast<long>(at));
    }
  }
  report.total_ops = reference.journal().size();

  // Crash: the SP process is gone; all that survives is the durable journal,
  // shipped as bytes to a fresh machine.
  const Bytes artifact = reference.journal().Serialize();
  std::optional<core::Journal> parsed = core::Journal::Parse(artifact);
  if (!parsed.has_value()) {
    report.error = "durable journal failed to parse";
    Count("fault.recovery.failed");
    return report;
  }
  report.replayed = parsed->size();

  std::unique_ptr<core::AuthenticatedDb> rebuilt;
  try {
    rebuilt = core::AuthenticatedDb::Replay(options, *parsed);
  } catch (const std::exception& e) {
    report.error = std::string("replay aborted: ") + e.what();
    Count("fault.recovery.failed");
    return report;
  }

  report.digests_match = rebuilt->ChainDigests() == reference.ChainDigests();
  report.state_root_match = rebuilt->environment().CurrentStateRoot() ==
                            reference.environment().CurrentStateRoot();

  core::VerifiedResult vr = rebuilt->AuthenticatedRange(0, kDomainHi);
  report.query_ok = vr.ok;
  if (!vr.ok) report.error = "post-recovery query failed: " + vr.error;

  // The rebuilt SP must be live, not just consistent: accept new operations
  // and keep serving verified answers.
  const Key resumed_key = FreshKey(*rebuilt, rng);
  const bool accepted = rebuilt->Insert({resumed_key, "resumed"}).ok;
  core::VerifiedResult after = rebuilt->AuthenticatedRange(0, kDomainHi);
  report.resumed = accepted && after.ok &&
                   after.objects.size() == vr.objects.size() + 1;

  Count(report.digests_match && report.state_root_match && report.query_ok &&
                report.resumed
            ? "fault.recovery.ok"
            : "fault.recovery.failed");
  return report;
}

core::VerifiedResult CrossVerifyAgainst(core::AuthenticatedDb& reference,
                                        const core::AuthenticatedDb& sp,
                                        Key lb, Key ub) {
  chain::AuthenticatedState state = reference.environment().ReadAuthenticatedState(
      core::AuthenticatedDb::kContractName);
  std::string error;
  const bool chain_valid = reference.environment().blockchain().Validate(&error);
  return core::VerifyResponse(state, chain_valid, reference.options().kind,
                              sp.Query(lb, ub));
}

GasSweepReport GasLimitSweep(core::DbOptions base, uint64_t seed, int draws) {
  GasSweepReport report;
  report.seed = seed;
  Rng rng(DeriveSeed(seed, 0x6a));

  for (int d = 0; d < draws; ++d) {
    core::DbOptions options = base;
    // Log-uniform limit across three decades: some draws starve a single
    // insert, some fit singles but not the batch, some fit everything.
    const double lg = std::log(1e5) + rng.NextDouble() * (std::log(2e8) - std::log(1e5));
    options.env.gas_limit = static_cast<gas::Gas>(std::exp(lg));
    core::AuthenticatedDb db(options);
    ++report.draws;

    bool aborted = false;
    auto attempt = [&](auto&& run) {
      const Hash root_before = db.environment().CurrentStateRoot();
      const std::vector<chain::DigestEntry> digests_before = db.ChainDigests();
      const chain::TxReceipt receipt = run();
      if (receipt.ok) return true;
      aborted = true;
      // The whole point: an out-of-gas abort must be indistinguishable, at
      // the state-commitment level, from the transaction never running: the
      // committed digests and the state root derived from them are exactly
      // their pre-transaction values, and the database is poisoned (its
      // in-memory ADS mirrors are indeterminate, so it must refuse further
      // mutations).
      std::string trace;
      if (db.environment().CurrentStateRoot() != root_before) trace += " state-root";
      if (db.ChainDigests() != digests_before) trace += " digests";
      if (!db.poisoned()) trace += " not-poisoned";
      if (!trace.empty()) {
        report.state_preserved = false;
        if (report.error.empty()) {
          report.error = "OOG rollback left a trace (" + trace + "; seed " +
                         std::to_string(seed) + ", draw " + std::to_string(d) +
                         ", limit " + std::to_string(options.env.gas_limit) + ")";
        }
      }
      return false;
    };

    const int singles = static_cast<int>(4 + rng.Uniform(0, 8));
    for (int i = 0; i < singles && !aborted; ++i) {
      attempt([&] {
        return db.Insert({static_cast<Key>(d) * 1'000'000 + i,
                          std::string(rng.Uniform(40, 160), 'v')});
      });
    }
    if (!aborted) {
      std::vector<Object> batch;
      const int batch_size = static_cast<int>(32 + rng.Uniform(0, 96));
      for (int i = 0; i < batch_size; ++i) {
        batch.push_back({static_cast<Key>(d) * 1'000'000 + 1000 + i,
                         std::string(rng.Uniform(40, 160), 'b')});
      }
      if (attempt([&] { return db.InsertBatch(batch); })) ++report.committed;
    }
    if (aborted) ++report.aborted;

    if (telemetry::kCompiledIn) {
      auto& metrics = telemetry::MetricsRegistry::Global();
      metrics.histogram("fault.gas_sweep.limit").Observe(options.env.gas_limit);
      metrics.counter(aborted ? "fault.gas_sweep.aborted"
                              : "fault.gas_sweep.committed").Add(1);
    }
  }
  return report;
}

}  // namespace gem2::fault
