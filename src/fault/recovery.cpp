#include "fault/recovery.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "fault/fault.h"
#include "store/durable_journal.h"
#include "store/vfs.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::fault {
namespace {

constexpr Key kDomainHi = 1'000'000'000;

void Count(const char* name) {
  if (telemetry::kCompiledIn) {
    telemetry::MetricsRegistry::Global().counter(name).Add(1);
  }
}

Key FreshKey(const core::AuthenticatedDb& db, Rng& rng) {
  Key key;
  do {
    key = static_cast<Key>(rng.Uniform(0, kDomainHi));
  } while (db.Contains(key));
  return key;
}

}  // namespace

namespace {

CrashReport RunCrashAndRecover(core::DbOptions options, uint64_t seed,
                               size_t ops, uint64_t torn_tail_bytes,
                               int64_t flip_offset, uint8_t flip_mask) {
  CrashReport report;
  report.seed = seed;
  Rng rng(DeriveSeed(seed, 0xc4));

  // The SP's disk: every committed op flows through a real segmented journal
  // (sync-per-record) before it is acknowledged.
  store::MemVfs disk;
  constexpr char kJournalDir[] = "/sp/journal";
  std::string open_error;
  std::unique_ptr<store::DurableJournal> sink = store::DurableJournal::Open(
      &disk, kJournalDir, 0, store::JournalOptions{}, &open_error);
  if (sink == nullptr) {
    report.error = "open durable journal: " + open_error;
    Count("fault.recovery.failed");
    return report;
  }
  options.journal_sink = sink.get();
  core::AuthenticatedDb reference(options);

  // Mixed data-owner stream, with one batch transaction mid-stream so the
  // journal covers every op kind the recovery path must replay.
  std::vector<Key> live;
  const size_t batch_at = ops / 2;
  for (size_t i = 0; i < ops; ++i) {
    if (i == batch_at) {
      std::vector<Object> batch;
      for (int j = 0; j < 16; ++j) {
        Key key;
        bool taken;
        do {
          key = static_cast<Key>(rng.Uniform(0, kDomainHi));
          taken = reference.Contains(key);
          for (const Object& b : batch) taken = taken || b.key == key;
        } while (taken);
        batch.push_back({key, "batch-" + std::to_string(j)});
      }
      reference.InsertBatch(batch);
      for (const Object& b : batch) live.push_back(b.key);
      continue;
    }
    const double dice = rng.NextDouble();
    if (dice < 0.60 || live.empty()) {
      const Key key = FreshKey(reference, rng);
      reference.Insert({key, "v" + std::to_string(i)});
      live.push_back(key);
    } else if (dice < 0.85) {
      const Key key = live[rng.Uniform(0, live.size() - 1)];
      reference.Update({key, "u" + std::to_string(i)});
    } else {
      const size_t at = rng.Uniform(0, live.size() - 1);
      reference.Delete(live[at]);
      live.erase(live.begin() + static_cast<long>(at));
    }
  }
  report.total_ops = reference.journal().size();

  // Crash: the SP process dies (kill -9 — in-memory state gone, no flush);
  // all that survives is what the journal already made durable.
  sink.reset();

  // Optional pre-recovery damage to the final segment.
  if (torn_tail_bytes > 0 || flip_offset >= 0) {
    auto names = disk.ListDir(kJournalDir);
    if (names.has_value() && !names->empty()) {
      const std::string tail_path = std::string(kJournalDir) + "/" +
                                    names->back();
      if (torn_tail_bytes > 0) {
        if (auto size = disk.FileSize(tail_path); size.has_value()) {
          const uint64_t keep =
              *size > torn_tail_bytes ? *size - torn_tail_bytes : 0;
          disk.TruncateFile(tail_path, keep);
        }
      }
      if (flip_offset >= 0) {
        disk.CorruptByte(tail_path, static_cast<uint64_t>(flip_offset),
                         flip_mask == 0 ? uint8_t{1} : flip_mask);
      }
    }
  }

  // Recovery reads the on-disk segments alone — the in-memory Journal object
  // died with the process.
  store::JournalRecovery recovered =
      store::RecoverJournal(&disk, kJournalDir);
  report.truncated_bytes = recovered.truncated_bytes;
  report.corrupt_records = recovered.corrupt_records;
  report.tail_lost = recovered.tail_lost;
  if (!recovered.ok) {
    report.failed_closed = true;
    report.error = "recovery failed closed: " + recovered.error;
    Count("fault.recovery.failed_closed");
    return report;
  }
  report.replayed = recovered.entries.size();

  core::Journal durable;
  for (core::JournalEntry& entry : recovered.entries) {
    durable.Record(std::move(entry));
  }
  core::DbOptions replay_options = options;
  replay_options.journal_sink = nullptr;
  std::unique_ptr<core::AuthenticatedDb> rebuilt;
  try {
    rebuilt = core::AuthenticatedDb::Replay(replay_options, durable);
  } catch (const std::exception& e) {
    report.error = std::string("replay aborted: ") + e.what();
    Count("fault.recovery.failed");
    return report;
  }

  report.digests_match = rebuilt->ChainDigests() == reference.ChainDigests();
  report.state_root_match = rebuilt->environment().CurrentStateRoot() ==
                            reference.environment().CurrentStateRoot();

  core::VerifiedResult vr = rebuilt->AuthenticatedRange(0, kDomainHi);
  report.query_ok = vr.ok;
  if (!vr.ok) report.error = "post-recovery query failed: " + vr.error;

  // The rebuilt SP must be live, not just consistent: accept new operations
  // and keep serving verified answers.
  const Key resumed_key = FreshKey(*rebuilt, rng);
  const bool accepted = rebuilt->Insert({resumed_key, "resumed"}).ok;
  core::VerifiedResult after = rebuilt->AuthenticatedRange(0, kDomainHi);
  report.resumed = accepted && after.ok &&
                   after.objects.size() == vr.objects.size() + 1;

  Count(report.digests_match && report.state_root_match && report.query_ok &&
                report.resumed
            ? "fault.recovery.ok"
            : "fault.recovery.failed");
  return report;
}

}  // namespace

CrashReport CrashAndRecover(core::DbOptions options, uint64_t seed,
                            size_t ops) {
  return RunCrashAndRecover(std::move(options), seed, ops,
                            /*torn_tail_bytes=*/0, /*flip_offset=*/-1,
                            /*flip_mask=*/0);
}

CrashReport CrashAndRecoverDamaged(core::DbOptions options, uint64_t seed,
                                   size_t ops, uint64_t torn_tail_bytes,
                                   int64_t flip_offset, uint8_t flip_mask) {
  return RunCrashAndRecover(std::move(options), seed, ops, torn_tail_bytes,
                            flip_offset, flip_mask);
}

core::VerifiedResult RecoverFromPrefix(core::DbOptions options,
                                       core::AuthenticatedDb& reference,
                                       size_t keep, Key lb, Key ub) {
  options.journal_sink = nullptr;
  std::unique_ptr<core::AuthenticatedDb> stale =
      core::AuthenticatedDb::Replay(options, reference.journal().Prefix(keep));
  return CrossVerifyAgainst(reference, *stale, lb, ub);
}

core::VerifiedResult CrossVerifyAgainst(core::AuthenticatedDb& reference,
                                        const core::AuthenticatedDb& sp,
                                        Key lb, Key ub) {
  chain::AuthenticatedState state = reference.environment().ReadAuthenticatedState(
      core::AuthenticatedDb::kContractName);
  std::string error;
  const bool chain_valid = reference.environment().blockchain().Validate(&error);
  return core::VerifyResponse(state, chain_valid, reference.options().kind,
                              sp.Query(lb, ub));
}

GasSweepReport GasLimitSweep(core::DbOptions base, uint64_t seed, int draws) {
  GasSweepReport report;
  report.seed = seed;
  Rng rng(DeriveSeed(seed, 0x6a));

  for (int d = 0; d < draws; ++d) {
    core::DbOptions options = base;
    // Log-uniform limit across three decades: some draws starve a single
    // insert, some fit singles but not the batch, some fit everything.
    const double lg = std::log(1e5) + rng.NextDouble() * (std::log(2e8) - std::log(1e5));
    options.env.gas_limit = static_cast<gas::Gas>(std::exp(lg));
    core::AuthenticatedDb db(options);
    ++report.draws;

    bool aborted = false;
    auto attempt = [&](auto&& run) {
      const Hash root_before = db.environment().CurrentStateRoot();
      const std::vector<chain::DigestEntry> digests_before = db.ChainDigests();
      const chain::TxReceipt receipt = run();
      if (receipt.ok) return true;
      aborted = true;
      // The whole point: an out-of-gas abort must be indistinguishable, at
      // the state-commitment level, from the transaction never running: the
      // committed digests and the state root derived from them are exactly
      // their pre-transaction values, and the database is poisoned (its
      // in-memory ADS mirrors are indeterminate, so it must refuse further
      // mutations).
      std::string trace;
      if (db.environment().CurrentStateRoot() != root_before) trace += " state-root";
      if (db.ChainDigests() != digests_before) trace += " digests";
      if (!db.poisoned()) trace += " not-poisoned";
      if (!trace.empty()) {
        report.state_preserved = false;
        if (report.error.empty()) {
          report.error = "OOG rollback left a trace (" + trace + "; seed " +
                         std::to_string(seed) + ", draw " + std::to_string(d) +
                         ", limit " + std::to_string(options.env.gas_limit) + ")";
        }
      }
      return false;
    };

    const int singles = static_cast<int>(4 + rng.Uniform(0, 8));
    for (int i = 0; i < singles && !aborted; ++i) {
      attempt([&] {
        return db.Insert({static_cast<Key>(d) * 1'000'000 + i,
                          std::string(rng.Uniform(40, 160), 'v')});
      });
    }
    if (!aborted) {
      std::vector<Object> batch;
      const int batch_size = static_cast<int>(32 + rng.Uniform(0, 96));
      for (int i = 0; i < batch_size; ++i) {
        batch.push_back({static_cast<Key>(d) * 1'000'000 + 1000 + i,
                         std::string(rng.Uniform(40, 160), 'b')});
      }
      if (attempt([&] { return db.InsertBatch(batch); })) ++report.committed;
    }
    if (aborted) ++report.aborted;

    if (telemetry::kCompiledIn) {
      auto& metrics = telemetry::MetricsRegistry::Global();
      metrics.histogram("fault.gas_sweep.limit").Observe(options.env.gas_limit);
      metrics.counter(aborted ? "fault.gas_sweep.aborted"
                              : "fault.gas_sweep.committed").Add(1);
    }
  }
  return report;
}

}  // namespace gem2::fault
