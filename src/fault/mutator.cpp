#include "fault/mutator.h"

#include <algorithm>
#include <vector>

#include "ads/vo.h"
#include "core/wire_v3.h"

namespace gem2::fault {
namespace {

/// Mutable hash sites inside a VO: boundary-entry value hashes and
/// pruned-subtree content hashes. Result entries carry no hash (the client
/// recomputes those from the returned objects), so altering a result means
/// altering the object itself — a different operator.
void CollectHashSites(ads::VoChild& child, std::vector<Hash*>* sites) {
  if (auto* entry = std::get_if<ads::VoEntry>(&child)) {
    if (!entry->is_result) sites->push_back(&entry->value_hash);
    return;
  }
  if (auto* pruned = std::get_if<ads::VoPruned>(&child)) {
    sites->push_back(&pruned->content_hash);
    return;
  }
  for (ads::VoChild& c : std::get<ads::VoNodePtr>(child)->children) {
    CollectHashSites(c, sites);
  }
}

std::vector<Hash*> HashSites(core::QueryResponse* response) {
  std::vector<Hash*> sites;
  for (core::TreeResultSet& tree : response->trees) {
    if (tree.vo.root.has_value()) CollectHashSites(*tree.vo.root, &sites);
  }
  return sites;
}

/// Indices of trees that contribute at least one result object.
std::vector<size_t> TreesWithObjects(const core::QueryResponse& response) {
  std::vector<size_t> trees;
  for (size_t i = 0; i < response.trees.size(); ++i) {
    if (!response.trees[i].objects.empty()) trees.push_back(i);
  }
  return trees;
}

/// Wrap-around key shift (two's complement): keeps the forgery well-defined
/// even at the extremes of the key domain (signed overflow is UB).
Key ShiftKey(Key k, uint64_t delta, bool up) {
  const uint64_t u = static_cast<uint64_t>(k);
  return static_cast<Key>(up ? u + delta : u - delta);
}

Mutation Pack(MutationOp op, const core::QueryResponse& forged,
              core::WireVersion wire) {
  Mutation m;
  m.op = op;
  m.wire = core::SerializeResponse(forged, wire);
  return m;
}

}  // namespace

std::string MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kDropObject:
      return "drop_object";
    case MutationOp::kAlterObjectValue:
      return "alter_object_value";
    case MutationOp::kAlterObjectKey:
      return "alter_object_key";
    case MutationOp::kDuplicateObject:
      return "duplicate_object";
    case MutationOp::kSwapVoHashes:
      return "swap_vo_hashes";
    case MutationOp::kFlipVoHashBit:
      return "flip_vo_hash_bit";
    case MutationOp::kShiftRangeBounds:
      return "shift_range_bounds";
    case MutationOp::kDropTree:
      return "drop_tree";
    case MutationOp::kDuplicateTree:
      return "duplicate_tree";
    case MutationOp::kForgeUpperSplits:
      return "forge_upper_splits";
    case MutationOp::kCorruptWireBytes:
      return "corrupt_wire_bytes";
  }
  return "unknown";
}

std::optional<Mutation> ResponseMutator::Apply(MutationOp op,
                                               const core::QueryResponse& response) {
  switch (op) {
    case MutationOp::kDropObject: {
      std::vector<size_t> trees = TreesWithObjects(response);
      if (trees.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      auto& objects = forged.trees[trees[rng_.Uniform(0, trees.size() - 1)]].objects;
      objects.erase(objects.begin() +
                    static_cast<long>(rng_.Uniform(0, objects.size() - 1)));
      return Pack(op, forged, wire_);
    }

    case MutationOp::kAlterObjectValue: {
      std::vector<size_t> trees = TreesWithObjects(response);
      if (trees.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      auto& objects = forged.trees[trees[rng_.Uniform(0, trees.size() - 1)]].objects;
      std::string& value = objects[rng_.Uniform(0, objects.size() - 1)].value;
      if (value.empty()) {
        value = "x";
      } else {
        value[rng_.Uniform(0, value.size() - 1)] ^=
            static_cast<char>(rng_.Uniform(1, 255));
      }
      return Pack(op, forged, wire_);
    }

    case MutationOp::kAlterObjectKey: {
      std::vector<size_t> trees = TreesWithObjects(response);
      if (trees.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      auto& objects = forged.trees[trees[rng_.Uniform(0, trees.size() - 1)]].objects;
      Object& obj = objects[rng_.Uniform(0, objects.size() - 1)];
      obj.key = ShiftKey(obj.key, rng_.Uniform(1, 1000), rng_.Chance(0.5));
      return Pack(op, forged, wire_);
    }

    case MutationOp::kDuplicateObject: {
      std::vector<size_t> trees = TreesWithObjects(response);
      if (trees.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      auto& objects = forged.trees[trees[rng_.Uniform(0, trees.size() - 1)]].objects;
      objects.push_back(objects[rng_.Uniform(0, objects.size() - 1)]);
      return Pack(op, forged, wire_);
    }

    case MutationOp::kSwapVoHashes: {
      core::QueryResponse forged = core::CloneResponse(response);
      std::vector<Hash*> sites = HashSites(&forged);
      if (sites.size() < 2) return std::nullopt;
      // Pick a random site, then a second one holding a *different* hash
      // (swapping equal hashes would be a no-op forgery).
      const size_t first = rng_.Uniform(0, sites.size() - 1);
      std::vector<size_t> partners;
      for (size_t i = 0; i < sites.size(); ++i) {
        if (*sites[i] != *sites[first]) partners.push_back(i);
      }
      if (partners.empty()) return std::nullopt;
      const size_t second = partners[rng_.Uniform(0, partners.size() - 1)];
      std::swap(*sites[first], *sites[second]);
      return Pack(op, forged, wire_);
    }

    case MutationOp::kFlipVoHashBit: {
      core::QueryResponse forged = core::CloneResponse(response);
      std::vector<Hash*> sites = HashSites(&forged);
      if (sites.empty()) return std::nullopt;
      Hash* site = sites[rng_.Uniform(0, sites.size() - 1)];
      (*site)[rng_.Uniform(0, 31)] ^= static_cast<uint8_t>(1u << rng_.Uniform(0, 7));
      return Pack(op, forged, wire_);
    }

    case MutationOp::kShiftRangeBounds: {
      core::QueryResponse forged = core::CloneResponse(response);
      const uint64_t delta = rng_.Uniform(1, 1'000'000);
      switch (rng_.Uniform(0, 2)) {
        case 0:
          forged.lb = ShiftKey(forged.lb, delta, false);
          break;
        case 1:
          forged.ub = ShiftKey(forged.ub, delta, true);
          break;
        default:
          forged.lb = ShiftKey(forged.lb, delta, false);
          forged.ub = ShiftKey(forged.ub, delta, true);
          break;
      }
      return Pack(op, forged, wire_);
    }

    case MutationOp::kDropTree: {
      if (response.trees.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      forged.trees.erase(forged.trees.begin() +
                         static_cast<long>(rng_.Uniform(0, forged.trees.size() - 1)));
      return Pack(op, forged, wire_);
    }

    case MutationOp::kDuplicateTree: {
      if (response.trees.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      const core::TreeResultSet& source =
          forged.trees[rng_.Uniform(0, forged.trees.size() - 1)];
      core::TreeResultSet copy;
      copy.label = source.label;
      copy.objects = source.objects;
      copy.vo = ads::CloneVo(source.vo);
      forged.trees.push_back(std::move(copy));
      return Pack(op, forged, wire_);
    }

    case MutationOp::kForgeUpperSplits: {
      if (response.upper_splits.empty()) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      auto& splits = forged.upper_splits;
      switch (rng_.Uniform(0, 2)) {
        case 0: {  // shift one split point
          Key& split = splits[rng_.Uniform(0, splits.size() - 1)];
          split = ShiftKey(split, rng_.Uniform(1, 1000), true);
          break;
        }
        case 1:  // withhold one split point
          splits.erase(splits.begin() +
                       static_cast<long>(rng_.Uniform(0, splits.size() - 1)));
          break;
        default:  // invent an extra region
          splits.push_back(ShiftKey(splits.back(), rng_.Uniform(1, 1000), true));
          break;
      }
      return Pack(op, forged, wire_);
    }

    case MutationOp::kCorruptWireBytes: {
      Mutation m;
      m.op = op;
      m.byte_level = true;
      m.wire = core::SerializeResponse(response, wire_);
      const int flips = static_cast<int>(rng_.Uniform(1, 4));
      for (int i = 0; i < flips; ++i) {
        m.wire[rng_.Uniform(0, m.wire.size() - 1)] ^=
            static_cast<uint8_t>(rng_.Uniform(1, 255));
      }
      return m;
    }
  }
  return std::nullopt;
}

Mutation ResponseMutator::Mutate(const core::QueryResponse& response) {
  for (;;) {
    const MutationOp op =
        kAllMutationOps[rng_.Uniform(0, kAllMutationOps.size() - 1)];
    std::optional<Mutation> m = Apply(op, response);
    if (m.has_value()) return std::move(*m);
  }
}

std::string CompositeMutationOpName(CompositeMutationOp op) {
  switch (op) {
    case CompositeMutationOp::kDropSlice:
      return "drop_slice";
    case CompositeMutationOp::kDuplicateSlice:
      return "duplicate_slice";
    case CompositeMutationOp::kSwapSlices:
      return "swap_slices";
    case CompositeMutationOp::kShiftSeam:
      return "shift_seam";
    case CompositeMutationOp::kMutateInnerSlice:
      return "mutate_inner_slice";
  }
  return "unknown";
}

std::optional<CompositeMutation> ResponseMutator::ApplyComposite(
    CompositeMutationOp op, const core::QueryResponse& response) {
  if (response.slices.empty()) return std::nullopt;
  auto pack = [&](core::QueryResponse&& forged) {
    CompositeMutation m;
    m.op = op;
    m.wire = core::SerializeResponse(forged, wire_);
    return m;
  };
  switch (op) {
    case CompositeMutationOp::kDropSlice: {
      core::QueryResponse forged = core::CloneResponse(response);
      forged.slices.erase(
          forged.slices.begin() +
          static_cast<long>(rng_.Uniform(0, forged.slices.size() - 1)));
      return pack(std::move(forged));
    }

    case CompositeMutationOp::kDuplicateSlice: {
      core::QueryResponse forged = core::CloneResponse(response);
      const size_t i = rng_.Uniform(0, forged.slices.size() - 1);
      core::ShardSlice copy;
      copy.shard = forged.slices[i].shard;
      copy.response = core::CloneResponse(forged.slices[i].response);
      forged.slices.insert(forged.slices.begin() + static_cast<long>(i),
                           std::move(copy));
      return pack(std::move(forged));
    }

    case CompositeMutationOp::kSwapSlices: {
      if (response.slices.size() < 2) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      const size_t i = rng_.Uniform(0, forged.slices.size() - 2);
      const size_t j = rng_.Uniform(i + 1, forged.slices.size() - 1);
      std::swap(forged.slices[i], forged.slices[j]);
      return pack(std::move(forged));
    }

    case CompositeMutationOp::kShiftSeam: {
      // Move the boundary between two adjacent slices so they still abut,
      // just at the wrong key: the classic boundary-drop attack a client
      // without its own copy of the partition bounds would miss.
      if (response.slices.size() < 2) return std::nullopt;
      core::QueryResponse forged = core::CloneResponse(response);
      const size_t seam = rng_.Uniform(1, forged.slices.size() - 1);
      const uint64_t delta = rng_.Uniform(1, 1000);
      const bool up = rng_.Chance(0.5);
      core::QueryResponse& left = forged.slices[seam - 1].response;
      core::QueryResponse& right = forged.slices[seam].response;
      left.ub = ShiftKey(left.ub, delta, up);
      right.lb = ShiftKey(right.lb, delta, up);
      return pack(std::move(forged));
    }

    case CompositeMutationOp::kMutateInnerSlice: {
      // Tamper inside ONE shard's sub-response with a semantic
      // single-response operator (byte-level corruption would not embed as a
      // parseable slice). kShiftRangeBounds always applies, so this loop
      // terminates.
      core::QueryResponse forged = core::CloneResponse(response);
      const size_t i = rng_.Uniform(0, forged.slices.size() - 1);
      for (;;) {
        const MutationOp inner_op =
            kAllMutationOps[rng_.Uniform(0, kAllMutationOps.size() - 1)];
        if (inner_op == MutationOp::kCorruptWireBytes) continue;
        std::optional<Mutation> inner =
            Apply(inner_op, forged.slices[i].response);
        if (!inner.has_value()) continue;
        std::optional<core::QueryResponse> parsed =
            core::ParseResponse(inner->wire);
        if (!parsed.has_value()) continue;
        forged.slices[i].response = std::move(*parsed);
        CompositeMutation m = pack(std::move(forged));
        m.inner = inner_op;
        return m;
      }
    }
  }
  return std::nullopt;
}

CompositeMutation ResponseMutator::MutateComposite(
    const core::QueryResponse& response) {
  for (;;) {
    const CompositeMutationOp op = kAllCompositeMutationOps[rng_.Uniform(
        0, kAllCompositeMutationOps.size() - 1)];
    std::optional<CompositeMutation> m = ApplyComposite(op, response);
    if (m.has_value()) return std::move(*m);
  }
}

std::string WireV3MutationOpName(WireV3MutationOp op) {
  switch (op) {
    case WireV3MutationOp::kTableEntrySwap:
      return "table_entry_swap";
    case WireV3MutationOp::kTableEntryDrop:
      return "table_entry_drop";
    case WireV3MutationOp::kDanglingHashRef:
      return "dangling_hash_ref";
    case WireV3MutationOp::kDeltaKeyCorrupt:
      return "delta_key_corrupt";
    case WireV3MutationOp::kVersionByteConfusion:
      return "version_byte_confusion";
  }
  return "unknown";
}

std::optional<WireV3Mutation> ResponseMutator::ApplyWireV3(
    WireV3MutationOp op, const core::QueryResponse& response) {
  namespace w3 = core::wirev3;
  WireV3Mutation m;
  m.op = op;
  switch (op) {
    case WireV3MutationOp::kTableEntrySwap: {
      // Table entries are distinct by construction, so swapping any two
      // reroutes every reference to the wrong (but well-formed) hash: the
      // image still parses canonically and only root recomputation can tell.
      Bytes image = w3::Serialize(response);
      std::optional<w3::TableInfo> table = w3::LocateTable(image);
      if (!table.has_value() || table->count < 2) return std::nullopt;
      const size_t i = rng_.Uniform(0, table->count - 2);
      const size_t j = rng_.Uniform(i + 1, table->count - 1);
      std::swap_ranges(image.begin() + static_cast<long>(table->offset + 32 * i),
                       image.begin() + static_cast<long>(table->offset + 32 * (i + 1)),
                       image.begin() + static_cast<long>(table->offset + 32 * j));
      m.wire = std::move(image);
      return m;
    }

    case WireV3MutationOp::kTableEntryDrop: {
      // Remove one 32-byte entry and fix up the count. Every slot had >= 2
      // references, so the references to the (now missing) last slot dangle
      // and the codec must reject the image.
      const Bytes image = w3::Serialize(response);
      std::optional<w3::TableInfo> table = w3::LocateTable(image);
      if (!table.has_value() || table->count < 1) return std::nullopt;
      const size_t drop = rng_.Uniform(0, table->count - 1);
      Bytes forged(image.begin(), image.begin() + 2);  // version + kind
      w3::AppendVarint(&forged, table->count - 1);
      for (size_t e = 0; e < table->count; ++e) {
        if (e == drop) continue;
        forged.insert(forged.end(),
                      image.begin() + static_cast<long>(table->offset + 32 * e),
                      image.begin() + static_cast<long>(table->offset + 32 * (e + 1)));
      }
      forged.insert(forged.end(),
                    image.begin() + static_cast<long>(table->offset + 32 * table->count),
                    image.end());
      m.wire = std::move(forged);
      return m;
    }

    case WireV3MutationOp::kDanglingHashRef: {
      // Shrink the declared count but keep all entry bytes: the last entry's
      // 32 bytes shear into the payload and references to the last slot
      // dangle — the codec must reject the frame one way or the other.
      const Bytes image = w3::Serialize(response);
      std::optional<w3::TableInfo> table = w3::LocateTable(image);
      if (!table.has_value() || table->count < 1) return std::nullopt;
      Bytes forged(image.begin(), image.begin() + 2);
      w3::AppendVarint(&forged, table->count - 1);
      forged.insert(forged.end(),
                    image.begin() + static_cast<long>(table->offset), image.end());
      m.wire = std::move(forged);
      return m;
    }

    case WireV3MutationOp::kDeltaKeyCorrupt: {
      // Splice a different (still canonical) delta into the first result
      // object's key varint. One wire-level edit shifts that key AND every
      // later key in the tree's object chain, while the VO keys — a separate
      // chain — stay put: framing and range survive, verification cannot.
      if (!response.slices.empty()) return std::nullopt;  // kind-0 walk only
      const Bytes image = w3::Serialize(response);
      std::optional<w3::TableInfo> table = w3::LocateTable(image);
      if (!table.has_value()) return std::nullopt;
      size_t pos = table->offset + 32 * table->count;
      // body := zz(lb) varint(ub-lb) varint(nsplits) nsplits * zzdelta ...
      if (!w3::ReadVarint(image, &pos).has_value()) return std::nullopt;
      if (!w3::ReadVarint(image, &pos).has_value()) return std::nullopt;
      std::optional<uint64_t> nsplits = w3::ReadVarint(image, &pos);
      if (!nsplits.has_value()) return std::nullopt;
      for (uint64_t s = 0; s < *nsplits; ++s) {
        if (!w3::ReadVarint(image, &pos).has_value()) return std::nullopt;
      }
      std::optional<uint64_t> ntrees = w3::ReadVarint(image, &pos);
      if (!ntrees.has_value() || *ntrees == 0) return std::nullopt;
      // Walk tree frames until one offers a key chain: the first result
      // object's zzdelta, or — for a tree returning no objects — the first
      // zzdelta inside its VO (boundary/pruned chains are delta-encoded
      // too). A tree with no objects and an empty VO is a single 0x00 byte,
      // so it can be stepped over without walking a VO.
      bool found = false;
      for (uint64_t t = 0; t < *ntrees && !found; ++t) {
        // tree := varint(|label|) label varint(nobjects) object... vo
        std::optional<uint64_t> label_len = w3::ReadVarint(image, &pos);
        if (!label_len.has_value() || image.size() - pos < *label_len) {
          return std::nullopt;
        }
        pos += *label_len;
        std::optional<uint64_t> nobjects = w3::ReadVarint(image, &pos);
        if (!nobjects.has_value()) return std::nullopt;
        if (*nobjects > 0) {
          found = true;  // pos is the first object's zzdelta(key)
          break;
        }
        if (pos >= image.size()) return std::nullopt;
        const uint8_t vo_tag = image[pos++];
        if (vo_tag == 0x00) continue;  // empty tree: next frame
        if (vo_tag != 0x01) return std::nullopt;
        // Descend the first-child spine of expanded nodes; entry and pruned
        // tags are all immediately followed by a zzdelta.
        for (;;) {
          if (pos >= image.size()) return std::nullopt;
          const uint8_t tag = image[pos++];
          if (tag == 0x04) {  // expanded node: varint(n), then first child
            std::optional<uint64_t> n = w3::ReadVarint(image, &pos);
            if (!n.has_value() || *n == 0) return std::nullopt;
            continue;
          }
          if (tag != 0x01 && tag != 0x02 && tag != 0x03) return std::nullopt;
          found = true;  // next varint is this element's zzdelta(key | lo)
          break;
        }
      }
      if (!found) return std::nullopt;
      const size_t delta_pos = pos;  // the chain's next zzdelta
      std::optional<uint64_t> old_delta = w3::ReadVarint(image, &pos);
      if (!old_delta.has_value()) return std::nullopt;
      const Key shifted = ShiftKey(static_cast<Key>(w3::ZigzagDecode(*old_delta)),
                                   rng_.Uniform(1, 1000), rng_.Chance(0.5));
      Bytes forged(image.begin(), image.begin() + static_cast<long>(delta_pos));
      w3::AppendVarint(&forged, w3::ZigzagEncode(shifted));
      forged.insert(forged.end(), image.begin() + static_cast<long>(pos),
                    image.end());
      m.wire = std::move(forged);
      return m;
    }

    case WireV3MutationOp::kVersionByteConfusion: {
      // Serialize in one format and relabel the image as the other: the
      // codecs share nothing past the version byte, so the mislabeled body
      // must die in the parser rather than decode to anything plausible.
      const bool downgrade = rng_.Chance(0.5);  // v3 body labeled as v2
      m.wire = core::SerializeResponse(
          response, downgrade ? core::WireVersion::kV3 : core::WireVersion::kV2);
      m.wire[0] = downgrade ? static_cast<uint8_t>(core::WireVersion::kV2)
                            : w3::kVersion;
      return m;
    }
  }
  return std::nullopt;
}

WireV3Mutation ResponseMutator::MutateWireV3(const core::QueryResponse& response) {
  for (;;) {
    const WireV3MutationOp op =
        kAllWireV3MutationOps[rng_.Uniform(0, kAllWireV3MutationOps.size() - 1)];
    std::optional<WireV3Mutation> m = ApplyWireV3(op, response);
    if (m.has_value()) return std::move(*m);
  }
}

std::string SpecMutationOpName(SpecMutationOp op) {
  switch (op) {
    case SpecMutationOp::kSwapConjunctVos:
      return "swap_conjunct_vos";
    case SpecMutationOp::kDropConjunct:
      return "drop_conjunct";
    case SpecMutationOp::kDuplicateConjunct:
      return "duplicate_conjunct";
    case SpecMutationOp::kShiftConjunctRange:
      return "shift_conjunct_range";
    case SpecMutationOp::kTamperAggregateBoundary:
      return "tamper_aggregate_boundary";
    case SpecMutationOp::kSpecEchoTamper:
      return "spec_echo_tamper";
    case SpecMutationOp::kMutateInnerConjunct:
      return "mutate_inner_conjunct";
  }
  return "unknown";
}

std::optional<SpecMutation> ResponseMutator::ApplySpec(
    SpecMutationOp op, const core::SpecResponse& response) {
  if (response.conjuncts.empty()) return std::nullopt;
  auto pack = [&](core::SpecResponse&& forged) {
    SpecMutation m;
    m.op = op;
    m.wire = core::SerializeSpecResponse(forged, wire_);
    return m;
  };
  // Conjunct pairs over *different* mapped ranges: crossing two conjuncts
  // with identical ranges over identical attribute trees could reproduce the
  // honest answer, so the pair operators only cross conjuncts the range pin
  // is guaranteed to catch.
  auto distinct_pair = [&](const core::SpecResponse& r, size_t* i, size_t* j) {
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t a = 0; a < r.conjuncts.size(); ++a) {
      for (size_t b = a + 1; b < r.conjuncts.size(); ++b) {
        if (r.conjuncts[a].lb != r.conjuncts[b].lb ||
            r.conjuncts[a].ub != r.conjuncts[b].ub) {
          pairs.emplace_back(a, b);
        }
      }
    }
    if (pairs.empty()) return false;
    const auto& p = pairs[rng_.Uniform(0, pairs.size() - 1)];
    *i = p.first;
    *j = p.second;
    return true;
  };

  switch (op) {
    case SpecMutationOp::kSwapConjunctVos: {
      core::SpecResponse forged = core::CloneSpecResponse(response);
      size_t i = 0, j = 0;
      if (!distinct_pair(forged, &i, &j)) return std::nullopt;
      std::swap(forged.conjuncts[i], forged.conjuncts[j]);
      return pack(std::move(forged));
    }

    case SpecMutationOp::kDropConjunct: {
      // The conjunct count is pinned to the predicate count structurally, so
      // this forgery must already die in ParseSpecResponse.
      core::SpecResponse forged = core::CloneSpecResponse(response);
      forged.conjuncts.erase(
          forged.conjuncts.begin() +
          static_cast<long>(rng_.Uniform(0, forged.conjuncts.size() - 1)));
      return pack(std::move(forged));
    }

    case SpecMutationOp::kDuplicateConjunct: {
      core::SpecResponse forged = core::CloneSpecResponse(response);
      size_t i = 0, j = 0;
      if (!distinct_pair(forged, &i, &j)) return std::nullopt;
      if (rng_.Chance(0.5)) std::swap(i, j);
      forged.conjuncts[j] = core::CloneResponse(forged.conjuncts[i]);
      return pack(std::move(forged));
    }

    case SpecMutationOp::kShiftConjunctRange: {
      core::SpecResponse forged = core::CloneSpecResponse(response);
      core::QueryResponse& conjunct =
          forged.conjuncts[rng_.Uniform(0, forged.conjuncts.size() - 1)];
      const uint64_t delta = rng_.Uniform(1, 1'000'000);
      switch (rng_.Uniform(0, 2)) {
        case 0:
          conjunct.lb = ShiftKey(conjunct.lb, delta, false);
          break;
        case 1:
          conjunct.ub = ShiftKey(conjunct.ub, delta, true);
          break;
        default:
          conjunct.lb = ShiftKey(conjunct.lb, delta, false);
          conjunct.ub = ShiftKey(conjunct.ub, delta, true);
          break;
      }
      return pack(std::move(forged));
    }

    case SpecMutationOp::kTamperAggregateBoundary: {
      // Aggregates fold over exactly the VO boundary entries, so one flipped
      // hash site is one wrong COUNT/SUM/MIN/MAX input — and one diverged
      // root reconstruction.
      if (response.spec.aggregate == core::AggregateKind::kNone) {
        return std::nullopt;
      }
      core::SpecResponse forged = core::CloneSpecResponse(response);
      const size_t idx = rng_.Uniform(0, forged.conjuncts.size() - 1);
      std::optional<Mutation> inner =
          Apply(MutationOp::kFlipVoHashBit, forged.conjuncts[idx]);
      if (!inner.has_value()) return std::nullopt;
      std::optional<core::QueryResponse> parsed = core::ParseResponse(inner->wire);
      if (!parsed.has_value()) return std::nullopt;
      forged.conjuncts[idx] = std::move(*parsed);
      return pack(std::move(forged));
    }

    case SpecMutationOp::kSpecEchoTamper: {
      // Rewrite the echoed spec. A variant that stays structurally valid is
      // caught by the spec pin ("response spec does not match the issued
      // query"); one that wraps into invalidity (lb > ub, aggregate over
      // several predicates) dies in ParseSpecResponse. Either way: rejected.
      core::SpecResponse forged = core::CloneSpecResponse(response);
      core::QuerySpec& spec = forged.spec;
      switch (rng_.Uniform(0, 2)) {
        case 0:
          spec.op = spec.op == core::BoolOp::kAnd ? core::BoolOp::kOr
                                                  : core::BoolOp::kAnd;
          break;
        case 1: {
          core::Predicate& p =
              spec.predicates[rng_.Uniform(0, spec.predicates.size() - 1)];
          const uint64_t delta = rng_.Uniform(1, 1000);
          if (rng_.Chance(0.5)) {
            p.lb = ShiftKey(p.lb, delta, false);
          } else {
            p.ub = ShiftKey(p.ub, delta, true);
          }
          break;
        }
        default:
          spec.aggregate = static_cast<core::AggregateKind>(
              (static_cast<uint8_t>(spec.aggregate) + 1 +
               rng_.Uniform(0, 3)) %
              5);
          break;
      }
      return pack(std::move(forged));
    }

    case SpecMutationOp::kMutateInnerConjunct: {
      // Tamper inside ONE conjunct's sub-response with a semantic
      // single-response operator, exactly as kMutateInnerSlice does for
      // shards. kShiftRangeBounds always applies, so this loop terminates.
      core::SpecResponse forged = core::CloneSpecResponse(response);
      const size_t idx = rng_.Uniform(0, forged.conjuncts.size() - 1);
      for (;;) {
        const MutationOp inner_op =
            kAllMutationOps[rng_.Uniform(0, kAllMutationOps.size() - 1)];
        if (inner_op == MutationOp::kCorruptWireBytes) continue;
        std::optional<Mutation> inner = Apply(inner_op, forged.conjuncts[idx]);
        if (!inner.has_value()) continue;
        std::optional<core::QueryResponse> parsed =
            core::ParseResponse(inner->wire);
        if (!parsed.has_value()) continue;
        forged.conjuncts[idx] = std::move(*parsed);
        SpecMutation m = pack(std::move(forged));
        m.inner = inner_op;
        return m;
      }
    }
  }
  return std::nullopt;
}

SpecMutation ResponseMutator::MutateSpec(const core::SpecResponse& response) {
  for (;;) {
    const SpecMutationOp op =
        kAllSpecMutationOps[rng_.Uniform(0, kAllSpecMutationOps.size() - 1)];
    std::optional<SpecMutation> m = ApplySpec(op, response);
    if (m.has_value()) return std::move(*m);
  }
}

}  // namespace gem2::fault
