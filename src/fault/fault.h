/// \file fault.h
/// Seed plumbing for the deterministic fault-injection subsystem.
///
/// Every fault stream — adversarial response mutation, flaky-transport
/// scheduling, crash points, gas-limit draws — is a pure function of one
/// 64-bit seed, so any failure reproduces from the seed alone. Harnesses log
/// the seed they ran with; setting GEM2_TEST_SEED replays it.
#ifndef GEM2_FAULT_FAULT_H_
#define GEM2_FAULT_FAULT_H_

#include <cstdint>

namespace gem2::fault {

/// The seed a randomized harness should run with: the decimal value of the
/// GEM2_TEST_SEED environment variable when set and parseable, otherwise
/// `fallback`.
uint64_t ResolveSeed(uint64_t fallback);

/// Derives an independent sub-seed for stream `stream` of a harness seeded
/// with `seed` (splitmix64 of the pair). Sub-streams (mutation draws, channel
/// faults, workload keys) stay decorrelated but fully determined by `seed`.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

}  // namespace gem2::fault

#endif  // GEM2_FAULT_FAULT_H_
