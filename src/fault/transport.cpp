#include "fault/transport.h"

#include <algorithm>

#include "core/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::fault {
namespace {

void Count(const char* name, uint64_t delta = 1) {
  if (telemetry::kCompiledIn) {
    telemetry::MetricsRegistry::Global().counter(name).Add(delta);
  }
}

void Observe(const char* name, uint64_t value) {
  if (telemetry::kCompiledIn) {
    telemetry::MetricsRegistry::Global().histogram(name).Observe(value);
  }
}

}  // namespace

FlakyChannel::FlakyChannel(ChannelOptions options, uint64_t seed)
    : options_(options), rng_(seed) {}

FlakyChannel::Delivery FlakyChannel::Transmit(const Bytes& payload) {
  ++stats_.sent;
  Count("transport.sent");
  Delivery delivery;
  delivery.latency_us =
      options_.latency_us +
      (options_.jitter_us > 0 ? rng_.Uniform(0, options_.jitter_us) : 0);

  // Reordering: an earlier response surfaces from the network instead of
  // this one. The real payload is "in flight" and becomes the next stale
  // candidate either way.
  Bytes effective = payload;
  if (!previous_.empty() && rng_.Chance(options_.reorder_rate)) {
    effective = previous_;
    ++stats_.reordered;
    Count("transport.reordered");
  }
  previous_ = payload;

  if (rng_.Chance(options_.drop_rate)) {
    ++stats_.dropped;
    Count("transport.dropped");
    return delivery;  // no packets: the client times out
  }

  if (rng_.Chance(options_.truncate_rate) && effective.size() > 1) {
    effective.resize(rng_.Uniform(1, effective.size() - 1));
    ++stats_.truncated;
    Count("transport.truncated");
  }
  if (rng_.Chance(options_.corrupt_rate) && !effective.empty()) {
    const int flips = static_cast<int>(rng_.Uniform(1, 4));
    for (int i = 0; i < flips; ++i) {
      effective[rng_.Uniform(0, effective.size() - 1)] ^=
          static_cast<uint8_t>(rng_.Uniform(1, 255));
    }
    ++stats_.corrupted;
    Count("transport.corrupted");
  }

  delivery.packets.push_back(effective);
  if (rng_.Chance(options_.duplicate_rate)) {
    delivery.packets.push_back(effective);
    ++stats_.duplicated;
    Count("transport.duplicated");
  }
  stats_.delivered += delivery.packets.size();
  Count("transport.delivered", delivery.packets.size());
  return delivery;
}

uint64_t RetryPolicy::BackoffUs(uint32_t attempt, Rng& rng) const {
  double backoff = static_cast<double>(base_backoff_us);
  for (uint32_t i = 1; i < attempt; ++i) {
    backoff *= multiplier;
    if (backoff >= static_cast<double>(max_backoff_us)) break;
  }
  uint64_t capped = std::min(static_cast<uint64_t>(backoff), max_backoff_us);
  if (capped > 1) capped += rng.Uniform(0, capped / 2);
  return std::min(capped, max_backoff_us + max_backoff_us / 2);
}

RetryingClient::RetryingClient(core::RangeStore& db, FlakyChannel& channel,
                               RetryPolicy policy, uint64_t seed)
    : db_(db), channel_(channel), policy_(policy), rng_(seed) {}

ClientOutcome RetryingClient::AuthenticatedRange(Key lb, Key ub) {
  ClientOutcome outcome;
  std::string last_error = "no attempt made";

  while (outcome.attempts < policy_.max_attempts &&
         outcome.elapsed_us < policy_.deadline_us) {
    ++outcome.attempts;
    // The SP recomputes the answer per attempt, as a real server would.
    FlakyChannel::Delivery delivery =
        channel_.Transmit(core::SerializeResponse(db_.Query(lb, ub)));

    if (delivery.packets.empty()) {
      outcome.elapsed_us += policy_.attempt_timeout_us;
      last_error = "response timed out";
    } else {
      outcome.elapsed_us += delivery.latency_us;
      // Duplicate delivery: the first packet that verifies wins; the rest
      // are ignored. A corrupted copy next to a clean one must not matter.
      for (const Bytes& packet : delivery.packets) {
        core::VerifiedResult vr = db_.VerifyWire(lb, ub, packet);
        if (vr.ok) {
          outcome.ok = true;
          outcome.result = std::move(vr);
          break;
        }
        last_error = vr.error;
      }
      if (outcome.ok) break;
    }

    if (outcome.attempts < policy_.max_attempts &&
        outcome.elapsed_us < policy_.deadline_us) {
      const uint64_t backoff = policy_.BackoffUs(outcome.attempts, rng_);
      outcome.elapsed_us += backoff;
      Observe("client.retry.backoff_us", backoff);
    }
  }

  Observe("client.retry.attempts", outcome.attempts);
  if (!outcome.ok) {
    outcome.degraded = true;
    outcome.error = "degraded after " + std::to_string(outcome.attempts) +
                    " attempts (" + std::to_string(outcome.elapsed_us) +
                    "us elapsed): " + last_error;
    Count("client.query.degraded");
  } else if (outcome.attempts > 1) {
    Count("client.query.recovered");
  }
  return outcome;
}

}  // namespace gem2::fault
