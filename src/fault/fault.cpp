#include "fault/fault.h"

#include <cstdlib>

namespace gem2::fault {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t ResolveSeed(uint64_t fallback) {
  const char* env = std::getenv("GEM2_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  return SplitMix64(seed ^ SplitMix64(stream));
}

}  // namespace gem2::fault
