/// \file adversary.h
/// Seeded adversarial sweep: a malicious SP mounts hundreds of structured
/// forgeries and byte-level corruptions against a live database, and the
/// harness measures the client's rejection rate. The paper's tamper-evidence
/// claim holds iff that rate is 100%.
#ifndef GEM2_FAULT_ADVERSARY_H_
#define GEM2_FAULT_ADVERSARY_H_

#include <map>
#include <string>
#include <vector>

#include "core/range_store.h"
#include "fault/mutator.h"

namespace gem2::fault {

struct AdversaryOptions {
  uint64_t seed = 1;
  /// Forgeries to mount. Each draws a fresh query, mutates its response, and
  /// pushes the forged image through parse + full client verification.
  int mutations = 500;
  /// Query ranges are drawn uniformly inside [domain_lo, domain_hi].
  Key domain_lo = 0;
  Key domain_hi = 1'000'000;
  /// Wire format forged images are serialized in. kV3 sweeps additionally
  /// alternate in the v3-specific surgical operators (subtree-table
  /// tampering, delta-chain corruption, version-byte confusion); the kV2
  /// default keeps existing seeded reports byte-identical.
  core::WireVersion wire_version = core::WireVersion::kV2;
};

struct AdversaryReport {
  uint64_t seed = 0;
  int attempted = 0;
  int rejected_parse = 0;   // forged image failed ParseResponse
  int rejected_verify = 0;  // parsed, but failed client verification
  /// Byte-level flips that decoded back to the canonical original image
  /// (redundant framing touched; semantically not a forgery).
  int canonical_noop = 0;
  /// Semantic forgeries the client accepted. Any entry here is a broken
  /// security property.
  std::vector<std::string> forgeries;
  std::map<std::string, int> attempts_by_op;

  int forged() const { return static_cast<int>(forgeries.size()); }
  bool AllRejected() const { return attempted > 0 && forgeries.empty(); }

  friend bool operator==(const AdversaryReport&, const AdversaryReport&) = default;
};

/// Runs the sweep against `db` (which already holds data). Deterministic:
/// identical (db state, options) pairs produce identical reports. Counters
/// land in the telemetry registry under fault.mutation.*.
AdversaryReport RunAdversarialSweep(core::RangeStore& db,
                                    const AdversaryOptions& options);

/// Sweep options for typed-spec answers. Queries are not drawn from a key
/// domain — the caller supplies the specs to attack (boolean shapes,
/// aggregates, cross-attribute predicates) and the sweep cycles through
/// them, executing each fresh every round.
struct SpecAdversaryOptions {
  uint64_t seed = 1;
  int mutations = 500;
  std::vector<core::QuerySpec> specs;
  core::WireVersion wire_version = core::WireVersion::kV2;
};

/// The typed-spec analogue of RunAdversarialSweep: mounts SpecMutationOp
/// forgeries (conjunct swapping/dropping, aggregate-boundary tampering, spec
/// echo rewrites, ...) against `db` and pushes each forged image through
/// ParseSpecResponse + VerifySpecFor. Every operator is semantic, so
/// AllRejected() must hold on a correct implementation. Deterministic per
/// (db state, options); returns an empty report when `specs` is empty.
AdversaryReport RunSpecAdversarialSweep(core::RangeStore& db,
                                        const SpecAdversaryOptions& options);

/// Stale-response replay: serializes a response for [lb, ub], advances the
/// chain by `extra_inserts` fresh in-range inserts (so the on-chain digests
/// move past the captured response), then replays the stale image. Returns
/// true when the client rejects it; `why` receives the rejection error.
bool StaleReplayRejected(core::RangeStore& db, Key lb, Key ub,
                         int extra_inserts, uint64_t seed,
                         std::string* why = nullptr);

}  // namespace gem2::fault

#endif  // GEM2_FAULT_ADVERSARY_H_
