#include "fault/failpoint_vfs.h"

#include <algorithm>

#include "common/random.h"
#include "fault/fault.h"

namespace gem2::fault {
namespace {

/// All faults for one syscall come from one RNG derived from (config seed,
/// op index): schedules replay exactly regardless of how callers interleave.
Rng OpRng(const FailpointConfig& config, uint64_t op_seed) {
  return Rng(DeriveSeed(config.seed, 0xf41u * op_seed + 1));
}

}  // namespace

/// Append handle that injects short writes, EIO, sync errors, and sync lies
/// around the wrapped MemVfs file.
class FailpointWritableFile : public store::WritableFile {
 public:
  FailpointWritableFile(FailpointVfs* vfs,
                        std::unique_ptr<store::WritableFile> base)
      : vfs_(vfs), base_(std::move(base)) {}

  store::IoStatus Append(const uint8_t* data, size_t len) override {
    const uint64_t op = vfs_->NextOpSeed();
    vfs_->AmbientFaults(op);
    if (vfs_->base_->powered_off()) {
      return store::IoStatus::Error("simulated power cut");
    }
    Rng rng = OpRng(vfs_->config_, op);
    if (rng.Chance(vfs_->config_.p_append_error)) {
      // A torn write: a seeded prefix lands in the volatile region, then the
      // syscall fails. The engine must treat the record as never appended.
      const size_t keep = len == 0 ? 0 : rng.Uniform(0, len - 1);
      if (keep > 0) {
        ++vfs_->stats_.short_writes;
        (void)base_->Append(data, keep);
      }
      ++vfs_->stats_.append_errors;
      return store::IoStatus::Error("injected append EIO");
    }
    return base_->Append(data, len);
  }

  store::IoStatus Sync() override {
    const uint64_t op = vfs_->NextOpSeed();
    vfs_->AmbientFaults(op);
    if (vfs_->base_->powered_off()) {
      return store::IoStatus::Error("simulated power cut");
    }
    Rng rng = OpRng(vfs_->config_, op);
    if (rng.Chance(vfs_->config_.p_sync_lie)) {
      // The firmware lie: report durability without providing it. Only a
      // later power cut can expose this.
      ++vfs_->stats_.sync_lies;
      return store::IoStatus::Ok();
    }
    if (rng.Chance(vfs_->config_.p_sync_error)) {
      ++vfs_->stats_.sync_errors;
      return store::IoStatus::Error("injected fsync EIO");
    }
    return base_->Sync();
  }

  store::IoStatus Close() override { return base_->Close(); }

 private:
  FailpointVfs* vfs_;
  std::unique_ptr<store::WritableFile> base_;
};

void FailpointVfs::AmbientFaults(uint64_t op_seed) {
  if (base_->powered_off()) return;
  Rng rng(DeriveSeed(config_.seed, 0xa3bu * op_seed + 2));
  if (rng.Chance(config_.p_bit_rot)) {
    // Rot one durable byte of one existing file, chosen by seed.
    const std::vector<std::string> files = base_->AllFiles();
    if (!files.empty()) {
      const std::string& path = files[rng.Uniform(0, files.size() - 1)];
      if (auto size = base_->FileSize(path); size.has_value() && *size > 0) {
        const uint64_t offset = rng.Uniform(0, *size - 1);
        const uint8_t mask = static_cast<uint8_t>(1u << rng.Uniform(0, 7));
        if (base_->CorruptByte(path, offset, mask)) ++stats_.bit_flips;
      }
    }
  }
  if (rng.Chance(config_.p_power_cut)) {
    ++stats_.power_cuts;
    const uint64_t tear_seed = DeriveSeed(config_.seed, 0x9c1u * op_seed + 3);
    base_->CutPower([tear_seed](size_t volatile_bytes) -> size_t {
      if (volatile_bytes == 0) return 0;
      // Seeded torn tail: each file keeps an arbitrary prefix of its
      // unsynced bytes, like a disk that got some sectors out before dying.
      return Rng(tear_seed ^ volatile_bytes).Uniform(0, volatile_bytes);
    });
  }
}

store::IoStatus FailpointVfs::CreateDir(const std::string& path) {
  AmbientFaults(NextOpSeed());
  return base_->CreateDir(path);
}

std::optional<std::vector<std::string>> FailpointVfs::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

bool FailpointVfs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

std::optional<uint64_t> FailpointVfs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

store::IoStatus FailpointVfs::ReadFile(const std::string& path, Bytes* out) {
  return base_->ReadFile(path, out);
}

store::IoStatus FailpointVfs::WriteFileAtomic(const std::string& path,
                                              const Bytes& data, bool sync) {
  const uint64_t op = NextOpSeed();
  AmbientFaults(op);
  if (base_->powered_off()) {
    return store::IoStatus::Error("simulated power cut");
  }
  Rng rng = OpRng(config_, op);
  if (rng.Chance(config_.p_append_error)) {
    // Atomic publication's failure mode is all-or-nothing by construction:
    // the temp file dies, the destination is untouched.
    ++stats_.append_errors;
    return store::IoStatus::Error("injected publish EIO");
  }
  const bool durable =
      sync && !rng.Chance(config_.p_sync_lie);
  if (sync && !durable) ++stats_.sync_lies;
  return base_->WriteFileAtomic(path, data, durable);
}

std::unique_ptr<store::WritableFile> FailpointVfs::OpenAppend(
    const std::string& path, store::IoStatus* status) {
  auto base_file = base_->OpenAppend(path, status);
  if (base_file == nullptr) return nullptr;
  return std::make_unique<FailpointWritableFile>(this, std::move(base_file));
}

store::IoStatus FailpointVfs::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

store::IoStatus FailpointVfs::TruncateFile(const std::string& path,
                                           uint64_t size) {
  return base_->TruncateFile(path, size);
}

}  // namespace gem2::fault
