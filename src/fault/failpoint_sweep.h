/// \file failpoint_sweep.h
/// The failpoint sweep: hundreds of seeded I/O-fault schedules against the
/// durable engine, each held to recover-or-fail-closed.
///
/// Per schedule, a fault mix (short writes, EIO, lying fsyncs, power cuts,
/// bit rot), an fsync policy, and tiny segment/checkpoint sizes are drawn
/// from the schedule's seed; a deterministic data-owner stream is applied
/// through store::DurableSpStore until the schedule kills it; then the
/// machine restarts and recovery runs on honest hardware. The recovered
/// state must be digest-identical to some prefix of the op stream (or the
/// engine must refuse to serve). Schedules whose hardware never lied and
/// never rotted, running under FsyncPolicy::kEveryRecord, must additionally
/// recover every acknowledged op — the durability floor.
#ifndef GEM2_FAULT_FAILPOINT_SWEEP_H_
#define GEM2_FAULT_FAILPOINT_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/journal.h"
#include "fault/failpoint_vfs.h"

namespace gem2::fault {

/// Deterministic data-owner operation stream: a seeded insert/update/delete
/// mix over a small key domain (so updates and deletes hit live keys).
/// Pure function of (seed, n) — the sweep's shadow replica and the kill-9
/// harness regenerate it instead of shipping it.
std::vector<core::JournalEntry> OwnerStream(uint64_t seed, size_t n);

struct FailpointSweepOptions {
  uint64_t seed = 0;
  int schedules = 500;
  size_t ops_per_schedule = 48;
};

struct FailpointSweepReport {
  uint64_t seed = 0;
  int schedules = 0;
  /// Schedules whose recovery served a digest-verified prefix.
  int recovered = 0;
  /// Schedules whose recovery refused to serve (acceptable under injected
  /// lies/rot; a violation on honest schedules).
  int failed_closed = 0;
  /// Recovered schedules that lost an acked tail (truncation at work).
  int tail_lost = 0;

  /// Violations — any nonzero fails the sweep:
  /// recovered state matched no prefix of the op stream.
  int wrong_recoveries = 0;
  /// honest kEveryRecord schedule lost an acked op or failed closed.
  int floor_violations = 0;

  FailpointStats injected;  // aggregate faults across all schedules
  std::string error;        // first violation, with its schedule seed

  bool ok() const { return wrong_recoveries == 0 && floor_violations == 0; }
};

/// Runs the sweep. Reproducible from options.seed alone; on a violation, if
/// GEM2_FAULT_DUMP_DIR is set, the offending schedule's simulated disk is
/// dumped there for post-mortem.
FailpointSweepReport RunFailpointSweep(const FailpointSweepOptions& options);

}  // namespace gem2::fault

#endif  // GEM2_FAULT_FAILPOINT_SWEEP_H_
