/// \file failpoint_vfs.h
/// Deterministic I/O fault injection at the Vfs seam.
///
/// FailpointVfs wraps a store::MemVfs and makes every syscall boundary a
/// potential failure point: appends can land a short prefix and return EIO,
/// fsync can fail — or worse, *lie* (return success while leaving the bytes
/// volatile, the firmware bug that breaks naive write-ahead logs), power can
/// cut mid-operation tearing the unsynced tail, and durable bytes can rot.
/// Every decision is a pure function of the config seed and the operation
/// index, so any schedule replays bit-for-bit from the seed alone
/// (GEM2_TEST_SEED convention, fault/fault.h).
///
/// RunFailpointSweep drives the whole durable engine (store::DurableSpStore
/// over store::SpObjectStore) through hundreds of such schedules and holds it
/// to the recover-or-fail-closed contract: after every crash, recovery either
/// yields exactly a prefix of the acknowledged operation stream (verified by
/// state digest against an uninjected shadow) or refuses to serve. Any
/// accepted-but-wrong state is a sweep failure.
#ifndef GEM2_FAULT_FAILPOINT_VFS_H_
#define GEM2_FAULT_FAILPOINT_VFS_H_

#include <cstdint>
#include <string>

#include "store/vfs.h"

namespace gem2::fault {

struct FailpointConfig {
  uint64_t seed = 0;
  /// Per-append probability of failing with EIO after landing a seeded short
  /// prefix of the buffer (the torn write a real disk produces).
  double p_append_error = 0.0;
  /// Per-sync probability of returning EIO (bytes stay volatile).
  double p_sync_error = 0.0;
  /// Per-sync probability of *lying*: returning success while leaving the
  /// bytes volatile. Indistinguishable from a working fsync until power cuts.
  double p_sync_lie = 0.0;
  /// Per-operation probability of cutting power mid-operation: the op fails,
  /// unsynced bytes keep only a seeded torn prefix, and everything fails
  /// until Restart().
  double p_power_cut = 0.0;
  /// Per-operation probability of flipping one seeded bit in one seeded
  /// durable byte (media rot). Applied before the operation runs.
  double p_bit_rot = 0.0;
};

struct FailpointStats {
  uint64_t ops = 0;  // syscall-boundary decisions taken
  uint64_t short_writes = 0;
  uint64_t append_errors = 0;
  uint64_t sync_errors = 0;
  uint64_t sync_lies = 0;
  uint64_t power_cuts = 0;
  uint64_t bit_flips = 0;
};

class FailpointVfs : public store::Vfs {
 public:
  /// `base` must outlive this wrapper.
  FailpointVfs(store::MemVfs* base, const FailpointConfig& config)
      : base_(base), config_(config) {}

  store::IoStatus CreateDir(const std::string& path) override;
  std::optional<std::vector<std::string>> ListDir(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  std::optional<uint64_t> FileSize(const std::string& path) override;
  store::IoStatus ReadFile(const std::string& path, Bytes* out) override;
  store::IoStatus WriteFileAtomic(const std::string& path, const Bytes& data,
                                  bool sync) override;
  std::unique_ptr<store::WritableFile> OpenAppend(
      const std::string& path, store::IoStatus* status) override;
  store::IoStatus RemoveFile(const std::string& path) override;
  store::IoStatus TruncateFile(const std::string& path, uint64_t size) override;

  /// Power the simulated machine back on (the injected schedule keeps going).
  void Restart() { base_->Restart(); }
  bool powered_off() const { return base_->powered_off(); }

  const FailpointStats& stats() const { return stats_; }
  store::MemVfs* base() { return base_; }

 private:
  friend class FailpointWritableFile;

  /// One derived RNG draw stream per syscall; advances the op counter.
  uint64_t NextOpSeed() { return ++stats_.ops; }
  /// Pre-op ambient faults (bit rot, spontaneous power cut) for op `op_seed`.
  void AmbientFaults(uint64_t op_seed);

  store::MemVfs* base_;
  FailpointConfig config_;
  FailpointStats stats_;
};

}  // namespace gem2::fault

#endif  // GEM2_FAULT_FAILPOINT_VFS_H_
