/// \file recovery.h
/// Crash-recovery harnesses: SP rebuild by journal replay, cross-instance
/// client detection of a stale (partially recovered) SP, and a randomized
/// gas-limit sweep proving out-of-gas rollback is exact.
#ifndef GEM2_FAULT_RECOVERY_H_
#define GEM2_FAULT_RECOVERY_H_

#include <memory>
#include <string>

#include "core/authenticated_db.h"

namespace gem2::fault {

struct CrashReport {
  uint64_t seed = 0;
  size_t total_ops = 0;  // data-owner operations before the crash
  /// Journal entries that survived in the durable log (== total_ops here:
  /// every op is journaled through store::DurableJournal with
  /// FsyncPolicy::kEveryRecord before it is acknowledged — see
  /// RecoverFromPrefix for the lost-tail case).
  size_t replayed = 0;
  bool digests_match = false;     // rebuilt tree digests == on-chain, bit-for-bit
  bool state_root_match = false;  // environment state roots agree
  bool query_ok = false;          // a verified query succeeds post-recovery
  bool resumed = false;           // the rebuilt instance accepts new ops

  /// What the durable-log scan found, distinguishing the two damage shapes:
  /// a *lost tail* (torn or checksum-failed trailing record, truncated away,
  /// `tail_lost` with `truncated_bytes`) versus *corruption* the scan cannot
  /// attribute (`failed_closed`; nothing is served). Mirrored into the
  /// recovery.{replayed_ops,truncated_bytes,corrupt_records} counters in the
  /// Prometheus exposition.
  uint64_t truncated_bytes = 0;
  uint32_t corrupt_records = 0;
  bool tail_lost = false;
  bool failed_closed = false;
  std::string error;
};

/// Drives `ops` seeded data-owner operations (mixed inserts/updates/deletes,
/// plus one mid-stream batch) against a reference instance whose every op is
/// durably journaled (store::DurableJournal over an in-memory disk,
/// FsyncPolicy::kEveryRecord), crashes the SP process, recovers the op
/// stream from the on-disk segments alone, rebuilds a fresh instance by
/// replay, and checks the rebuilt digests bit-for-bit against the
/// reference's on-chain commitment. On success the rebuilt instance also
/// serves a verified query and accepts further operations.
CrashReport CrashAndRecover(core::DbOptions options, uint64_t seed, size_t ops);

/// CrashAndRecover, but the durable log suffers before recovery:
/// `torn_tail_bytes` > 0 shears that many bytes off the final segment (a
/// power-cut tail), and `flip_offset` >= 0 XORs `flip_mask` into that byte
/// offset of the final segment (bit rot). The report then shows either a
/// truncated recovery whose SP fails client verification against the live
/// chain (tail_lost), or a fail-closed refusal (failed_closed) — never a
/// silently wrong rebuilt SP.
CrashReport CrashAndRecoverDamaged(core::DbOptions options, uint64_t seed,
                                   size_t ops, uint64_t torn_tail_bytes,
                                   int64_t flip_offset, uint8_t flip_mask);

/// Rebuilds an SP from only the first `keep` journal entries (a crash that
/// lost the tail of the durable log) and answers `lb..ub` from it. Returns
/// the result of verifying that answer against `reference`'s chain — the
/// client's trust anchor. A truncated recovery must fail this check unless
/// the lost tail didn't touch the queried digests.
core::VerifiedResult CrossVerifyAgainst(core::AuthenticatedDb& reference,
                                        const core::AuthenticatedDb& sp,
                                        Key lb, Key ub);

/// Rebuilds an SP from only the first `keep` entries of `reference`'s
/// journal (a durable log whose tail was lost with the power) and returns
/// the client's verdict on its `lb..ub` answer, verified against the live
/// chain via CrossVerifyAgainst.
core::VerifiedResult RecoverFromPrefix(core::DbOptions options,
                                       core::AuthenticatedDb& reference,
                                       size_t keep, Key lb, Key ub);

struct GasSweepReport {
  uint64_t seed = 0;
  int draws = 0;
  int aborted = 0;    // draws whose transaction ran out of gas
  int committed = 0;  // draws whose transaction fit the drawn limit
  /// True while every aborted draw left the state root and tree digests
  /// identical to never having run the transaction.
  bool state_preserved = true;
  std::string error;

  friend bool operator==(const GasSweepReport&, const GasSweepReport&) = default;
};

/// Randomized gas-limit sweep: per draw, builds a database with a gas limit
/// drawn log-uniformly, seeds it, then attempts a batch insert sized to
/// straddle the limit. Aborted draws must leave the chain's state root and
/// the contract digests exactly as they were before the transaction.
GasSweepReport GasLimitSweep(core::DbOptions base, uint64_t seed, int draws);

}  // namespace gem2::fault

#endif  // GEM2_FAULT_RECOVERY_H_
