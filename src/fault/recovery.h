/// \file recovery.h
/// Crash-recovery harnesses: SP rebuild by journal replay, cross-instance
/// client detection of a stale (partially recovered) SP, and a randomized
/// gas-limit sweep proving out-of-gas rollback is exact.
#ifndef GEM2_FAULT_RECOVERY_H_
#define GEM2_FAULT_RECOVERY_H_

#include <memory>
#include <string>

#include "core/authenticated_db.h"

namespace gem2::fault {

struct CrashReport {
  uint64_t seed = 0;
  size_t total_ops = 0;  // data-owner operations before the crash
  /// Journal entries that survived in the durable log (== total_ops here:
  /// the journal is written post-commit, so a crash loses process state,
  /// not committed entries — see RecoverFromPrefix for the lost-tail case).
  size_t replayed = 0;
  bool digests_match = false;     // rebuilt tree digests == on-chain, bit-for-bit
  bool state_root_match = false;  // environment state roots agree
  bool query_ok = false;          // a verified query succeeds post-recovery
  bool resumed = false;           // the rebuilt instance accepts new ops
  std::string error;
};

/// Drives `ops` seeded data-owner operations (mixed inserts/updates/deletes,
/// plus one mid-stream batch) against a reference instance, crashes the SP,
/// ships the serialized journal, rebuilds a fresh instance by replay, and
/// checks the rebuilt digests bit-for-bit against the reference's on-chain
/// commitment. On success the rebuilt instance also serves a verified query
/// and accepts further operations.
CrashReport CrashAndRecover(core::DbOptions options, uint64_t seed, size_t ops);

/// Rebuilds an SP from only the first `keep` journal entries (a crash that
/// lost the tail of the durable log) and answers `lb..ub` from it. Returns
/// the result of verifying that answer against `reference`'s chain — the
/// client's trust anchor. A truncated recovery must fail this check unless
/// the lost tail didn't touch the queried digests.
core::VerifiedResult CrossVerifyAgainst(core::AuthenticatedDb& reference,
                                        const core::AuthenticatedDb& sp,
                                        Key lb, Key ub);

struct GasSweepReport {
  uint64_t seed = 0;
  int draws = 0;
  int aborted = 0;    // draws whose transaction ran out of gas
  int committed = 0;  // draws whose transaction fit the drawn limit
  /// True while every aborted draw left the state root and tree digests
  /// identical to never having run the transaction.
  bool state_preserved = true;
  std::string error;

  friend bool operator==(const GasSweepReport&, const GasSweepReport&) = default;
};

/// Randomized gas-limit sweep: per draw, builds a database with a gas limit
/// drawn log-uniformly, seeds it, then attempts a batch insert sized to
/// straddle the limit. Aborted draws must leave the chain's state root and
/// the contract digests exactly as they were before the transaction.
GasSweepReport GasLimitSweep(core::DbOptions base, uint64_t seed, int draws);

}  // namespace gem2::fault

#endif  // GEM2_FAULT_RECOVERY_H_
