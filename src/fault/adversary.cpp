#include "fault/adversary.h"

#include <algorithm>

#include "fault/fault.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::fault {
namespace {

void Count(const char* name, uint64_t delta = 1) {
  if (telemetry::kCompiledIn) {
    telemetry::MetricsRegistry::Global().counter(name).Add(delta);
  }
}

}  // namespace

AdversaryReport RunAdversarialSweep(core::RangeStore& db,
                                    const AdversaryOptions& options) {
  AdversaryReport report;
  report.seed = options.seed;
  Rng query_rng(DeriveSeed(options.seed, 0x71));
  ResponseMutator mutator(DeriveSeed(options.seed, 0x4d), options.wire_version);
  // v3 sweeps interleave the structured catalogue (serialized as v3) with the
  // v3-specific surgical wire operators, so both the semantic and the
  // format-level attack surfaces see hundreds of seeded rounds.
  const bool v3_ops = options.wire_version == core::WireVersion::kV3;

  for (int i = 0; i < options.mutations; ++i) {
    // Fresh query each round so forgeries hit many response shapes (empty
    // results, single tree, many trees, wide and narrow ranges).
    const uint64_t span = static_cast<uint64_t>(options.domain_hi) -
                          static_cast<uint64_t>(options.domain_lo);
    Key lb = options.domain_lo + static_cast<Key>(query_rng.Uniform(0, span));
    Key ub = options.domain_lo + static_cast<Key>(query_rng.Uniform(0, span));
    if (ub < lb) std::swap(lb, ub);

    const core::QueryResponse response = db.Query(lb, ub);
    std::string op_name;
    Bytes wire;
    bool byte_level = false;
    if (v3_ops && i % 2 == 1) {
      WireV3Mutation mutation = mutator.MutateWireV3(response);
      op_name = WireV3MutationOpName(mutation.op);
      wire = std::move(mutation.wire);
    } else {
      Mutation mutation = mutator.Mutate(response);
      op_name = MutationOpName(mutation.op);
      wire = std::move(mutation.wire);
      byte_level = mutation.byte_level;
    }
    ++report.attempted;
    ++report.attempts_by_op[op_name];
    Count("fault.mutation.attempted");

    // Every audit event below — parse rejection here, verify rejection
    // emitted inside the client's Verify path — carries the forgery's
    // operator, seed, and round via the thread's annotation stack, plus the
    // query's trace id via the installed trace scope.
    telemetry::ScopedEventFields audit_fields(
        {{"op", op_name},
         {"seed", std::to_string(options.seed)},
         {"round", std::to_string(i)}});
    telemetry::TraceScope trace_scope(response.trace.valid()
                                          ? response.trace
                                          : telemetry::CurrentTrace());

    std::optional<core::QueryResponse> parsed = core::ParseResponse(wire);
    if (!parsed.has_value()) {
      ++report.rejected_parse;
      Count("fault.mutation.rejected_parse");
      if (telemetry::EventLog::Global().enabled()) {
        telemetry::EventLog::Global().Emit(
            std::move(telemetry::Event("verify.reject")
                          .Str("backend", db.BackendName())
                          .Str("reason", "malformed wire image")));
      }
      continue;
    }
    // The trace context never survives the (bare) wire image — re-attach the
    // original query's identity so the verify path logs under it.
    parsed->trace = response.trace;
    core::VerifiedResult vr = db.VerifyFor(lb, ub, *parsed);
    if (!vr.ok) {
      ++report.rejected_verify;
      Count("fault.mutation.rejected_verify");
      continue;
    }
    // The client accepted. For blind byte flips this is legitimate only when
    // the flip hit redundant framing and the canonical re-serialization is
    // the unmutated image; anything else is a successful forgery.
    if (byte_level &&
        core::SerializeResponse(*parsed, options.wire_version) ==
            core::SerializeResponse(response, options.wire_version)) {
      ++report.canonical_noop;
      Count("fault.mutation.canonical_noop");
      continue;
    }
    report.forgeries.push_back("accepted " + op_name +
                               " (seed " + std::to_string(options.seed) +
                               ", round " + std::to_string(i) + ", range [" +
                               std::to_string(lb) + ", " + std::to_string(ub) +
                               "])");
    Count("fault.mutation.forged");
    if (telemetry::EventLog::Global().enabled()) {
      telemetry::EventLog::Global().Emit(
          std::move(telemetry::Event("forgery.accepted")
                        .Str("backend", db.BackendName())
                        .Num("lb", static_cast<uint64_t>(lb))
                        .Num("ub", static_cast<uint64_t>(ub))));
    }
  }
  return report;
}

AdversaryReport RunSpecAdversarialSweep(core::RangeStore& db,
                                        const SpecAdversaryOptions& options) {
  AdversaryReport report;
  report.seed = options.seed;
  if (options.specs.empty()) return report;
  // A distinct stream tag keeps these draws independent of the range sweep's,
  // so running both against one seed never correlates their forgeries.
  ResponseMutator mutator(DeriveSeed(options.seed, 0x5c), options.wire_version);

  for (int i = 0; i < options.mutations; ++i) {
    const core::QuerySpec& spec =
        options.specs[static_cast<size_t>(i) % options.specs.size()];
    const core::SpecResponse response = db.ExecuteSpec(spec);
    SpecMutation mutation = mutator.MutateSpec(response);
    const std::string op_name = SpecMutationOpName(mutation.op);
    ++report.attempted;
    ++report.attempts_by_op[op_name];
    Count("fault.mutation.attempted");

    telemetry::ScopedEventFields audit_fields(
        {{"op", op_name},
         {"seed", std::to_string(options.seed)},
         {"round", std::to_string(i)}});
    telemetry::TraceScope trace_scope(response.trace.valid()
                                          ? response.trace
                                          : telemetry::CurrentTrace());

    std::optional<core::SpecResponse> parsed =
        core::ParseSpecResponse(mutation.wire);
    if (!parsed.has_value()) {
      ++report.rejected_parse;
      Count("fault.mutation.rejected_parse");
      if (telemetry::EventLog::Global().enabled()) {
        telemetry::EventLog::Global().Emit(
            std::move(telemetry::Event("verify.reject")
                          .Str("backend", db.BackendName())
                          .Str("reason", "malformed wire image")));
      }
      continue;
    }
    parsed->trace = response.trace;
    core::VerifiedSpecResult vr = db.VerifySpecFor(spec, *parsed);
    if (!vr.ok) {
      ++report.rejected_verify;
      Count("fault.mutation.rejected_verify");
      continue;
    }
    // Every spec operator is semantic — acceptance is a broken property.
    report.forgeries.push_back("accepted " + op_name + " (seed " +
                               std::to_string(options.seed) + ", round " +
                               std::to_string(i) + ", spec " +
                               core::ToString(spec) + ")");
    Count("fault.mutation.forged");
    if (telemetry::EventLog::Global().enabled()) {
      telemetry::EventLog::Global().Emit(
          std::move(telemetry::Event("forgery.accepted")
                        .Str("backend", db.BackendName())
                        .Str("spec", core::ToString(spec))));
    }
  }
  return report;
}

bool StaleReplayRejected(core::RangeStore& db, Key lb, Key ub,
                         int extra_inserts, uint64_t seed, std::string* why) {
  // QueryWire keeps the capture's trace context framed around the image, so
  // the replay's rejection event is attributable to the original query.
  const Bytes stale = db.QueryWire(lb, ub);
  telemetry::ScopedEventFields audit_fields(
      {{"op", "stale_replay"}, {"seed", std::to_string(seed)}});

  // Advance the chain: fresh keys inside the queried range, so the stale
  // response is both incomplete and anchored to superseded digests.
  Rng rng(DeriveSeed(seed, 0x57));
  const uint64_t span =
      static_cast<uint64_t>(ub) - static_cast<uint64_t>(lb);
  for (int i = 0; i < extra_inserts; ++i) {
    Key key;
    do {
      key = lb + static_cast<Key>(rng.Uniform(0, span));
    } while (db.Contains(key));
    db.Insert({key, "post-capture-" + std::to_string(i)});
  }

  core::VerifiedResult vr = db.VerifyWire(lb, ub, stale);
  if (why != nullptr) *why = vr.ok ? "stale response verified" : vr.error;
  if (telemetry::kCompiledIn) {
    telemetry::MetricsRegistry::Global()
        .counter(vr.ok ? "fault.replay.accepted" : "fault.replay.rejected")
        .Add(1);
  }
  return !vr.ok;
}

}  // namespace gem2::fault
