/// \file mutator.h
/// The adversarial SP: structured mutation operators over a QueryResponse.
///
/// The paper's security argument (Section V-B) is that an untrusted SP cannot
/// make a client accept a wrong or incomplete answer: every forgery must fail
/// either the wire codec or client verification against the on-chain digests.
/// This catalogue enumerates the forgeries a malicious SP could actually
/// attempt — dropping or altering result objects, rewriting VO sibling
/// hashes, shifting the claimed range, forging the GEM2* upper-level split
/// points — plus blind byte-level corruption of the serialized image.
///
/// Every operator is semantic: applied to a well-formed response it produces
/// a *different* answer (never a canonical no-op), so the harness can assert
/// a strict 100% rejection rate for structured mutations. Byte-level
/// corruption may hit redundant framing; the harness treats a flip whose
/// parse re-serializes to the original image as benign.
#ifndef GEM2_FAULT_MUTATOR_H_
#define GEM2_FAULT_MUTATOR_H_

#include <array>
#include <optional>
#include <string>

#include "common/random.h"
#include "core/response.h"
#include "core/wire.h"

namespace gem2::fault {

enum class MutationOp : uint8_t {
  kDropObject,        // withhold one result object (completeness attack)
  kAlterObjectValue,  // tamper with a returned payload (soundness attack)
  kAlterObjectKey,    // move a result to a different key
  kDuplicateObject,   // inject an extra copy of a result
  kSwapVoHashes,      // swap two sibling/boundary hashes inside the VOs
  kFlipVoHashBit,     // flip one bit of a boundary or pruned-subtree hash
  kShiftRangeBounds,  // claim a different query range than the client issued
  kDropTree,          // withhold one tree's entire answer
  kDuplicateTree,     // answer the same tree twice
  kForgeUpperSplits,  // rewrite the GEM2* upper-level split points
  kCorruptWireBytes,  // blind byte flips on the serialized image
};

inline constexpr std::array<MutationOp, 11> kAllMutationOps = {
    MutationOp::kDropObject,       MutationOp::kAlterObjectValue,
    MutationOp::kAlterObjectKey,   MutationOp::kDuplicateObject,
    MutationOp::kSwapVoHashes,     MutationOp::kFlipVoHashBit,
    MutationOp::kShiftRangeBounds, MutationOp::kDropTree,
    MutationOp::kDuplicateTree,    MutationOp::kForgeUpperSplits,
    MutationOp::kCorruptWireBytes,
};

std::string MutationOpName(MutationOp op);

/// Forgeries specific to a sharded SP's composite response (see
/// shard/sharded_db.h): attacks on the scatter plan itself, plus tampering
/// inside a single shard's sub-response.
enum class CompositeMutationOp : uint8_t {
  kDropSlice,         // withhold one shard's entire sub-response
  kDuplicateSlice,    // answer the same shard twice
  kSwapSlices,        // reorder two slices (plan-order violation)
  kShiftSeam,         // move a shard seam: neighbors still abut, but at the
                      // wrong key — disagrees with the client's bounds
  kMutateInnerSlice,  // apply a semantic single-response operator inside one
                      // slice's sub-response
};

inline constexpr std::array<CompositeMutationOp, 5> kAllCompositeMutationOps = {
    CompositeMutationOp::kDropSlice,  CompositeMutationOp::kDuplicateSlice,
    CompositeMutationOp::kSwapSlices, CompositeMutationOp::kShiftSeam,
    CompositeMutationOp::kMutateInnerSlice,
};

std::string CompositeMutationOpName(CompositeMutationOp op);

/// Forgeries specific to the v3 wire format (core/wire_v3.h): surgical edits
/// on the serialized image that target the machinery v3 adds over v2 — the
/// shared subtree-hash table, the delta-encoded key chains, and the leading
/// version byte. Each either fails the codec outright ("malformed wire
/// image") or parses into a semantically different response that client
/// verification must reject; none can be a canonical no-op.
enum class WireV3MutationOp : uint8_t {
  kTableEntrySwap,        // swap two distinct subtree-table entries: every
                          // reference now resolves to the wrong hash, so the
                          // image parses but the recomputed root diverges
  kTableEntryDrop,        // remove one table entry (count fixed up): the
                          // references to the last slot dangle — codec reject
  kDanglingHashRef,       // shrink the declared count but keep the entry
                          // bytes: table/payload framing shears apart
  kDeltaKeyCorrupt,       // splice a different delta into the first tree's
                          // key chain (object keys, or the VO chain when the
                          // tree returns none): the image stays canonical but
                          // every later key in the chain shifts with it
  kVersionByteConfusion,  // relabel the image with the other format's version
                          // byte (v3 body as v2 or v2 body as v3)
};

inline constexpr std::array<WireV3MutationOp, 5> kAllWireV3MutationOps = {
    WireV3MutationOp::kTableEntrySwap, WireV3MutationOp::kTableEntryDrop,
    WireV3MutationOp::kDanglingHashRef, WireV3MutationOp::kDeltaKeyCorrupt,
    WireV3MutationOp::kVersionByteConfusion,
};

std::string WireV3MutationOpName(WireV3MutationOp op);

/// Forgeries specific to a typed-spec answer (core::SpecResponse): attacks
/// on the boolean composition itself — playing the per-attribute conjunct
/// answers against each other — plus tampering with the aggregate boundary
/// structure and the echoed spec. Each must die either in ParseSpecResponse
/// (structural: conjunct count is pinned to the predicate count) or in
/// VerifySpecFor (the spec echo and every conjunct's range are pinned, and
/// each conjunct's VO is verified against its own attribute's digests);
/// none can be a canonical no-op.
enum class SpecMutationOp : uint8_t {
  kSwapConjunctVos,    // swap two conjuncts' per-attribute answers: each VO
                       // now claims the *other* predicate's range
  kDropConjunct,       // withhold one conjunct's slice of the answer
  kDuplicateConjunct,  // answer one predicate with a copy of another's
                       // response (count stays right, range pin does not)
  kShiftConjunctRange, // claim a different mapped range for one conjunct
  kTamperAggregateBoundary,  // flip one bit of a boundary-entry hash in an
                             // aggregate answer: COUNT/SUM/MIN/MAX fold over
                             // exactly these entries
  kSpecEchoTamper,     // tamper the echoed spec (bound, AND<->OR, aggregate)
  kMutateInnerConjunct,  // semantic single-response operator inside one
                         // conjunct's sub-response
};

inline constexpr std::array<SpecMutationOp, 7> kAllSpecMutationOps = {
    SpecMutationOp::kSwapConjunctVos,
    SpecMutationOp::kDropConjunct,
    SpecMutationOp::kDuplicateConjunct,
    SpecMutationOp::kShiftConjunctRange,
    SpecMutationOp::kTamperAggregateBoundary,
    SpecMutationOp::kSpecEchoTamper,
    SpecMutationOp::kMutateInnerConjunct,
};

std::string SpecMutationOpName(SpecMutationOp op);

/// One applied v3 wire mutation. Always a targeted, semantically meaningful
/// edit (never a blind flip), so the harness asserts strict 100% rejection.
struct WireV3Mutation {
  WireV3MutationOp op = WireV3MutationOp::kVersionByteConfusion;
  Bytes wire;
};

/// One applied mutation: the operator and the serialized forged image.
struct Mutation {
  MutationOp op = MutationOp::kCorruptWireBytes;
  Bytes wire;
  /// True for kCorruptWireBytes: the only operator whose output may decode
  /// back to the canonical original (flip in redundant framing).
  bool byte_level = false;
};

/// One applied composite mutation. Always semantic (never byte-level), so
/// the harness asserts strict 100% rejection.
struct CompositeMutation {
  CompositeMutationOp op = CompositeMutationOp::kDropSlice;
  /// The single-response operator used when op == kMutateInnerSlice.
  std::optional<MutationOp> inner;
  Bytes wire;
};

/// One applied spec mutation. Always semantic (never byte-level), so the
/// harness asserts strict 100% rejection.
struct SpecMutation {
  SpecMutationOp op = SpecMutationOp::kDropConjunct;
  /// The single-response operator used when op == kMutateInnerConjunct.
  std::optional<MutationOp> inner;
  Bytes wire;
};

/// Deterministic forgery generator. All draws come from the constructor seed.
/// `wire` selects the format forged images are serialized in; the default kV2
/// keeps every existing seeded draw sequence AND its images byte-identical.
class ResponseMutator {
 public:
  explicit ResponseMutator(uint64_t seed,
                           core::WireVersion wire = core::WireVersion::kV2)
      : rng_(seed), wire_(wire) {}

  /// Applies `op` to `response`; std::nullopt when the operator does not
  /// apply (e.g. kDropObject on an empty result set, kForgeUpperSplits on a
  /// non-GEM2* response).
  std::optional<Mutation> Apply(MutationOp op, const core::QueryResponse& response);

  /// Applies one applicable operator chosen uniformly. Never fails on a
  /// well-formed response: kShiftRangeBounds and kCorruptWireBytes always
  /// apply.
  Mutation Mutate(const core::QueryResponse& response);

  /// Applies `op` to a composite (sharded) response; std::nullopt when the
  /// operator does not apply (e.g. kSwapSlices with fewer than two slices).
  /// Kept separate from Apply so existing seeded single-response draw
  /// sequences are untouched.
  std::optional<CompositeMutation> ApplyComposite(
      CompositeMutationOp op, const core::QueryResponse& response);

  /// Applies one applicable composite operator chosen uniformly. Never fails
  /// on a well-formed composite with at least one slice: kDropSlice,
  /// kDuplicateSlice, and kMutateInnerSlice always apply.
  CompositeMutation MutateComposite(const core::QueryResponse& response);

  /// Applies a v3-specific wire operator; std::nullopt when it does not apply
  /// (table operators need a non-empty subtree table, kDeltaKeyCorrupt a
  /// single response whose first tree returns objects). Kept separate from
  /// Apply/ApplyComposite so seeded v2 draw sequences are untouched.
  std::optional<WireV3Mutation> ApplyWireV3(WireV3MutationOp op,
                                            const core::QueryResponse& response);

  /// Applies one applicable v3 operator chosen uniformly. Never fails:
  /// kVersionByteConfusion always applies.
  WireV3Mutation MutateWireV3(const core::QueryResponse& response);

  /// Applies `op` to a typed-spec answer; std::nullopt when the operator
  /// does not apply (the conjunct-pair operators need two conjuncts over
  /// *different* mapped ranges — swapping identical ranges would not forge
  /// anything — and kTamperAggregateBoundary needs an aggregate spec with at
  /// least one hash site). Kept separate from the other Apply families so
  /// their seeded draw sequences are untouched.
  std::optional<SpecMutation> ApplySpec(SpecMutationOp op,
                                        const core::SpecResponse& response);

  /// Applies one applicable spec operator chosen uniformly. Never fails on a
  /// well-formed spec answer: kDropConjunct, kShiftConjunctRange,
  /// kSpecEchoTamper, and kMutateInnerConjunct always apply.
  SpecMutation MutateSpec(const core::SpecResponse& response);

  Rng& rng() { return rng_; }
  core::WireVersion wire_version() const { return wire_; }

 private:
  Rng rng_;
  core::WireVersion wire_ = core::WireVersion::kV2;
};

}  // namespace gem2::fault

#endif  // GEM2_FAULT_MUTATOR_H_
