/// \file mutator.h
/// The adversarial SP: structured mutation operators over a QueryResponse.
///
/// The paper's security argument (Section V-B) is that an untrusted SP cannot
/// make a client accept a wrong or incomplete answer: every forgery must fail
/// either the wire codec or client verification against the on-chain digests.
/// This catalogue enumerates the forgeries a malicious SP could actually
/// attempt — dropping or altering result objects, rewriting VO sibling
/// hashes, shifting the claimed range, forging the GEM2* upper-level split
/// points — plus blind byte-level corruption of the serialized image.
///
/// Every operator is semantic: applied to a well-formed response it produces
/// a *different* answer (never a canonical no-op), so the harness can assert
/// a strict 100% rejection rate for structured mutations. Byte-level
/// corruption may hit redundant framing; the harness treats a flip whose
/// parse re-serializes to the original image as benign.
#ifndef GEM2_FAULT_MUTATOR_H_
#define GEM2_FAULT_MUTATOR_H_

#include <array>
#include <optional>
#include <string>

#include "common/random.h"
#include "core/response.h"
#include "core/wire.h"

namespace gem2::fault {

enum class MutationOp : uint8_t {
  kDropObject,        // withhold one result object (completeness attack)
  kAlterObjectValue,  // tamper with a returned payload (soundness attack)
  kAlterObjectKey,    // move a result to a different key
  kDuplicateObject,   // inject an extra copy of a result
  kSwapVoHashes,      // swap two sibling/boundary hashes inside the VOs
  kFlipVoHashBit,     // flip one bit of a boundary or pruned-subtree hash
  kShiftRangeBounds,  // claim a different query range than the client issued
  kDropTree,          // withhold one tree's entire answer
  kDuplicateTree,     // answer the same tree twice
  kForgeUpperSplits,  // rewrite the GEM2* upper-level split points
  kCorruptWireBytes,  // blind byte flips on the serialized image
};

inline constexpr std::array<MutationOp, 11> kAllMutationOps = {
    MutationOp::kDropObject,       MutationOp::kAlterObjectValue,
    MutationOp::kAlterObjectKey,   MutationOp::kDuplicateObject,
    MutationOp::kSwapVoHashes,     MutationOp::kFlipVoHashBit,
    MutationOp::kShiftRangeBounds, MutationOp::kDropTree,
    MutationOp::kDuplicateTree,    MutationOp::kForgeUpperSplits,
    MutationOp::kCorruptWireBytes,
};

std::string MutationOpName(MutationOp op);

/// One applied mutation: the operator and the serialized forged image.
struct Mutation {
  MutationOp op = MutationOp::kCorruptWireBytes;
  Bytes wire;
  /// True for kCorruptWireBytes: the only operator whose output may decode
  /// back to the canonical original (flip in redundant framing).
  bool byte_level = false;
};

/// Deterministic forgery generator. All draws come from the constructor seed.
class ResponseMutator {
 public:
  explicit ResponseMutator(uint64_t seed) : rng_(seed) {}

  /// Applies `op` to `response`; std::nullopt when the operator does not
  /// apply (e.g. kDropObject on an empty result set, kForgeUpperSplits on a
  /// non-GEM2* response).
  std::optional<Mutation> Apply(MutationOp op, const core::QueryResponse& response);

  /// Applies one applicable operator chosen uniformly. Never fails on a
  /// well-formed response: kShiftRangeBounds and kCorruptWireBytes always
  /// apply.
  Mutation Mutate(const core::QueryResponse& response);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace gem2::fault

#endif  // GEM2_FAULT_MUTATOR_H_
