/// \file transport.h
/// Deterministic flaky transport between client and SP, and the client-side
/// retry policy that survives it.
///
/// The channel models a lossy network on the response path: drops (the
/// client times out), duplicate delivery, truncation, byte corruption,
/// reordering (a stale earlier response arrives instead), and injected
/// latency. Time is *virtual* — microseconds accumulate in the outcome
/// instead of real sleeps — so tests of second-scale deadlines run in
/// microseconds of wall clock and every schedule is a pure function of the
/// seed.
///
/// The client retries under capped exponential backoff with deterministic
/// jitter and a per-query deadline. When the deadline or attempt budget is
/// exhausted it returns a graceful-degradation outcome (ok=false,
/// degraded=true, error populated) — it never hangs and never throws.
#ifndef GEM2_FAULT_TRANSPORT_H_
#define GEM2_FAULT_TRANSPORT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/range_store.h"

namespace gem2::fault {

struct ChannelOptions {
  double drop_rate = 0.0;       // response lost; client times out
  double corrupt_rate = 0.0;    // 1-4 byte flips in the delivered image
  double truncate_rate = 0.0;   // delivered image cut short
  double duplicate_rate = 0.0;  // response delivered twice
  double reorder_rate = 0.0;    // a previously sent response arrives instead
  uint64_t latency_us = 500;    // per-delivery base latency (virtual)
  uint64_t jitter_us = 200;     // uniform extra latency in [0, jitter_us]
};

struct ChannelStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t corrupted = 0;
  uint64_t truncated = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;

  friend bool operator==(const ChannelStats&, const ChannelStats&) = default;
};

class FlakyChannel {
 public:
  FlakyChannel(ChannelOptions options, uint64_t seed);

  struct Delivery {
    /// Zero packets = dropped; two = duplicate delivery. Packets may be
    /// corrupted, truncated, or stale (an earlier payload).
    std::vector<Bytes> packets;
    uint64_t latency_us = 0;
  };

  /// One request/response exchange carrying `payload` back to the client.
  Delivery Transmit(const Bytes& payload);

  const ChannelStats& stats() const { return stats_; }

 private:
  ChannelOptions options_;
  Rng rng_;
  ChannelStats stats_;
  Bytes previous_;  // last payload handed to the channel, for reordering
};

struct RetryPolicy {
  uint32_t max_attempts = 8;
  uint64_t base_backoff_us = 500;
  uint64_t max_backoff_us = 32'000;
  double multiplier = 2.0;
  /// A dropped response costs the client this long before it retries.
  uint64_t attempt_timeout_us = 5'000;
  /// Total virtual-time budget for one query, backoff included.
  uint64_t deadline_us = 200'000;

  /// Backoff before attempt `attempt` (1-based): capped exponential plus
  /// deterministic jitter drawn from `rng` in [0, backoff/2].
  uint64_t BackoffUs(uint32_t attempt, Rng& rng) const;
};

struct ClientOutcome {
  bool ok = false;
  /// Graceful degradation: the client gave up at its deadline or attempt cap
  /// and reports partial failure instead of hanging or throwing.
  bool degraded = false;
  core::VerifiedResult result;
  uint32_t attempts = 0;
  uint64_t elapsed_us = 0;  // virtual time spent, latency + backoff
  std::string error;
};

/// The client half of the protocol under faults: query the SP, push the
/// serialized response through the flaky channel, verify whatever arrives,
/// retry under the policy. Retry counts and backoff land in the telemetry
/// registry (client.retry.*, transport.*).
class RetryingClient {
 public:
  RetryingClient(core::RangeStore& db, FlakyChannel& channel,
                 RetryPolicy policy, uint64_t seed);

  ClientOutcome AuthenticatedRange(Key lb, Key ub);

 private:
  core::RangeStore& db_;
  FlakyChannel& channel_;
  RetryPolicy policy_;
  Rng rng_;
};

}  // namespace gem2::fault

#endif  // GEM2_FAULT_TRANSPORT_H_
