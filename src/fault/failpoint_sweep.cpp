#include "fault/failpoint_sweep.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>

#include "common/random.h"
#include "fault/fault.h"
#include "store/durable_store.h"
#include "store/sp_object_store.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"

namespace gem2::fault {
namespace {

constexpr char kStoreDir[] = "/sp";

struct Schedule {
  FailpointConfig config;
  store::StoreOptions store;
  bool cut_power_at_end = false;
  /// No lying fsyncs and no bit rot configured: the hardware is honest, so
  /// recovery must succeed, and under kEveryRecord must keep every acked op.
  bool honest() const {
    return config.p_sync_lie == 0.0 && config.p_bit_rot == 0.0;
  }
};

Schedule DrawSchedule(uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0x5c));
  Schedule s;
  s.config.seed = seed;
  // Tiny segments and frequent checkpoints so every schedule exercises
  // rotation, checkpoint publication, and pruning, not just a single file.
  s.store.journal.segment_bytes = 256 + rng.Uniform(0, 1024);
  s.store.journal.batch_records = 2 + static_cast<uint32_t>(rng.Uniform(0, 6));
  s.store.checkpoint_interval = 8 + rng.Uniform(0, 16);
  s.cut_power_at_end = rng.Chance(0.5);

  // A third of the sweep runs the durability-floor configuration: honest
  // hardware, sync-every-record. The rest draws hostile mixes.
  if (rng.Uniform(0, 2) == 0) {
    s.store.journal.fsync_policy = store::FsyncPolicy::kEveryRecord;
    s.config.p_append_error = rng.NextDouble() * 0.05;
    s.config.p_power_cut = rng.NextDouble() * 0.02;
    return s;
  }
  const uint64_t policy = rng.Uniform(0, 2);
  s.store.journal.fsync_policy =
      policy == 0   ? store::FsyncPolicy::kNever
      : policy == 1 ? store::FsyncPolicy::kBatch
                    : store::FsyncPolicy::kEveryRecord;
  s.config.p_append_error = rng.NextDouble() * 0.06;
  s.config.p_sync_error = rng.NextDouble() * 0.04;
  s.config.p_sync_lie = rng.Chance(0.4) ? rng.NextDouble() * 0.2 : 0.0;
  s.config.p_power_cut = rng.NextDouble() * 0.03;
  s.config.p_bit_rot = rng.Chance(0.3) ? rng.NextDouble() * 0.01 : 0.0;
  return s;
}

void DumpDisk(store::MemVfs* mem, uint64_t schedule_seed) {
  const char* dir = std::getenv("GEM2_FAULT_DUMP_DIR");
  if (dir == nullptr || *dir == '\0') return;
  for (const std::string& path : mem->AllFiles()) {
    std::string name = path;
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    const std::string out_path = std::string(dir) + "/schedule-" +
                                 std::to_string(schedule_seed) + name;
    auto image = mem->Snapshot(path);
    if (!image.has_value()) continue;
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) continue;
    if (!image->empty()) std::fwrite(image->data(), 1, image->size(), f);
    std::fclose(f);
  }
}

void Violation(FailpointSweepReport* report, store::MemVfs* mem,
               uint64_t schedule_seed, const std::string& what) {
  if (report->error.empty()) {
    report->error =
        what + " (schedule seed " + std::to_string(schedule_seed) + ")";
  }
  DumpDisk(mem, schedule_seed);
  if (telemetry::EventLog::Global().enabled()) {
    telemetry::EventLog::Global().Emit(
        telemetry::Event("fault.failpoint_violation")
            .Num("schedule_seed", schedule_seed)
            .Str("what", what));
  }
}

}  // namespace

std::vector<core::JournalEntry> OwnerStream(uint64_t seed, size_t n) {
  Rng rng(DeriveSeed(seed, 0x05));
  std::vector<core::JournalEntry> stream;
  stream.reserve(n);
  std::vector<Key> live;
  std::set<Key> live_set;
  for (size_t i = 0; i < n; ++i) {
    const double dice = rng.NextDouble();
    core::JournalEntry entry;
    if (dice < 0.55 || live.empty()) {
      entry.op = core::JournalEntry::Op::kInsert;
      // Fresh key only: the stream must be a *valid* data-owner history, so
      // it can drive a real AuthenticatedDb as well as the object store.
      do {
        entry.object.key = static_cast<Key>(rng.Uniform(0, 1u << 20));
      } while (live_set.count(entry.object.key) != 0);
      entry.object.value = "v" + std::to_string(i) + "-" +
                           std::string(rng.Uniform(0, 48), 'x');
      live.push_back(entry.object.key);
      live_set.insert(entry.object.key);
    } else if (dice < 0.82) {
      entry.op = core::JournalEntry::Op::kUpdate;
      entry.object.key = live[rng.Uniform(0, live.size() - 1)];
      entry.object.value = "u" + std::to_string(i);
    } else {
      const size_t at = rng.Uniform(0, live.size() - 1);
      entry.op = core::JournalEntry::Op::kDelete;
      entry.object.key = live[at];
      live.erase(live.begin() + static_cast<long>(at));
      live_set.erase(entry.object.key);
    }
    stream.push_back(std::move(entry));
  }
  return stream;
}

FailpointSweepReport RunFailpointSweep(const FailpointSweepOptions& options) {
  FailpointSweepReport report;
  report.seed = options.seed;

  for (int s = 0; s < options.schedules; ++s) {
    const uint64_t schedule_seed = DeriveSeed(options.seed, 0x10000u + s);
    const Schedule schedule = DrawSchedule(schedule_seed);
    ++report.schedules;

    // The op stream and its per-prefix digests, from an uninjected shadow.
    const std::vector<core::JournalEntry> stream =
        OwnerStream(schedule_seed, options.ops_per_schedule);
    store::SpObjectStore shadow;
    std::vector<Hash> prefix_digest;
    prefix_digest.reserve(stream.size() + 1);
    prefix_digest.push_back(shadow.StateDigest());
    for (const core::JournalEntry& entry : stream) {
      shadow.Apply(entry);
      prefix_digest.push_back(shadow.StateDigest());
    }

    // --- the injected run -------------------------------------------------
    store::MemVfs mem;
    FailpointVfs vfs(&mem, schedule.config);
    store::SpObjectStore live;
    store::RecoveryReport open_report;
    size_t acked = 0;
    {
      auto store = store::DurableSpStore::Open(&vfs, kStoreDir, &live,
                                               schedule.store, &open_report);
      if (store != nullptr) {
        for (const core::JournalEntry& entry : stream) {
          if (!store->Apply(entry)) break;  // crashed / failed closed
          ++acked;
        }
      }
      // else: the engine failed closed before serving — acceptable.
    }
    if (schedule.cut_power_at_end && !vfs.powered_off()) {
      // kill -9 plus power loss: unsynced bytes keep a seeded torn prefix.
      const uint64_t tear = DeriveSeed(schedule_seed, 0x77);
      mem.CutPower([tear](size_t volatile_bytes) -> size_t {
        if (volatile_bytes == 0) return 0;
        return Rng(tear ^ volatile_bytes).Uniform(0, volatile_bytes);
      });
    }

    // --- recovery on honest hardware --------------------------------------
    mem.Restart();
    const FailpointStats injected = vfs.stats();
    report.injected.ops += injected.ops;
    report.injected.short_writes += injected.short_writes;
    report.injected.append_errors += injected.append_errors;
    report.injected.sync_errors += injected.sync_errors;
    report.injected.sync_lies += injected.sync_lies;
    report.injected.power_cuts += injected.power_cuts;
    report.injected.bit_flips += injected.bit_flips;
    const bool honest_run = schedule.honest() && injected.sync_lies == 0 &&
                            injected.bit_flips == 0;
    const bool floor = honest_run && schedule.store.journal.fsync_policy ==
                                         store::FsyncPolicy::kEveryRecord;

    store::SpObjectStore recovered;
    store::RecoveryReport recovery;
    auto reopened = store::DurableSpStore::Open(&mem, kStoreDir, &recovered,
                                                store::StoreOptions{},
                                                &recovery);
    if (reopened == nullptr) {
      ++report.failed_closed;
      if (honest_run) {
        ++report.floor_violations;
        Violation(&report, &mem, schedule_seed,
                  "honest schedule failed closed: " + recovery.error);
      }
      continue;
    }

    const uint64_t k = recovery.next_seqno;
    if (k > stream.size() ||
        recovered.StateDigest() != prefix_digest[static_cast<size_t>(k)]) {
      ++report.wrong_recoveries;
      Violation(&report, &mem, schedule_seed,
                "recovered state is not a prefix of the acked stream (k=" +
                    std::to_string(k) + ")");
      continue;
    }
    ++report.recovered;
    if (k < acked) {
      ++report.tail_lost;
      if (floor) {
        ++report.floor_violations;
        Violation(&report, &mem, schedule_seed,
                  "kEveryRecord on honest hardware lost acked ops: recovered " +
                      std::to_string(k) + " of " + std::to_string(acked));
      }
    }
  }

  if (telemetry::kCompiledIn) {
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("fault.failpoint.schedules").Add(report.schedules);
    metrics.counter("fault.failpoint.recovered").Add(report.recovered);
    metrics.counter("fault.failpoint.failed_closed").Add(report.failed_closed);
    metrics.counter("fault.failpoint.wrong_recoveries")
        .Add(report.wrong_recoveries);
    metrics.counter("fault.failpoint.floor_violations")
        .Add(report.floor_violations);
  }
  return report;
}

}  // namespace gem2::fault
