#include "crypto/rlp.h"

namespace gem2::crypto::rlp {
namespace {

void AppendLength(Bytes* out, size_t len, uint8_t short_base, uint8_t long_base) {
  if (len <= 55) {
    out->push_back(static_cast<uint8_t>(short_base + len));
    return;
  }
  Bytes be;
  for (size_t v = len; v > 0; v >>= 8) {
    be.insert(be.begin(), static_cast<uint8_t>(v & 0xff));
  }
  out->push_back(static_cast<uint8_t>(long_base + be.size()));
  out->insert(out->end(), be.begin(), be.end());
}

void EncodeInto(const Item& item, Bytes* out) {
  if (!item.is_list) {
    if (item.str.size() == 1 && item.str[0] <= 0x7f) {
      out->push_back(item.str[0]);
      return;
    }
    AppendLength(out, item.str.size(), 0x80, 0xb7);
    out->insert(out->end(), item.str.begin(), item.str.end());
    return;
  }
  Bytes payload;
  for (const Item& child : item.list) EncodeInto(child, &payload);
  AppendLength(out, payload.size(), 0xc0, 0xf7);
  out->insert(out->end(), payload.begin(), payload.end());
}

struct Decoder {
  const Bytes& data;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    if (pos + n > data.size()) {
      failed = true;
      return false;
    }
    return true;
  }

  size_t ReadLongLength(size_t len_of_len) {
    if (len_of_len == 0 || len_of_len > 8 || !Need(len_of_len)) {
      failed = true;
      return 0;
    }
    if (data[pos] == 0) {  // leading zero: non-canonical
      failed = true;
      return 0;
    }
    size_t len = 0;
    for (size_t i = 0; i < len_of_len; ++i) len = (len << 8) | data[pos++];
    if (len <= 55) failed = true;  // should have used the short form
    return len;
  }

  std::optional<Item> Next() {
    if (!Need(1)) return std::nullopt;
    const uint8_t b = data[pos++];
    if (b <= 0x7f) {
      return Item::String({b});
    }
    if (b <= 0xbf) {  // string
      size_t len;
      if (b <= 0xb7) {
        len = b - 0x80;
      } else {
        len = ReadLongLength(b - 0xb7);
      }
      if (failed || !Need(len)) return std::nullopt;
      Bytes s(data.begin() + static_cast<long>(pos),
              data.begin() + static_cast<long>(pos + len));
      pos += len;
      if (s.size() == 1 && s[0] <= 0x7f) {  // should be the single-byte form
        failed = true;
        return std::nullopt;
      }
      return Item::String(std::move(s));
    }
    // list
    size_t len;
    if (b <= 0xf7) {
      len = b - 0xc0;
    } else {
      len = ReadLongLength(b - 0xf7);
    }
    if (failed || !Need(len)) return std::nullopt;
    const size_t end = pos + len;
    std::vector<Item> items;
    while (pos < end) {
      auto child = Next();
      if (!child || failed || pos > end) return std::nullopt;
      items.push_back(std::move(*child));
    }
    if (pos != end) return std::nullopt;
    return Item::List(std::move(items));
  }
};

}  // namespace

Bytes Encode(const Item& item) {
  Bytes out;
  EncodeInto(item, &out);
  return out;
}

Bytes EncodeString(const Bytes& data) { return Encode(Item::String(data)); }

std::optional<Item> Decode(const Bytes& data) {
  Decoder decoder{data};
  auto item = decoder.Next();
  if (!item || decoder.failed || decoder.pos != data.size()) return std::nullopt;
  return item;
}

}  // namespace gem2::crypto::rlp
