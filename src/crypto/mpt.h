/// \file mpt.h
/// Merkle Patricia Trie — the authenticated key/value map Ethereum uses for
/// its state and storage commitments (yellow paper appendix D). Nodes are
/// RLP-encoded (crypto/rlp) and referenced by their Keccak-256 hashes; the
/// empty-trie root is keccak(rlp("")), matching Ethereum's well-known
/// constant 0x56e81f17...
///
/// One simplification relative to the yellow paper, documented in DESIGN.md:
/// nodes shorter than 32 bytes are *not* embedded inline in their parent —
/// every child reference is a 32-byte hash. Proofs remain sound (each proof
/// step is the full preimage of the hash the previous step committed to);
/// only the encoding of very small tries differs from Geth's.
///
/// Nodes live in a per-trie bump arena (common/arena.h): building or growing
/// a trie costs pointer bumps instead of one heap allocation per node, and
/// teardown is a single arena sweep. Keys are accepted as std::span so
/// callers holding raw buffers pay no temporary-vector copies.
#ifndef GEM2_CRYPTO_MPT_H_
#define GEM2_CRYPTO_MPT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/types.h"

namespace gem2::crypto {

class PatriciaTrie {
 public:
  /// An inclusion proof: the RLP encodings of the nodes on the path from the
  /// root to the entry, in order.
  using Proof = std::vector<Bytes>;

  PatriciaTrie();
  ~PatriciaTrie();
  PatriciaTrie(PatriciaTrie&&) noexcept;
  PatriciaTrie& operator=(PatriciaTrie&&) noexcept;

  /// Inserts or overwrites `key` (any bytes) with `value` (must be
  /// non-empty; an empty value denotes absence in the MPT model).
  void Put(std::span<const uint8_t> key, const Bytes& value);

  /// Value stored at `key`, or nullopt.
  std::optional<Bytes> Get(std::span<const uint8_t> key) const;

  size_t size() const { return size_; }

  /// Root commitment; keccak(rlp("")) when empty.
  Hash RootHash() const;

  /// Root hash of an empty trie (Ethereum's 0x56e81f17... constant).
  static Hash EmptyRoot();

  /// Inclusion proof for `key`; throws std::out_of_range if absent.
  Proof Prove(std::span<const uint8_t> key) const;

  /// Verifies that `proof` shows key -> value under `root`.
  static bool VerifyProof(const Hash& root, std::span<const uint8_t> key,
                          const Bytes& value, const Proof& proof);

  /// Node-allocation accounting for this trie's arena (bench introspection).
  const common::Arena::Stats& arena_stats() const { return arena_->stats(); }

 private:
  struct Node;

  /// Owns every node; nodes hold raw pointers into it. Replaced or abandoned
  /// nodes (e.g. a leaf split into a branch) stay in the arena until the trie
  /// is destroyed — a bounded O(1)-per-Put trade for allocation-free updates.
  std::unique_ptr<common::Arena> arena_;
  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace gem2::crypto

#endif  // GEM2_CRYPTO_MPT_H_
