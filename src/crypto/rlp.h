/// \file rlp.h
/// Recursive Length Prefix (RLP) encoding — Ethereum's canonical
/// serialization, used here to encode Merkle Patricia Trie nodes (crypto/mpt)
/// exactly as the yellow paper specifies:
///   - a single byte in [0x00, 0x7f] encodes as itself;
///   - a string of 0-55 bytes: 0x80+len, then the bytes;
///   - a longer string: 0xb7+len(len), big-endian len, bytes;
///   - a list: payload is the concatenation of the encoded items, prefixed
///     with 0xc0+len (short) or 0xf7+len(len), len (long).
#ifndef GEM2_CRYPTO_RLP_H_
#define GEM2_CRYPTO_RLP_H_

#include <optional>
#include <vector>

#include "common/bytes.h"

namespace gem2::crypto::rlp {

/// An RLP item: either a byte string or a list of items.
struct Item {
  bool is_list = false;
  Bytes str;                 // valid when !is_list
  std::vector<Item> list;    // valid when is_list

  static Item String(Bytes b) {
    Item item;
    item.str = std::move(b);
    return item;
  }
  static Item List(std::vector<Item> items) {
    Item item;
    item.is_list = true;
    item.list = std::move(items);
    return item;
  }

  friend bool operator==(const Item& a, const Item& b) = default;
};

/// Encodes an item to its canonical RLP byte string.
Bytes Encode(const Item& item);

/// Convenience: encode a raw byte string.
Bytes EncodeString(const Bytes& data);

/// Decodes a complete RLP encoding (rejects trailing bytes and non-canonical
/// encodings such as padded lengths or single bytes wrapped as strings).
std::optional<Item> Decode(const Bytes& data);

}  // namespace gem2::crypto::rlp

#endif  // GEM2_CRYPTO_RLP_H_
