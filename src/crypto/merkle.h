/// \file merkle.h
/// Plain binary Merkle hash tree (paper Section II-A, Fig. 2) over a list of
/// leaf digests. Used for transaction roots and the block state commitment,
/// and as the preliminary MHT structure in its own right. Supports standard
/// sibling-path inclusion proofs.
#ifndef GEM2_CRYPTO_MERKLE_H_
#define GEM2_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace gem2::crypto {

/// One step of an inclusion proof: the sibling digest and on which side it
/// sits relative to the running hash.
struct MerkleProofStep {
  Hash sibling;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleProofStep>;

/// Binary MHT built bottom-up over `leaves`. An odd node at any level is
/// promoted unchanged (no duplication), which keeps proofs unambiguous.
class BinaryMerkleTree {
 public:
  explicit BinaryMerkleTree(std::vector<Hash> leaves);

  /// Root digest; the digest of an empty list is EmptyTreeDigest().
  const Hash& root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Inclusion proof for leaf `index` (must be < num_leaves()).
  MerkleProof Prove(size_t index) const;

  /// Replaces leaf `index` and rehashes only the root-to-leaf path:
  /// O(log n) MerkleParent calls instead of the O(n) a rebuild would cost.
  /// The resulting root is bit-identical to constructing a fresh tree over
  /// the updated leaf list (covered by parallel_equivalence_test).
  void UpdateLeaf(size_t index, const Hash& leaf);

  /// Recomputes the root from a leaf digest and its proof.
  static Hash RootFromProof(const Hash& leaf, const MerkleProof& proof);

  /// Convenience: root over leaves without keeping the tree.
  static Hash RootOf(const std::vector<Hash>& leaves);

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Hash>> levels_;
  Hash root_;
  size_t num_leaves_;
};

/// Digest of an internal MHT node: H(left || right).
Hash MerkleParent(const Hash& left, const Hash& right);

}  // namespace gem2::crypto

#endif  // GEM2_CRYPTO_MERKLE_H_
