#include "crypto/keccak.h"

#include <atomic>
#include <cstring>

namespace gem2::crypto {
namespace {

constexpr int kRounds = 24;
constexpr size_t kRate = 136;  // bytes; 1600 - 2*256 bits

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

inline uint64_t Rotl64(uint64_t v, int n) {
  return (v << n) | (v >> (64 - n));
}

/// Process-wide permutation counter; relaxed increments are negligible next
/// to the ~100ns permutation itself and stay exact across threads.
std::atomic<uint64_t> g_permutations{0};

/// Keccak-f[1600], fully unrolled: the 25 lanes live in locals across all 24
/// rounds, theta/rho/pi/chi are expanded with constant indices and rotation
/// counts, so the state never round-trips through memory inside a round.
void KeccakF1600(uint64_t a[25]) {
  g_permutations.fetch_add(1, std::memory_order_relaxed);

  uint64_t a00 = a[0], a01 = a[1], a02 = a[2], a03 = a[3], a04 = a[4];
  uint64_t a05 = a[5], a06 = a[6], a07 = a[7], a08 = a[8], a09 = a[9];
  uint64_t a10 = a[10], a11 = a[11], a12 = a[12], a13 = a[13], a14 = a[14];
  uint64_t a15 = a[15], a16 = a[16], a17 = a[17], a18 = a[18], a19 = a[19];
  uint64_t a20 = a[20], a21 = a[21], a22 = a[22], a23 = a[23], a24 = a[24];

  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    const uint64_t c0 = a00 ^ a05 ^ a10 ^ a15 ^ a20;
    const uint64_t c1 = a01 ^ a06 ^ a11 ^ a16 ^ a21;
    const uint64_t c2 = a02 ^ a07 ^ a12 ^ a17 ^ a22;
    const uint64_t c3 = a03 ^ a08 ^ a13 ^ a18 ^ a23;
    const uint64_t c4 = a04 ^ a09 ^ a14 ^ a19 ^ a24;
    const uint64_t d0 = c4 ^ Rotl64(c1, 1);
    const uint64_t d1 = c0 ^ Rotl64(c2, 1);
    const uint64_t d2 = c1 ^ Rotl64(c3, 1);
    const uint64_t d3 = c2 ^ Rotl64(c4, 1);
    const uint64_t d4 = c3 ^ Rotl64(c0, 1);
    a00 ^= d0; a05 ^= d0; a10 ^= d0; a15 ^= d0; a20 ^= d0;
    a01 ^= d1; a06 ^= d1; a11 ^= d1; a16 ^= d1; a21 ^= d1;
    a02 ^= d2; a07 ^= d2; a12 ^= d2; a17 ^= d2; a22 ^= d2;
    a03 ^= d3; a08 ^= d3; a13 ^= d3; a18 ^= d3; a23 ^= d3;
    a04 ^= d4; a09 ^= d4; a14 ^= d4; a19 ^= d4; a24 ^= d4;

    // Rho + Pi: b[y + 5*((2x+3y)%5)] = rotl(a[x+5y], r[x,y]).
    const uint64_t b00 = a00;
    const uint64_t b10 = Rotl64(a01, 1);
    const uint64_t b20 = Rotl64(a02, 62);
    const uint64_t b05 = Rotl64(a03, 28);
    const uint64_t b15 = Rotl64(a04, 27);
    const uint64_t b16 = Rotl64(a05, 36);
    const uint64_t b01 = Rotl64(a06, 44);
    const uint64_t b11 = Rotl64(a07, 6);
    const uint64_t b21 = Rotl64(a08, 55);
    const uint64_t b06 = Rotl64(a09, 20);
    const uint64_t b07 = Rotl64(a10, 3);
    const uint64_t b17 = Rotl64(a11, 10);
    const uint64_t b02 = Rotl64(a12, 43);
    const uint64_t b12 = Rotl64(a13, 25);
    const uint64_t b22 = Rotl64(a14, 39);
    const uint64_t b23 = Rotl64(a15, 41);
    const uint64_t b08 = Rotl64(a16, 45);
    const uint64_t b18 = Rotl64(a17, 15);
    const uint64_t b03 = Rotl64(a18, 21);
    const uint64_t b13 = Rotl64(a19, 8);
    const uint64_t b14 = Rotl64(a20, 18);
    const uint64_t b24 = Rotl64(a21, 2);
    const uint64_t b09 = Rotl64(a22, 61);
    const uint64_t b19 = Rotl64(a23, 56);
    const uint64_t b04 = Rotl64(a24, 14);

    // Chi + Iota.
    a00 = b00 ^ (~b01 & b02) ^ kRoundConstants[round];
    a01 = b01 ^ (~b02 & b03);
    a02 = b02 ^ (~b03 & b04);
    a03 = b03 ^ (~b04 & b00);
    a04 = b04 ^ (~b00 & b01);
    a05 = b05 ^ (~b06 & b07);
    a06 = b06 ^ (~b07 & b08);
    a07 = b07 ^ (~b08 & b09);
    a08 = b08 ^ (~b09 & b05);
    a09 = b09 ^ (~b05 & b06);
    a10 = b10 ^ (~b11 & b12);
    a11 = b11 ^ (~b12 & b13);
    a12 = b12 ^ (~b13 & b14);
    a13 = b13 ^ (~b14 & b10);
    a14 = b14 ^ (~b10 & b11);
    a15 = b15 ^ (~b16 & b17);
    a16 = b16 ^ (~b17 & b18);
    a17 = b17 ^ (~b18 & b19);
    a18 = b18 ^ (~b19 & b15);
    a19 = b19 ^ (~b15 & b16);
    a20 = b20 ^ (~b21 & b22);
    a21 = b21 ^ (~b22 & b23);
    a22 = b22 ^ (~b23 & b24);
    a23 = b23 ^ (~b24 & b20);
    a24 = b24 ^ (~b20 & b21);
  }

  a[0] = a00; a[1] = a01; a[2] = a02; a[3] = a03; a[4] = a04;
  a[5] = a05; a[6] = a06; a[7] = a07; a[8] = a08; a[9] = a09;
  a[10] = a10; a[11] = a11; a[12] = a12; a[13] = a13; a[14] = a14;
  a[15] = a15; a[16] = a16; a[17] = a17; a[18] = a18; a[19] = a19;
  a[20] = a20; a[21] = a21; a[22] = a22; a[23] = a23; a[24] = a24;
}

/// Little-endian lane load written as byte shifts (endian-portable; compilers
/// fold it into a single load on little-endian targets).
inline uint64_t LoadLane(const uint8_t* p) {
  return static_cast<uint64_t>(p[0]) | static_cast<uint64_t>(p[1]) << 8 |
         static_cast<uint64_t>(p[2]) << 16 | static_cast<uint64_t>(p[3]) << 24 |
         static_cast<uint64_t>(p[4]) << 32 | static_cast<uint64_t>(p[5]) << 40 |
         static_cast<uint64_t>(p[6]) << 48 | static_cast<uint64_t>(p[7]) << 56;
}

}  // namespace

uint64_t KeccakPermutationCount() {
  return g_permutations.load(std::memory_order_relaxed);
}

namespace internal {
void Permute(uint64_t state[25]) { KeccakF1600(state); }
void AddPermutations(uint64_t n) {
  g_permutations.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace internal

Keccak256Hasher::Keccak256Hasher() : buffer_len_(0), absorbed_(0), finalized_(false) {
  std::memset(state_, 0, sizeof(state_));
  std::memset(buffer_, 0, sizeof(buffer_));
}

void Keccak256Hasher::AbsorbBlock(const uint8_t* block) {
  for (size_t i = 0; i < kRate / 8; ++i) {
    state_[i] ^= LoadLane(block + 8 * i);
  }
  KeccakF1600(state_);
}

Keccak256Hasher& Keccak256Hasher::Update(const uint8_t* data, size_t len) {
  absorbed_ += len;
  // Top up a partially filled staging buffer first.
  if (buffer_len_ > 0) {
    size_t take = kRate - buffer_len_;
    if (take > len) take = len;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kRate) {
      AbsorbBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  // Absorb whole blocks straight from the caller's memory (zero-copy).
  while (len >= kRate) {
    AbsorbBlock(data);
    data += kRate;
    len -= kRate;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
  return *this;
}

Keccak256Hasher& Keccak256Hasher::Update(std::span<const uint8_t> data) {
  return Update(data.data(), data.size());
}

Keccak256Hasher& Keccak256Hasher::Update(const Bytes& data) {
  return Update(data.data(), data.size());
}

Keccak256Hasher& Keccak256Hasher::Update(const Hash& h) {
  return Update(h.data(), h.size());
}

Keccak256Hasher& Keccak256Hasher::Update(const std::string& s) {
  return Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Keccak256Hasher& Keccak256Hasher::UpdateUint64(uint64_t v) {
  // Big-endian, identical to AppendUint64, without the heap allocation the
  // Bytes round-trip used to make at every digest site.
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<uint8_t>((v >> (8 * (7 - i))) & 0xff);
  }
  return Update(buf, sizeof(buf));
}

Keccak256Hasher& Keccak256Hasher::UpdateKey(Key k) {
  // Two's complement matches AppendKey's cast-through-uint64 encoding.
  return UpdateUint64(static_cast<uint64_t>(k));
}

Hash Keccak256Hasher::Finalize() {
  // Keccak (pre-SHA3) padding: append 0x01, zero fill, set top bit of last byte.
  std::memset(buffer_ + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] = 0x01;
  buffer_[kRate - 1] |= 0x80;
  AbsorbBlock(buffer_);
  buffer_len_ = 0;
  finalized_ = true;

  Hash out{};
  for (size_t i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>((state_[i] >> (8 * j)) & 0xff);
    }
  }
  return out;
}

Hash Keccak256(const uint8_t* data, size_t len) {
  Keccak256Hasher h;
  h.Update(data, len);
  return h.Finalize();
}

Hash Keccak256(std::span<const uint8_t> data) {
  return Keccak256(data.data(), data.size());
}

Hash Keccak256(const Bytes& data) { return Keccak256(data.data(), data.size()); }

Hash Keccak256(const std::string& data) {
  return Keccak256(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

}  // namespace gem2::crypto
