#include "crypto/keccak.h"

#include <cstring>

namespace gem2::crypto {
namespace {

constexpr int kRounds = 24;
constexpr size_t kRate = 136;  // bytes; 1600 - 2*256 bits

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

// Rotation offsets, indexed [x][y] flattened as x + 5*y.
constexpr int kRotc[25] = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,
};

inline uint64_t Rotl64(uint64_t v, int n) {
  return n == 0 ? v : (v << n) | (v >> (64 - n));
}

void KeccakF1600(uint64_t a[25]) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ Rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi.
    uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        // B[y, 2x+3y] = rotl(A[x, y], r[x, y])
        b[y + 5 * ((2 * x + 3 * y) % 5)] = Rotl64(a[x + 5 * y], kRotc[x + 5 * y]);
      }
    }
    // Chi.
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota.
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

Keccak256Hasher::Keccak256Hasher() : buffer_len_(0), absorbed_(0), finalized_(false) {
  std::memset(state_, 0, sizeof(state_));
  std::memset(buffer_, 0, sizeof(buffer_));
}

void Keccak256Hasher::AbsorbBlock() {
  for (size_t i = 0; i < kRate / 8; ++i) {
    uint64_t lane = 0;
    for (int j = 0; j < 8; ++j) {
      lane |= static_cast<uint64_t>(buffer_[8 * i + j]) << (8 * j);
    }
    state_[i] ^= lane;
  }
  KeccakF1600(state_);
  buffer_len_ = 0;
}

Keccak256Hasher& Keccak256Hasher::Update(const uint8_t* data, size_t len) {
  absorbed_ += len;
  while (len > 0) {
    size_t take = kRate - buffer_len_;
    if (take > len) take = len;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kRate) AbsorbBlock();
  }
  return *this;
}

Keccak256Hasher& Keccak256Hasher::Update(const Bytes& data) {
  return Update(data.data(), data.size());
}

Keccak256Hasher& Keccak256Hasher::Update(const Hash& h) {
  return Update(h.data(), h.size());
}

Keccak256Hasher& Keccak256Hasher::Update(const std::string& s) {
  return Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Keccak256Hasher& Keccak256Hasher::UpdateKey(Key k) {
  Bytes b;
  AppendKey(&b, k);
  return Update(b);
}

Hash Keccak256Hasher::Finalize() {
  // Keccak (pre-SHA3) padding: append 0x01, zero fill, set top bit of last byte.
  std::memset(buffer_ + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] = 0x01;
  buffer_[kRate - 1] |= 0x80;
  buffer_len_ = kRate;
  AbsorbBlock();
  finalized_ = true;

  Hash out{};
  for (size_t i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>((state_[i] >> (8 * j)) & 0xff);
    }
  }
  return out;
}

Hash Keccak256(const uint8_t* data, size_t len) {
  Keccak256Hasher h;
  h.Update(data, len);
  return h.Finalize();
}

Hash Keccak256(const Bytes& data) { return Keccak256(data.data(), data.size()); }

Hash Keccak256(const std::string& data) {
  return Keccak256(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

}  // namespace gem2::crypto
