#include "crypto/merkle.h"

#include <cstring>
#include <stdexcept>

#include "crypto/digest.h"
#include "crypto/keccak.h"
#include "crypto/keccak_batch.h"

namespace gem2::crypto {

Hash MerkleParent(const Hash& left, const Hash& right) {
  Keccak256Hasher h;
  h.Update(left);
  h.Update(right);
  return h.Finalize();
}

BinaryMerkleTree::BinaryMerkleTree(std::vector<Hash> leaves)
    : num_leaves_(leaves.size()) {
  if (leaves.empty()) {
    root_ = EmptyTreeDigest();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const std::vector<Hash>& prev = levels_.back();
    std::vector<Hash> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(MerkleParent(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof BinaryMerkleTree::Prove(size_t index) const {
  if (index >= num_leaves_) throw std::out_of_range("merkle proof index");
  MerkleProof proof;
  size_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash>& nodes = levels_[level];
    size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < nodes.size()) {
      proof.push_back({nodes[sibling], sibling < i});
    }
    i /= 2;
  }
  return proof;
}

Hash BinaryMerkleTree::RootFromProof(const Hash& leaf, const MerkleProof& proof) {
  Hash acc = leaf;
  for (const MerkleProofStep& step : proof) {
    acc = step.sibling_on_left ? MerkleParent(step.sibling, acc)
                               : MerkleParent(acc, step.sibling);
  }
  return acc;
}

void BinaryMerkleTree::UpdateLeaf(size_t index, const Hash& leaf) {
  if (index >= num_leaves_) throw std::out_of_range("merkle update index");
  levels_[0][index] = leaf;
  size_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash>& nodes = levels_[level];
    std::vector<Hash>& parents = levels_[level + 1];
    const size_t left = i - (i % 2);
    if (left + 1 < nodes.size()) {
      parents[i / 2] = MerkleParent(nodes[left], nodes[left + 1]);
    } else {
      // Odd tail node: promoted unchanged, same as in the constructor.
      parents[i / 2] = nodes[left];
    }
    i /= 2;
  }
  root_ = levels_.back()[0];
}

Hash BinaryMerkleTree::RootOf(const std::vector<Hash>& leaves) {
  // Root-only fold: skips the tree's level storage, and each level's pair
  // hashes are independent so they go through the 8-way batcher. Shape is
  // the constructor's exactly (odd tail promoted), bits identical.
  if (leaves.empty()) return EmptyTreeDigest();
  std::vector<Hash> cur = leaves;
  Keccak256Batcher batcher;
  uint8_t msg[64];
  while (cur.size() > 1) {
    std::vector<Hash> next((cur.size() + 1) / 2);
    for (size_t i = 0; i + 1 < cur.size(); i += 2) {
      std::memcpy(msg, cur[i].data(), 32);
      std::memcpy(msg + 32, cur[i + 1].data(), 32);
      batcher.Add(msg, sizeof(msg), &next[i / 2]);
    }
    batcher.Flush();
    if (cur.size() % 2 == 1) next.back() = cur.back();
    cur = std::move(next);
  }
  return cur[0];
}

}  // namespace gem2::crypto
