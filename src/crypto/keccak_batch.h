/// \file keccak_batch.h
/// Multi-buffer Keccak-256 for independent single-block messages.
///
/// Nearly every digest in this library is a single sponge block: entry
/// digests are 40 bytes, wrap digests 48, merkle pairs 64, content digests
/// 32*fanout (128 at the default fanout of 4) — all under the 136-byte rate.
/// Within one tree level those hashes are mutually independent, so eight of
/// them can ride one AVX-512 pass over eight interleaved Keccak-f[1600]
/// states instead of eight scalar permutations. The digests produced are
/// bit-identical to scalar Keccak-256 and the process permutation counter
/// still advances once per *message* (logical counting), so nothing observable
/// changes except wall-clock time.
///
/// Gas accounting is untouched by design: callers charge Chash exactly where
/// the scalar code charged it (charges are pure arithmetic on message sizes),
/// then hand the actual hashing to the batcher. See CanonicalRootDigest for
/// the charge-order-preserving pattern.
#ifndef GEM2_CRYPTO_KECCAK_BATCH_H_
#define GEM2_CRYPTO_KECCAK_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace gem2::crypto {

/// Collects up to 8 padded message blocks and hashes them together. Usage:
///
///   Keccak256Batcher b;
///   for (...) b.Add(msg, len, &out[i]);   // queues; may auto-flush at 8
///   b.Flush();                            // outputs valid only after this
///
/// The `out` pointers must stay valid until the next Flush (reserve result
/// vectors up front). Add copies the message immediately, so the input buffer
/// may be reused between calls. Messages longer than kMaxMessageLen are
/// hashed scalar on the spot (multi-block sponge), writing *out immediately —
/// correct, just not batched. Not thread-safe; use one batcher per thread.
class Keccak256Batcher {
 public:
  /// Longest message that still fits one rate-sized block after padding.
  static constexpr size_t kMaxMessageLen = 135;

  void Add(const uint8_t* data, size_t len, Hash* out);

  /// Queues H(*parts[0] || ... || *parts[n-1]) — the content-digest preimage,
  /// gathered from non-contiguous child digests (e.g. a batched verifier's
  /// slot array). Equivalent to concatenating and calling Add: concatenations
  /// longer than kMaxMessageLen (n > 4 children) are hashed scalar on the
  /// spot via a bounded temporary, so arbitrarily wide nodes are handled
  /// without overflowing the lane buffer.
  void AddConcat(const Hash* const* parts, size_t n, Hash* out);

  /// Hashes all queued blocks (8-way AVX-512 when the CPU has it, scalar
  /// otherwise) and writes every pending output. No-op when empty.
  void Flush();

 private:
  static constexpr size_t kLanes = 8;
  static constexpr size_t kRate = 136;

  alignas(64) uint8_t blocks_[kLanes][kRate];
  Hash* outs_[kLanes];
  size_t count_ = 0;
};

}  // namespace gem2::crypto

#endif  // GEM2_CRYPTO_KECCAK_BATCH_H_
