#include "crypto/keccak_batch.h"

#include <cstring>
#include <vector>

#include "crypto/keccak.h"

#if defined(__x86_64__) && defined(__GNUC__)
// GCC's unmasked vprolq intrinsic expands through _mm512_undefined_epi32,
// which trips -Wuninitialized inside the compiler's own header.
#pragma GCC diagnostic ignored "-Wuninitialized"
#include <immintrin.h>
#define GEM2_KECCAK_X8 1
#else
#define GEM2_KECCAK_X8 0
#endif

namespace gem2::crypto {
namespace {

constexpr int kRounds = 24;
constexpr size_t kRate = 136;

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

inline uint64_t LoadLane(const uint8_t* p) {
  return static_cast<uint64_t>(p[0]) | static_cast<uint64_t>(p[1]) << 8 |
         static_cast<uint64_t>(p[2]) << 16 | static_cast<uint64_t>(p[3]) << 24 |
         static_cast<uint64_t>(p[4]) << 32 | static_cast<uint64_t>(p[5]) << 40 |
         static_cast<uint64_t>(p[6]) << 48 | static_cast<uint64_t>(p[7]) << 56;
}

inline void StoreLane(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

/// One scalar sponge per block; counts permutations via internal::Permute.
void HashBlocksScalar(const uint8_t blocks[][kRate], size_t count,
                      Hash* const* outs) {
  for (size_t b = 0; b < count; ++b) {
    uint64_t state[25] = {};
    for (int w = 0; w < 17; ++w) state[w] = LoadLane(blocks[b] + 8 * w);
    internal::Permute(state);
    for (int w = 0; w < 4; ++w) StoreLane(outs[b]->data() + 8 * w, state[w]);
  }
}

#if GEM2_KECCAK_X8

bool CpuHasAvx512() {
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
}

/// Eight interleaved Keccak-f[1600] sponges: SIMD register s[w] holds Keccak
/// lane w of all eight states, one per 64-bit element. The round structure
/// mirrors the scalar KeccakF1600 exactly; rotates map to vprolq and the chi
/// step a ^ (~b & c) is a single vpternlogq (truth-table immediate 0xD2).
/// Compiled with a target attribute + runtime CPUID dispatch so the
/// translation unit builds (and the binary runs) on any x86-64.
__attribute__((target("avx512f"))) void HashBlocksX8(
    const uint8_t blocks[][kRate], size_t count, Hash* const* outs) {
#define GEM2_ROL(v, n) _mm512_rol_epi64((v), (n))
#define GEM2_CHI(a, b, c) _mm512_ternarylogic_epi64((a), (b), (c), 0xD2)
#define GEM2_XOR(a, b) _mm512_xor_si512((a), (b))
  // Transpose the 17 message lanes across the 8 blocks. Slots beyond `count`
  // hold stale bytes from earlier batches; their results are never read.
  // Capacity lanes 17..24 start at zero, exactly like a fresh sponge.
  __m512i s[25];
  for (int w = 0; w < 17; ++w) {
    alignas(64) uint64_t lane[8];
    for (int b = 0; b < 8; ++b) lane[b] = LoadLane(blocks[b] + 8 * w);
    s[w] = _mm512_load_si512(lane);
  }
  for (int w = 17; w < 25; ++w) s[w] = _mm512_setzero_si512();

  __m512i a00 = s[0], a01 = s[1], a02 = s[2], a03 = s[3], a04 = s[4];
  __m512i a05 = s[5], a06 = s[6], a07 = s[7], a08 = s[8], a09 = s[9];
  __m512i a10 = s[10], a11 = s[11], a12 = s[12], a13 = s[13], a14 = s[14];
  __m512i a15 = s[15], a16 = s[16], a17 = s[17], a18 = s[18], a19 = s[19];
  __m512i a20 = s[20], a21 = s[21], a22 = s[22], a23 = s[23], a24 = s[24];

  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    const __m512i c0 = GEM2_XOR(GEM2_XOR(GEM2_XOR(a00, a05), GEM2_XOR(a10, a15)), a20);
    const __m512i c1 = GEM2_XOR(GEM2_XOR(GEM2_XOR(a01, a06), GEM2_XOR(a11, a16)), a21);
    const __m512i c2 = GEM2_XOR(GEM2_XOR(GEM2_XOR(a02, a07), GEM2_XOR(a12, a17)), a22);
    const __m512i c3 = GEM2_XOR(GEM2_XOR(GEM2_XOR(a03, a08), GEM2_XOR(a13, a18)), a23);
    const __m512i c4 = GEM2_XOR(GEM2_XOR(GEM2_XOR(a04, a09), GEM2_XOR(a14, a19)), a24);
    const __m512i d0 = GEM2_XOR(c4, GEM2_ROL(c1, 1));
    const __m512i d1 = GEM2_XOR(c0, GEM2_ROL(c2, 1));
    const __m512i d2 = GEM2_XOR(c1, GEM2_ROL(c3, 1));
    const __m512i d3 = GEM2_XOR(c2, GEM2_ROL(c4, 1));
    const __m512i d4 = GEM2_XOR(c3, GEM2_ROL(c0, 1));
    a00 = GEM2_XOR(a00, d0); a05 = GEM2_XOR(a05, d0); a10 = GEM2_XOR(a10, d0);
    a15 = GEM2_XOR(a15, d0); a20 = GEM2_XOR(a20, d0);
    a01 = GEM2_XOR(a01, d1); a06 = GEM2_XOR(a06, d1); a11 = GEM2_XOR(a11, d1);
    a16 = GEM2_XOR(a16, d1); a21 = GEM2_XOR(a21, d1);
    a02 = GEM2_XOR(a02, d2); a07 = GEM2_XOR(a07, d2); a12 = GEM2_XOR(a12, d2);
    a17 = GEM2_XOR(a17, d2); a22 = GEM2_XOR(a22, d2);
    a03 = GEM2_XOR(a03, d3); a08 = GEM2_XOR(a08, d3); a13 = GEM2_XOR(a13, d3);
    a18 = GEM2_XOR(a18, d3); a23 = GEM2_XOR(a23, d3);
    a04 = GEM2_XOR(a04, d4); a09 = GEM2_XOR(a09, d4); a14 = GEM2_XOR(a14, d4);
    a19 = GEM2_XOR(a19, d4); a24 = GEM2_XOR(a24, d4);

    // Rho + Pi (same lane mapping and rotation counts as the scalar version).
    const __m512i b00 = a00;
    const __m512i b10 = GEM2_ROL(a01, 1);
    const __m512i b20 = GEM2_ROL(a02, 62);
    const __m512i b05 = GEM2_ROL(a03, 28);
    const __m512i b15 = GEM2_ROL(a04, 27);
    const __m512i b16 = GEM2_ROL(a05, 36);
    const __m512i b01 = GEM2_ROL(a06, 44);
    const __m512i b11 = GEM2_ROL(a07, 6);
    const __m512i b21 = GEM2_ROL(a08, 55);
    const __m512i b06 = GEM2_ROL(a09, 20);
    const __m512i b07 = GEM2_ROL(a10, 3);
    const __m512i b17 = GEM2_ROL(a11, 10);
    const __m512i b02 = GEM2_ROL(a12, 43);
    const __m512i b12 = GEM2_ROL(a13, 25);
    const __m512i b22 = GEM2_ROL(a14, 39);
    const __m512i b23 = GEM2_ROL(a15, 41);
    const __m512i b08 = GEM2_ROL(a16, 45);
    const __m512i b18 = GEM2_ROL(a17, 15);
    const __m512i b03 = GEM2_ROL(a18, 21);
    const __m512i b13 = GEM2_ROL(a19, 8);
    const __m512i b14 = GEM2_ROL(a20, 18);
    const __m512i b24 = GEM2_ROL(a21, 2);
    const __m512i b09 = GEM2_ROL(a22, 61);
    const __m512i b19 = GEM2_ROL(a23, 56);
    const __m512i b04 = GEM2_ROL(a24, 14);

    // Chi + Iota.
    const __m512i rc = _mm512_set1_epi64(static_cast<long long>(kRoundConstants[round]));
    a00 = GEM2_XOR(GEM2_CHI(b00, b01, b02), rc);
    a01 = GEM2_CHI(b01, b02, b03);
    a02 = GEM2_CHI(b02, b03, b04);
    a03 = GEM2_CHI(b03, b04, b00);
    a04 = GEM2_CHI(b04, b00, b01);
    a05 = GEM2_CHI(b05, b06, b07);
    a06 = GEM2_CHI(b06, b07, b08);
    a07 = GEM2_CHI(b07, b08, b09);
    a08 = GEM2_CHI(b08, b09, b05);
    a09 = GEM2_CHI(b09, b05, b06);
    a10 = GEM2_CHI(b10, b11, b12);
    a11 = GEM2_CHI(b11, b12, b13);
    a12 = GEM2_CHI(b12, b13, b14);
    a13 = GEM2_CHI(b13, b14, b10);
    a14 = GEM2_CHI(b14, b10, b11);
    a15 = GEM2_CHI(b15, b16, b17);
    a16 = GEM2_CHI(b16, b17, b18);
    a17 = GEM2_CHI(b17, b18, b19);
    a18 = GEM2_CHI(b18, b19, b15);
    a19 = GEM2_CHI(b19, b15, b16);
    a20 = GEM2_CHI(b20, b21, b22);
    a21 = GEM2_CHI(b21, b22, b23);
    a22 = GEM2_CHI(b22, b23, b24);
    a23 = GEM2_CHI(b23, b24, b20);
    a24 = GEM2_CHI(b24, b20, b21);
  }

  // Only lanes 0..3 (the 256-bit digest) need to come back out.
  s[0] = a00; s[1] = a01; s[2] = a02; s[3] = a03;
  for (int w = 0; w < 4; ++w) {
    alignas(64) uint64_t lane[8];
    _mm512_store_si512(lane, s[w]);
    for (size_t b = 0; b < count; ++b) {
      StoreLane(outs[b]->data() + 8 * w, lane[b]);
    }
  }
#undef GEM2_ROL
#undef GEM2_CHI
#undef GEM2_XOR
}

#endif  // GEM2_KECCAK_X8

}  // namespace

void Keccak256Batcher::Add(const uint8_t* data, size_t len, Hash* out) {
  if (len > kMaxMessageLen) {
    // Multi-block message (e.g. content digest at fanout > 4): not batchable,
    // hash it scalar right away.
    *out = Keccak256(data, len);
    return;
  }
  uint8_t* block = blocks_[count_];
  std::memcpy(block, data, len);
  std::memset(block + len, 0, kRate - len);
  // Keccak (pre-SHA3) padding, identical to Keccak256Hasher::Finalize.
  block[len] = 0x01;
  block[kRate - 1] |= 0x80;
  outs_[count_] = out;
  if (++count_ == kLanes) Flush();
}

void Keccak256Batcher::AddConcat(const Hash* const* parts, size_t n, Hash* out) {
  constexpr size_t kHashLen = sizeof(Hash);
  if (n > kMaxMessageLen / kHashLen) {
    // Wide node (fanout > 4): the concatenation spans multiple sponge blocks,
    // so gather into a temporary and hash scalar. n is bounded by the VO
    // codec's child-count checks, far below any size_t overflow.
    std::vector<uint8_t> buf(n * kHashLen);
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(buf.data() + i * kHashLen, parts[i]->data(), kHashLen);
    }
    *out = Keccak256(buf.data(), buf.size());
    return;
  }
  const size_t len = n * kHashLen;
  uint8_t* block = blocks_[count_];
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(block + i * kHashLen, parts[i]->data(), kHashLen);
  }
  std::memset(block + len, 0, kRate - len);
  block[len] = 0x01;
  block[kRate - 1] |= 0x80;
  outs_[count_] = out;
  if (++count_ == kLanes) Flush();
}

void Keccak256Batcher::Flush() {
  if (count_ == 0) return;
#if GEM2_KECCAK_X8
  // A single 512-bit pass costs more than one scalar permutation but far less
  // than two, so SIMD pays off for any batch of at least 2.
  if (count_ >= 2 && CpuHasAvx512()) {
    HashBlocksX8(blocks_, count_, outs_);
    internal::AddPermutations(count_);
    count_ = 0;
    return;
  }
#endif
  HashBlocksScalar(blocks_, count_, outs_);
  count_ = 0;
}

}  // namespace gem2::crypto
