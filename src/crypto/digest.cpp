#include "crypto/digest.h"

#include <cstring>

namespace gem2::crypto {

Hash EntryDigest(Key key, const Hash& value_hash) {
  Keccak256Hasher h;
  h.UpdateKey(key);
  h.Update(value_hash);
  return h.Finalize();
}

Hash ContentDigest(std::span<const Hash> children) {
  Keccak256Hasher h;
  for (const Hash& c : children) h.Update(c);
  return h.Finalize();
}

Hash WrapDigest(Key lo, Key hi, const Hash& content) {
  Keccak256Hasher h;
  h.UpdateKey(lo);
  h.UpdateKey(hi);
  h.Update(content);
  return h.Finalize();
}

Hash EmptyTreeDigest() {
  static const Hash kEmpty = Keccak256(std::string("GEM2_EMPTY_TREE"));
  return kEmpty;
}

Hash ValueHash(const std::string& value) { return Keccak256(value); }

namespace {
/// Big-endian two's complement, matching Keccak256Hasher::UpdateKey.
inline void EncodeKeyBe(Key k, uint8_t* out) {
  const uint64_t v = static_cast<uint64_t>(k);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>((v >> (8 * (7 - i))) & 0xff);
  }
}
}  // namespace

void EncodeEntryPreimage(Key key, const Hash& value_hash, uint8_t out[40]) {
  EncodeKeyBe(key, out);
  std::memcpy(out + 8, value_hash.data(), value_hash.size());
}

void EncodeWrapPreimage(Key lo, Key hi, const Hash& content, uint8_t out[48]) {
  EncodeKeyBe(lo, out);
  EncodeKeyBe(hi, out + 8);
  std::memcpy(out + 16, content.data(), content.size());
}

uint64_t EntryDigestBytes() { return 8 + 32; }

uint64_t ContentDigestBytes(size_t num_children) { return 32 * num_children; }

uint64_t WrapDigestBytes() { return 8 + 8 + 32; }

}  // namespace gem2::crypto
