#include "crypto/digest.h"

namespace gem2::crypto {

Hash EntryDigest(Key key, const Hash& value_hash) {
  Keccak256Hasher h;
  h.UpdateKey(key);
  h.Update(value_hash);
  return h.Finalize();
}

Hash ContentDigest(std::span<const Hash> children) {
  Keccak256Hasher h;
  for (const Hash& c : children) h.Update(c);
  return h.Finalize();
}

Hash WrapDigest(Key lo, Key hi, const Hash& content) {
  Keccak256Hasher h;
  h.UpdateKey(lo);
  h.UpdateKey(hi);
  h.Update(content);
  return h.Finalize();
}

Hash EmptyTreeDigest() {
  static const Hash kEmpty = Keccak256(std::string("GEM2_EMPTY_TREE"));
  return kEmpty;
}

Hash ValueHash(const std::string& value) { return Keccak256(value); }

uint64_t EntryDigestBytes() { return 8 + 32; }

uint64_t ContentDigestBytes(size_t num_children) { return 32 * num_children; }

uint64_t WrapDigestBytes() { return 8 + 8 + 32; }

}  // namespace gem2::crypto
