#include "crypto/mpt.h"

#include <array>
#include <stdexcept>

#include "crypto/keccak.h"
#include "crypto/rlp.h"

namespace gem2::crypto {
namespace {

using Nibbles = std::vector<uint8_t>;

Nibbles ToNibbles(std::span<const uint8_t> key) {
  Nibbles out;
  out.reserve(key.size() * 2);
  for (uint8_t b : key) {
    out.push_back(b >> 4);
    out.push_back(b & 0x0f);
  }
  return out;
}

/// Hex-prefix encoding (yellow paper appendix C): packs a nibble path plus a
/// leaf/extension flag into bytes.
Bytes HexPrefix(const Nibbles& path, size_t from, size_t count, bool leaf) {
  Bytes out;
  const bool odd = (count % 2) != 0;
  uint8_t first = static_cast<uint8_t>((leaf ? 2 : 0) + (odd ? 1 : 0)) << 4;
  size_t i = from;
  if (odd) {
    first |= path[i++];
  }
  out.push_back(first);
  for (; i + 1 < from + count + (odd ? 1 : 0); i += 2) {
    out.push_back(static_cast<uint8_t>((path[i] << 4) | path[i + 1]));
  }
  return out;
}

/// Decodes a hex-prefix path; returns (nibbles, is_leaf) or nullopt.
std::optional<std::pair<Nibbles, bool>> DecodeHexPrefix(const Bytes& data) {
  if (data.empty()) return std::nullopt;
  const uint8_t flag = data[0] >> 4;
  if (flag > 3) return std::nullopt;
  const bool leaf = flag >= 2;
  const bool odd = (flag % 2) != 0;
  Nibbles nibbles;
  if (odd) nibbles.push_back(data[0] & 0x0f);
  for (size_t i = 1; i < data.size(); ++i) {
    nibbles.push_back(data[i] >> 4);
    nibbles.push_back(data[i] & 0x0f);
  }
  return std::make_pair(std::move(nibbles), leaf);
}

size_t CommonPrefix(const Nibbles& a, size_t a_from, const Nibbles& b, size_t b_from) {
  size_t n = 0;
  while (a_from + n < a.size() && b_from + n < b.size() &&
         a[a_from + n] == b[b_from + n]) {
    ++n;
  }
  return n;
}

Bytes HashBytes(const Hash& h) { return Bytes(h.begin(), h.end()); }

}  // namespace

struct PatriciaTrie::Node {
  enum class Kind { kLeaf, kExtension, kBranch };

  Kind kind = Kind::kLeaf;
  Nibbles path;   // leaf / extension
  Bytes value;    // leaf value, or branch value slot
  std::array<Node*, 16> children{};  // branch (arena-owned)
  Node* next = nullptr;              // extension target (arena-owned)

  /// RLP encoding of this node (children referenced by hash).
  Bytes Encode() const {
    using rlp::Item;
    switch (kind) {
      case Kind::kLeaf:
        return rlp::Encode(Item::List(
            {Item::String(HexPrefix(path, 0, path.size(), true)),
             Item::String(value)}));
      case Kind::kExtension:
        return rlp::Encode(Item::List(
            {Item::String(HexPrefix(path, 0, path.size(), false)),
             Item::String(HashBytes(next->HashNode()))}));
      case Kind::kBranch: {
        std::vector<Item> items;
        items.reserve(17);
        for (const Node* child : children) {
          items.push_back(Item::String(
              child == nullptr ? Bytes{} : HashBytes(child->HashNode())));
        }
        items.push_back(Item::String(value));
        return rlp::Encode(Item::List(std::move(items)));
      }
    }
    throw std::logic_error("unreachable");
  }

  /// Memoized node digest. A trie of n entries re-uses the hashes of every
  /// untouched subtree, so RootHash() after an update costs O(depth) Keccak
  /// permutations instead of O(n); Put invalidates exactly the nodes on the
  /// insertion path. Bit-identical to the uncached hash by construction
  /// (checked against a fresh trie in parallel_equivalence_test).
  Hash HashNode() const {
    if (!hash_valid_) {
      cached_hash_ = Keccak256(Encode());
      hash_valid_ = true;
    }
    return cached_hash_;
  }

  void InvalidateHash() { hash_valid_ = false; }

 private:
  mutable Hash cached_hash_{};
  mutable bool hash_valid_ = false;
};

PatriciaTrie::PatriciaTrie() : arena_(std::make_unique<common::Arena>()) {}
PatriciaTrie::~PatriciaTrie() = default;
PatriciaTrie::PatriciaTrie(PatriciaTrie&&) noexcept = default;
PatriciaTrie& PatriciaTrie::operator=(PatriciaTrie&&) noexcept = default;

Hash PatriciaTrie::EmptyRoot() {
  static const Hash kEmpty = Keccak256(rlp::EncodeString({}));
  return kEmpty;
}

Hash PatriciaTrie::RootHash() const {
  if (root_ == nullptr) return EmptyRoot();
  return root_->HashNode();
}

void PatriciaTrie::Put(std::span<const uint8_t> key, const Bytes& value) {
  if (value.empty()) throw std::invalid_argument("MPT values must be non-empty");
  if (arena_ == nullptr) arena_ = std::make_unique<common::Arena>();
  Nibbles nibbles = ToNibbles(key);

  // Recursive insert, written iteratively-by-recursion via a lambda.
  struct Inserter {
    const Nibbles& nibbles;
    const Bytes& value;
    common::Arena* arena;
    bool replaced = false;

    PatriciaTrie::Node* Insert(PatriciaTrie::Node* node, size_t pos) {
      using N = PatriciaTrie::Node;
      if (node == nullptr) {
        N* leaf = arena->New<N>();
        leaf->kind = N::Kind::kLeaf;
        leaf->path.assign(nibbles.begin() + static_cast<long>(pos), nibbles.end());
        leaf->value = value;
        return leaf;
      }
      // Every pre-existing node on the insertion path changes its encoding
      // (directly or via a child hash), so drop its memoized digest here.
      // Untouched siblings keep theirs — that is the whole point.
      node->InvalidateHash();

      switch (node->kind) {
        case N::Kind::kLeaf: {
          const size_t common = CommonPrefix(nibbles, pos, node->path, 0);
          const size_t remaining = nibbles.size() - pos;
          if (common == node->path.size() && common == remaining) {
            node->value = value;  // overwrite
            replaced = true;
            return node;
          }
          // Split into a branch (optionally behind an extension).
          N* branch = arena->New<N>();
          branch->kind = N::Kind::kBranch;
          // Existing leaf goes below the branch.
          if (node->path.size() == common) {
            branch->value = node->value;
          } else {
            N* old_leaf = arena->New<N>();
            old_leaf->kind = N::Kind::kLeaf;
            old_leaf->path.assign(node->path.begin() + static_cast<long>(common + 1),
                                  node->path.end());
            old_leaf->value = std::move(node->value);
            branch->children[node->path[common]] = old_leaf;
          }
          // New value goes below the branch too.
          if (remaining == common) {
            branch->value = value;
          } else {
            N* new_leaf = arena->New<N>();
            new_leaf->kind = N::Kind::kLeaf;
            new_leaf->path.assign(nibbles.begin() + static_cast<long>(pos + common + 1),
                                  nibbles.end());
            new_leaf->value = value;
            branch->children[nibbles[pos + common]] = new_leaf;
          }
          if (common == 0) return branch;
          N* ext = arena->New<N>();
          ext->kind = N::Kind::kExtension;
          ext->path.assign(node->path.begin(),
                           node->path.begin() + static_cast<long>(common));
          ext->next = branch;
          return ext;
        }

        case N::Kind::kExtension: {
          const size_t common = CommonPrefix(nibbles, pos, node->path, 0);
          if (common == node->path.size()) {
            node->next = Insert(node->next, pos + common);
            return node;
          }
          // Split the extension.
          N* branch = arena->New<N>();
          branch->kind = N::Kind::kBranch;
          // Tail of the old extension.
          N* old_tail = nullptr;
          if (node->path.size() == common + 1) {
            old_tail = node->next;
          } else {
            N* tail_ext = arena->New<N>();
            tail_ext->kind = N::Kind::kExtension;
            tail_ext->path.assign(node->path.begin() + static_cast<long>(common + 1),
                                  node->path.end());
            tail_ext->next = node->next;
            old_tail = tail_ext;
          }
          branch->children[node->path[common]] = old_tail;
          // New entry.
          if (pos + common == nibbles.size()) {
            branch->value = value;
          } else {
            N* new_leaf = arena->New<N>();
            new_leaf->kind = N::Kind::kLeaf;
            new_leaf->path.assign(nibbles.begin() + static_cast<long>(pos + common + 1),
                                  nibbles.end());
            new_leaf->value = value;
            branch->children[nibbles[pos + common]] = new_leaf;
          }
          if (common == 0) return branch;
          N* ext = arena->New<N>();
          ext->kind = N::Kind::kExtension;
          ext->path.assign(node->path.begin(),
                           node->path.begin() + static_cast<long>(common));
          ext->next = branch;
          return ext;
        }

        case N::Kind::kBranch: {
          if (pos == nibbles.size()) {
            replaced = !node->value.empty();
            node->value = value;
            return node;
          }
          const uint8_t nib = nibbles[pos];
          node->children[nib] = Insert(node->children[nib], pos + 1);
          return node;
        }
      }
      throw std::logic_error("unreachable");
    }
  };

  Inserter inserter{nibbles, value, arena_.get()};
  root_ = inserter.Insert(root_, 0);
  if (!inserter.replaced) ++size_;
}

std::optional<Bytes> PatriciaTrie::Get(std::span<const uint8_t> key) const {
  const Nibbles nibbles = ToNibbles(key);
  const Node* node = root_;
  size_t pos = 0;
  while (node != nullptr) {
    switch (node->kind) {
      case Node::Kind::kLeaf: {
        if (nibbles.size() - pos == node->path.size() &&
            std::equal(node->path.begin(), node->path.end(),
                       nibbles.begin() + static_cast<long>(pos))) {
          return node->value;
        }
        return std::nullopt;
      }
      case Node::Kind::kExtension: {
        if (nibbles.size() - pos < node->path.size() ||
            !std::equal(node->path.begin(), node->path.end(),
                        nibbles.begin() + static_cast<long>(pos))) {
          return std::nullopt;
        }
        pos += node->path.size();
        node = node->next;
        break;
      }
      case Node::Kind::kBranch: {
        if (pos == nibbles.size()) {
          if (node->value.empty()) return std::nullopt;
          return node->value;
        }
        node = node->children[nibbles[pos]];
        ++pos;
        break;
      }
    }
  }
  return std::nullopt;
}

PatriciaTrie::Proof PatriciaTrie::Prove(std::span<const uint8_t> key) const {
  Proof proof;
  const Nibbles nibbles = ToNibbles(key);
  // Path length is bounded by one node per nibble plus the root.
  proof.reserve(nibbles.size() + 1);
  const Node* node = root_;
  size_t pos = 0;
  while (node != nullptr) {
    proof.push_back(node->Encode());
    switch (node->kind) {
      case Node::Kind::kLeaf:
        if (nibbles.size() - pos == node->path.size() &&
            std::equal(node->path.begin(), node->path.end(),
                       nibbles.begin() + static_cast<long>(pos))) {
          return proof;
        }
        throw std::out_of_range("MPT proof: key absent");
      case Node::Kind::kExtension:
        if (nibbles.size() - pos < node->path.size() ||
            !std::equal(node->path.begin(), node->path.end(),
                        nibbles.begin() + static_cast<long>(pos))) {
          throw std::out_of_range("MPT proof: key absent");
        }
        pos += node->path.size();
        node = node->next;
        break;
      case Node::Kind::kBranch:
        if (pos == nibbles.size()) {
          if (node->value.empty()) throw std::out_of_range("MPT proof: key absent");
          return proof;
        }
        node = node->children[nibbles[pos]];
        ++pos;
        break;
    }
  }
  throw std::out_of_range("MPT proof: key absent");
}

bool PatriciaTrie::VerifyProof(const Hash& root, std::span<const uint8_t> key,
                               const Bytes& value, const Proof& proof) {
  if (proof.empty() || value.empty()) return false;
  const Nibbles nibbles = ToNibbles(key);
  Hash expected = root;
  size_t pos = 0;

  for (size_t step = 0; step < proof.size(); ++step) {
    const Bytes& encoded = proof[step];
    if (Keccak256(encoded) != expected) return false;
    auto item = rlp::Decode(encoded);
    if (!item || !item->is_list) return false;
    const auto& fields = item->list;

    if (fields.size() == 2) {
      // Leaf or extension.
      if (fields[0].is_list || fields[1].is_list) return false;
      auto hp = DecodeHexPrefix(fields[0].str);
      if (!hp) return false;
      const auto& [path, is_leaf] = *hp;
      if (nibbles.size() - pos < path.size() ||
          !std::equal(path.begin(), path.end(),
                      nibbles.begin() + static_cast<long>(pos))) {
        return false;
      }
      pos += path.size();
      if (is_leaf) {
        return step + 1 == proof.size() && pos == nibbles.size() &&
               fields[1].str == value;
      }
      // Extension: next hash.
      if (fields[1].str.size() != 32) return false;
      std::copy(fields[1].str.begin(), fields[1].str.end(), expected.begin());
      continue;
    }

    if (fields.size() == 17) {
      if (pos == nibbles.size()) {
        return step + 1 == proof.size() && !fields[16].is_list &&
               fields[16].str == value;
      }
      const auto& slot = fields[nibbles[pos]];
      if (slot.is_list || slot.str.size() != 32) return false;
      std::copy(slot.str.begin(), slot.str.end(), expected.begin());
      ++pos;
      continue;
    }

    return false;
  }
  return false;  // ran out of proof nodes before reaching the entry
}

}  // namespace gem2::crypto
