/// \file keccak.h
/// From-scratch Keccak-256 (the Ethereum variant of SHA-3, with the original
/// 0x01 domain padding). This is the cryptographic hash `h(.)` used by every
/// authenticated data structure in the library.
#ifndef GEM2_CRYPTO_KECCAK_H_
#define GEM2_CRYPTO_KECCAK_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/types.h"

namespace gem2::crypto {

/// One-shot Keccak-256 of an arbitrary byte string.
Hash Keccak256(const uint8_t* data, size_t len);
Hash Keccak256(const Bytes& data);
Hash Keccak256(const std::string& data);

/// Incremental Keccak-256 sponge. Absorb any number of chunks, then finalize.
class Keccak256Hasher {
 public:
  Keccak256Hasher();

  Keccak256Hasher& Update(const uint8_t* data, size_t len);
  Keccak256Hasher& Update(const Bytes& data);
  Keccak256Hasher& Update(const Hash& h);
  Keccak256Hasher& Update(const std::string& s);
  Keccak256Hasher& UpdateKey(Key k);

  /// Pads, squeezes, and returns the digest. The hasher must not be reused
  /// after finalization. `absorbed_bytes()` remains valid.
  Hash Finalize();

  /// Total number of message bytes absorbed so far (used for gas accounting:
  /// Chash = 30 + 6 * ceil(bytes/32)).
  uint64_t absorbed_bytes() const { return absorbed_; }

 private:
  void AbsorbBlock();

  uint64_t state_[25];
  uint8_t buffer_[136];  // rate for Keccak-256 = 1088 bits
  size_t buffer_len_;
  uint64_t absorbed_;
  bool finalized_;
};

}  // namespace gem2::crypto

#endif  // GEM2_CRYPTO_KECCAK_H_
