/// \file keccak.h
/// From-scratch Keccak-256 (the Ethereum variant of SHA-3, with the original
/// 0x01 domain padding). This is the cryptographic hash `h(.)` used by every
/// authenticated data structure in the library.
///
/// The permutation is fully unrolled with the 25 lanes held in locals, and
/// the sponge absorbs rate-sized blocks directly from the caller's buffer
/// (no staging memcpy); see docs/PERFORMANCE.md for the measured effect.
#ifndef GEM2_CRYPTO_KECCAK_H_
#define GEM2_CRYPTO_KECCAK_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "common/types.h"

namespace gem2::crypto {

/// One-shot Keccak-256 of an arbitrary byte string. The span overload is the
/// preferred zero-copy entry point; the others forward to it.
Hash Keccak256(const uint8_t* data, size_t len);
Hash Keccak256(std::span<const uint8_t> data);
Hash Keccak256(const Bytes& data);
Hash Keccak256(const std::string& data);

/// Total number of Keccak-f[1600] permutation invocations performed by this
/// process so far (monotonic, thread-safe). Benches and tests diff this
/// counter around an operation to count the hash work it really did — the
/// basis for the incremental-vs-rebuild digest accounting. The count is
/// *logical*: a multi-buffer SIMD pass over k states adds k, so the number is
/// independent of batching width and always equals the scalar-execution count.
uint64_t KeccakPermutationCount();

namespace internal {
/// Raw Keccak-f[1600] over a 25-lane state (adds 1 to the permutation
/// counter). Exposed for the multi-buffer batcher's scalar fallback
/// (keccak_batch.h); not a public hashing API.
void Permute(uint64_t state[25]);
/// Adds `n` logical permutations to the process counter — used by the SIMD
/// kernel, which performs n block permutations per hardware pass.
void AddPermutations(uint64_t n);
}  // namespace internal

/// Incremental Keccak-256 sponge. Absorb any number of chunks, then finalize.
class Keccak256Hasher {
 public:
  Keccak256Hasher();

  Keccak256Hasher& Update(const uint8_t* data, size_t len);
  Keccak256Hasher& Update(std::span<const uint8_t> data);
  Keccak256Hasher& Update(const Bytes& data);
  Keccak256Hasher& Update(const Hash& h);
  Keccak256Hasher& Update(const std::string& s);
  /// Absorbs the big-endian 8-byte encoding of `v` (same bytes AppendUint64
  /// emits) without routing through a heap-allocated Bytes.
  Keccak256Hasher& UpdateUint64(uint64_t v);
  Keccak256Hasher& UpdateKey(Key k);

  /// Pads, squeezes, and returns the digest. The hasher must not be reused
  /// after finalization. `absorbed_bytes()` remains valid.
  Hash Finalize();

  /// Total number of message bytes absorbed so far (used for gas accounting:
  /// Chash = 30 + 6 * ceil(bytes/32)).
  uint64_t absorbed_bytes() const { return absorbed_; }

 private:
  /// XORs one rate-sized block at `block` into the state and permutes.
  void AbsorbBlock(const uint8_t* block);

  uint64_t state_[25];
  uint8_t buffer_[136];  // rate for Keccak-256 = 1088 bits
  size_t buffer_len_;
  uint64_t absorbed_;
  bool finalized_;
};

}  // namespace gem2::crypto

#endif  // GEM2_CRYPTO_KECCAK_H_
