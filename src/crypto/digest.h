/// \file digest.h
/// The node-digest scheme shared by every authenticated tree in this library.
///
/// The paper (Fig. 5) encodes key boundaries into SMB-tree root hashes, e.g.
/// h7 = h(13 || 91 || h(h5 || h6)). We apply the same wrapping at *every* node:
///
///   entry digest  = H(key || value_hash)
///   node digest   = H(lo || hi || H(child_digest_1 || ... || child_digest_n))
///
/// where [lo, hi] is the subtree's key range. This is identical to the paper's
/// scheme at roots and strictly generalizes it inside trees; it lets the client
/// check pruned-subtree boundaries uniformly (see ads/verify.h).
#ifndef GEM2_CRYPTO_DIGEST_H_
#define GEM2_CRYPTO_DIGEST_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/keccak.h"

namespace gem2::crypto {

/// Digest of a single indexed object: H(key || value_hash).
Hash EntryDigest(Key key, const Hash& value_hash);

/// Digest of the concatenation of child digests: H(d1 || d2 || ... || dn).
Hash ContentDigest(std::span<const Hash> children);

/// Boundary-wrapped node digest: H(lo || hi || content).
Hash WrapDigest(Key lo, Key hi, const Hash& content);

/// Digest of an empty tree (fixed domain-separated constant).
Hash EmptyTreeDigest();

/// Hash of a raw object payload, i.e. the h(value) stored on-chain.
Hash ValueHash(const std::string& value);

/// Gas-accounting helper: number of message bytes hashed by EntryDigest /
/// ContentDigest / WrapDigest calls, so metered implementations can charge
/// Chash = 30 + 6 * ceil(bytes / 32) for the identical computation.
uint64_t EntryDigestBytes();
uint64_t ContentDigestBytes(size_t num_children);
uint64_t WrapDigestBytes();

/// Exact preimages of EntryDigest / WrapDigest, for feeding independent
/// digests to a Keccak256Batcher (keccak_batch.h). Keccak256(out, size) of
/// the filled buffer equals the corresponding *Digest call bit-for-bit.
/// (ContentDigest needs no encoder — its preimage is the concatenated child
/// digests, already contiguous at every call site.)
void EncodeEntryPreimage(Key key, const Hash& value_hash, uint8_t out[40]);
void EncodeWrapPreimage(Key lo, Key hi, const Hash& content, uint8_t out[48]);

}  // namespace gem2::crypto

#endif  // GEM2_CRYPTO_DIGEST_H_
