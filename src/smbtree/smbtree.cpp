#include "smbtree/smbtree.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/digest.h"
#include "telemetry/telemetry.h"

namespace gem2::smbtree {

namespace {

// Storage regions within the contract's storage space.
constexpr uint32_t kRegionObjects = 1;  // index -> packed object record
constexpr uint32_t kRegionRoot = 2;     // index 0 -> root digest

}  // namespace

SmbTreeContract::SmbTreeContract(std::string name, int fanout)
    : chain::Contract(std::move(name)),
      fanout_(fanout),
      root_(crypto::EmptyTreeDigest()) {
  // Single-entry ledger, kept current by RebuildRoot (the funnel every
  // mutation passes through).
  EnableDigestLedger().Set(0, "smbtree.root", root_);
}

void SmbTreeContract::Insert(Key key, const Hash& value_hash, gas::Meter& meter) {
  TELEMETRY_SPAN("smbtree.insert");
  if (index_of_.count(key) != 0) {
    throw std::invalid_argument("SmbTreeContract::Insert: key already present");
  }
  const size_t idx = log_.size();
  // One storage word per object record (paper's accounting; see file comment).
  storage().Store(chain::Slot{kRegionObjects, idx}, WordFromKey(key), meter);
  log_.push_back({key, value_hash});
  index_of_.emplace(key, idx);
  RebuildRoot(meter);
}

void SmbTreeContract::Update(Key key, const Hash& value_hash, gas::Meter& meter) {
  TELEMETRY_SPAN("smbtree.update");
  auto it = index_of_.find(key);
  if (it == index_of_.end()) {
    throw std::invalid_argument("SmbTreeContract::Update: unknown key");
  }
  // Rewrite the object record in place, then recompute the root.
  storage().Store(chain::Slot{kRegionObjects, it->second}, WordFromKey(key), meter);
  log_[it->second].value_hash = value_hash;
  RebuildRoot(meter);
}

void SmbTreeContract::RebuildRoot(gas::Meter& meter) {
  TELEMETRY_SPAN("smbtree.rebuild_root");
  // Load every object record from storage (1 sload each).
  ads::EntryList entries;
  entries.reserve(log_.size());
  for (size_t i = 0; i < log_.size(); ++i) {
    Word w = storage().Load(chain::Slot{kRegionObjects, i}, meter);
    Key key = KeyFromWord(w);
    entries.push_back({key, log_[i].value_hash});
  }
  // In-memory sort: N * log2(N) memory-word accesses.
  meter.ChargeSortCost(entries.size());
  std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
  // Fold the canonical tree digest, charging every hash.
  root_ = ads::CanonicalRootDigest(entries, fanout_, &meter, &leaf_cache_);
  // Rewrite the root slot (sstore the first time, supdate afterwards).
  Word w;
  std::copy(root_.begin(), root_.end(), w.begin());
  storage().Store(chain::Slot{kRegionRoot, 0}, w, meter);
  digest_ledger()->Set(0, "smbtree.root", root_);
}

void SmbTreeContract::SeedUnmetered(const ads::EntryList& entries) {
  gas::Meter free_meter(gas::kEthereumSchedule, ~0ull);
  for (const ads::Entry& e : entries) {
    if (!index_of_.emplace(e.key, log_.size()).second) {
      throw std::invalid_argument("SeedUnmetered: duplicate key");
    }
    storage().Store(chain::Slot{kRegionObjects, log_.size()}, WordFromKey(e.key),
                    free_meter);
    log_.push_back(e);
  }
  RebuildRoot(free_meter);
}

std::vector<chain::DigestEntry> SmbTreeContract::AuthenticatedDigests() const {
  return {{"smbtree.root", root_}};
}

SmbTreeMirror::SmbTreeMirror(int fanout, common::ThreadPool* pool)
    : fanout_(fanout), pool_(pool) {}

void SmbTreeMirror::Insert(Key key, const Hash& value_hash) {
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), key,
                              [](const ads::Entry& e, Key k) { return e.key < k; });
  if (pos != entries_.end() && pos->key == key) {
    throw std::invalid_argument("SmbTreeMirror::Insert: key already present");
  }
  entries_.insert(pos, {key, value_hash});
  cache_.reset();
}

void SmbTreeMirror::Update(Key key, const Hash& value_hash) {
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), key,
                              [](const ads::Entry& e, Key k) { return e.key < k; });
  if (pos == entries_.end() || pos->key != key) {
    throw std::invalid_argument("SmbTreeMirror::Update: unknown key");
  }
  pos->value_hash = value_hash;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_ != nullptr && !cache_->UpdateValueHash(key, value_hash)) {
    cache_.reset();  // key missing from the cached tree: rebuild lazily
  }
}

const ads::StaticTree& SmbTreeMirror::Tree() const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_ != nullptr) return *cache_;
  }
  // Built outside the lock: a pool-parallel build must never run under a
  // mutex that stolen pool work could re-acquire (see PartitionChain::SpTree).
  auto fresh = std::make_unique<ads::StaticTree>(entries_, fanout_, pool_);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_ == nullptr) cache_ = std::move(fresh);
  return *cache_;
}

Hash SmbTreeMirror::root_digest() const { return Tree().root_digest(); }

ads::TreeVo SmbTreeMirror::RangeQuery(Key lb, Key ub, ads::EntryList* result) const {
  return Tree().RangeQuery(lb, ub, result);
}

}  // namespace gem2::smbtree
