/// \file smbtree.h
/// The Suppressed Merkle B-tree baseline (paper Section IV-B).
///
/// On-chain (SmbTreeContract): objects are appended *unsorted* to contract
/// storage and no tree node is materialized — only the root digest slot. On
/// every insert or update the contract reloads all N object records, sorts
/// them in memory, recomputes the canonical tree digest on the fly, and
/// rewrites the root slot. Gas per insert therefore follows the paper's
///   C = N*(Csload + log2(N)*Cmem) + hash costs + Csstore + Csupdate
/// model. The (key, h(value)) record is accounted as one storage word per
/// object, matching the paper's N*Csload rebuild term.
///
/// SP-side (SmbTreeMirror): the same data fully materialized as a canonical
/// StaticTree (rebuilt lazily) to answer range queries with VOs.
#ifndef GEM2_SMBTREE_SMBTREE_H_
#define GEM2_SMBTREE_SMBTREE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ads/entry.h"
#include "ads/static_tree.h"
#include "ads/vo.h"
#include "chain/contract.h"
#include "gas/meter.h"

namespace gem2::smbtree {

class SmbTreeContract : public chain::Contract {
 public:
  explicit SmbTreeContract(std::string name, int fanout = 4);

  /// Appends a fresh object and recomputes the root on the fly.
  void Insert(Key key, const Hash& value_hash, gas::Meter& meter);

  /// Replaces an existing object's value hash and recomputes the root.
  void Update(Key key, const Hash& value_hash, gas::Meter& meter);

  std::vector<chain::DigestEntry> AuthenticatedDigests() const override;

  Hash root_digest() const { return root_; }
  size_t size() const { return log_.size(); }
  int fanout() const { return fanout_; }

  /// Objects in insertion order (unmetered; used by tests and SP bootstrap).
  const ads::EntryList& log() const { return log_; }

  /// Bench/test helper: bulk-seeds the contract with `entries` (storage is
  /// written, the root rebuilt once) without metering, so per-insert gas can
  /// be sampled at a target database size in O(N) instead of O(N^2).
  void SeedUnmetered(const ads::EntryList& entries);

 private:
  /// Loads every record (1 sload each), sorts in memory, folds the canonical
  /// digest, and rewrites the root slot.
  void RebuildRoot(gas::Meter& meter);

  int fanout_;
  ads::EntryList log_;                       // insertion-ordered records
  std::unordered_map<Key, size_t> index_of_; // key -> log_ position
  Hash root_;
  /// Memoizes metered EntryDigest hashes across the per-insert rebuilds (gas
  /// is unaffected; see ads::LeafDigestCache).
  ads::LeafDigestCache leaf_cache_;
};

/// The SP's materialized twin of an SMB-tree: sorted entries + lazy canonical
/// tree for authenticated range queries.
class SmbTreeMirror {
 public:
  /// `pool`, when non-null, parallelizes the lazy tree materialization
  /// (an SP-side optimization; the digests are bit-identical).
  explicit SmbTreeMirror(int fanout = 4, common::ThreadPool* pool = nullptr);

  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  void Insert(Key key, const Hash& value_hash);

  /// Value update. When the tree is already materialized this patches only
  /// the leaf-to-root path (StaticTree::UpdateValueHash) instead of
  /// discarding the cache and rebuilding all N nodes on the next query.
  void Update(Key key, const Hash& value_hash);

  size_t size() const { return entries_.size(); }
  Hash root_digest() const;

  /// Range query over the materialized tree.
  ads::TreeVo RangeQuery(Key lb, Key ub, ads::EntryList* result) const;

 private:
  /// Lazily materializes the canonical tree. Thread-safe: concurrent readers
  /// (SP query threads holding the engine's shared lock) race only on the
  /// first materialization, which cache_mutex_ serializes. Mutations happen
  /// under the engine's exclusive lock and never run concurrently with this.
  const ads::StaticTree& Tree() const;

  int fanout_;
  common::ThreadPool* pool_;
  ads::EntryList entries_;  // kept sorted by key
  mutable std::mutex cache_mutex_;
  mutable std::unique_ptr<ads::StaticTree> cache_;
};

}  // namespace gem2::smbtree

#endif  // GEM2_SMBTREE_SMBTREE_H_
