/// \file mbtree.h
/// Merkle B+-tree (paper Sections II-A and IV-A).
///
/// One implementation serves both sides of the system: the service provider
/// runs it unmetered, the smart contract runs the *same* structural algorithm
/// with a gas meter attached, so the two copies evolve identically and their
/// digests agree bit-for-bit.
///
/// Gas accounting implements the paper's MB-tree cost model (Section IV-A),
/// which is what its evaluation (Fig. 7/8) plots:
///
///   insert:  logF(N) * (2 Csstore + 2 Csupdate + (2F+1) Csload + Chash)
///            + Csstore
///   update:  logF(N) * (Csupdate + (F+1) Csload + Chash) + Csupdate
///
/// realized operationally as: every node whose digest is refreshed by an
/// insert-path charges (2F+1) sloads + 2 sstores + 2 supdates (the node is
/// re-read, rewritten, and split space is maintained — the paper's per-level
/// maintenance term), every node refreshed by an update-path charges (F+1)
/// sloads + 1 supdate (in-place hash refresh), the inserted object itself
/// charges 1 sstore, and every Keccak invocation actually performed is
/// charged at Chash = 30 + 6*words.
///
/// BulkInsert merges a sorted run with *batched* digest maintenance: dirty
/// nodes are collected during the structural pass and each is refreshed
/// exactly once, which realizes the paper's `Cbshare` saving for SMB-tree ->
/// MB-tree merges.
#ifndef GEM2_MBTREE_MBTREE_H_
#define GEM2_MBTREE_MBTREE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "ads/entry.h"
#include "ads/static_tree.h"
#include "ads/vo.h"
#include "common/types.h"
#include "gas/meter.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::mbtree {

class MbTree {
 public:
  static constexpr int kDefaultFanout = 4;

  explicit MbTree(int fanout = kDefaultFanout);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int fanout() const { return fanout_; }
  size_t height() const;

  /// Root digest (EmptyTreeDigest when empty).
  Hash root_digest() const;

  /// Key boundaries (valid only when non-empty).
  Key lo() const;
  Key hi() const;

  bool Contains(Key key) const;

  /// Inserts a fresh key. Throws std::invalid_argument if the key exists.
  void Insert(Key key, const Hash& value_hash, gas::Meter* meter = nullptr);

  /// Replaces the value hash of an existing key; returns false when absent
  /// (nothing is charged in that case beyond the descent).
  bool Update(Key key, const Hash& value_hash, gas::Meter* meter = nullptr);

  /// Merges a sorted, duplicate-free run of fresh keys (batched digest
  /// maintenance — see file comment).
  void BulkInsert(const ads::EntryList& sorted_entries, gas::Meter* meter = nullptr);

  /// Range query: appends matches to `result`, returns the VO.
  ads::TreeVo RangeQuery(Key lb, Key ub, ads::EntryList* result) const;

  /// In-order dump of all entries (tests / SP bootstrap).
  ads::EntryList AllEntries() const;

  /// Structural self-check; throws std::logic_error on violation.
  void CheckInvariants() const;

  /// SP-side hint, kept for call-site compatibility. Unmetered digest
  /// refreshes are deferred and materialized serially at the first digest
  /// observation (see EnsureFresh); metered calls never touch the pool.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

 private:
  /// Which per-node maintenance charge RefreshNode applies (see file comment).
  enum class ChargeMode { kInsert, kUpdate };

  struct Node {
    bool is_leaf = true;
    std::vector<ads::Entry> entries;                // leaf payload
    std::vector<std::unique_ptr<Node>> children;    // internal payload
    Key lo = 0;
    Key hi = 0;
    Hash content{};
    Hash digest{};

    size_t Occupancy() const { return is_leaf ? entries.size() : children.size(); }
  };

  /// Descends to the leaf responsible for `key`, recording the path
  /// (root..leaf). Descent sloads are folded into the per-node refresh
  /// charges, matching the paper's formulas.
  Node* DescendToLeaf(Key key, std::vector<Node*>* path) const;

  /// Splits `node` (which overflowed) and returns the new right sibling.
  /// The split's gas is charged when the sibling is refreshed.
  std::unique_ptr<Node> SplitNode(Node* node);

  /// Recomputes content/digest/lo/hi of one node from its payload, charging
  /// the per-node maintenance cost for `mode` when metered.
  void RefreshNode(Node* node, gas::Meter* meter, ChargeMode mode);

  /// Structural insert without digest maintenance; marks every node whose
  /// digest became stale with the stale sentinel.
  void InsertStructural(Key key, const Hash& value_hash, gas::Meter* meter);

  /// Recomputes digests bottom-up, refreshing exactly the stale nodes.
  void RefreshDirty(Node* node, gas::Meter* meter, ChargeMode mode);

  /// Materializes digests deferred by unmetered mutations. Unmetered inserts
  /// and bulks (the SP side) only mark paths stale; the fold runs once here,
  /// at the first digest observation, so back-to-back bulks between reads
  /// collapse into a single refresh of the union of their dirty nodes.
  /// Serialized by fresh_mutex_ (concurrent SP readers race only on the
  /// materialization); deliberately runs without the pool — stolen pool work
  /// could re-enter this tree and deadlock (see PartitionChain::EnsureRoot).
  void EnsureFresh() const;

  ads::VoChild QueryNode(const Node* node, Key lb, Key ub,
                         ads::EntryList* result) const;

  void CheckNode(const Node* node, bool is_root, size_t depth,
                 size_t expected_depth) const;

  int fanout_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
  common::ThreadPool* pool_ = nullptr;
  mutable std::mutex fresh_mutex_;
  /// Memoizes metered EntryDigest hashes: a leaf refresh re-hashes all F
  /// entries even when one changed. Consulted only on metered (single-
  /// threaded) refreshes — unmetered SP refreshes may run on pool threads,
  /// where a shared memo would race. Gas is unaffected.
  ads::LeafDigestCache leaf_cache_;
};

}  // namespace gem2::mbtree

#endif  // GEM2_MBTREE_MBTREE_H_
