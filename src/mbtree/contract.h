/// \file contract.h
/// The baseline on-chain ADS of Section IV-A: a fully materialized Merkle
/// B-tree maintained by the smart contract, gas-metered per the paper's
/// MB-tree cost model. The root digest is the contract's VO_chain.
#ifndef GEM2_MBTREE_CONTRACT_H_
#define GEM2_MBTREE_CONTRACT_H_

#include <string>
#include <vector>

#include "chain/contract.h"
#include "gas/meter.h"
#include "mbtree/mbtree.h"

namespace gem2::mbtree {

class MbTreeContract : public chain::Contract {
 public:
  explicit MbTreeContract(std::string name, int fanout = MbTree::kDefaultFanout)
      : chain::Contract(std::move(name)), tree_(fanout) {
    EnableDigestLedger().Set(0, "mbtree.root", tree_.root_digest());
  }

  /// Inserts a fresh object (key must be new).
  void Insert(Key key, const Hash& value_hash, gas::Meter& meter) {
    tree_.Insert(key, value_hash, &meter);
    digest_ledger()->Set(0, "mbtree.root", tree_.root_digest());
  }

  /// Updates an existing object's value hash.
  void Update(Key key, const Hash& value_hash, gas::Meter& meter) {
    if (!tree_.Update(key, value_hash, &meter)) {
      throw std::invalid_argument("MbTreeContract::Update: unknown key");
    }
    digest_ledger()->Set(0, "mbtree.root", tree_.root_digest());
  }

  std::vector<chain::DigestEntry> AuthenticatedDigests() const override {
    return {{"mbtree.root", tree_.root_digest()}};
  }

  const MbTree& tree() const { return tree_; }
  size_t size() const { return tree_.size(); }

 private:
  MbTree tree_;
};

}  // namespace gem2::mbtree

#endif  // GEM2_MBTREE_CONTRACT_H_
