#include "mbtree/mbtree.h"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.h"
#include "crypto/digest.h"
#include "telemetry/telemetry.h"

namespace gem2::mbtree {
namespace {

bool Overlaps(Key a_lo, Key a_hi, Key b_lo, Key b_hi) {
  return a_lo <= b_hi && b_lo <= a_hi;
}

}  // namespace

// Stale nodes are marked by setting their digest to this sentinel; RefreshDirty
// recomputes exactly the marked nodes bottom-up. The all-zero word is not a
// reachable Keccak-256 output for any input we hash.
static const Hash kStaleSentinel{};

MbTree::MbTree(int fanout) : fanout_(fanout) {
  if (fanout_ < 3) throw std::invalid_argument("MB-tree fanout must be >= 3");
}

size_t MbTree::height() const {
  size_t h = 0;
  const Node* n = root_.get();
  while (n != nullptr) {
    ++h;
    n = n->is_leaf ? nullptr : n->children.front().get();
  }
  return h;
}

Hash MbTree::root_digest() const {
  if (root_ == nullptr) return crypto::EmptyTreeDigest();
  EnsureFresh();
  return root_->digest;
}

Key MbTree::lo() const {
  if (root_ == nullptr) throw std::logic_error("empty tree has no boundaries");
  return root_->lo;
}

Key MbTree::hi() const {
  if (root_ == nullptr) throw std::logic_error("empty tree has no boundaries");
  return root_->hi;
}

bool MbTree::Contains(Key key) const {
  const Node* n = root_.get();
  if (n == nullptr) return false;
  while (!n->is_leaf) {
    size_t idx = n->children.size() - 1;
    for (size_t i = 1; i < n->children.size(); ++i) {
      if (key < n->children[i]->lo) {
        idx = i - 1;
        break;
      }
    }
    n = n->children[idx].get();
  }
  for (const ads::Entry& e : n->entries) {
    if (e.key == key) return true;
  }
  return false;
}

MbTree::Node* MbTree::DescendToLeaf(Key key, std::vector<Node*>* path) const {
  Node* n = root_.get();
  while (n != nullptr) {
    if (path != nullptr) path->push_back(n);
    if (n->is_leaf) return n;
    size_t idx = n->children.size() - 1;
    for (size_t i = 1; i < n->children.size(); ++i) {
      if (key < n->children[i]->lo) {
        idx = i - 1;
        break;
      }
    }
    n = n->children[idx].get();
  }
  return nullptr;
}

void MbTree::RefreshNode(Node* node, gas::Meter* meter, ChargeMode mode) {
  if (meter != nullptr) {
    const uint64_t f = static_cast<uint64_t>(fanout_);
    if (mode == ChargeMode::kInsert) {
      // Paper Section IV-A per-level insert maintenance:
      // 2 sstores + 2 supdates + (2F+1) sloads (+ hash, charged below).
      meter->ChargeSload(2 * f + 1);
      meter->ChargeSstore(2);
      meter->ChargeSupdate(2);
    } else {
      // Paper Section V-F per-level update maintenance:
      // 1 supdate + (F+1) sloads (+ hash, charged below).
      meter->ChargeSload(f + 1);
      meter->ChargeSupdate(1);
    }
  }
  std::vector<Hash> digests;
  if (node->is_leaf) {
    digests.reserve(node->entries.size());
    for (const ads::Entry& e : node->entries) {
      if (meter != nullptr) {
        meter->ChargeHash(crypto::EntryDigestBytes());
        digests.push_back(leaf_cache_.Get(e.key, e.value_hash));
      } else {
        digests.push_back(crypto::EntryDigest(e.key, e.value_hash));
      }
    }
    node->lo = node->entries.front().key;
    node->hi = node->entries.back().key;
  } else {
    digests.reserve(node->children.size());
    for (const auto& c : node->children) digests.push_back(c->digest);
    node->lo = node->children.front()->lo;
    node->hi = node->children.back()->hi;
  }
  if (meter != nullptr) {
    meter->ChargeHash(crypto::ContentDigestBytes(digests.size()));
    meter->ChargeHash(crypto::WrapDigestBytes());
  }
  node->content = crypto::ContentDigest(digests);
  node->digest = crypto::WrapDigest(node->lo, node->hi, node->content);
}

std::unique_ptr<MbTree::Node> MbTree::SplitNode(Node* node) {
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    size_t keep = (node->entries.size() + 1) / 2;
    sibling->entries.assign(node->entries.begin() + keep, node->entries.end());
    node->entries.resize(keep);
    sibling->lo = sibling->entries.front().key;
    sibling->hi = sibling->entries.back().key;
    node->hi = node->entries.back().key;
  } else {
    size_t keep = (node->children.size() + 1) / 2;
    sibling->children.reserve(node->children.size() - keep);
    for (size_t i = keep; i < node->children.size(); ++i) {
      sibling->children.push_back(std::move(node->children[i]));
    }
    node->children.resize(keep);
    sibling->lo = sibling->children.front()->lo;
    sibling->hi = sibling->children.back()->hi;
    node->hi = node->children.back()->hi;
  }
  // Boundaries are maintained eagerly so that routing of subsequent
  // structural inserts (BulkInsert defers digest refreshes) stays correct.
  sibling->digest = kStaleSentinel;
  node->digest = kStaleSentinel;
  return sibling;
}

void MbTree::InsertStructural(Key key, const Hash& value_hash, gas::Meter* meter) {
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
    root_->entries.push_back({key, value_hash});
    root_->lo = root_->hi = key;
    root_->digest = kStaleSentinel;
    if (meter != nullptr) meter->ChargeSstore(1);
    ++size_;
    return;
  }

  std::vector<Node*> path;
  Node* leaf = DescendToLeaf(key, &path);

  auto pos = std::lower_bound(leaf->entries.begin(), leaf->entries.end(), key,
                              [](const ads::Entry& e, Key k) { return e.key < k; });
  if (pos != leaf->entries.end() && pos->key == key) {
    throw std::invalid_argument("MbTree::Insert: key already present");
  }
  leaf->entries.insert(pos, {key, value_hash});
  leaf->lo = leaf->entries.front().key;
  leaf->hi = leaf->entries.back().key;
  if (meter != nullptr) meter->ChargeSstore(1);
  ++size_;
  for (Node* n : path) n->digest = kStaleSentinel;

  // Resolve overflows bottom-up.
  for (size_t level = path.size(); level-- > 0;) {
    Node* node = path[level];
    if (node->Occupancy() <= static_cast<size_t>(fanout_)) break;
    std::unique_ptr<Node> sibling = SplitNode(node);
    if (level == 0) {
      // Root split: grow a new root above.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->digest = kStaleSentinel;
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      new_root->lo = new_root->children.front()->lo;
      new_root->hi = new_root->children.back()->hi;
      root_ = std::move(new_root);
      break;
    }
    Node* parent = path[level - 1];
    auto it = std::find_if(parent->children.begin(), parent->children.end(),
                           [&](const std::unique_ptr<Node>& c) { return c.get() == node; });
    parent->children.insert(it + 1, std::move(sibling));
    parent->digest = kStaleSentinel;
  }
}

void MbTree::RefreshDirty(Node* node, gas::Meter* meter, ChargeMode mode) {
  if (node->digest != kStaleSentinel) return;
  if (!node->is_leaf) {
    for (const auto& c : node->children) RefreshDirty(c.get(), meter, mode);
  }
  RefreshNode(node, meter, mode);
}

void MbTree::Insert(Key key, const Hash& value_hash, gas::Meter* meter) {
  TELEMETRY_SPAN("mbtree.insert");
  // A metered op must start from a fresh tree: otherwise RefreshDirty would
  // bill this transaction for nodes staled by earlier unmetered mutations.
  if (meter != nullptr) EnsureFresh();
  InsertStructural(key, value_hash, meter);
  if (meter != nullptr) RefreshDirty(root_.get(), meter, ChargeMode::kInsert);
}

bool MbTree::Update(Key key, const Hash& value_hash, gas::Meter* meter) {
  TELEMETRY_SPAN("mbtree.update");
  if (root_ == nullptr) return false;
  std::vector<Node*> path;
  Node* leaf = DescendToLeaf(key, &path);
  auto pos = std::lower_bound(leaf->entries.begin(), leaf->entries.end(), key,
                              [](const ads::Entry& e, Key k) { return e.key < k; });
  if (pos == leaf->entries.end() || pos->key != key) return false;
  if (meter != nullptr) EnsureFresh();
  pos->value_hash = value_hash;
  if (meter != nullptr) meter->ChargeSupdate(1);  // rewrite the leaf entry word
  for (Node* n : path) n->digest = kStaleSentinel;
  if (meter != nullptr) RefreshDirty(root_.get(), meter, ChargeMode::kUpdate);
  return true;
}

void MbTree::BulkInsert(const ads::EntryList& sorted_entries, gas::Meter* meter) {
  TELEMETRY_SPAN("mbtree.bulk_insert");
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    if (sorted_entries[i - 1].key >= sorted_entries[i].key) {
      throw std::invalid_argument("BulkInsert run must be sorted and duplicate-free");
    }
  }
  if (meter != nullptr) EnsureFresh();
  for (const ads::Entry& e : sorted_entries) {
    InsertStructural(e.key, e.value_hash, meter);
  }
  if (root_ == nullptr) return;
  if (meter != nullptr) RefreshDirty(root_.get(), meter, ChargeMode::kInsert);
}

void MbTree::EnsureFresh() const {
  if (root_ == nullptr) return;
  std::lock_guard<std::mutex> lock(fresh_mutex_);
  if (root_->digest != kStaleSentinel) return;
  MbTree* self = const_cast<MbTree*>(this);
  self->RefreshDirty(self->root_.get(), nullptr, ChargeMode::kInsert);
}

ads::TreeVo MbTree::RangeQuery(Key lb, Key ub, ads::EntryList* result) const {
  ads::TreeVo vo;
  if (root_ == nullptr) {
    vo.empty_tree = true;
    return vo;
  }
  EnsureFresh();
  vo.root = QueryNode(root_.get(), lb, ub, result);
  return vo;
}

ads::VoChild MbTree::QueryNode(const Node* node, Key lb, Key ub,
                               ads::EntryList* result) const {
  if (!Overlaps(node->lo, node->hi, lb, ub)) {
    return ads::VoPruned{node->lo, node->hi, node->content};
  }
  auto out = std::make_unique<ads::VoNode>();
  if (node->is_leaf) {
    out->children.reserve(node->entries.size());
    for (const ads::Entry& e : node->entries) {
      const bool in_range = e.key >= lb && e.key <= ub;
      out->children.push_back(ads::VoEntry{e.key, e.value_hash, in_range});
      if (in_range && result != nullptr) result->push_back(e);
    }
  } else {
    out->children.reserve(node->children.size());
    for (const auto& c : node->children) {
      out->children.push_back(QueryNode(c.get(), lb, ub, result));
    }
  }
  return ads::VoChild(std::move(out));
}

ads::EntryList MbTree::AllEntries() const {
  ads::EntryList all;
  all.reserve(size_);
  struct Walker {
    ads::EntryList* out;
    void Walk(const Node* n) {
      if (n->is_leaf) {
        out->insert(out->end(), n->entries.begin(), n->entries.end());
      } else {
        for (const auto& c : n->children) Walk(c.get());
      }
    }
  } walker{&all};
  if (root_ != nullptr) walker.Walk(root_.get());
  return all;
}

void MbTree::CheckNode(const Node* node, bool is_root, size_t depth,
                       size_t expected_depth) const {
  const size_t occ = node->Occupancy();
  const size_t min_occ = is_root ? (node->is_leaf ? 1 : 2)
                                 : static_cast<size_t>((fanout_ + 1) / 2);
  if (occ < min_occ || occ > static_cast<size_t>(fanout_)) {
    throw std::logic_error("MB-tree node occupancy out of bounds");
  }
  if (node->is_leaf) {
    if (depth != expected_depth) throw std::logic_error("leaves at differing depths");
    for (size_t i = 1; i < node->entries.size(); ++i) {
      if (node->entries[i - 1].key >= node->entries[i].key) {
        throw std::logic_error("leaf entries not strictly sorted");
      }
    }
    if (node->lo != node->entries.front().key || node->hi != node->entries.back().key) {
      throw std::logic_error("leaf boundaries inconsistent");
    }
  } else {
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Node* c = node->children[i].get();
      if (i > 0 && node->children[i - 1]->hi >= c->lo) {
        throw std::logic_error("child ranges overlap or out of order");
      }
      CheckNode(c, false, depth + 1, expected_depth);
    }
    if (node->lo != node->children.front()->lo ||
        node->hi != node->children.back()->hi) {
      throw std::logic_error("internal boundaries inconsistent");
    }
  }
  // Digest must be fresh and correct.
  std::vector<Hash> digests;
  if (node->is_leaf) {
    for (const ads::Entry& e : node->entries) {
      digests.push_back(crypto::EntryDigest(e.key, e.value_hash));
    }
  } else {
    for (const auto& c : node->children) digests.push_back(c->digest);
  }
  Hash content = crypto::ContentDigest(digests);
  if (node->content != content ||
      node->digest != crypto::WrapDigest(node->lo, node->hi, content)) {
    throw std::logic_error("node digest stale or incorrect");
  }
}

void MbTree::CheckInvariants() const {
  if (root_ == nullptr) {
    if (size_ != 0) throw std::logic_error("size mismatch for empty tree");
    return;
  }
  EnsureFresh();
  CheckNode(root_.get(), true, 1, height());
  if (AllEntries().size() != size_) throw std::logic_error("size mismatch");
}

}  // namespace gem2::mbtree
