/// \file engine.h
/// The complete GEM2-tree: a fully-structured MB-tree P0 plus the exponential
/// SMB partition chain (paper Section V). One engine instance serves either
/// side of the system: attach a metered storage and pass meters to run it as
/// the smart contract, or run it bare as the service provider's mirror.
#ifndef GEM2_GEM2_ENGINE_H_
#define GEM2_GEM2_ENGINE_H_

#include <string>
#include <vector>

#include "ads/query.h"
#include "chain/contract.h"
#include "gem2/options.h"
#include "gem2/partition_chain.h"
#include "mbtree/mbtree.h"

namespace gem2::gem2tree {

class Gem2Engine {
 public:
  explicit Gem2Engine(Gem2Options options = {},
                      chain::MeteredStorage* storage = nullptr,
                      uint32_t region_base = 0)
      : p0_(options.fanout), chain_(options, &p0_, storage, region_base) {}

  /// Algorithm 1.
  void Insert(Key key, const Hash& value_hash, gas::Meter* meter = nullptr) {
    chain_.Insert(key, value_hash, meter);
  }

  /// Algorithm 3.
  void Update(Key key, const Hash& value_hash, gas::Meter* meter = nullptr) {
    chain_.Update(key, value_hash, meter);
  }

  bool Contains(Key key) const { return chain_.ContainsKey(key); }
  uint64_t size() const { return chain_.total_inserted(); }

  /// VO_chain content: P0's root plus every non-empty partition tree root.
  std::vector<chain::DigestEntry> Digests() const {
    std::vector<chain::DigestEntry> out;
    out.push_back({"P0", p0_.root_digest()});
    chain_.AppendDigests("", &out);
    return out;
  }

  /// Algorithm 5: range-query P0 and every partition tree.
  std::vector<ads::TreeAnswer> Query(Key lb, Key ub) const {
    std::vector<ads::TreeAnswer> out;
    ads::TreeAnswer p0_answer;
    p0_answer.label = "P0";
    p0_answer.vo = p0_.RangeQuery(lb, ub, &p0_answer.result);
    out.push_back(std::move(p0_answer));
    chain_.Query(lb, ub, "", &out);
    return out;
  }

  const mbtree::MbTree& p0() const { return p0_; }
  const PartitionChain& partition_chain() const { return chain_; }
  PartitionChain& partition_chain() { return chain_; }

  /// SP-side only (see PartitionChain::set_thread_pool).
  void set_thread_pool(common::ThreadPool* pool) {
    p0_.set_thread_pool(pool);
    chain_.set_thread_pool(pool);
  }

  void CheckInvariants() const {
    p0_.CheckInvariants();
    chain_.CheckInvariants();
  }

 private:
  mbtree::MbTree p0_;
  PartitionChain chain_;
};

/// The GEM2-tree smart contract (on-chain side of Fig. 4).
class Gem2Contract : public chain::Contract {
 public:
  explicit Gem2Contract(std::string name, Gem2Options options = {})
      : chain::Contract(std::move(name)), engine_(options, &storage(), 0) {
    // Ledger-maintained committed digests: the partition chain mirrors every
    // part_table root write (orders 3+ = base 1 + 2*partition), and P0 sits
    // ahead of them at order 0 — reproducing Digests() order exactly.
    chain::DigestLedger& ledger = EnableDigestLedger();
    engine_.partition_chain().AttachLedger(&ledger, "", 1);
    ledger.Set(0, "P0", engine_.p0().root_digest());
  }

  void Insert(Key key, const Hash& value_hash, gas::Meter& meter) {
    engine_.Insert(key, value_hash, &meter);
    digest_ledger()->Set(0, "P0", engine_.p0().root_digest());
  }

  void Update(Key key, const Hash& value_hash, gas::Meter& meter) {
    engine_.Update(key, value_hash, &meter);
    digest_ledger()->Set(0, "P0", engine_.p0().root_digest());
  }

  std::vector<chain::DigestEntry> AuthenticatedDigests() const override {
    return engine_.Digests();
  }

  const Gem2Engine& engine() const { return engine_; }
  uint64_t size() const { return engine_.size(); }

 private:
  Gem2Engine engine_;
};

}  // namespace gem2::gem2tree

#endif  // GEM2_GEM2_ENGINE_H_
