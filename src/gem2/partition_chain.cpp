#include "gem2/partition_chain.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/digest.h"
#include "telemetry/telemetry.h"

namespace gem2::gem2tree {
namespace {

// Storage regions, relative to the chain's region base.
constexpr uint32_t kRegionMeta = 0;         // 0: count, 1: max
constexpr uint32_t kRegionKeyMap = 1;       // key -> loc
constexpr uint32_t kRegionKeyStorage = 2;   // loc -> key
constexpr uint32_t kRegionValueStorage = 3; // key -> h(value)
constexpr uint32_t kRegionPartTable = 4;    // partition*4 + {0..3}

constexpr uint64_t kMetaCount = 0;
constexpr uint64_t kMetaMax = 1;

Word PackRange(Loc start, Loc end) {
  Word w{};
  for (int i = 0; i < 8; ++i) {
    w[23 - i] = static_cast<uint8_t>((start >> (8 * i)) & 0xff);
    w[31 - i] = static_cast<uint8_t>((end >> (8 * i)) & 0xff);
  }
  return w;
}

Word HashWord(const Hash& h) {
  Word w;
  std::copy(h.begin(), h.end(), w.begin());
  return w;
}

}  // namespace

PartitionChain::PartitionChain(Gem2Options options, mbtree::MbTree* p0,
                               chain::MeteredStorage* storage, uint32_t region_base)
    : options_(options), p0_(p0), storage_(storage), region_base_(region_base) {
  if (p0_ == nullptr) throw std::invalid_argument("PartitionChain requires a P0 tree");
  if (options_.m < 1 || options_.smax < 2 * options_.m) {
    throw std::invalid_argument("invalid GEM2 options: need Smax >= 2*M >= 2");
  }
  parts_.resize(1);  // parts_[0] unused
}

uint64_t PartitionChain::Occupied(const PartTree& t) const {
  if (!t.allocated()) return 0;
  const Loc hi = std::min<Loc>(t.end, count_);
  return hi >= t.start ? hi - t.start + 1 : 0;
}

uint64_t PartitionChain::partition_size() const {
  uint64_t total = 0;
  for (uint64_t i = 1; i <= max_; ++i) {
    total += Occupied(parts_[i].tl) + Occupied(parts_[i].tr);
  }
  return total;
}

ads::EntryList PartitionChain::CollectEntries(const PartTree& t,
                                              gas::Meter* meter) const {
  ads::EntryList entries;
  const uint64_t n = Occupied(t);
  entries.reserve(n);
  for (Loc loc = t.start; loc < t.start + n; ++loc) {
    Key key;
    if (storage_ != nullptr && meter != nullptr) {
      // One sload per object record (paper's SMB rebuild accounting).
      Word w = storage_->Load(
          chain::Slot{region_base_ + kRegionKeyStorage, loc}, *meter);
      key = KeyFromWord(w);
    } else {
      key = key_by_loc_[loc - 1];
    }
    entries.push_back({key, value_by_key_.at(key)});
  }
  return entries;
}

void PartitionChain::WriteRange(uint64_t partition, bool left, Loc start, Loc end,
                                gas::Meter* meter) {
  PartTree& t = left ? parts_[partition].tl : parts_[partition].tr;
  t.start = start;
  t.end = end;
  {
    std::lock_guard<std::mutex> lock(sp_mutex_);
    t.sp_cache.reset();
  }
  if (storage_ != nullptr && meter != nullptr) {
    const uint64_t idx = partition * 4 + (left ? 0 : 2);
    storage_->Store(chain::Slot{region_base_ + kRegionPartTable, idx},
                    start == 0 ? chain::kZeroWord : PackRange(start, end), *meter);
  }
}

void PartitionChain::WriteRoot(uint64_t partition, bool left, const Hash& root,
                               gas::Meter* meter) {
  PartTree& t = left ? parts_[partition].tl : parts_[partition].tr;
  t.root = root;
  t.root_dirty = false;
  if (storage_ != nullptr && meter != nullptr) {
    const uint64_t idx = partition * 4 + (left ? 1 : 3);
    const bool zero = root == Hash{};
    storage_->Store(chain::Slot{region_base_ + kRegionPartTable, idx},
                    zero ? chain::kZeroWord : HashWord(root), *meter);
  }
  if (ledger_ != nullptr) {
    // Every occupancy change funnels through a root write (BuildTree or
    // EmptyTree), so evaluating the non-empty filter here keeps the ledger
    // in lockstep with AppendDigests.
    const uint64_t order = ledger_order_base_ + 2 * partition + (left ? 0 : 1);
    if (Occupied(t) > 0) {
      ledger_->Set(order,
                   ledger_prefix_ + "P" + std::to_string(partition) +
                       (left ? ".Tl" : ".Tr"),
                   root);
    } else {
      ledger_->Erase(order);
    }
  }
}

void PartitionChain::AttachLedger(chain::DigestLedger* ledger,
                                  std::string label_prefix, uint64_t order_base) {
  ledger_ = ledger;
  ledger_prefix_ = std::move(label_prefix);
  ledger_order_base_ = order_base;
}

void PartitionChain::ReadRange(uint64_t partition, bool left,
                               gas::Meter* meter) const {
  if (storage_ != nullptr && meter != nullptr) {
    const uint64_t idx = partition * 4 + (left ? 0 : 2);
    storage_->Load(chain::Slot{region_base_ + kRegionPartTable, idx}, *meter);
  }
}

void PartitionChain::BuildTree(uint64_t partition, PartTree* t, gas::Meter* meter) {
  TELEMETRY_SPAN("gem2.build_tree");
  const bool left = (t == &parts_[partition].tl);
  if (meter == nullptr && storage_ == nullptr) {
    // SP mirror: defer everything. Rebuilding eagerly would make every
    // insert O(n) (collect + sort + hash the whole tree); instead the stale
    // query cache is dropped and the root marked dirty, to be derived by
    // EnsureRoot / SpTree at the next observation point. The derived values
    // are bit-identical to an eager build — both are pure functions of the
    // tree's current sorted run.
    std::lock_guard<std::mutex> lock(sp_mutex_);
    t->sp_cache.reset();
    t->root_dirty = true;
    return;
  }
  ads::EntryList entries = CollectEntries(*t, meter);
  if (meter != nullptr) meter->ChargeSortCost(entries.size());
  std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
  const Hash root =
      ads::CanonicalRootDigest(entries, options_.fanout, meter, &leaf_cache_);
  {
    std::lock_guard<std::mutex> lock(sp_mutex_);
    t->sp_cache.reset();
  }
  WriteRoot(partition, left, root, meter);
}

void PartitionChain::EmptyTree(uint64_t partition, PartTree* t, gas::Meter* meter) {
  const bool left = (t == &parts_[partition].tl);
  WriteRange(partition, left, 0, 0, meter);
  WriteRoot(partition, left, Hash{}, meter);
  {
    std::lock_guard<std::mutex> lock(sp_mutex_);
    t->sp_cache.reset();
  }
}

void PartitionChain::BulkToP0(gas::Meter* meter) {
  TELEMETRY_SPAN("gem2.bulk_to_p0");
  Partition& p1 = parts_[1];
  ads::EntryList entries = CollectEntries(p1.tl, meter);
  ads::EntryList right = CollectEntries(p1.tr, meter);
  entries.insert(entries.end(), right.begin(), right.end());
  if (meter != nullptr) meter->ChargeSortCost(entries.size());
  std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
  p0_->BulkInsert(entries, meter);
  bulked_ += entries.size();
}

bool PartitionChain::Merge(uint64_t i, gas::Meter* meter) {
  TELEMETRY_SPAN("gem2.merge");
  Partition& p = parts_[i];
  if (i == 1) {
    const uint64_t length = Occupied(p.tl) + Occupied(p.tr);
    if (length < options_.smax) {
      // Combine P1's two trees into one twice-as-large SMB-tree.
      WriteRange(1, true, p.tl.start, p.tr.end, meter);
      BuildTree(1, &p.tl, meter);
      EmptyTree(1, &p.tr, meter);
      return true;
    }
    // P1 is as large as allowed: migrate it into the MB-tree P0.
    BulkToP0(meter);
    EmptyTree(1, &p.tl, meter);
    EmptyTree(1, &p.tr, meter);
    return false;
  }

  Partition& prev = parts_[i - 1];
  if (!prev.tr.allocated()) {
    // The preceding partition has a free right slot: move Pi's combined
    // objects there.
    WriteRange(i - 1, false, p.tl.start, p.tr.end, meter);
    BuildTree(i - 1, &prev.tr, meter);
    EmptyTree(i, &p.tl, meter);
    EmptyTree(i, &p.tr, meter);
    return false;
  }

  const bool ret = Merge(i - 1, meter);
  if (ret) {
    // Every partition doubles (max will increment): combine Pi's trees.
    WriteRange(i, true, p.tl.start, p.tr.end, meter);
    BuildTree(i, &p.tl, meter);
    EmptyTree(i, &p.tr, meter);
    return true;
  }
  // The preceding partition was vacated: move Pi's combined objects into it.
  WriteRange(i - 1, true, p.tl.start, p.tr.end, meter);
  BuildTree(i - 1, &prev.tl, meter);
  EmptyTree(i, &p.tl, meter);
  EmptyTree(i, &p.tr, meter);
  return false;
}

void PartitionChain::Insert(Key key, const Hash& value_hash, gas::Meter* meter) {
  TELEMETRY_SPAN("gem2.insert");
  if (loc_by_key_.count(key) != 0) {
    throw std::invalid_argument("PartitionChain::Insert: key already present");
  }
  const uint64_t m = options_.m;

  // Algorithm 1 lines 1-4: append the object.
  Loc loc;
  if (storage_ != nullptr && meter != nullptr) {
    loc = storage_->LoadUint(chain::Slot{region_base_ + kRegionMeta, kMetaCount},
                             *meter) +
          1;
    storage_->Store(chain::Slot{region_base_ + kRegionKeyMap,
                                static_cast<uint64_t>(key)},
                    WordFromUint64(loc), *meter);
    storage_->Store(chain::Slot{region_base_ + kRegionKeyStorage, loc},
                    WordFromKey(key), *meter);
    storage_->Store(chain::Slot{region_base_ + kRegionValueStorage,
                                static_cast<uint64_t>(key)},
                    HashWord(value_hash), *meter);
    storage_->StoreUint(chain::Slot{region_base_ + kRegionMeta, kMetaCount}, loc,
                        *meter);
  } else {
    loc = count_ + 1;
  }
  count_ = loc;
  key_by_loc_.push_back(key);
  loc_by_key_.emplace(key, loc);
  value_by_key_[key] = value_hash;

  // Algorithm 1 lines 5-7: bootstrap the first partition.
  if (max_ == 0) {
    max_ = 1;
    parts_.resize(2);
    if (storage_ != nullptr && meter != nullptr) {
      storage_->StoreUint(chain::Slot{region_base_ + kRegionMeta, kMetaMax}, max_,
                          *meter);
    }
    WriteRange(1, true, 1, m, meter);
    WriteRange(1, false, m + 1, 2 * m, meter);
  }

  // Algorithm 1 lines 8-11: the common case — the object lands in P_max.
  Partition& pmax = parts_[max_];
  ReadRange(max_, true, meter);
  if (loc >= pmax.tl.start && loc <= pmax.tl.end) {
    BuildTree(max_, &pmax.tl, meter);
    return;
  }
  ReadRange(max_, false, meter);
  if (loc >= pmax.tr.start && loc <= pmax.tr.end) {
    BuildTree(max_, &pmax.tr, meter);
    return;
  }

  // Algorithm 1 lines 13-17: P_max is full — merge, then open a fresh P_max.
  const bool ret = Merge(max_, meter);
  if (ret) {
    ++max_;
    parts_.resize(max_ + 1);
    if (storage_ != nullptr && meter != nullptr) {
      storage_->StoreUint(chain::Slot{region_base_ + kRegionMeta, kMetaMax}, max_,
                          *meter);
    }
  }
  WriteRange(max_, true, loc, loc + m - 1, meter);
  WriteRange(max_, false, loc + m, loc + 2 * m - 1, meter);
  BuildTree(max_, &parts_[max_].tl, meter);
}

int PartitionChain::LocatePartition(Loc loc, gas::Meter* meter) const {
  if (max_ == 0) return 0;
  // Read P_max's LocTr entry (Algorithm 4 line 2).
  ReadRange(max_, false, meter);
  if (meter != nullptr) meter->ChargeMem(max_);
  uint64_t len = parts_[max_].tr.end;
  uint64_t cap = 2 * options_.m;
  for (uint64_t p = max_; p >= 1; --p) {
    if (len % cap == 0) {
      // Partition p spans two SMB-trees.
      if (loc >= len - cap + 1 && loc <= len) return static_cast<int>(p);
      len -= cap;
    } else {
      // Partition p spans a single SMB-tree.
      if (loc >= len - cap / 2 + 1 && loc <= len) return static_cast<int>(p);
      len -= cap / 2;
    }
    cap *= 2;
  }
  return 0;
}

void PartitionChain::Update(Key key, const Hash& value_hash, gas::Meter* meter) {
  TELEMETRY_SPAN("gem2.update");
  auto it = loc_by_key_.find(key);
  if (it == loc_by_key_.end()) {
    throw std::invalid_argument("PartitionChain::Update: unknown key");
  }
  // Algorithm 3 lines 1-2: rewrite value_storage, read key_map.
  value_by_key_[key] = value_hash;
  if (storage_ != nullptr && meter != nullptr) {
    storage_->Store(chain::Slot{region_base_ + kRegionValueStorage,
                                static_cast<uint64_t>(key)},
                    HashWord(value_hash), *meter);
    storage_->Load(chain::Slot{region_base_ + kRegionKeyMap,
                               static_cast<uint64_t>(key)},
                   *meter);
  }
  const Loc loc = it->second;
  const int p = LocatePartition(loc, meter);
  if (p == 0) {
    if (!p0_->Update(key, value_hash, meter)) {
      throw std::logic_error("PartitionChain::Update: key missing from P0");
    }
    return;
  }
  Partition& part = parts_[static_cast<uint64_t>(p)];
  ReadRange(static_cast<uint64_t>(p), true, meter);
  const bool left = loc >= part.tl.start && loc <= part.tl.end;
  PartTree* t = left ? &part.tl : &part.tr;
  if (meter == nullptr && storage_ == nullptr && t->sp_cache != nullptr) {
    // SP mirror fast path: the partition tree is already materialized, so a
    // value update only needs the leaf-to-root path rehashed — O(F log N)
    // hashes instead of the full collect+sort+rebuild. Runs under the query
    // engine's exclusive lock, so no reader observes the intermediate state.
    if (t->sp_cache->UpdateValueHash(key, value_hash)) {
      WriteRoot(static_cast<uint64_t>(p), left, t->sp_cache->root_digest(), meter);
      return;
    }
  }
  BuildTree(static_cast<uint64_t>(p), t, meter);
}

void PartitionChain::AppendDigests(const std::string& prefix,
                                   std::vector<chain::DigestEntry>* out) const {
  for (uint64_t i = 1; i <= max_; ++i) {
    const Partition& p = parts_[i];
    if (Occupied(p.tl) > 0) {
      EnsureRoot(p.tl);
      out->push_back({prefix + "P" + std::to_string(i) + ".Tl", p.tl.root});
    }
    if (Occupied(p.tr) > 0) {
      EnsureRoot(p.tr);
      out->push_back({prefix + "P" + std::to_string(i) + ".Tr", p.tr.root});
    }
  }
}

void PartitionChain::EnsureRoot(const PartTree& t) const {
  std::lock_guard<std::mutex> lock(sp_mutex_);
  if (!t.root_dirty) return;
  if (t.sp_cache != nullptr) {
    // A query already materialized the tree; its root is the canonical one.
    t.root = t.sp_cache->root_digest();
    t.root_dirty = false;
    return;
  }
  // Serial canonical computation, deliberately without the pool: everything
  // happens under sp_mutex_, and a pool fan-out from inside the lock could
  // steal work that re-enters SpTree and self-deadlock.
  ads::EntryList entries = CollectEntries(t, nullptr);
  std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
  t.root = ads::CanonicalRootDigest(entries, options_.fanout, nullptr);
  t.root_dirty = false;
}

const ads::StaticTree& PartitionChain::SpTree(const PartTree& t) const {
  {
    std::lock_guard<std::mutex> lock(sp_mutex_);
    if (t.sp_cache != nullptr) return *t.sp_cache;
  }
  // Build outside the lock: the build may fan out onto the thread pool, and
  // a pool thread waiting in ParallelFor steals arbitrary queued work — work
  // that could itself call SpTree. Holding sp_mutex_ across the build would
  // make that re-entry a self-deadlock. Racing builders produce bit-identical
  // trees; the first to publish wins and the loser's copy is dropped.
  ads::EntryList entries = CollectEntries(t, nullptr);
  std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
  auto fresh =
      std::make_unique<ads::StaticTree>(std::move(entries), options_.fanout, pool_);
  std::lock_guard<std::mutex> lock(sp_mutex_);
  if (t.sp_cache == nullptr) t.sp_cache = std::move(fresh);
  return *t.sp_cache;
}

void PartitionChain::Query(Key lb, Key ub, const std::string& prefix,
                           std::vector<ads::TreeAnswer>* out) const {
  for (uint64_t i = 1; i <= max_; ++i) {
    const Partition& p = parts_[i];
    for (const bool left : {true, false}) {
      const PartTree& t = left ? p.tl : p.tr;
      if (Occupied(t) == 0) continue;
      ads::TreeAnswer answer;
      answer.label = prefix + "P" + std::to_string(i) + (left ? ".Tl" : ".Tr");
      answer.vo = SpTree(t).RangeQuery(lb, ub, &answer.result);
      out->push_back(std::move(answer));
    }
  }
}

PartitionChain::TreeInfo PartitionChain::tree_info(uint64_t partition,
                                                   bool left) const {
  TreeInfo info;
  if (partition == 0 || partition > max_) return info;
  const PartTree& t = left ? parts_[partition].tl : parts_[partition].tr;
  EnsureRoot(t);
  info.start = t.start;
  info.end = t.end;
  info.root = t.root;
  info.occupied = Occupied(t);
  return info;
}

void PartitionChain::CheckInvariants() const {
  uint64_t covered = 0;
  Loc prev_end = 0;
  for (uint64_t i = 1; i <= max_; ++i) {
    for (const bool left : {true, false}) {
      const PartTree& t = left ? parts_[i].tl : parts_[i].tr;
      if (!t.allocated()) continue;
      if (t.end < t.start) throw std::logic_error("inverted tree range");
      const uint64_t span = t.end - t.start + 1;
      if (span % options_.m != 0 || (span / options_.m) == 0 ||
          ((span / options_.m) & (span / options_.m - 1)) != 0) {
        throw std::logic_error("tree span not a power-of-two multiple of M");
      }
      if (t.start <= prev_end) {
        throw std::logic_error("partition ranges out of ascending order");
      }
      prev_end = t.end;
      // Stored root must equal the on-the-fly recomputation.
      ads::EntryList entries = CollectEntries(t, nullptr);
      std::sort(entries.begin(), entries.end(), ads::EntryKeyLess);
      const uint64_t occ = Occupied(t);
      if (occ > 0) {
        EnsureRoot(t);
        Hash expect = ads::CanonicalRootDigest(entries, options_.fanout, nullptr);
        if (expect != t.root) throw std::logic_error("stored SMB root stale");
      }
      covered += occ;
      // Every occupied loc must locate back to this partition.
      for (Loc loc = t.start; loc < t.start + occ; ++loc) {
        if (LocatePartition(loc, nullptr) != static_cast<int>(i)) {
          throw std::logic_error("LocatePartition disagrees with part_table");
        }
      }
    }
  }
  if (covered + bulked_ != count_) {
    throw std::logic_error("objects lost between partitions and P0");
  }
  // Locations below every partition must resolve to P0.
  for (Loc loc = 1; loc <= count_ && loc <= 4 * options_.m; ++loc) {
    bool in_partition = false;
    for (uint64_t i = 1; i <= max_ && !in_partition; ++i) {
      for (const bool left : {true, false}) {
        const PartTree& t = left ? parts_[i].tl : parts_[i].tr;
        if (t.allocated() && loc >= t.start && loc <= t.end) in_partition = true;
      }
    }
    const int located = LocatePartition(loc, nullptr);
    if (!in_partition && located != 0) {
      throw std::logic_error("LocatePartition claims a partition for a P0 loc");
    }
  }
}

}  // namespace gem2::gem2tree
