/// \file options.h
/// Tuning parameters of the GEM2-tree (paper Section VII-A defaults).
#ifndef GEM2_GEM2_OPTIONS_H_
#define GEM2_GEM2_OPTIONS_H_

#include <cstdint>

namespace gem2::gem2tree {

struct Gem2Options {
  /// M: maximum size of the smallest SMB-tree (paper default 8).
  uint64_t m = 8;
  /// Smax: upper bound on an SMB-tree partition's total size; once the
  /// largest partition reaches this, its objects are bulk-inserted into the
  /// fully-structured MB-tree P0 (paper default 2048).
  uint64_t smax = 2048;
  /// Fanout of both the canonical SMB-trees and the P0 MB-tree (paper: 4).
  int fanout = 4;
};

}  // namespace gem2::gem2tree

#endif  // GEM2_GEM2_OPTIONS_H_
