/// \file partition_chain.h
/// The exponential chain of structure-suppressed SMB-tree partitions that is
/// the core of the GEM2-tree (paper Section V, Algorithms 1-4).
///
/// A chain owns the append-only key log (`key_storage`), the key->location
/// map (`key_map`), the value-hash store (`value_storage`) and the partition
/// index (`part_table`). Partition P_max receives new objects in SMB-trees of
/// size M; full partitions merge gracefully downward into exponentially larger
/// SMB-trees; once the largest partition reaches Smax its objects are
/// bulk-inserted into the fully-structured MB-tree P0 (owned by the caller —
/// the GEM2*-tree shares a single P0 across many chains).
///
/// One object serves both sides of the system: with a gas meter and a metered
/// storage attached it *is* the smart-contract state machine (every storage
/// word the algorithms touch is charged per Table I); with neither it is the
/// service provider's mirror, which additionally materializes each partition
/// tree lazily (as a canonical StaticTree) to answer range queries.
#ifndef GEM2_GEM2_PARTITION_CHAIN_H_
#define GEM2_GEM2_PARTITION_CHAIN_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ads/entry.h"
#include "ads/query.h"
#include "ads/static_tree.h"
#include "chain/contract.h"
#include "chain/storage.h"
#include "common/types.h"
#include "gas/meter.h"
#include "gem2/options.h"
#include "mbtree/mbtree.h"

namespace gem2::gem2tree {

class PartitionChain {
 public:
  /// `p0` receives bulk-inserted overflow (not owned). `storage` is the
  /// contract storage to meter against (nullptr on the SP side);
  /// `region_base` namespaces this chain's storage regions so several chains
  /// (GEM2*-tree regions) can share one contract storage.
  PartitionChain(Gem2Options options, mbtree::MbTree* p0,
                 chain::MeteredStorage* storage, uint32_t region_base);

  /// Algorithm 1: insert a fresh key.
  void Insert(Key key, const Hash& value_hash, gas::Meter* meter);

  /// Algorithm 3: update the value of an existing key (which may live in a
  /// partition SMB-tree or have migrated into P0).
  void Update(Key key, const Hash& value_hash, gas::Meter* meter);

  /// Algorithm 4: partition index for a storage location (0 = P0). Charges
  /// one sload (P_max's range) plus in-memory arithmetic when metered.
  int LocatePartition(Loc loc, gas::Meter* meter) const;

  bool ContainsKey(Key key) const { return loc_by_key_.count(key) != 0; }

  /// Appends one DigestEntry per non-empty partition tree, labelled
  /// "<prefix>P<i>.Tl" / "...Tr" (the part_table side of VO_chain).
  void AppendDigests(const std::string& prefix,
                     std::vector<chain::DigestEntry>* out) const;

  /// Contract side only: mirrors every part_table root write into `ledger`
  /// (not owned), so the environment can snapshot committed digests without
  /// walking the ADS. Entry order is `order_base + 2*partition + (Tl ? 0:1)`,
  /// which reproduces AppendDigests' ascending (partition, Tl, Tr) order;
  /// labels are "<label_prefix>P<i>.Tl"/".Tr". A tree whose occupancy drops
  /// to zero erases its entry, matching AppendDigests' non-empty filter.
  void AttachLedger(chain::DigestLedger* ledger, std::string label_prefix,
                    uint64_t order_base);

  /// Algorithm 5 (partition part): queries every non-empty partition tree.
  void Query(Key lb, Key ub, const std::string& prefix,
             std::vector<ads::TreeAnswer>* out) const;

  uint64_t max_index() const { return max_; }
  /// Total objects ever inserted through this chain (key_storage length).
  uint64_t total_inserted() const { return count_; }
  /// Objects currently indexed by partition SMB-trees (rest are in P0).
  uint64_t partition_size() const;
  /// Objects this chain has bulk-inserted into P0 so far.
  uint64_t bulked_to_p0() const { return bulked_; }

  const Gem2Options& options() const { return options_; }

  /// SP-side only: tree materializations use `pool` for parallel digest
  /// computation. Never set on a metered (contract) chain — the metered code
  /// path stays strictly single-threaded so gas charging is deterministic.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Test introspection.
  struct TreeInfo {
    Loc start = 0;  // 0 = tree absent
    Loc end = 0;
    Hash root{};
    uint64_t occupied = 0;
  };
  TreeInfo tree_info(uint64_t partition, bool left) const;

  /// Structural self-check: contiguous ranges, power-of-two tree sizes,
  /// on-the-fly roots matching stored roots, LocatePartition consistency.
  void CheckInvariants() const;

 private:
  struct PartTree {
    Loc start = 0;
    Loc end = 0;
    /// On the SP mirror the root is computed lazily: BuildTree only marks it
    /// dirty, and EnsureRoot derives it at the first observation point
    /// (digests, tree_info, invariant checks). Both fields are guarded by
    /// sp_mutex_ on the read side; mutation paths are exclusive already.
    mutable Hash root{};
    mutable bool root_dirty = false;
    mutable std::unique_ptr<ads::StaticTree> sp_cache;

    bool allocated() const { return start != 0; }
  };
  struct Partition {
    PartTree tl;
    PartTree tr;
  };

  /// Number of occupied locations in a tree's range.
  uint64_t Occupied(const PartTree& t) const;

  /// Collects the (key, value_hash) entries in [t.start, min(t.end, count)],
  /// charging one sload per object when metered.
  ads::EntryList CollectEntries(const PartTree& t, gas::Meter* meter) const;

  /// BuildSMBTree: recomputes `t`'s root on the fly and rewrites its
  /// part_table hash slot.
  void BuildTree(uint64_t partition, PartTree* t, gas::Meter* meter);

  /// Algorithm 2. Returns whether the caller must increment `max`.
  bool Merge(uint64_t i, gas::Meter* meter);

  /// Zeroes a tree's part_table slots.
  void EmptyTree(uint64_t partition, PartTree* t, gas::Meter* meter);

  /// Bulk-inserts partition 1's objects into P0 (sorted run).
  void BulkToP0(gas::Meter* meter);

  // part_table storage plumbing (no-ops without attached storage).
  void WriteRange(uint64_t partition, bool left, Loc start, Loc end,
                  gas::Meter* meter);
  void WriteRoot(uint64_t partition, bool left, const Hash& root,
                 gas::Meter* meter);
  void ReadRange(uint64_t partition, bool left, gas::Meter* meter) const;

  /// Lazily materializes a partition tree for SP queries. Thread-safe for
  /// concurrent readers: the cache pointer is published under sp_mutex_, and
  /// the (possibly pool-parallel) build happens outside the lock so pool
  /// work-stealing can never re-enter a held mutex. Losing a materialization
  /// race wastes one build but both trees are bit-identical.
  const ads::StaticTree& SpTree(const PartTree& t) const;

  /// SP side: computes `t.root` if BuildTree deferred it. Serial canonical
  /// computation held entirely under sp_mutex_ (no pool, so no re-entry);
  /// reuses an already-materialized sp_cache root when available. A lazily
  /// derived root is bit-identical to the eager one — it is a pure function
  /// of the tree's current sorted run.
  void EnsureRoot(const PartTree& t) const;

  Gem2Options options_;
  mbtree::MbTree* p0_;
  chain::MeteredStorage* storage_;
  uint32_t region_base_;
  common::ThreadPool* pool_ = nullptr;
  mutable std::mutex sp_mutex_;  // guards every PartTree::sp_cache pointer
                                 // and lazy root/root_dirty reads

  chain::DigestLedger* ledger_ = nullptr;  // contract side, optional
  std::string ledger_prefix_;
  uint64_t ledger_order_base_ = 0;
  /// Memoizes metered EntryDigest hashes across merge cascades (gas charges
  /// are unaffected; see ads::LeafDigestCache).
  ads::LeafDigestCache leaf_cache_;

  uint64_t count_ = 0;   // key_storage length
  uint64_t bulked_ = 0;  // objects migrated into P0
  uint64_t max_ = 0;     // number of partitions
  std::vector<Partition> parts_;  // 1-based; parts_[0] unused
  std::vector<Key> key_by_loc_;   // key_storage mirror (loc-1 indexed)
  std::unordered_map<Key, Loc> loc_by_key_;    // key_map mirror
  std::unordered_map<Key, Hash> value_by_key_; // value_storage mirror
};

}  // namespace gem2::gem2tree

#endif  // GEM2_GEM2_PARTITION_CHAIN_H_
