#include "core/query_engine.h"

#include <mutex>

#include "common/thread_pool.h"
#include "core/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::core {

SpQueryEngine::SpQueryEngine(RangeStore* db, common::ThreadPool* pool)
    : db_(db), pool_(pool != nullptr ? pool : &common::ThreadPool::Global()) {
  // Scoped install: the store builds SP-side trees on our pool while the
  // engine exists, and reverts to its own configured pool afterwards.
  pool_scope_.emplace(*db_, pool_);
}

SpQueryEngine::~SpQueryEngine() = default;

template <typename Fn>
chain::TxReceipt SpQueryEngine::Write(const char* span_name, Fn&& fn) {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  telemetry::Span span(span_name);
  const uint64_t t0 = telemetry::Tracer::NowNs();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  chain::TxReceipt receipt = fn();
  // Publish the new snapshot before readers can acquire the lock; acq_rel
  // pairs with the acquire load in epoch().
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  auto& metrics = telemetry::MetricsRegistry::Global();
  metrics.counter("sp_engine.writes").Add(1);
  metrics.histogram("sp_engine.write_ns").Observe(telemetry::Tracer::NowNs() - t0);
  return receipt;
}

chain::TxReceipt SpQueryEngine::Insert(const Object& object) {
  return Write("sp_engine.insert", [&] { return db_->Insert(object); });
}

chain::TxReceipt SpQueryEngine::Update(const Object& object) {
  return Write("sp_engine.update", [&] { return db_->Update(object); });
}

chain::TxReceipt SpQueryEngine::Delete(Key key) {
  return Write("sp_engine.delete", [&] { return db_->Delete(key); });
}

chain::TxReceipt SpQueryEngine::InsertBatch(const std::vector<Object>& objects) {
  return Write("sp_engine.insert_batch", [&] { return db_->InsertBatch(objects); });
}

QueryResponse SpQueryEngine::Query(Key lb, Key ub) const {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  TELEMETRY_SPAN("sp_engine.query");
  const uint64_t t0 = telemetry::Tracer::NowNs();
  std::shared_lock<std::shared_mutex> lock(mutex_);
  QueryResponse response = db_->Query(lb, ub);
  auto& metrics = telemetry::MetricsRegistry::Global();
  metrics.counter("sp_engine.queries").Add(1);
  metrics.histogram("sp_engine.query_ns").Observe(telemetry::Tracer::NowNs() - t0);
  return response;
}

SpecResponse SpQueryEngine::ExecuteSpec(const QuerySpec& spec) const {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  TELEMETRY_SPAN("sp_engine.spec_query");
  const uint64_t t0 = telemetry::Tracer::NowNs();
  std::shared_lock<std::shared_mutex> lock(mutex_);
  SpecResponse response = db_->ExecuteSpec(spec);
  auto& metrics = telemetry::MetricsRegistry::Global();
  metrics.counter("sp_engine.spec_queries").Add(1);
  metrics.histogram("sp_engine.query_ns").Observe(telemetry::Tracer::NowNs() - t0);
  return response;
}

Bytes SpQueryEngine::SpecWire(const QuerySpec& spec) const {
  Bytes out;
  SpecWireInto(spec, &out);
  return out;
}

void SpQueryEngine::SpecWireInto(const QuerySpec& spec, Bytes* out) const {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  TELEMETRY_SPAN("sp_engine.query_wire");
  std::shared_lock<std::shared_mutex> lock(mutex_);
  db_->SpecWireInto(spec, out);
}

std::vector<QueryResponse> SpQueryEngine::QueryBatch(
    const std::vector<KeyRange>& ranges) const {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  telemetry::Span span("sp_engine.query_batch");
  std::vector<QueryResponse> results(ranges.size());
  const uint64_t start_ns = telemetry::Tracer::NowNs();
  // Workers continue the batch span's trace, so every per-query sp.query
  // span parents under sp_engine.query_batch exactly as the serial loop's
  // would.
  const telemetry::TraceContext batch_ctx = span.context();
  {
    // One shared-lock acquisition for the whole batch: every response
    // answers from the same epoch, and writers cannot interleave mid-batch.
    std::shared_lock<std::shared_mutex> lock(mutex_);
    pool_->ParallelFor(0, ranges.size(), 1, [&](size_t begin, size_t end) {
      telemetry::TraceScope worker_scope(batch_ctx);
      for (size_t i = begin; i < end; ++i) {
        results[i] = db_->Query(ranges[i].first, ranges[i].second);
      }
    });
  }
  auto& metrics = telemetry::MetricsRegistry::Global();
  metrics.counter("sp_engine.queries").Add(ranges.size());
  metrics.counter("sp_engine.batches").Add(1);
  const uint64_t elapsed_ns = telemetry::Tracer::NowNs() - start_ns;
  metrics.histogram("sp_engine.batch_ns").Observe(elapsed_ns);
  if (elapsed_ns > 0 && !ranges.empty()) {
    // Queries per second over the batch, as an integer gauge.
    metrics.gauge("sp_engine.batch_qps")
        .Set(static_cast<int64_t>(ranges.size() * 1000000000.0 /
                                  static_cast<double>(elapsed_ns)));
  }
  return results;
}

Bytes SpQueryEngine::QueryWire(Key lb, Key ub) const {
  Bytes out;
  QueryWireInto(lb, ub, &out);
  return out;
}

void SpQueryEngine::QueryWireInto(Key lb, Key ub, Bytes* out) const {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  TELEMETRY_SPAN("sp_engine.query_wire");
  std::shared_lock<std::shared_mutex> lock(mutex_);
  QueryResponse response = db_->Query(lb, ub);
  WrapTracedWireHeaderInto(response.trace, out);
  SerializeResponseInto(response, db_->wire_version(), out);
}

VerifiedResult SpQueryEngine::VerifyFor(Key lb, Key ub,
                                        const QueryResponse& response) {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  TELEMETRY_SPAN("sp_engine.verify");
  const uint64_t t0 = telemetry::Tracer::NowNs();
  // Exclusive: verification advances the client's light-client head.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  VerifiedResult result = db_->VerifyFor(lb, ub, response);
  telemetry::MetricsRegistry::Global()
      .histogram("sp_engine.verify_ns")
      .Observe(telemetry::Tracer::NowNs() - t0);
  return result;
}

VerifiedSpecResult SpQueryEngine::VerifySpecFor(const QuerySpec& spec,
                                                const SpecResponse& response) {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  TELEMETRY_SPAN("sp_engine.verify");
  const uint64_t t0 = telemetry::Tracer::NowNs();
  // Exclusive: verification advances the client's light-client head.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  VerifiedSpecResult result = db_->VerifySpecFor(spec, response);
  telemetry::MetricsRegistry::Global()
      .histogram("sp_engine.verify_ns")
      .Observe(telemetry::Tracer::NowNs() - t0);
  return result;
}

}  // namespace gem2::core
