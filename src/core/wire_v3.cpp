#include "core/wire_v3.h"

#include <cstring>
#include <map>
#include <set>

#include "ads/vo.h"

namespace gem2::core::wirev3 {
namespace {

constexpr uint8_t kKindSingle = 0;
constexpr uint8_t kKindComposite = 1;

// VO child tags (same values as the standalone TreeVo codec in ads/vo.cpp).
constexpr uint8_t kTagEntryResult = 1;
constexpr uint8_t kTagEntryBoundary = 2;
constexpr uint8_t kTagPruned = 3;
constexpr uint8_t kTagNode = 4;

uint64_t U(Key k) { return static_cast<uint64_t>(k); }

// ---------------------------------------------------------------------------
// Encoding

/// Hashes that occur >= 2 times anywhere in the response, in first-encounter
/// order; every occurrence is replaced by a 1..2-byte slot reference.
struct HashTable {
  std::vector<Hash> entries;
  std::map<Hash, uint64_t> slot;  // hash -> 0-based slot
};

struct HashCensus {
  std::vector<Hash> order;
  std::map<Hash, uint64_t> count;

  void See(const Hash& h) {
    if (count[h]++ == 0) order.push_back(h);
  }
};

void CensusChild(const ads::VoChild& child, HashCensus* census) {
  if (const auto* e = std::get_if<ads::VoEntry>(&child)) {
    if (!e->is_result) census->See(e->value_hash);
    return;
  }
  if (const auto* p = std::get_if<ads::VoPruned>(&child)) {
    census->See(p->content_hash);
    return;
  }
  for (const ads::VoChild& c : std::get<ads::VoNodePtr>(child)->children) {
    CensusChild(c, census);
  }
}

void CensusBody(const QueryResponse& r, HashCensus* census) {
  for (const TreeResultSet& tree : r.trees) {
    if (!tree.vo.empty_tree && tree.vo.root) CensusChild(*tree.vo.root, census);
  }
}

HashTable BuildTable(const QueryResponse& response) {
  HashCensus census;
  if (response.slices.empty()) {
    CensusBody(response, &census);
  } else {
    for (const ShardSlice& slice : response.slices) {
      CensusBody(slice.response, &census);
    }
  }
  HashTable table;
  for (const Hash& h : census.order) {
    if (census.count[h] >= 2) {
      table.slot.emplace(h, table.entries.size());
      table.entries.push_back(h);
    }
  }
  return table;
}

void AppendZigzag(Bytes* out, int64_t v) { AppendVarint(out, ZigzagEncode(v)); }

/// Appends zz(key - *prev) and advances the chain (wrapping arithmetic, so
/// any (prev, key) pair round-trips).
void AppendKeyDelta(Bytes* out, Key key, uint64_t* prev) {
  AppendZigzag(out, static_cast<int64_t>(U(key) - *prev));
  *prev = U(key);
}

void AppendHashRef(Bytes* out, const Hash& h, const HashTable& table) {
  auto it = table.slot.find(h);
  if (it != table.slot.end()) {
    AppendVarint(out, it->second + 1);
  } else {
    AppendVarint(out, 0);
    AppendHash(out, h);
  }
}

void SerializeChild(const ads::VoChild& child, const HashTable& table,
                    uint64_t* prev, Bytes* out) {
  if (const auto* e = std::get_if<ads::VoEntry>(&child)) {
    if (e->is_result) {
      out->push_back(kTagEntryResult);
      AppendKeyDelta(out, e->key, prev);
    } else {
      out->push_back(kTagEntryBoundary);
      AppendKeyDelta(out, e->key, prev);
      AppendHashRef(out, e->value_hash, table);
    }
    return;
  }
  if (const auto* p = std::get_if<ads::VoPruned>(&child)) {
    out->push_back(kTagPruned);
    AppendZigzag(out, static_cast<int64_t>(U(p->lo) - *prev));
    AppendVarint(out, U(p->hi) - U(p->lo));
    AppendHashRef(out, p->content_hash, table);
    *prev = U(p->hi);
    return;
  }
  const ads::VoNode& node = *std::get<ads::VoNodePtr>(child);
  out->push_back(kTagNode);
  AppendVarint(out, node.children.size());
  for (const ads::VoChild& c : node.children) {
    SerializeChild(c, table, prev, out);
  }
}

void SerializeBody(const QueryResponse& r, const HashTable& table, Bytes* out) {
  AppendZigzag(out, static_cast<int64_t>(r.lb));
  AppendVarint(out, U(r.ub) - U(r.lb));
  AppendVarint(out, r.upper_splits.size());
  uint64_t prev = U(r.lb);
  for (Key s : r.upper_splits) AppendKeyDelta(out, s, &prev);
  AppendVarint(out, r.trees.size());
  for (const TreeResultSet& tree : r.trees) {
    AppendVarint(out, tree.label.size());
    AppendString(out, tree.label);
    AppendVarint(out, tree.objects.size());
    prev = U(r.lb);
    for (const Object& obj : tree.objects) {
      AppendKeyDelta(out, obj.key, &prev);
      AppendVarint(out, obj.value.size());
      AppendString(out, obj.value);
    }
    if (tree.vo.empty_tree || !tree.vo.root) {
      out->push_back(0);
    } else {
      out->push_back(1);
      prev = U(r.lb);
      SerializeChild(*tree.vo.root, table, &prev, out);
    }
  }
}

// ---------------------------------------------------------------------------
// Parsing

/// Reader with the canonicality accounting that makes accepted images
/// re-serialize byte-identically: per-slot reference counts, first-reference
/// ordering, and the sets guarding duplicate/shadowed inline hashes.
struct Reader {
  explicit Reader(const Bytes& d) : data(d) {}

  const Bytes& data;
  size_t pos = 0;
  bool failed = false;

  std::vector<Hash> table;
  std::vector<uint64_t> ref_count;
  std::vector<bool> first_ref_seen;
  uint64_t next_first_ref = 0;
  std::set<Hash> table_set;
  std::set<Hash> inline_seen;

  bool Fail() {
    failed = true;
    return false;
  }

  bool Need(size_t n) {
    if (n > data.size() - pos) return Fail();
    return true;
  }

  size_t Remaining() const { return data.size() - pos; }

  uint8_t Byte() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint64_t Varint() {
    auto v = ReadVarint(data, &pos);
    if (!v.has_value()) {
      failed = true;
      return 0;
    }
    return *v;
  }

  int64_t Zigzag() { return ZigzagDecode(Varint()); }

  Key KeyDelta(uint64_t* prev) {
    const uint64_t k = *prev + static_cast<uint64_t>(Zigzag());
    *prev = k;
    return static_cast<Key>(k);
  }

  Hash ReadHash() {
    Hash h{};
    if (!Need(32)) return h;
    std::memcpy(h.data(), data.data() + pos, 32);
    pos += 32;
    return h;
  }

  Hash HashRef() {
    const uint64_t v = Varint();
    if (failed) return Hash{};
    if (v == 0) {
      Hash h = ReadHash();
      if (failed) return h;
      // A repeated inline hash (or one shadowing a table slot) would have
      // been table-referenced by the encoder: non-canonical.
      if (table_set.count(h) || !inline_seen.insert(h).second) {
        Fail();
        return Hash{};
      }
      return h;
    }
    const uint64_t slot = v - 1;
    if (slot >= table.size()) {
      Fail();  // dangling reference
      return Hash{};
    }
    if (!first_ref_seen[slot]) {
      // Slots are assigned in first-encounter order, so the first reference
      // to each slot must arrive in ascending slot order.
      if (slot != next_first_ref) {
        Fail();
        return Hash{};
      }
      first_ref_seen[slot] = true;
      ++next_first_ref;
    }
    ++ref_count[slot];
    return table[slot];
  }

  bool ParseTable() {
    const uint64_t count = Varint();
    if (failed || count > Remaining() / 32) return Fail();
    table.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Hash h = ReadHash();
      if (failed) return false;
      if (!table_set.insert(h).second) return Fail();  // duplicate entry
      table.push_back(h);
    }
    ref_count.assign(table.size(), 0);
    first_ref_seen.assign(table.size(), false);
    return true;
  }

  /// Every slot must have paid for its 32 bytes: referenced at least twice.
  bool TableFullyUsed() const {
    for (uint64_t c : ref_count) {
      if (c < 2) return false;
    }
    return true;
  }
};

bool ParseChild(Reader& r, uint64_t* prev, uint32_t depth, ads::VoChild* out) {
  if (depth > ads::kMaxVoDepth) return r.Fail();
  const uint8_t tag = r.Byte();
  if (r.failed) return false;
  switch (tag) {
    case kTagEntryResult: {
      ads::VoEntry e;
      e.key = r.KeyDelta(prev);
      e.is_result = true;
      if (r.failed) return false;
      *out = ads::VoChild(e);
      return true;
    }
    case kTagEntryBoundary: {
      ads::VoEntry e;
      e.key = r.KeyDelta(prev);
      e.value_hash = r.HashRef();
      e.is_result = false;
      if (r.failed) return false;
      *out = ads::VoChild(e);
      return true;
    }
    case kTagPruned: {
      ads::VoPruned p;
      const uint64_t lo = *prev + static_cast<uint64_t>(r.Zigzag());
      const uint64_t hi = lo + r.Varint();
      p.lo = static_cast<Key>(lo);
      p.hi = static_cast<Key>(hi);
      p.content_hash = r.HashRef();
      if (r.failed) return false;
      *prev = hi;
      *out = ads::VoChild(p);
      return true;
    }
    case kTagNode: {
      const uint64_t n = r.Varint();
      // The smallest child (a result entry) is 2 bytes.
      if (r.failed || n > r.Remaining() / 2) return r.Fail();
      auto node = std::make_unique<ads::VoNode>();
      node->children.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        ads::VoChild c;
        if (!ParseChild(r, prev, depth + 1, &c)) return false;
        node->children.push_back(std::move(c));
      }
      *out = ads::VoChild(std::move(node));
      return true;
    }
    default:
      return r.Fail();
  }
}

bool ParseBody(Reader& r, QueryResponse* response) {
  const uint64_t lb = static_cast<uint64_t>(r.Zigzag());
  const uint64_t ub = lb + r.Varint();
  response->lb = static_cast<Key>(lb);
  response->ub = static_cast<Key>(ub);
  const uint64_t num_splits = r.Varint();
  // Counts are bounded by the bytes present before any reserve(), so a
  // corrupted count fails parsing instead of requesting a huge allocation.
  if (r.failed || num_splits > r.Remaining()) return false;
  response->upper_splits.reserve(num_splits);
  uint64_t prev = lb;
  for (uint64_t i = 0; i < num_splits; ++i) {
    response->upper_splits.push_back(r.KeyDelta(&prev));
  }
  const uint64_t num_trees = r.Varint();
  // A serialized tree is at least 3 bytes: label length, object count, VO tag.
  if (r.failed || num_trees > r.Remaining() / 3) return false;
  response->trees.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    TreeResultSet tree;
    const uint64_t label_len = r.Varint();
    if (r.failed || !r.Need(label_len)) return false;
    tree.label.assign(reinterpret_cast<const char*>(r.data.data() + r.pos),
                      label_len);
    r.pos += label_len;
    const uint64_t num_objects = r.Varint();
    // A serialized object is at least 2 bytes: key delta plus value length.
    if (r.failed || num_objects > r.Remaining() / 2) return false;
    tree.objects.reserve(num_objects);
    prev = lb;
    for (uint64_t i = 0; i < num_objects; ++i) {
      Object obj;
      obj.key = r.KeyDelta(&prev);
      const uint64_t value_len = r.Varint();
      if (r.failed || !r.Need(value_len)) return false;
      obj.value.assign(reinterpret_cast<const char*>(r.data.data() + r.pos),
                       value_len);
      r.pos += value_len;
      tree.objects.push_back(std::move(obj));
    }
    const uint8_t vo_tag = r.Byte();
    if (r.failed) return false;
    if (vo_tag == 0) {
      tree.vo.empty_tree = true;
    } else if (vo_tag == 1) {
      ads::VoChild root;
      prev = lb;
      if (!ParseChild(r, &prev, 0, &root)) return false;
      tree.vo.root = std::move(root);
    } else {
      return r.Fail();
    }
    response->trees.push_back(std::move(tree));
  }
  return true;
}

}  // namespace

void AppendVarint(Bytes* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::optional<uint64_t> ReadVarint(const Bytes& data, size_t* pos) {
  uint64_t v = 0;
  for (size_t i = 0; i < 10; ++i) {
    if (*pos >= data.size()) return std::nullopt;
    const uint8_t b = data[(*pos)++];
    // The 10th byte holds bits 63..69: anything but 0x01 overflows 64 bits.
    if (i == 9 && b != 0x01) return std::nullopt;
    v |= static_cast<uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) {
      // Canonical encodings are minimal: a multi-byte varint may not end in
      // a zero group (0x8000... would re-encode shorter).
      if (i > 0 && b == 0) return std::nullopt;
      return v;
    }
  }
  return std::nullopt;
}

std::optional<TableInfo> LocateTable(const Bytes& image) {
  if (image.size() < 3 || image[0] != kVersion) return std::nullopt;
  if (image[1] != kKindSingle && image[1] != kKindComposite) return std::nullopt;
  size_t pos = 2;
  auto count = ReadVarint(image, &pos);
  if (!count.has_value()) return std::nullopt;
  if (*count > (image.size() - pos) / 32) return std::nullopt;
  return TableInfo{pos, *count};
}

Bytes Serialize(const QueryResponse& response) {
  Bytes out;
  SerializeInto(response, &out);
  return out;
}

void SerializeInto(const QueryResponse& response, Bytes* out) {
  const HashTable table = BuildTable(response);
  out->push_back(kVersion);
  out->push_back(response.slices.empty() ? kKindSingle : kKindComposite);
  AppendVarint(out, table.entries.size());
  for (const Hash& h : table.entries) AppendHash(out, h);
  if (response.slices.empty()) {
    SerializeBody(response, table, out);
    return;
  }
  AppendZigzag(out, static_cast<int64_t>(response.lb));
  AppendVarint(out, U(response.ub) - U(response.lb));
  AppendVarint(out, response.slices.size());
  Bytes body;
  for (const ShardSlice& slice : response.slices) {
    AppendVarint(out, slice.shard);
    body.clear();
    SerializeBody(slice.response, table, &body);
    AppendVarint(out, body.size());
    out->insert(out->end(), body.begin(), body.end());
  }
}

std::optional<QueryResponse> Parse(const Bytes& data) {
  if (data.size() < 3 || data[0] != kVersion) return std::nullopt;
  const uint8_t kind = data[1];
  Reader r(data);
  r.pos = 2;
  if (!r.ParseTable()) return std::nullopt;
  QueryResponse response;
  if (kind == kKindSingle) {
    if (!ParseBody(r, &response)) return std::nullopt;
  } else if (kind == kKindComposite) {
    const uint64_t lb = static_cast<uint64_t>(r.Zigzag());
    const uint64_t ub = lb + r.Varint();
    response.lb = static_cast<Key>(lb);
    response.ub = static_cast<Key>(ub);
    const uint64_t num_slices = r.Varint();
    // An empty composite would re-serialize as a single image, and a slice
    // is at least 6 bytes: shard, body length, minimal body.
    if (r.failed || num_slices == 0 || num_slices > r.Remaining() / 6) {
      return std::nullopt;
    }
    response.slices.reserve(num_slices);
    for (uint64_t i = 0; i < num_slices; ++i) {
      const uint64_t shard = r.Varint();
      const uint64_t body_len = r.Varint();
      if (r.failed || shard > UINT32_MAX || !r.Need(body_len)) {
        return std::nullopt;
      }
      const size_t body_start = r.pos;
      ShardSlice slice;
      slice.shard = static_cast<uint32_t>(shard);
      if (!ParseBody(r, &slice.response)) return std::nullopt;
      // The declared body length must frame exactly the bytes consumed.
      if (r.pos - body_start != body_len) return std::nullopt;
      response.slices.push_back(std::move(slice));
    }
  } else {
    return std::nullopt;
  }
  if (r.failed || r.pos != data.size()) return std::nullopt;
  if (!r.TableFullyUsed()) return std::nullopt;
  return response;
}

}  // namespace gem2::core::wirev3
