/// \file wire.h
/// Wire codec for the SP -> client protocol: a QueryResponse (result objects,
/// per-tree VOs, and — for the GEM2*-tree — the upper-level split points)
/// serializes to a compact byte string. This is what would travel over the
/// network in a deployment, and it makes the reported VO sizes concrete:
/// VoSpBytes(response) accounts exactly the proof portion of these bytes.
#ifndef GEM2_CORE_WIRE_H_
#define GEM2_CORE_WIRE_H_

#include <optional>

#include "core/response.h"

namespace gem2::core {

/// Wire format versions a response can be serialized as. Both carry exactly
/// the same information and verification guarantees; v3 (wire_v3.h) is the
/// compressed encoding (varints, delta keys, deduped subtree hashes), v2 the
/// fixed-width one. The version rides in the image's first byte, so the
/// parser accepts either without out-of-band negotiation.
enum class WireVersion : uint8_t {
  kV2 = 2,
  kV3 = 3,
};

/// Serializes a full query response (v2 encoding).
Bytes SerializeResponse(const QueryResponse& response);

/// Serializes a full query response in the requested wire version.
Bytes SerializeResponse(const QueryResponse& response, WireVersion version);

/// Appends the serialized response to `*out` — byte-identical to
/// SerializeResponse(response, version) but without the intermediate Bytes,
/// so a server can encode the image straight into a connection's outbound
/// buffer (after any framing prefix it has already written).
void SerializeResponseInto(const QueryResponse& response, WireVersion version,
                           Bytes* out);

/// Parses a serialized response of any supported version (dispatching on the
/// leading version byte); std::nullopt on malformed input. A parsed response
/// carries exactly the same verification guarantees: the client verifies it
/// against VO_chain as usual, so a corrupted or tampered wire image is
/// rejected at verification (or here, if structurally invalid). Unknown
/// versions are malformed, never a throw.
std::optional<QueryResponse> ParseResponse(const Bytes& data);

/// Serializes a SpecResponse. The envelope is version-uniform:
///   [version][kind=2][u64 |spec|][spec][u64 nconj][nconj x (u64 len + image)]
/// where `spec` is the canonical QuerySpec image (query_spec.h) and each
/// embedded image is a complete single/composite response serialized in the
/// same wire version — byte-identical to SerializeResponse(conjunct,
/// version), so the per-conjunct bytes (and VO sizes) match the legacy
/// protocol exactly. Legacy ParseResponse rejects kind 2 fail-closed, and
/// ParseSpecResponse rejects embedded spec envelopes: the nesting is one
/// level by construction.
Bytes SerializeSpecResponse(const SpecResponse& response, WireVersion version);
void SerializeSpecResponseInto(const SpecResponse& response,
                               WireVersion version, Bytes* out);

/// Fail-closed parse of a spec envelope of either version: unknown versions
/// or kinds, malformed specs, a conjunct count disagreeing with the spec's
/// predicate count, version-mixed embedded images, or trailing bytes all
/// come back as std::nullopt, never a throw.
std::optional<SpecResponse> ParseSpecResponse(const Bytes& data);

/// Frames `image` with a telemetry trace context: a fixed-size envelope
/// [magic "GTW1"][trace_hi][trace_lo][parent_span] *around* the untouched
/// wire image. The envelope is observability transport only — the image
/// inside is byte-identical to SerializeResponse output, so VO sizes, gas,
/// and fail-closed parsing are unaffected. An invalid context returns the
/// image unframed.
Bytes WrapTracedWire(const telemetry::TraceContext& trace, const Bytes& image);

/// Appends just the GTW1 envelope header for `trace` to `*out` (nothing when
/// the context is invalid). Appending the wire image immediately after yields
/// bytes identical to WrapTracedWire(trace, image) — the buffer-reuse spelling
/// of the same envelope.
void WrapTracedWireHeaderInto(const telemetry::TraceContext& trace, Bytes* out);

struct TracedWire {
  telemetry::TraceContext trace;
  Bytes image;
};

/// Splits an envelope produced by WrapTracedWire. Bytes without the envelope
/// magic pass through unchanged with an empty context, so every consumer of
/// bare wire images keeps working.
TracedWire UnwrapTracedWire(const Bytes& data);

}  // namespace gem2::core

#endif  // GEM2_CORE_WIRE_H_
