#include "core/range_store.h"

#include "core/wire.h"

namespace gem2::core {

Bytes RangeStore::QueryWire(Key lb, Key ub) const {
  return SerializeResponse(Query(lb, ub));
}

VerifiedResult RangeStore::Verify(const QueryResponse& response) {
  return VerifyFor(response.lb, response.ub, response);
}

VerifiedResult RangeStore::VerifyWire(Key lb, Key ub, const Bytes& wire) {
  std::optional<QueryResponse> parsed = ParseResponse(wire);
  if (!parsed.has_value()) {
    VerifiedResult out;
    out.ok = false;
    out.error = "malformed wire image";
    return out;
  }
  return VerifyFor(lb, ub, *parsed);
}

VerifiedResult RangeStore::AuthenticatedRange(Key lb, Key ub) {
  return VerifyFor(lb, ub, Query(lb, ub));
}

}  // namespace gem2::core
