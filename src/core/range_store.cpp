#include "core/range_store.h"

#include "core/observe.h"
#include "core/wire.h"
#include "telemetry/trace.h"

namespace gem2::core {

Bytes RangeStore::QueryWire(Key lb, Key ub) const {
  QueryResponse response = Query(lb, ub);
  Bytes image = SerializeResponse(response);
  // The trace context travels as a framed envelope *around* the image: the
  // authenticated bytes inside stay identical to SerializeResponse output.
  return WrapTracedWire(response.trace, image);
}

VerifiedResult RangeStore::Verify(const QueryResponse& response) {
  return VerifyFor(response.lb, response.ub, response);
}

VerifiedResult RangeStore::VerifyWire(Key lb, Key ub, const Bytes& wire) {
  TracedWire traced = UnwrapTracedWire(wire);
  telemetry::TraceScope trace_scope(traced.trace.valid()
                                       ? traced.trace
                                       : telemetry::CurrentTrace());
  VerifyObservation observe;
  std::optional<QueryResponse> parsed = ParseResponse(traced.image);
  if (!parsed.has_value()) {
    VerifiedResult out;
    out.ok = false;
    out.error = "malformed wire image";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  parsed->trace = traced.trace;
  VerifiedResult result = VerifyFor(lb, ub, *parsed);
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedResult RangeStore::AuthenticatedRange(Key lb, Key ub) {
  return VerifyFor(lb, ub, Query(lb, ub));
}

}  // namespace gem2::core
