#include "core/range_store.h"

#include <map>
#include <stdexcept>

#include "core/aggregates.h"
#include "core/observe.h"
#include "core/wire.h"
#include "core/wire_v3.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace gem2::core {
namespace {

/// Per-wire-version byte accounting: how many VO-carrying wire bytes this
/// client decoded, split by format ("client.vo_bytes.v2" / ".v3", unknown
/// versions under ".unknown"). The v2-vs-v3 ratio is the compression win.
void CountWireBytes(const Bytes& image) {
  if (!telemetry::kCompiledIn || !telemetry::Tracer::Global().enabled()) return;
  const char* version = "unknown";
  if (!image.empty()) {
    if (image[0] == static_cast<uint8_t>(WireVersion::kV2)) version = "v2";
    if (image[0] == wirev3::kVersion) version = "v3";
  }
  telemetry::MetricsRegistry::Global()
      .counter(std::string("client.vo_bytes.") + version)
      .Add(image.size());
}

}  // namespace

Bytes RangeStore::QueryWire(Key lb, Key ub) const {
  Bytes out;
  QueryWireInto(lb, ub, &out);
  return out;
}

void RangeStore::QueryWireInto(Key lb, Key ub, Bytes* out) const {
  QueryResponse response = Query(lb, ub);
  // The trace context travels as a framed envelope *around* the image: the
  // authenticated bytes inside stay identical to SerializeResponse output.
  WrapTracedWireHeaderInto(response.trace, out);
  SerializeResponseInto(response, wire_version(), out);
}

VerifiedResult RangeStore::Verify(const QueryResponse& response) {
  return VerifyFor(response.lb, response.ub, response);
}

VerifiedResult RangeStore::VerifyWire(Key lb, Key ub, const Bytes& wire) {
  TracedWire traced = UnwrapTracedWire(wire);
  telemetry::TraceScope trace_scope(traced.trace.valid()
                                       ? traced.trace
                                       : telemetry::CurrentTrace());
  const bool telemetry_on =
      telemetry::kCompiledIn && telemetry::Tracer::Global().enabled();
  const uint64_t t0 = telemetry_on ? telemetry::Tracer::NowNs() : 0;
  VerifyObservation observe;
  CountWireBytes(traced.image);
  std::optional<QueryResponse> parsed;
  {
    TELEMETRY_SPAN("client.decode");
    parsed = ParseResponse(traced.image);
  }
  if (!parsed.has_value()) {
    VerifiedResult out;
    out.ok = false;
    out.error = "malformed wire image";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  parsed->trace = traced.trace;
  VerifiedResult result = VerifyFor(lb, ub, *parsed);
  if (telemetry_on) {
    telemetry::MetricsRegistry::Global()
        .histogram("client.verify_ns")
        .Observe(telemetry::Tracer::NowNs() - t0);
  }
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedResult RangeStore::AuthenticatedRange(Key lb, Key ub) {
  return VerifyFor(lb, ub, Query(lb, ub));
}

// --- Typed spec surface ------------------------------------------------------

SpecResponse RangeStore::ExecuteSpec(const QuerySpec& spec) const {
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  telemetry::Span span("sp.spec_query");
  SpecResponse response;
  response.trace = span.context();
  response.spec = spec;
  response.conjuncts.reserve(spec.predicates.size());
  for (const Predicate& p : spec.predicates) {
    Key tree_lb = 0;
    Key tree_ub = 0;
    MapPredicateRange(p.attr, p.lb, p.ub, &tree_lb, &tree_ub);
    QueryResponse conjunct = QueryPredicate(p.attr, tree_lb, tree_ub);
    // Aggregates ship boundary structure only: demote every result entry to
    // an explicit-hash boundary entry and drop the payloads.
    if (spec.aggregate != AggregateKind::kNone) StripForAggregate(&conjunct);
    response.conjuncts.push_back(std::move(conjunct));
  }
  if (telemetry::kCompiledIn && telemetry::Tracer::Global().enabled()) {
    telemetry::MetricsRegistry::Global().counter("spec_query.count").Add(1);
  }
  return response;
}

Bytes RangeStore::SpecWire(const QuerySpec& spec) const {
  Bytes out;
  SpecWireInto(spec, &out);
  return out;
}

void RangeStore::SpecWireInto(const QuerySpec& spec, Bytes* out) const {
  SpecResponse response = ExecuteSpec(spec);
  WrapTracedWireHeaderInto(response.trace, out);
  SerializeSpecResponseInto(response, wire_version(), out);
}

VerifiedResult RangeStore::VerifyPredicateFor(uint32_t attr, Key lb, Key ub,
                                              const QueryResponse& response,
                                              std::vector<ads::VoEntry>* boundary) {
  VerifiedResult out;
  out.ok = false;
  if (attr != 0) {
    out.error = "predicate over unknown attribute";
    return out;
  }
  if (boundary != nullptr) {
    out.error = "backend does not support boundary (aggregate) verification";
    return out;
  }
  return VerifyFor(lb, ub, response);
}

VerifiedResult RangeStore::VerifyPredicateAgainst(
    const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
    Key lb, Key ub, const QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) const {
  VerifiedResult out;
  out.ok = false;
  if (attr != 0) {
    out.error = "predicate over unknown attribute";
    return out;
  }
  if (boundary != nullptr) {
    out.error = "backend does not support boundary (aggregate) verification";
    return out;
  }
  if (response.lb != lb || response.ub != ub) {
    out.error = "response range does not match the issued query";
    return out;
  }
  return VerifyAgainst(states, response);
}

VerifiedSpecResult RangeStore::ComposeSpecVerification(
    const QuerySpec& spec, const SpecResponse& response,
    const std::function<VerifiedResult(uint32_t, Key, Key, const QueryResponse&,
                                       std::vector<ads::VoEntry>*)>&
        verify_predicate) const {
  VerifiedSpecResult out;
  auto fail = [&](std::string msg) {
    out.ok = false;
    out.error = std::move(msg);
    out.objects.clear();
    out.aggregates.reset();
    return out;
  };

  const std::string spec_error = spec.Check();
  if (!spec_error.empty()) return fail("invalid query spec: " + spec_error);
  // Pin the echoed spec exactly as VerifyFor pins lb/ub: an answer to any
  // other spec — widened range, flipped operator, different aggregate — is
  // rejected before any per-conjunct work.
  if (!(response.spec == spec)) {
    return fail("response spec does not match the issued query");
  }
  if (response.conjuncts.size() != spec.predicates.size()) {
    return fail("conjunct count does not match the spec");
  }
  for (const Predicate& p : spec.predicates) {
    if (p.attr >= num_attributes()) {
      return fail("predicate over unknown attribute");
    }
  }
  for (const QueryResponse& conjunct : response.conjuncts) {
    out.vo_sp_bytes += VoSpBytes(conjunct);
  }

  if (spec.aggregate != AggregateKind::kNone) {
    const Predicate& p = spec.predicates[0];
    Key tree_lb = 0;
    Key tree_ub = 0;
    MapPredicateRange(p.attr, p.lb, p.ub, &tree_lb, &tree_ub);
    const QueryResponse& conjunct = response.conjuncts[0];
    if (conjunct.lb != tree_lb || conjunct.ub != tree_ub) {
      return fail("conjunct range does not match its predicate");
    }
    std::vector<ads::VoEntry> entries;
    VerifiedResult r = verify_predicate(p.attr, tree_lb, tree_ub, conjunct,
                                        &entries);
    out.vo_chain_bytes += r.vo_chain_bytes;
    if (!r.ok) return fail("conjunct 0: " + r.error);
    const uint32_t attr = p.attr;
    out.aggregates = AggregateBoundary(
        entries, [this, attr](Key k) { return DecodeAttrValue(attr, k); },
        &out.tombstones_filtered);
    out.ok = true;
    return out;
  }

  // Boolean composition. Each conjunct is verified sound AND complete over
  // its own predicate range before any set operation: intersection/union of
  // exact sets is exact, so no record can be smuggled in or withheld by
  // playing conjuncts against each other.
  std::map<Key, Object> composed;
  std::map<Key, size_t> conjuncts_holding;
  for (size_t i = 0; i < spec.predicates.size(); ++i) {
    const Predicate& p = spec.predicates[i];
    Key tree_lb = 0;
    Key tree_ub = 0;
    MapPredicateRange(p.attr, p.lb, p.ub, &tree_lb, &tree_ub);
    const QueryResponse& conjunct = response.conjuncts[i];
    if (conjunct.lb != tree_lb || conjunct.ub != tree_ub) {
      return fail("conjunct " + std::to_string(i) +
                  " range does not match its predicate");
    }
    VerifiedResult r =
        verify_predicate(p.attr, tree_lb, tree_ub, conjunct, nullptr);
    out.vo_chain_bytes += r.vo_chain_bytes;
    if (!r.ok) return fail("conjunct " + std::to_string(i) + ": " + r.error);
    out.tombstones_filtered += r.tombstones_filtered;

    std::map<Key, Object> canonical;
    for (const Object& obj : r.objects) {
      Object canon;
      std::string error;
      if (!CanonicalizeSpecObject(p.attr, obj, &canon, &error)) {
        return fail("conjunct " + std::to_string(i) + ": " + error);
      }
      Key record = canon.key;
      if (!canonical.emplace(record, std::move(canon)).second) {
        return fail("conjunct " + std::to_string(i) +
                    ": duplicate record in conjunct");
      }
    }
    for (auto& [record, obj] : canonical) {
      auto it = composed.find(record);
      if (it == composed.end()) {
        composed.emplace(record, std::move(obj));
        conjuncts_holding[record] = 1;
      } else {
        // Defense in depth: every conjunct that returns a record must agree
        // on its payload — an SP cannot present two views of one record.
        if (it->second.value != obj.value) {
          return fail("conjuncts disagree on a record payload");
        }
        ++conjuncts_holding[record];
      }
    }
  }

  out.ok = true;
  for (auto& [record, obj] : composed) {
    if (spec.op == BoolOp::kAnd &&
        conjuncts_holding[record] != spec.predicates.size()) {
      continue;
    }
    out.objects.push_back(std::move(obj));
  }
  return out;
}

VerifiedSpecResult RangeStore::VerifySpecFor(const QuerySpec& spec,
                                             const SpecResponse& response) {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  VerifyObservation observe;
  TELEMETRY_SPAN("client.verify_spec");
  VerifiedSpecResult result = ComposeSpecVerification(
      spec, response,
      [this](uint32_t attr, Key lb, Key ub, const QueryResponse& conjunct,
             std::vector<ads::VoEntry>* boundary) {
        return VerifyPredicateFor(attr, lb, ub, conjunct, boundary);
      });
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedSpecResult RangeStore::VerifySpecAgainst(
    const std::vector<chain::AuthenticatedState>& states, const QuerySpec& spec,
    const SpecResponse& response) const {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  VerifyObservation observe;
  VerifiedSpecResult result = ComposeSpecVerification(
      spec, response,
      [this, &states](uint32_t attr, Key lb, Key ub,
                      const QueryResponse& conjunct,
                      std::vector<ads::VoEntry>* boundary) {
        return VerifyPredicateAgainst(states, attr, lb, ub, conjunct, boundary);
      });
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedSpecResult RangeStore::VerifySpecWire(const QuerySpec& spec,
                                              const Bytes& wire) {
  TracedWire traced = UnwrapTracedWire(wire);
  telemetry::TraceScope trace_scope(traced.trace.valid()
                                        ? traced.trace
                                        : telemetry::CurrentTrace());
  VerifyObservation observe;
  CountWireBytes(traced.image);
  std::optional<SpecResponse> parsed;
  {
    TELEMETRY_SPAN("client.decode");
    parsed = ParseSpecResponse(traced.image);
  }
  if (!parsed.has_value()) {
    VerifiedSpecResult out;
    out.ok = false;
    out.error = "malformed wire image";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  parsed->trace = traced.trace;
  return VerifySpecFor(spec, *parsed);
}

VerifiedSpecResult RangeStore::AuthenticatedSpec(const QuerySpec& spec) {
  return VerifySpecFor(spec, ExecuteSpec(spec));
}

}  // namespace gem2::core
