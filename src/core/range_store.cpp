#include "core/range_store.h"

#include "core/observe.h"
#include "core/wire.h"
#include "core/wire_v3.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace gem2::core {
namespace {

/// Per-wire-version byte accounting: how many VO-carrying wire bytes this
/// client decoded, split by format ("client.vo_bytes.v2" / ".v3", unknown
/// versions under ".unknown"). The v2-vs-v3 ratio is the compression win.
void CountWireBytes(const Bytes& image) {
  if (!telemetry::kCompiledIn || !telemetry::Tracer::Global().enabled()) return;
  const char* version = "unknown";
  if (!image.empty()) {
    if (image[0] == static_cast<uint8_t>(WireVersion::kV2)) version = "v2";
    if (image[0] == wirev3::kVersion) version = "v3";
  }
  telemetry::MetricsRegistry::Global()
      .counter(std::string("client.vo_bytes.") + version)
      .Add(image.size());
}

}  // namespace

Bytes RangeStore::QueryWire(Key lb, Key ub) const {
  Bytes out;
  QueryWireInto(lb, ub, &out);
  return out;
}

void RangeStore::QueryWireInto(Key lb, Key ub, Bytes* out) const {
  QueryResponse response = Query(lb, ub);
  // The trace context travels as a framed envelope *around* the image: the
  // authenticated bytes inside stay identical to SerializeResponse output.
  WrapTracedWireHeaderInto(response.trace, out);
  SerializeResponseInto(response, wire_version(), out);
}

VerifiedResult RangeStore::Verify(const QueryResponse& response) {
  return VerifyFor(response.lb, response.ub, response);
}

VerifiedResult RangeStore::VerifyWire(Key lb, Key ub, const Bytes& wire) {
  TracedWire traced = UnwrapTracedWire(wire);
  telemetry::TraceScope trace_scope(traced.trace.valid()
                                       ? traced.trace
                                       : telemetry::CurrentTrace());
  const bool telemetry_on =
      telemetry::kCompiledIn && telemetry::Tracer::Global().enabled();
  const uint64_t t0 = telemetry_on ? telemetry::Tracer::NowNs() : 0;
  VerifyObservation observe;
  CountWireBytes(traced.image);
  std::optional<QueryResponse> parsed;
  {
    TELEMETRY_SPAN("client.decode");
    parsed = ParseResponse(traced.image);
  }
  if (!parsed.has_value()) {
    VerifiedResult out;
    out.ok = false;
    out.error = "malformed wire image";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  parsed->trace = traced.trace;
  VerifiedResult result = VerifyFor(lb, ub, *parsed);
  if (telemetry_on) {
    telemetry::MetricsRegistry::Global()
        .histogram("client.verify_ns")
        .Observe(telemetry::Tracer::NowNs() - t0);
  }
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedResult RangeStore::AuthenticatedRange(Key lb, Key ub) {
  return VerifyFor(lb, ub, Query(lb, ub));
}

}  // namespace gem2::core
