/// \file introspect.h
/// Registers the cross-layer fact providers that the telemetry introspection
/// surface (telemetry/introspect.h) cannot reach itself: the Keccak
/// permutation counter (crypto), arena allocator global stats (common), and
/// — via counters maintained by chain::Environment — state-commitment work.
///
/// Registration is idempotent and cheap; every RangeStore backend constructor
/// calls it, so any process that builds a store exposes the full surface.
#ifndef GEM2_CORE_INTROSPECT_H_
#define GEM2_CORE_INTROSPECT_H_

namespace gem2::core {

/// Installs the "keccak" and "arena" providers into
/// telemetry::Introspection::Global(). Safe to call repeatedly.
void RegisterCoreIntrospection();

}  // namespace gem2::core

#endif  // GEM2_CORE_INTROSPECT_H_
