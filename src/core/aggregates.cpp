#include "core/aggregates.h"

#include <cstdlib>
#include <unordered_map>

#include "crypto/digest.h"
#include "core/tombstone.h"

namespace gem2::core {
namespace {

std::optional<long long> ParseNumeric(const std::string& value) {
  if (value.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return std::nullopt;
  return parsed;
}

/// Demotes every result entry reachable from `child` to a boundary entry,
/// filling its explicit value hash from the result objects (by key).
void DemoteChild(ads::VoChild* child,
                 const std::unordered_map<Key, Hash>& hashes) {
  if (auto* entry = std::get_if<ads::VoEntry>(child)) {
    if (!entry->is_result) return;
    auto it = hashes.find(entry->key);
    if (it == hashes.end()) return;  // inconsistent response; verify rejects
    entry->value_hash = it->second;
    entry->is_result = false;
    return;
  }
  if (auto* node = std::get_if<ads::VoNodePtr>(child)) {
    for (ads::VoChild& c : (*node)->children) DemoteChild(&c, hashes);
  }
}

const Hash& TombstoneHash() {
  static const Hash hash = crypto::ValueHash(TombstoneValue());
  return hash;
}

}  // namespace

std::optional<RangeAggregates> Aggregate(const VerifiedResult& result) {
  if (!result.ok) return std::nullopt;
  RangeAggregates agg;
  agg.count = result.objects.size();
  long long sum = 0;
  bool all_numeric = true;
  for (const Object& obj : result.objects) {
    if (!agg.min_key || obj.key < *agg.min_key) agg.min_key = obj.key;
    if (!agg.max_key || obj.key > *agg.max_key) agg.max_key = obj.key;
    if (all_numeric) {
      if (auto v = ParseNumeric(obj.value)) {
        sum += *v;
      } else {
        all_numeric = false;
      }
    }
  }
  if (all_numeric && agg.count > 0) agg.sum = sum;
  return agg;
}

void StripForAggregate(QueryResponse* response) {
  for (TreeResultSet& tree : response->trees) {
    std::unordered_map<Key, Hash> hashes;
    hashes.reserve(tree.objects.size());
    for (const Object& obj : tree.objects)
      hashes.emplace(obj.key, crypto::ValueHash(obj.value));
    if (tree.vo.root.has_value()) DemoteChild(&*tree.vo.root, hashes);
    tree.objects.clear();
  }
  for (ShardSlice& slice : response->slices) StripForAggregate(&slice.response);
}

RangeAggregates AggregateBoundary(const std::vector<ads::VoEntry>& entries,
                                  const std::function<Key(Key)>& decode_value,
                                  uint64_t* tombstones_filtered) {
  RangeAggregates agg;
  unsigned long long sum = 0;
  for (const ads::VoEntry& entry : entries) {
    if (entry.value_hash == TombstoneHash()) {
      if (tombstones_filtered != nullptr) ++*tombstones_filtered;
      continue;
    }
    const Key value = decode_value ? decode_value(entry.key) : entry.key;
    ++agg.count;
    if (!agg.min_key || value < *agg.min_key) agg.min_key = value;
    if (!agg.max_key || value > *agg.max_key) agg.max_key = value;
    sum += static_cast<unsigned long long>(value);
  }
  if (agg.count > 0) agg.sum = static_cast<long long>(sum);
  return agg;
}

}  // namespace gem2::core
