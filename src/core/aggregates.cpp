#include "core/aggregates.h"

#include <cstdlib>

namespace gem2::core {
namespace {

std::optional<long long> ParseNumeric(const std::string& value) {
  if (value.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return std::nullopt;
  return parsed;
}

}  // namespace

std::optional<RangeAggregates> Aggregate(const VerifiedResult& result) {
  if (!result.ok) return std::nullopt;
  RangeAggregates agg;
  agg.count = result.objects.size();
  long long sum = 0;
  bool all_numeric = true;
  for (const Object& obj : result.objects) {
    if (!agg.min_key || obj.key < *agg.min_key) agg.min_key = obj.key;
    if (!agg.max_key || obj.key > *agg.max_key) agg.max_key = obj.key;
    if (all_numeric) {
      if (auto v = ParseNumeric(obj.value)) {
        sum += *v;
      } else {
        all_numeric = false;
      }
    }
  }
  if (all_numeric && agg.count > 0) agg.sum = sum;
  return agg;
}

}  // namespace gem2::core
