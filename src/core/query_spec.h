/// \file query_spec.h
/// Typed query descriptor — the surface every query enters the system
/// through. A QuerySpec names, per predicate, the attribute it ranges over
/// and the inclusive bounds, how the predicates compose (AND / OR), and an
/// optional aggregate to answer from VO boundary structure instead of a
/// shipped result set.
///
/// The legacy `Query(lb, ub)` entry points are thin shims over
/// `QuerySpec::Range(lb, ub)` — a single predicate on attribute 0 — and the
/// wire image of the single-predicate path is byte-identical to the
/// pre-QuerySpec protocol (asserted in tests), so gas and the fig7-fig10
/// outputs are untouched by this surface.
///
/// The codec is canonical and fail-closed: exactly one byte string encodes a
/// given spec, Parse rejects unknown predicate kinds, unknown aggregate or
/// composition tags, structural violations, and trailing bytes with
/// std::nullopt — never a throw. Forward compatibility is deliberate
/// rejection: a decoder that meets a predicate kind it does not implement
/// must refuse the whole spec rather than silently answer a weaker query.
#ifndef GEM2_CORE_QUERY_SPEC_H_
#define GEM2_CORE_QUERY_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace gem2::core {

/// How a multi-predicate spec composes its per-predicate result sets.
enum class BoolOp : uint8_t {
  kAnd = 0,
  kOr = 1,
};

/// Aggregate requested over the (single) predicate's range. Aggregates are
/// answered from VO boundary entries — the SP ships proof structure only,
/// never the result payloads (see docs/API.md).
enum class AggregateKind : uint8_t {
  kNone = 0,
  kCount = 1,
  kSum = 2,
  kMin = 3,
  kMax = 4,
};

/// Predicate kinds. Only inclusive attribute ranges exist today; the tag is
/// on the wire so future kinds extend the grammar and old decoders reject
/// them fail-closed instead of mis-answering.
enum class PredicateKind : uint8_t {
  kRange = 1,
};

/// One conjunct: attribute `attr` constrained to [lb, ub] (inclusive, in the
/// attribute's value domain — backends map it to their tree-key domain).
struct Predicate {
  PredicateKind kind = PredicateKind::kRange;
  uint32_t attr = 0;
  Key lb = 0;
  Key ub = 0;

  friend bool operator==(const Predicate& a, const Predicate& b) = default;
};

/// Upper bound on predicates per spec: enough for any realistic boolean
/// query, small enough that a hostile spec cannot make the SP or the parser
/// allocate unboundedly.
inline constexpr size_t kMaxSpecPredicates = 64;

struct QuerySpec {
  BoolOp op = BoolOp::kAnd;
  std::vector<Predicate> predicates;
  AggregateKind aggregate = AggregateKind::kNone;

  /// The legacy one-dimensional query as a spec: one range predicate over
  /// attribute `attr` (0 = the primary key for single-attribute backends).
  static QuerySpec Range(Key lb, Key ub, uint32_t attr = 0);

  /// Structural validity. Empty on success, else a human-readable reason:
  /// at least one predicate, at most kMaxSpecPredicates, every bound pair
  /// ordered (lb <= ub), and an aggregate only over exactly one predicate.
  std::string Check() const;

  friend bool operator==(const QuerySpec& a, const QuerySpec& b) = default;
};

/// Short human-readable rendering for traces and error messages, e.g.
/// "AND(a0:[3,9], a1:[-5,5])" or "COUNT(a0:[0,100])".
std::string ToString(const QuerySpec& spec);

/// Canonical serialization:
///   [op u8][aggregate u8][npred u64]
///   npred x ( [kind u8][attr u64][lb i64][ub i64] )
/// Fixed-width big-endian fields throughout (common/bytes.h), so the image
/// is unique per spec.
Bytes SerializeQuerySpec(const QuerySpec& spec);
void AppendQuerySpec(const QuerySpec& spec, Bytes* out);

/// Fail-closed parse of a full buffer: unknown tags, structural violations
/// (Check() failures), or trailing bytes come back as std::nullopt.
std::optional<QuerySpec> ParseQuerySpec(const Bytes& data);
std::optional<QuerySpec> ParseQuerySpec(const uint8_t* data, size_t size);

}  // namespace gem2::core

#endif  // GEM2_CORE_QUERY_SPEC_H_
