#include "core/query_spec.h"

#include <sstream>

namespace gem2::core {
namespace {

/// Minimal fail-closed cursor over a byte buffer (same discipline as the
/// wire parsers: every read is bounds-checked, failure is sticky).
struct SpecReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || n > size - pos) {
      ok = false;
      return false;
    }
    return true;
  }

  uint8_t Byte() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  }

  Key I64() { return static_cast<Key>(U64()); }
};

const char* AggName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kNone:
      return "";
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace

QuerySpec QuerySpec::Range(Key lb, Key ub, uint32_t attr) {
  QuerySpec spec;
  spec.op = BoolOp::kAnd;
  spec.predicates.push_back(
      Predicate{PredicateKind::kRange, attr, lb, ub});
  return spec;
}

std::string QuerySpec::Check() const {
  if (predicates.empty()) return "spec has no predicates";
  if (predicates.size() > kMaxSpecPredicates)
    return "spec exceeds the predicate limit";
  if (op != BoolOp::kAnd && op != BoolOp::kOr)
    return "unknown boolean composition";
  switch (aggregate) {
    case AggregateKind::kNone:
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      break;
    default:
      return "unknown aggregate kind";
  }
  if (aggregate != AggregateKind::kNone && predicates.size() != 1)
    return "aggregate specs take exactly one predicate";
  for (const Predicate& p : predicates) {
    if (p.kind != PredicateKind::kRange) return "unknown predicate kind";
    if (p.lb > p.ub) return "predicate bounds out of order";
  }
  return "";
}

std::string ToString(const QuerySpec& spec) {
  std::ostringstream out;
  if (spec.aggregate != AggregateKind::kNone) {
    out << AggName(spec.aggregate);
  } else {
    out << (spec.op == BoolOp::kAnd ? "AND" : "OR");
  }
  out << "(";
  for (size_t i = 0; i < spec.predicates.size(); ++i) {
    const Predicate& p = spec.predicates[i];
    if (i > 0) out << ", ";
    out << "a" << p.attr << ":[" << p.lb << "," << p.ub << "]";
  }
  out << ")";
  return out.str();
}

Bytes SerializeQuerySpec(const QuerySpec& spec) {
  Bytes out;
  AppendQuerySpec(spec, &out);
  return out;
}

void AppendQuerySpec(const QuerySpec& spec, Bytes* out) {
  out->push_back(static_cast<uint8_t>(spec.op));
  out->push_back(static_cast<uint8_t>(spec.aggregate));
  AppendUint64(out, spec.predicates.size());
  for (const Predicate& p : spec.predicates) {
    out->push_back(static_cast<uint8_t>(p.kind));
    AppendUint64(out, p.attr);
    AppendKey(out, p.lb);
    AppendKey(out, p.ub);
  }
}

std::optional<QuerySpec> ParseQuerySpec(const uint8_t* data, size_t size) {
  SpecReader r{data, size};
  QuerySpec spec;
  const uint8_t op = r.Byte();
  if (op > static_cast<uint8_t>(BoolOp::kOr)) return std::nullopt;
  spec.op = static_cast<BoolOp>(op);
  const uint8_t agg = r.Byte();
  if (agg > static_cast<uint8_t>(AggregateKind::kMax)) return std::nullopt;
  spec.aggregate = static_cast<AggregateKind>(agg);
  const uint64_t npred = r.U64();
  if (!r.ok || npred == 0 || npred > kMaxSpecPredicates) return std::nullopt;
  spec.predicates.reserve(npred);
  for (uint64_t i = 0; i < npred; ++i) {
    Predicate p;
    const uint8_t kind = r.Byte();
    if (kind != static_cast<uint8_t>(PredicateKind::kRange))
      return std::nullopt;  // unknown predicate kind: refuse the whole spec
    p.kind = PredicateKind::kRange;
    const uint64_t attr = r.U64();
    if (attr > std::numeric_limits<uint32_t>::max()) return std::nullopt;
    p.attr = static_cast<uint32_t>(attr);
    p.lb = r.I64();
    p.ub = r.I64();
    if (!r.ok) return std::nullopt;
    spec.predicates.push_back(p);
  }
  if (!r.ok || r.pos != size) return std::nullopt;
  if (!spec.Check().empty()) return std::nullopt;
  return spec;
}

std::optional<QuerySpec> ParseQuerySpec(const Bytes& data) {
  return ParseQuerySpec(data.data(), data.size());
}

}  // namespace gem2::core
