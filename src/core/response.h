/// \file response.h
/// Wire types of the authenticated-query protocol between the service
/// provider and the client (paper Fig. 1: R + VO_sp).
#ifndef GEM2_CORE_RESPONSE_H_
#define GEM2_CORE_RESPONSE_H_

#include <optional>
#include <string>
#include <vector>

#include "ads/vo.h"
#include "common/types.h"
#include "core/query_spec.h"
#include "telemetry/trace.h"

namespace gem2::core {

/// One tree's contribution to a query answer: the objects it holds inside the
/// range (raw values — the SP keeps them off-chain) plus its VO.
struct TreeResultSet {
  std::string label;  // matches a VO_chain digest label
  std::vector<Object> objects;
  ads::TreeVo vo;
};

struct ShardSlice;

/// VO_sp + R, as produced by ServiceProvider::Query.
///
/// Two shapes share this type, distinguished on the wire by a kind tag:
///   - a *single* response (`slices` empty): one ADS answered [lb, ub] with
///     its trees, exactly the paper's protocol;
///   - a *composite* response (`slices` non-empty, `trees`/`upper_splits`
///     empty): a sharded SP scattered [lb, ub] across the owning shard
///     contracts and gathered one sub-response per shard. Each slice's
///     sub-range abuts the next (seam completeness), which the client checks
///     against its own partition bounds — see docs/SHARDING.md.
struct QueryResponse {
  Key lb = 0;
  Key ub = 0;
  std::vector<TreeResultSet> trees;
  /// GEM2*-tree only: the upper-level split points, authenticated against
  /// VO_chain's "upper" digest (Algorithm 8 line 2).
  std::vector<Key> upper_splits;
  /// Composite (sharded) responses only: per-shard sub-responses in ascending
  /// shard order. Sub-responses are always single (no nesting).
  std::vector<ShardSlice> slices;
  /// Telemetry-only trace identity riding *alongside* the protocol: the SP
  /// stamps its query span's context here so the client's Verify* joins the
  /// same trace. Never serialized into the authenticated wire image (see
  /// Wrap/UnwrapTracedWire for the framed envelope) and never verified —
  /// gas and VO bytes are bit-identical whether or not it is set.
  telemetry::TraceContext trace;
};

/// One shard's contribution to a composite response: the shard index it
/// claims to answer for, plus that shard's full single response over the
/// clamped sub-range (response.lb/ub are the slice's bounds).
struct ShardSlice {
  uint32_t shard = 0;
  QueryResponse response;
};

/// Serialized size of the VO_sp portion (boundary hashes, pruned subtrees,
/// tree framing — not the raw result payloads).
uint64_t VoSpBytes(const QueryResponse& response);

/// Deep copy (TreeVo is move-only, so QueryResponse is too; the fault
/// mutators clone a response before altering it).
QueryResponse CloneResponse(const QueryResponse& response);

/// Outcome of full client-side verification (Algorithms 6 / 8).
struct VerifiedResult {
  bool ok = false;
  std::string error;
  /// The verified result set, in ascending key order. Tombstoned (deleted)
  /// objects have already been filtered out — see core/tombstone.h.
  std::vector<Object> objects;
  uint64_t tombstones_filtered = 0;
  uint64_t vo_sp_bytes = 0;
  uint64_t vo_chain_bytes = 0;
};

/// Authenticated aggregates over a range. Client-side they derive from a
/// verified result set (core/aggregates.h); server-computed they derive from
/// VO boundary entries with the values decoded from tree keys.
struct RangeAggregates {
  /// Number of live (non-tombstoned) objects in the range.
  uint64_t count = 0;
  /// Smallest / largest key (attribute value, for the server-computed path)
  /// in the range. Unset when count == 0.
  std::optional<Key> min_key;
  std::optional<Key> max_key;
  /// Client-side: sum over payloads that parse fully as decimal integers
  /// (unset when any payload is non-numeric). Server-computed: sum of the
  /// attribute values, two's-complement wraparound.
  std::optional<long long> sum;
};

/// Answer to a QuerySpec: the spec the SP claims to have executed (the
/// client pins it against the one it issued, like VerifyFor pins lb/ub) plus
/// one per-predicate response, in predicate order. For aggregate specs the
/// conjunct ships boundary structure only — every VO entry demoted to an
/// explicit-hash boundary entry and no result objects (see
/// StripForAggregate in core/aggregates.h).
struct SpecResponse {
  QuerySpec spec;
  std::vector<QueryResponse> conjuncts;
  /// Telemetry-only, exactly as QueryResponse::trace.
  telemetry::TraceContext trace;
};

uint64_t VoSpBytes(const SpecResponse& response);
SpecResponse CloneSpecResponse(const SpecResponse& response);

/// Outcome of client-side verification of a SpecResponse.
struct VerifiedSpecResult {
  bool ok = false;
  std::string error;
  /// Boolean specs: the composed (intersected / united) result set in
  /// ascending canonical-key order; multi-attribute backends canonicalize
  /// each conjunct's objects to (record id, payload) before composing.
  /// Aggregate specs: always empty — the point is not shipping the set.
  std::vector<Object> objects;
  uint64_t tombstones_filtered = 0;
  uint64_t vo_sp_bytes = 0;
  uint64_t vo_chain_bytes = 0;
  /// Set for aggregate specs only, computed from verified boundary entries.
  std::optional<RangeAggregates> aggregates;
};

}  // namespace gem2::core

#endif  // GEM2_CORE_RESPONSE_H_
