#include "core/wire.h"

#include <algorithm>

#include "ads/vo.h"
#include "core/wire_v3.h"

namespace gem2::core {
namespace {

// Image layout: [version][kind][body]. v1 had no kind byte; bumping the
// version to 2 lets VerifyWire reject v1 (and future) images as malformed
// instead of misparsing the kind byte as payload.
constexpr uint8_t kFormatVersion = 2;
constexpr uint8_t kKindSingle = 0;
constexpr uint8_t kKindComposite = 1;

void AppendVarString(Bytes* out, const std::string& s) {
  AppendUint64(out, s.size());
  AppendString(out, s);
}

struct Reader {
  const Bytes& data;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    // Compare against the remaining byte count; `pos + n` could wrap for a
    // corrupted length prefix near SIZE_MAX.
    if (n > data.size() - pos) {
      failed = true;
      return false;
    }
    return true;
  }

  size_t Remaining() const { return data.size() - pos; }

  uint8_t Byte() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  }

  std::string ReadString() {
    const uint64_t n = U64();
    if (failed || !Need(n)) {
      failed = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }

  Bytes ReadBlob() {
    const uint64_t n = U64();
    if (failed || !Need(n)) {
      failed = true;
      return {};
    }
    Bytes b(data.begin() + static_cast<long>(pos),
            data.begin() + static_cast<long>(pos + n));
    pos += n;
    return b;
  }
};

void SerializeSingleBody(Bytes* out, const QueryResponse& response) {
  AppendKey(out, response.lb);
  AppendKey(out, response.ub);
  AppendUint64(out, response.upper_splits.size());
  for (Key s : response.upper_splits) AppendKey(out, s);
  AppendUint64(out, response.trees.size());
  for (const TreeResultSet& tree : response.trees) {
    AppendVarString(out, tree.label);
    AppendUint64(out, tree.objects.size());
    for (const Object& obj : tree.objects) {
      AppendKey(out, obj.key);
      AppendVarString(out, obj.value);
    }
    Bytes vo = ads::SerializeTreeVo(tree.vo);
    AppendUint64(out, vo.size());
    out->insert(out->end(), vo.begin(), vo.end());
  }
}

bool ParseSingleBody(Reader& r, QueryResponse* response) {
  response->lb = static_cast<Key>(r.U64());
  response->ub = static_cast<Key>(r.U64());
  // Every count below is bounded by the bytes actually present before any
  // reserve(): a flipped length-prefix byte must fail parsing, not request a
  // multi-gigabyte allocation (std::bad_alloc would escape the parser).
  const uint64_t num_splits = r.U64();
  if (r.failed || num_splits > r.Remaining() / 8) return false;
  response->upper_splits.reserve(num_splits);
  for (uint64_t i = 0; i < num_splits; ++i) {
    response->upper_splits.push_back(static_cast<Key>(r.U64()));
  }
  const uint64_t num_trees = r.U64();
  // A serialized tree is at least 24 bytes: label length, object count, VO
  // blob length.
  if (r.failed || num_trees > r.Remaining() / 24) return false;
  response->trees.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    TreeResultSet tree;
    tree.label = r.ReadString();
    const uint64_t num_objects = r.U64();
    // A serialized object is at least 16 bytes: key plus value length.
    if (r.failed || num_objects > r.Remaining() / 16) return false;
    tree.objects.reserve(num_objects);
    for (uint64_t i = 0; i < num_objects; ++i) {
      Object obj;
      obj.key = static_cast<Key>(r.U64());
      obj.value = r.ReadString();
      if (r.failed) return false;
      tree.objects.push_back(std::move(obj));
    }
    Bytes vo_bytes = r.ReadBlob();
    if (r.failed) return false;
    auto vo = ads::ParseTreeVo(vo_bytes);
    if (!vo.has_value()) return false;
    tree.vo = std::move(*vo);
    response->trees.push_back(std::move(tree));
  }
  return true;
}

std::optional<QueryResponse> ParseV2(const Bytes& data);

}  // namespace

namespace {

void SerializeV2Into(const QueryResponse& response, Bytes* out) {
  out->push_back(kFormatVersion);
  if (response.slices.empty()) {
    out->push_back(kKindSingle);
    SerializeSingleBody(out, response);
    return;
  }
  // Composite: the gathered range plus one length-prefixed full single image
  // per shard slice. Embedding complete images (version + kind + body) keeps
  // the slice codec identical to the standalone one, so sub-responses
  // round-trip through the same parser the client uses for single responses.
  out->push_back(kKindComposite);
  AppendKey(out, response.lb);
  AppendKey(out, response.ub);
  AppendUint64(out, response.slices.size());
  Bytes inner;
  for (const ShardSlice& slice : response.slices) {
    AppendUint64(out, slice.shard);
    inner.clear();
    SerializeV2Into(slice.response, &inner);
    AppendUint64(out, inner.size());
    out->insert(out->end(), inner.begin(), inner.end());
  }
}

}  // namespace

Bytes SerializeResponse(const QueryResponse& response) {
  Bytes out;
  SerializeV2Into(response, &out);
  return out;
}

Bytes SerializeResponse(const QueryResponse& response, WireVersion version) {
  Bytes out;
  SerializeResponseInto(response, version, &out);
  return out;
}

void SerializeResponseInto(const QueryResponse& response, WireVersion version,
                           Bytes* out) {
  if (version == WireVersion::kV3) {
    wirev3::SerializeInto(response, out);
  } else {
    SerializeV2Into(response, out);
  }
}

namespace {

std::optional<QueryResponse> ParseV2(const Bytes& data) {
  Reader r{data};
  if (r.Byte() != kFormatVersion) return std::nullopt;
  const uint8_t kind = r.Byte();
  if (r.failed) return std::nullopt;
  QueryResponse response;
  if (kind == kKindSingle) {
    if (!ParseSingleBody(r, &response)) return std::nullopt;
  } else if (kind == kKindComposite) {
    response.lb = static_cast<Key>(r.U64());
    response.ub = static_cast<Key>(r.U64());
    const uint64_t num_slices = r.U64();
    // A serialized slice is at least 50 bytes: shard index, image length, and
    // a minimal embedded image (version, kind, lb, ub, two counts).
    if (r.failed || num_slices > r.Remaining() / 50) return std::nullopt;
    response.slices.reserve(num_slices);
    for (uint64_t i = 0; i < num_slices; ++i) {
      const uint64_t shard = r.U64();
      if (r.failed || shard > UINT32_MAX) return std::nullopt;
      Bytes inner = r.ReadBlob();
      if (r.failed) return std::nullopt;
      // Slices must be v2 single responses: composites never nest, and a v2
      // composite never embeds another wire version.
      auto sub = ParseV2(inner);
      if (!sub.has_value() || !sub->slices.empty()) return std::nullopt;
      ShardSlice slice;
      slice.shard = static_cast<uint32_t>(shard);
      slice.response = std::move(*sub);
      response.slices.push_back(std::move(slice));
    }
  } else {
    return std::nullopt;
  }
  if (r.pos != data.size()) return std::nullopt;
  return response;
}

}  // namespace

std::optional<QueryResponse> ParseResponse(const Bytes& data) {
  if (data.empty()) return std::nullopt;
  if (data[0] == wirev3::kVersion) return wirev3::Parse(data);
  return ParseV2(data);
}

namespace {

/// Kind tag of the spec envelope in either version's image namespace. The
/// legacy parsers (ParseV2, wirev3::Parse) know only kinds 0/1 and reject 2
/// fail-closed, so pre-QuerySpec clients can never misread a spec answer.
constexpr uint8_t kKindSpec = 2;

}  // namespace

Bytes SerializeSpecResponse(const SpecResponse& response, WireVersion version) {
  Bytes out;
  SerializeSpecResponseInto(response, version, &out);
  return out;
}

void SerializeSpecResponseInto(const SpecResponse& response,
                               WireVersion version, Bytes* out) {
  out->push_back(static_cast<uint8_t>(version));
  out->push_back(kKindSpec);
  Bytes spec = SerializeQuerySpec(response.spec);
  AppendUint64(out, spec.size());
  out->insert(out->end(), spec.begin(), spec.end());
  AppendUint64(out, response.conjuncts.size());
  Bytes inner;
  for (const QueryResponse& conjunct : response.conjuncts) {
    inner.clear();
    SerializeResponseInto(conjunct, version, &inner);
    AppendUint64(out, inner.size());
    out->insert(out->end(), inner.begin(), inner.end());
  }
}

std::optional<SpecResponse> ParseSpecResponse(const Bytes& data) {
  Reader r{data};
  const uint8_t version = r.Byte();
  if (version != static_cast<uint8_t>(WireVersion::kV2) &&
      version != static_cast<uint8_t>(WireVersion::kV3)) {
    return std::nullopt;
  }
  if (r.Byte() != kKindSpec) return std::nullopt;
  Bytes spec_bytes = r.ReadBlob();
  if (r.failed) return std::nullopt;
  auto spec = ParseQuerySpec(spec_bytes);
  if (!spec.has_value()) return std::nullopt;
  SpecResponse response;
  response.spec = std::move(*spec);
  const uint64_t num_conjuncts = r.U64();
  // Structural: one conjunct per predicate, in predicate order. Anything
  // else is malformed, not merely unverifiable.
  if (r.failed || num_conjuncts != response.spec.predicates.size()) {
    return std::nullopt;
  }
  response.conjuncts.reserve(num_conjuncts);
  for (uint64_t i = 0; i < num_conjuncts; ++i) {
    Bytes inner = r.ReadBlob();
    if (r.failed) return std::nullopt;
    // Embedded images must carry the envelope's own version — a spec answer
    // never mixes encodings — and ParseResponse only yields single/composite
    // shapes, so spec envelopes cannot nest.
    if (inner.empty() || inner[0] != version) return std::nullopt;
    auto sub = ParseResponse(inner);
    if (!sub.has_value()) return std::nullopt;
    response.conjuncts.push_back(std::move(*sub));
  }
  if (r.pos != data.size()) return std::nullopt;
  return response;
}

namespace {

// Traced-wire envelope magic. A bare wire image starts with kFormatVersion
// (currently 2), so the magic's first byte can never collide with one.
constexpr uint8_t kTracedWireMagic[4] = {'G', 'T', 'W', '1'};
constexpr size_t kTracedWireHeader = 4 + 3 * 8;

}  // namespace

Bytes WrapTracedWire(const telemetry::TraceContext& trace, const Bytes& image) {
  if (!trace.valid()) return image;
  Bytes out;
  out.reserve(kTracedWireHeader + image.size());
  WrapTracedWireHeaderInto(trace, &out);
  out.insert(out.end(), image.begin(), image.end());
  return out;
}

void WrapTracedWireHeaderInto(const telemetry::TraceContext& trace,
                              Bytes* out) {
  if (!trace.valid()) return;
  out->insert(out->end(), kTracedWireMagic, kTracedWireMagic + 4);
  AppendUint64(out, trace.trace_hi);
  AppendUint64(out, trace.trace_lo);
  AppendUint64(out, trace.parent_span);
}

TracedWire UnwrapTracedWire(const Bytes& data) {
  TracedWire result;
  if (data.size() < kTracedWireHeader ||
      !std::equal(kTracedWireMagic, kTracedWireMagic + 4, data.begin())) {
    result.image = data;
    return result;
  }
  Reader r{data};
  r.pos = 4;
  result.trace.trace_hi = r.U64();
  result.trace.trace_lo = r.U64();
  result.trace.parent_span = r.U64();
  result.image.assign(data.begin() + kTracedWireHeader, data.end());
  return result;
}

}  // namespace gem2::core
