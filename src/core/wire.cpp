#include "core/wire.h"

#include "ads/vo.h"

namespace gem2::core {
namespace {

constexpr uint8_t kFormatVersion = 1;

void AppendVarString(Bytes* out, const std::string& s) {
  AppendUint64(out, s.size());
  AppendString(out, s);
}

struct Reader {
  const Bytes& data;
  size_t pos = 0;
  bool failed = false;

  bool Need(size_t n) {
    // Compare against the remaining byte count; `pos + n` could wrap for a
    // corrupted length prefix near SIZE_MAX.
    if (n > data.size() - pos) {
      failed = true;
      return false;
    }
    return true;
  }

  size_t Remaining() const { return data.size() - pos; }

  uint8_t Byte() {
    if (!Need(1)) return 0;
    return data[pos++];
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  }

  std::string ReadString() {
    const uint64_t n = U64();
    if (failed || !Need(n)) {
      failed = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }

  Bytes ReadBlob() {
    const uint64_t n = U64();
    if (failed || !Need(n)) {
      failed = true;
      return {};
    }
    Bytes b(data.begin() + static_cast<long>(pos),
            data.begin() + static_cast<long>(pos + n));
    pos += n;
    return b;
  }
};

}  // namespace

Bytes SerializeResponse(const QueryResponse& response) {
  Bytes out;
  out.push_back(kFormatVersion);
  AppendKey(&out, response.lb);
  AppendKey(&out, response.ub);
  AppendUint64(&out, response.upper_splits.size());
  for (Key s : response.upper_splits) AppendKey(&out, s);
  AppendUint64(&out, response.trees.size());
  for (const TreeResultSet& tree : response.trees) {
    AppendVarString(&out, tree.label);
    AppendUint64(&out, tree.objects.size());
    for (const Object& obj : tree.objects) {
      AppendKey(&out, obj.key);
      AppendVarString(&out, obj.value);
    }
    Bytes vo = ads::SerializeTreeVo(tree.vo);
    AppendUint64(&out, vo.size());
    out.insert(out.end(), vo.begin(), vo.end());
  }
  return out;
}

std::optional<QueryResponse> ParseResponse(const Bytes& data) {
  Reader r{data};
  if (r.Byte() != kFormatVersion) return std::nullopt;
  QueryResponse response;
  response.lb = static_cast<Key>(r.U64());
  response.ub = static_cast<Key>(r.U64());
  // Every count below is bounded by the bytes actually present before any
  // reserve(): a flipped length-prefix byte must fail parsing, not request a
  // multi-gigabyte allocation (std::bad_alloc would escape the parser).
  const uint64_t num_splits = r.U64();
  if (r.failed || num_splits > r.Remaining() / 8) return std::nullopt;
  response.upper_splits.reserve(num_splits);
  for (uint64_t i = 0; i < num_splits; ++i) {
    response.upper_splits.push_back(static_cast<Key>(r.U64()));
  }
  const uint64_t num_trees = r.U64();
  // A serialized tree is at least 24 bytes: label length, object count, VO
  // blob length.
  if (r.failed || num_trees > r.Remaining() / 24) return std::nullopt;
  response.trees.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    TreeResultSet tree;
    tree.label = r.ReadString();
    const uint64_t num_objects = r.U64();
    // A serialized object is at least 16 bytes: key plus value length.
    if (r.failed || num_objects > r.Remaining() / 16) return std::nullopt;
    tree.objects.reserve(num_objects);
    for (uint64_t i = 0; i < num_objects; ++i) {
      Object obj;
      obj.key = static_cast<Key>(r.U64());
      obj.value = r.ReadString();
      if (r.failed) return std::nullopt;
      tree.objects.push_back(std::move(obj));
    }
    Bytes vo_bytes = r.ReadBlob();
    if (r.failed) return std::nullopt;
    auto vo = ads::ParseTreeVo(vo_bytes);
    if (!vo.has_value()) return std::nullopt;
    tree.vo = std::move(*vo);
    response.trees.push_back(std::move(tree));
  }
  if (r.pos != data.size()) return std::nullopt;
  return response;
}

}  // namespace gem2::core
