/// \file observe.h
/// Shared audit-event emission for the verification paths. A client-side
/// verify may nest (ShardedDb::VerifyFor re-enters each shard's VerifyFor, a
/// wire verify re-enters the in-memory verify): VerifyObservation tracks the
/// per-thread nesting depth so exactly one "verify.reject" event is emitted
/// per top-level rejection, carrying the active trace id plus any
/// ScopedEventFields context (the fault sweep's operator and seed).
#ifndef GEM2_CORE_OBSERVE_H_
#define GEM2_CORE_OBSERVE_H_

#include <string_view>

namespace gem2::core {

/// RAII nesting guard for one Verify*/CheckPlan scope.
class VerifyObservation {
 public:
  VerifyObservation();
  ~VerifyObservation();

  VerifyObservation(const VerifyObservation&) = delete;
  VerifyObservation& operator=(const VerifyObservation&) = delete;

  /// True when this scope is the thread's outermost verification.
  bool outermost() const { return outermost_; }

  /// Emits a structured "verify.reject" audit event — backend name and
  /// rejection reason, stamped with trace id and thread context — when this
  /// is the outermost scope and the event log is open. No-op otherwise.
  void RecordRejection(std::string_view backend, std::string_view reason) const;

 private:
  bool outermost_ = false;
};

}  // namespace gem2::core

#endif  // GEM2_CORE_OBSERVE_H_
