#include "core/journal.h"

#include "common/crc32c.h"
#include "telemetry/event_log.h"

namespace gem2::core {
namespace {

constexpr uint8_t kLegacyFormatVersion = 1;  // no per-record checksums
constexpr uint8_t kFormatVersion = 2;        // CRC32C after every record body

void AppendCrc(Bytes* out, uint32_t crc) {
  out->push_back(static_cast<uint8_t>(crc >> 24));
  out->push_back(static_cast<uint8_t>(crc >> 16));
  out->push_back(static_cast<uint8_t>(crc >> 8));
  out->push_back(static_cast<uint8_t>(crc));
}

uint32_t ReadU32(const Bytes& data, size_t pos) {
  return (static_cast<uint32_t>(data[pos]) << 24) |
         (static_cast<uint32_t>(data[pos + 1]) << 16) |
         (static_cast<uint32_t>(data[pos + 2]) << 8) |
         static_cast<uint32_t>(data[pos + 3]);
}

void LogChecksumMismatch(size_t record_index) {
  auto& log = telemetry::EventLog::Global();
  if (!log.enabled()) return;
  log.Emit(telemetry::Event("journal.checksum_mismatch")
               .Num("record", record_index));
}

}  // namespace

Journal Journal::Prefix(size_t n) const {
  Journal prefix;
  const size_t count = n < entries_.size() ? n : entries_.size();
  prefix.entries_.assign(entries_.begin(),
                         entries_.begin() + static_cast<long>(count));
  return prefix;
}

void AppendJournalEntryBody(Bytes* out, const JournalEntry& entry) {
  out->push_back(static_cast<uint8_t>(entry.op));
  AppendKey(out, entry.object.key);
  AppendUint64(out, entry.object.value.size());
  AppendString(out, entry.object.value);
}

bool ParseJournalEntryBody(const Bytes& data, size_t* pos, JournalEntry* out) {
  size_t p = *pos;
  auto need = [&](size_t n) { return p + n <= data.size(); };
  auto u64 = [&]() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[p++];
    return v;
  };
  if (!need(1 + 8 + 8)) return false;
  const uint8_t op = data[p++];
  if (op < 1 || op > 3) return false;
  out->op = static_cast<JournalEntry::Op>(op);
  out->object.key = static_cast<Key>(u64());
  const uint64_t len = u64();
  if (!need(len)) return false;
  out->object.value.assign(reinterpret_cast<const char*>(data.data() + p), len);
  p += len;
  *pos = p;
  return true;
}

Bytes Journal::Serialize() const {
  Bytes out;
  out.push_back(kFormatVersion);
  AppendUint64(&out, entries_.size());
  for (const JournalEntry& e : entries_) {
    const size_t body_start = out.size();
    AppendJournalEntryBody(&out, e);
    AppendCrc(&out, common::Crc32c(out.data() + body_start,
                                   out.size() - body_start));
  }
  return out;
}

JournalParseResult Journal::ParseEx(const Bytes& data) {
  JournalParseResult result;
  result.error = JournalParseError::kMalformed;
  size_t pos = 0;
  auto need = [&](size_t n) { return pos + n <= data.size(); };
  auto u64 = [&]() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  };

  if (!need(1)) return result;
  const uint8_t version = data[pos++];
  if (version != kLegacyFormatVersion && version != kFormatVersion) return result;
  const bool checksummed = version == kFormatVersion;
  if (!need(8)) return result;
  const uint64_t n = u64();
  if (n > (1ull << 32)) return result;

  Journal journal;
  for (uint64_t i = 0; i < n; ++i) {
    result.record_index = i;
    JournalEntry e;
    const size_t body_start = pos;
    if (!ParseJournalEntryBody(data, &pos, &e)) return result;
    if (checksummed) {
      if (!need(4)) return result;
      const uint32_t want = ReadU32(data, pos);
      const uint32_t got =
          common::Crc32c(data.data() + body_start, pos - body_start);
      pos += 4;
      if (want != got) {
        result.error = JournalParseError::kChecksum;
        LogChecksumMismatch(i);
        return result;
      }
    }
    journal.Record(std::move(e));
  }
  result.record_index = n;
  if (pos != data.size()) return result;  // trailing garbage
  result.error = JournalParseError::kNone;
  result.journal = std::move(journal);
  return result;
}

std::optional<Journal> Journal::Parse(const Bytes& data) {
  return ParseEx(data).journal;
}

}  // namespace gem2::core
