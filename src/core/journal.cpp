#include "core/journal.h"

namespace gem2::core {
namespace {

constexpr uint8_t kFormatVersion = 1;

}  // namespace

Journal Journal::Prefix(size_t n) const {
  Journal prefix;
  const size_t count = n < entries_.size() ? n : entries_.size();
  prefix.entries_.assign(entries_.begin(),
                         entries_.begin() + static_cast<long>(count));
  return prefix;
}

Bytes Journal::Serialize() const {
  Bytes out;
  out.push_back(kFormatVersion);
  AppendUint64(&out, entries_.size());
  for (const JournalEntry& e : entries_) {
    out.push_back(static_cast<uint8_t>(e.op));
    AppendKey(&out, e.object.key);
    AppendUint64(&out, e.object.value.size());
    AppendString(&out, e.object.value);
  }
  return out;
}

std::optional<Journal> Journal::Parse(const Bytes& data) {
  size_t pos = 0;
  auto need = [&](size_t n) { return pos + n <= data.size(); };
  auto u64 = [&]() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  };

  if (!need(1) || data[pos++] != kFormatVersion) return std::nullopt;
  if (!need(8)) return std::nullopt;
  const uint64_t n = u64();
  if (n > (1ull << 32)) return std::nullopt;

  Journal journal;
  for (uint64_t i = 0; i < n; ++i) {
    if (!need(1 + 8 + 8)) return std::nullopt;
    JournalEntry e;
    const uint8_t op = data[pos++];
    if (op < 1 || op > 3) return std::nullopt;
    e.op = static_cast<JournalEntry::Op>(op);
    e.object.key = static_cast<Key>(u64());
    const uint64_t len = u64();
    if (!need(len)) return std::nullopt;
    e.object.value.assign(reinterpret_cast<const char*>(data.data() + pos), len);
    pos += len;
    journal.Record(std::move(e));
  }
  if (pos != data.size()) return std::nullopt;
  return journal;
}

}  // namespace gem2::core
