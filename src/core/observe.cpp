#include "core/observe.h"

#include "telemetry/event_log.h"
#include "telemetry/trace.h"

namespace gem2::core {
namespace {

thread_local int g_verify_depth = 0;

}  // namespace

VerifyObservation::VerifyObservation() : outermost_(g_verify_depth == 0) {
  ++g_verify_depth;
}

VerifyObservation::~VerifyObservation() { --g_verify_depth; }

void VerifyObservation::RecordRejection(std::string_view backend,
                                        std::string_view reason) const {
  if constexpr (!telemetry::kCompiledIn) return;
  if (!outermost_) return;
  telemetry::EventLog& log = telemetry::EventLog::Global();
  if (!log.enabled()) return;
  log.Emit(std::move(telemetry::Event("verify.reject")
                         .Str("backend", backend)
                         .Str("reason", reason)));
}

}  // namespace gem2::core
