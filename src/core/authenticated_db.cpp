#include "core/authenticated_db.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "ads/verify.h"
#include "core/introspect.h"
#include "core/observe.h"
#include "core/tombstone.h"
#include "core/wire.h"
#include "crypto/digest.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace gem2::core {
namespace {

/// Converts one tree's entry list to raw objects via the SP value store.
std::vector<Object> ToObjects(
    const ads::EntryList& entries,
    const std::unordered_map<Key, std::string>& values) {
  std::vector<Object> out;
  out.reserve(entries.size());
  for (const ads::Entry& e : entries) {
    out.push_back({e.key, values.at(e.key)});
  }
  return out;
}

/// Region index of `key` for split points (mirrors Gem2StarEngine::RegionOf).
size_t RegionOf(const std::vector<Key>& splits, Key key) {
  auto it = std::upper_bound(splits.begin(), splits.end(), key);
  return static_cast<size_t>(it - splits.begin());
}

bool HasRegionPrefix(const std::string& label, size_t region) {
  const std::string prefix = "R" + std::to_string(region) + ".";
  return label.rfind(prefix, 0) == 0;
}

}  // namespace

void DbOptions::Validate() const {
  auto reject = [](const std::string& what) {
    throw std::invalid_argument("DbOptions: " + what);
  };
  if (contract_name.empty()) reject("empty contract_name");
  if (gem2.fanout < 2) reject("fanout must be at least 2");
  if (gem2.m == 0) reject("GEM2 m (index-merge slots) must be positive");
  if (gem2.smax == 0) reject("GEM2 smax (merge threshold) must be positive");
  if (kind == AdsKind::kGem2Star) {
    if (split_points.empty()) {
      reject("GEM2*-tree requires upper-level split points (zero regions)");
    }
    for (size_t i = 1; i < split_points.size(); ++i) {
      if (split_points[i] <= split_points[i - 1]) {
        reject("split_points must be strictly ascending");
      }
    }
  }
  if (shared_env == nullptr) {
    if (env.gas_limit == 0) reject("gas_limit of 0 cannot fund any transaction");
    if (env.txs_per_block == 0) reject("txs_per_block must be positive");
  }
}

std::string AdsKindName(AdsKind kind) {
  switch (kind) {
    case AdsKind::kMbTree:
      return "MB-tree";
    case AdsKind::kSmbTree:
      return "SMB-tree";
    case AdsKind::kLsm:
      return "LSM-tree";
    case AdsKind::kGem2:
      return "GEM2-tree";
    case AdsKind::kGem2Star:
      return "GEM2*-tree";
  }
  return "unknown";
}

struct AuthenticatedDb::Impl {
  std::unique_ptr<mbtree::MbTreeContract> mb_contract;
  std::unique_ptr<smbtree::SmbTreeContract> smb_contract;
  std::unique_ptr<lsm::LsmTreeContract> lsm_contract;
  std::unique_ptr<gem2tree::Gem2Contract> gem2_contract;
  std::unique_ptr<gem2star::Gem2StarContract> star_contract;

  std::unique_ptr<mbtree::MbTree> mb_sp;
  std::unique_ptr<smbtree::SmbTreeMirror> smb_sp;
  std::unique_ptr<lsm::LsmMirror> lsm_sp;
  std::unique_ptr<gem2tree::Gem2Engine> gem2_sp;
  std::unique_ptr<gem2star::Gem2StarEngine> star_sp;

  /// Dispatches one operation to the active contract.
  void ChainOp(AdsKind kind, bool insert, Key key, const Hash& vh,
               gas::Meter& meter) {
    switch (kind) {
      case AdsKind::kMbTree:
        insert ? mb_contract->Insert(key, vh, meter)
               : mb_contract->Update(key, vh, meter);
        break;
      case AdsKind::kSmbTree:
        insert ? smb_contract->Insert(key, vh, meter)
               : smb_contract->Update(key, vh, meter);
        break;
      case AdsKind::kLsm:
        insert ? lsm_contract->Insert(key, vh, meter)
               : lsm_contract->Update(key, vh, meter);
        break;
      case AdsKind::kGem2:
        insert ? gem2_contract->Insert(key, vh, meter)
               : gem2_contract->Update(key, vh, meter);
        break;
      case AdsKind::kGem2Star:
        insert ? star_contract->Insert(key, vh, meter)
               : star_contract->Update(key, vh, meter);
        break;
    }
  }

  /// Applies the same operation to the SP mirror.
  void SpOp(AdsKind kind, bool insert, Key key, const Hash& vh) {
    switch (kind) {
      case AdsKind::kMbTree:
        insert ? mb_sp->Insert(key, vh) : void(mb_sp->Update(key, vh));
        break;
      case AdsKind::kSmbTree:
        insert ? smb_sp->Insert(key, vh) : smb_sp->Update(key, vh);
        break;
      case AdsKind::kLsm:
        insert ? lsm_sp->Insert(key, vh) : lsm_sp->Update(key, vh);
        break;
      case AdsKind::kGem2:
        insert ? gem2_sp->Insert(key, vh) : gem2_sp->Update(key, vh);
        break;
      case AdsKind::kGem2Star:
        insert ? star_sp->Insert(key, vh) : star_sp->Update(key, vh);
        break;
    }
  }
};

AuthenticatedDb::AuthenticatedDb(DbOptions options)
    : options_(std::move(options)), impl_(new Impl) {
  // Any process that builds a store gets the full introspection surface
  // (keccak/arena providers); registration is once-only and cheap.
  RegisterCoreIntrospection();
  options_.Validate();
  if (options_.shared_env != nullptr) {
    env_ = options_.shared_env;
  } else {
    owned_env_ = std::make_unique<chain::Environment>(options_.env);
    env_ = owned_env_.get();
  }
  const std::string& kContractName = options_.contract_name;
  const int fanout = options_.gem2.fanout;
  switch (options_.kind) {
    case AdsKind::kMbTree:
      impl_->mb_contract =
          std::make_unique<mbtree::MbTreeContract>(kContractName, fanout);
      impl_->mb_sp = std::make_unique<mbtree::MbTree>(fanout);
      break;
    case AdsKind::kSmbTree:
      impl_->smb_contract =
          std::make_unique<smbtree::SmbTreeContract>(kContractName, fanout);
      impl_->smb_sp = std::make_unique<smbtree::SmbTreeMirror>(fanout);
      break;
    case AdsKind::kLsm:
      impl_->lsm_contract =
          std::make_unique<lsm::LsmTreeContract>(kContractName, options_.lsm);
      impl_->lsm_sp = std::make_unique<lsm::LsmMirror>(options_.lsm);
      break;
    case AdsKind::kGem2:
      impl_->gem2_contract =
          std::make_unique<gem2tree::Gem2Contract>(kContractName, options_.gem2);
      impl_->gem2_sp = std::make_unique<gem2tree::Gem2Engine>(options_.gem2);
      break;
    case AdsKind::kGem2Star:
      impl_->star_contract = std::make_unique<gem2star::Gem2StarContract>(
          kContractName, options_.gem2, options_.split_points);
      impl_->star_sp = std::make_unique<gem2star::Gem2StarEngine>(
          options_.gem2, options_.split_points);
      break;
  }
  if (options_.sp_pool != nullptr) ApplySpPool(options_.sp_pool);
  env_->Register(&contract());
  light_client_ = std::make_unique<chain::LightClient>(
      env_->blockchain().blocks().front().header);
}

AuthenticatedDb::~AuthenticatedDb() = default;

void AuthenticatedDb::ApplySpPool(common::ThreadPool* pool) {
  if (pool == nullptr) pool = options_.sp_pool;
  if (impl_->mb_sp != nullptr) impl_->mb_sp->set_thread_pool(pool);
  if (impl_->smb_sp != nullptr) impl_->smb_sp->set_thread_pool(pool);
  if (impl_->gem2_sp != nullptr) impl_->gem2_sp->set_thread_pool(pool);
  if (impl_->star_sp != nullptr) impl_->star_sp->set_thread_pool(pool);
  // The LSM mirror keeps serial builds: its levels are small and its cost is
  // merge-dominated, so a pool would add overhead without a win.
}

chain::Contract& AuthenticatedDb::contract() {
  switch (options_.kind) {
    case AdsKind::kMbTree:
      return *impl_->mb_contract;
    case AdsKind::kSmbTree:
      return *impl_->smb_contract;
    case AdsKind::kLsm:
      return *impl_->lsm_contract;
    case AdsKind::kGem2:
      return *impl_->gem2_contract;
    case AdsKind::kGem2Star:
      return *impl_->star_contract;
  }
  throw std::logic_error("unreachable");
}

const chain::Contract& AuthenticatedDb::contract() const {
  return const_cast<AuthenticatedDb*>(this)->contract();
}

void AuthenticatedDb::ApplyToSp(bool insert, Key key, const std::string& value,
                                const Hash& vh) {
  impl_->SpOp(options_.kind, insert, key, vh);
  sp_values_[key] = value;
}

void AuthenticatedDb::RecordOp(JournalEntry entry) {
  if (options_.journal_sink != nullptr &&
      !options_.journal_sink->Append(entry)) {
    // The op committed on-chain but the durable log never saw it: an ack now
    // would be unrecoverable after a crash. Fail closed; the operator must
    // repair the log (gem2_fsck) or re-provision before continuing.
    throw std::runtime_error("durable journal append failed: " +
                             options_.journal_sink->last_error());
  }
  journal_.Record(std::move(entry));
}

chain::TxReceipt AuthenticatedDb::Insert(const Object& object) {
  if (poisoned_) {
    throw std::logic_error("AuthenticatedDb poisoned by an out-of-gas transaction");
  }
  // Reviving a tombstoned key is an in-place update of the dummy object.
  const bool revive = deleted_.count(object.key) != 0;
  if (!revive && sp_values_.count(object.key) != 0) {
    throw std::invalid_argument("Insert: key already present");
  }
  const Hash vh = crypto::ValueHash(object.value);
  chain::TxReceipt receipt =
      env_->Execute(contract(), revive ? "revive" : "insert", [&](gas::Meter& m) {
        impl_->ChainOp(options_.kind, /*insert=*/!revive, object.key, vh, m);
      });
  if (!receipt.ok) {
    poisoned_ = true;
    return receipt;
  }
  ApplyToSp(/*insert=*/!revive, object.key, object.value, vh);
  deleted_.erase(object.key);
  ++size_;
  RecordOp({JournalEntry::Op::kInsert, object});
  return receipt;
}

chain::TxReceipt AuthenticatedDb::Update(const Object& object) {
  if (poisoned_) {
    throw std::logic_error("AuthenticatedDb poisoned by an out-of-gas transaction");
  }
  if (!Contains(object.key)) {
    throw std::invalid_argument("Update: unknown key");
  }
  const Hash vh = crypto::ValueHash(object.value);
  chain::TxReceipt receipt =
      env_->Execute(contract(), "update", [&](gas::Meter& m) {
        impl_->ChainOp(options_.kind, /*insert=*/false, object.key, vh, m);
      });
  if (!receipt.ok) {
    poisoned_ = true;
    return receipt;
  }
  ApplyToSp(/*insert=*/false, object.key, object.value, vh);
  RecordOp({JournalEntry::Op::kUpdate, object});
  return receipt;
}

chain::TxReceipt AuthenticatedDb::Delete(Key key) {
  if (poisoned_) {
    throw std::logic_error("AuthenticatedDb poisoned by an out-of-gas transaction");
  }
  if (!Contains(key)) {
    throw std::invalid_argument("Delete: unknown key");
  }
  const Hash vh = crypto::ValueHash(TombstoneValue());
  chain::TxReceipt receipt =
      env_->Execute(contract(), "delete", [&](gas::Meter& m) {
        impl_->ChainOp(options_.kind, /*insert=*/false, key, vh, m);
      });
  if (!receipt.ok) {
    poisoned_ = true;
    return receipt;
  }
  ApplyToSp(/*insert=*/false, key, TombstoneValue(), vh);
  deleted_.insert(key);
  --size_;
  RecordOp({JournalEntry::Op::kDelete, {key, {}}});
  return receipt;
}

chain::TxReceipt AuthenticatedDb::InsertBatch(const std::vector<Object>& objects) {
  if (poisoned_) {
    throw std::logic_error("AuthenticatedDb poisoned by an out-of-gas transaction");
  }
  std::unordered_set<Key> batch_keys;
  for (const Object& obj : objects) {
    if (sp_values_.count(obj.key) != 0 || !batch_keys.insert(obj.key).second) {
      throw std::invalid_argument("InsertBatch: duplicate or existing key");
    }
  }
  chain::TxReceipt receipt =
      env_->Execute(contract(), "insert_batch", [&](gas::Meter& m) {
        for (const Object& obj : objects) {
          impl_->ChainOp(options_.kind, /*insert=*/true, obj.key,
                         crypto::ValueHash(obj.value), m);
        }
      });
  if (!receipt.ok) {
    poisoned_ = true;
    return receipt;
  }
  for (const Object& obj : objects) {
    ApplyToSp(/*insert=*/true, obj.key, obj.value, crypto::ValueHash(obj.value));
    ++size_;
    RecordOp({JournalEntry::Op::kInsert, obj});
  }
  return receipt;
}

bool AuthenticatedDb::Contains(Key key) const {
  return sp_values_.count(key) != 0 && deleted_.count(key) == 0;
}

QueryResponse AuthenticatedDb::QueryPredicate(uint32_t attr, Key lb,
                                              Key ub) const {
  if (attr != 0) {
    throw std::invalid_argument("AuthenticatedDb: unknown attribute");
  }
  // Join the caller's trace (a sharded scatter, an engine batch) or start a
  // fresh one: this identity rides on the response so the client's Verify*
  // lands in the same trace.
  telemetry::TraceScope trace_scope(telemetry::ContinueTrace());
  telemetry::Span span("sp.query");
  QueryResponse response;
  response.trace = span.context();
  response.lb = lb;
  response.ub = ub;

  std::vector<ads::TreeAnswer> answers;
  switch (options_.kind) {
    case AdsKind::kMbTree: {
      ads::TreeAnswer a;
      a.label = "mbtree.root";
      a.vo = impl_->mb_sp->RangeQuery(lb, ub, &a.result);
      answers.push_back(std::move(a));
      break;
    }
    case AdsKind::kSmbTree: {
      ads::TreeAnswer a;
      a.label = "smbtree.root";
      a.vo = impl_->smb_sp->RangeQuery(lb, ub, &a.result);
      answers.push_back(std::move(a));
      break;
    }
    case AdsKind::kLsm: {
      for (size_t i = 0; i < impl_->lsm_sp->num_levels(); ++i) {
        ads::TreeAnswer a;
        a.label = "lsm.L" + std::to_string(i);
        a.vo = impl_->lsm_sp->RangeQuery(i, lb, ub, &a.result);
        answers.push_back(std::move(a));
      }
      break;
    }
    case AdsKind::kGem2:
      answers = impl_->gem2_sp->Query(lb, ub);
      break;
    case AdsKind::kGem2Star:
      answers = impl_->star_sp->Query(lb, ub);
      response.upper_splits = impl_->star_sp->split_points();
      break;
  }

  for (ads::TreeAnswer& a : answers) {
    TreeResultSet set;
    set.label = std::move(a.label);
    set.objects = ToObjects(a.result, sp_values_);
    set.vo = std::move(a.vo);
    response.trees.push_back(std::move(set));
  }
  if (telemetry::kCompiledIn && telemetry::Tracer::Global().enabled()) {
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("query.count").Add(1);
    metrics.histogram("query.vo_sp_bytes").Observe(VoSpBytes(response));
    uint64_t objects = 0;
    for (const TreeResultSet& t : response.trees) objects += t.objects.size();
    metrics.histogram("query.result_objects").Observe(objects);
  }
  return response;
}

QueryResponse CloneResponse(const QueryResponse& response) {
  QueryResponse copy;
  copy.lb = response.lb;
  copy.ub = response.ub;
  copy.upper_splits = response.upper_splits;
  copy.trees.reserve(response.trees.size());
  for (const TreeResultSet& tree : response.trees) {
    TreeResultSet set;
    set.label = tree.label;
    set.objects = tree.objects;
    set.vo = ads::CloneVo(tree.vo);
    copy.trees.push_back(std::move(set));
  }
  copy.slices.reserve(response.slices.size());
  for (const ShardSlice& slice : response.slices) {
    copy.slices.push_back({slice.shard, CloneResponse(slice.response)});
  }
  copy.trace = response.trace;
  return copy;
}

uint64_t VoSpBytes(const QueryResponse& response) {
  uint64_t total = 0;
  for (const TreeResultSet& t : response.trees) {
    total += t.label.size() + ads::VoSizeBytes(t.vo);
  }
  total += response.upper_splits.size() * sizeof(Key);
  // Composite responses: each slice contributes its own sub-VO plus the
  // shard tag that frames it on the wire.
  for (const ShardSlice& slice : response.slices) {
    total += sizeof(uint32_t) + VoSpBytes(slice.response);
  }
  return total;
}

uint64_t VoSpBytes(const SpecResponse& response) {
  uint64_t total = 0;
  for (const QueryResponse& conjunct : response.conjuncts) {
    total += VoSpBytes(conjunct);
  }
  return total;
}

SpecResponse CloneSpecResponse(const SpecResponse& response) {
  SpecResponse copy;
  copy.spec = response.spec;
  copy.conjuncts.reserve(response.conjuncts.size());
  for (const QueryResponse& conjunct : response.conjuncts) {
    copy.conjuncts.push_back(CloneResponse(conjunct));
  }
  copy.trace = response.trace;
  return copy;
}

VerifiedResult VerifyResponse(const chain::AuthenticatedState& state,
                              bool chain_valid, AdsKind kind,
                              const QueryResponse& response,
                              ads::HashStrategy strategy,
                              std::vector<ads::VoEntry>* boundary) {
  VerifiedResult out;
  out.vo_sp_bytes = VoSpBytes(response);
  for (const chain::ProvenDigest& pd : state.digests) {
    out.vo_chain_bytes += pd.entry.label.size() + 32 + pd.proof.size() * 33;
    for (const Bytes& node : pd.mpt_proof) out.vo_chain_bytes += node.size();
  }
  out.vo_chain_bytes += 4 * 32 + 24;  // block header fields

  auto fail = [&](const std::string& msg) {
    out.ok = false;
    out.error = msg;
    out.objects.clear();
    return out;
  };

  if (!response.slices.empty()) {
    return fail("composite response for a single-contract store");
  }
  if (!chain_valid) return fail("blockchain failed validation");
  if (!chain::Environment::VerifyAuthenticatedState(state)) {
    return fail("VO_chain inclusion proofs do not match the block state root");
  }

  std::map<std::string, Hash> digest_by_label;
  for (const chain::ProvenDigest& pd : state.digests) {
    if (!digest_by_label.emplace(pd.entry.label, pd.entry.digest).second) {
      return fail("duplicate digest label in VO_chain");
    }
  }

  // Which VO_chain trees must be answered?
  std::vector<std::string> required;
  if (kind == AdsKind::kGem2Star) {
    auto upper = digest_by_label.find("upper");
    if (upper == digest_by_label.end()) {
      return fail("VO_chain misses the upper-level digest");
    }
    if (upper->second != gem2star::UpperLevelDigest(response.upper_splits)) {
      return fail("upper-level split points do not match VO_chain");
    }
    const size_t li = RegionOf(response.upper_splits, response.lb);
    const size_t ui = RegionOf(response.upper_splits, response.ub);
    for (const auto& [label, digest] : digest_by_label) {
      if (label == "upper") continue;
      if (label == "P0") {
        required.push_back(label);
        continue;
      }
      for (size_t r = li; r <= ui; ++r) {
        if (HasRegionPrefix(label, r)) {
          required.push_back(label);
          break;
        }
      }
    }
  } else {
    for (const auto& [label, digest] : digest_by_label) required.push_back(label);
  }

  // Verify every answered tree against its on-chain digest.
  std::map<std::string, bool> answered;
  std::map<Key, Object> by_key;
  std::map<Key, ads::VoEntry> entries_by_key;  // boundary mode only
  for (const TreeResultSet& tree : response.trees) {
    auto digest = digest_by_label.find(tree.label);
    if (digest == digest_by_label.end()) {
      return fail("answer for unknown tree '" + tree.label + "'");
    }
    if (!answered.emplace(tree.label, true).second) {
      return fail("duplicate answer for tree '" + tree.label + "'");
    }
    if (boundary != nullptr) {
      // Aggregate answers ship proof structure only — a response still
      // carrying payloads is not what was asked for.
      if (!tree.objects.empty()) {
        return fail("aggregate response must not ship result objects");
      }
      std::vector<ads::VoEntry> tree_entries;
      ads::VerifyOutcome outcome = ads::VerifyTreeVoBoundary(
          response.lb, response.ub, tree.vo, digest->second, &tree_entries,
          strategy);
      if (!outcome.ok) {
        return fail("tree '" + tree.label + "': " + outcome.error);
      }
      for (ads::VoEntry& entry : tree_entries) {
        const Key key = entry.key;
        if (!entries_by_key.emplace(key, std::move(entry)).second) {
          return fail("key appears in multiple trees");
        }
      }
      continue;
    }
    ads::VerifyOutcome outcome = ads::VerifyTreeVo(
        response.lb, response.ub, tree.vo, digest->second, tree.objects,
        strategy);
    if (!outcome.ok) {
      return fail("tree '" + tree.label + "': " + outcome.error);
    }
    for (const Object& obj : tree.objects) {
      if (!by_key.emplace(obj.key, obj).second) {
        return fail("key appears in multiple trees");
      }
    }
  }

  // Completeness across trees: every required tree must have been answered.
  for (const std::string& label : required) {
    if (answered.find(label) == answered.end()) {
      return fail("missing answer for tree '" + label + "'");
    }
  }

  out.ok = true;
  if (boundary != nullptr) {
    for (auto& [key, entry] : entries_by_key) {
      boundary->push_back(std::move(entry));
    }
    return out;
  }
  out.objects.reserve(by_key.size());
  for (auto& [key, obj] : by_key) {
    // Deleted objects carry the dummy tombstone payload (paper Section V-B):
    // they participate in all proofs but are dropped from the logical result.
    if (IsTombstone(obj.value)) {
      ++out.tombstones_filtered;
      continue;
    }
    out.objects.push_back(std::move(obj));
  }
  return out;
}

VerifiedResult AuthenticatedDb::VerifyInternal(const QueryResponse& response,
                                               std::vector<ads::VoEntry>* boundary) {
  // Continue the trace the SP stamped on the response (falling back to the
  // thread's current trace for hand-built responses), so the verify span and
  // any rejection event share the query's identity.
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  VerifyObservation observe;
  TELEMETRY_SPAN("client.verify");
  chain::AuthenticatedState state =
      env_->ReadAuthenticatedState(options_.contract_name);
  // SPV-style client: follow headers (PoW + linkage) and anchor VO_chain at
  // the tip, instead of revalidating the whole chain per query.
  light_client_->Sync(env_->blockchain());
  std::string error;
  const bool chain_valid = light_client_->VerifyStateAtTip(state, &error);
  VerifiedResult result =
      VerifyResponse(state, chain_valid, options_.kind, response,
                     options_.client.batched_hashing
                         ? ads::HashStrategy::kBatched
                         : ads::HashStrategy::kSerial,
                     boundary);
  if (telemetry::kCompiledIn && telemetry::Tracer::Global().enabled()) {
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.counter("verify.count").Add(1);
    if (!result.ok) metrics.counter("verify.failed").Add(1);
    metrics.histogram("verify.vo_chain_bytes").Observe(result.vo_chain_bytes);
  }
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedResult AuthenticatedDb::Verify(const QueryResponse& response) {
  return VerifyInternal(response, nullptr);
}

VerifiedResult AuthenticatedDb::VerifyPredicateFor(
    uint32_t attr, Key lb, Key ub, const QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) {
  VerifyObservation observe;
  VerifiedResult out;
  out.ok = false;
  if (attr != 0) {
    out.error = "predicate over unknown attribute";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  if (response.lb != lb || response.ub != ub) {
    out.error = "response range does not match the issued query";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  return VerifyInternal(response, boundary);
}

VerifiedResult AuthenticatedDb::VerifyFor(Key lb, Key ub,
                                          const QueryResponse& response) {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  VerifyObservation observe;
  if (response.lb != lb || response.ub != ub) {
    VerifiedResult out;
    out.ok = false;
    out.error = "response range does not match the issued query";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  VerifiedResult result = Verify(response);
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

std::vector<chain::AuthenticatedState> AuthenticatedDb::ReadChainState() {
  std::vector<chain::AuthenticatedState> states;
  states.push_back(env_->ReadAuthenticatedState(options_.contract_name));
  return states;
}

VerifiedResult AuthenticatedDb::VerifyAgainst(
    const std::vector<chain::AuthenticatedState>& states,
    const QueryResponse& response) const {
  telemetry::TraceScope trace_scope(response.trace.valid()
                                        ? response.trace
                                        : telemetry::CurrentTrace());
  VerifyObservation observe;
  if (states.size() != 1 || states[0].contract != options_.contract_name) {
    VerifiedResult out;
    out.ok = false;
    out.error = "chain state does not cover this store's contract";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  const bool telemetry_on =
      telemetry::kCompiledIn && telemetry::Tracer::Global().enabled();
  const uint64_t t0 = telemetry_on ? telemetry::Tracer::NowNs() : 0;
  VerifiedResult result =
      VerifyResponse(states[0], /*chain_valid=*/true, options_.kind, response,
                     options_.client.batched_hashing
                         ? ads::HashStrategy::kBatched
                         : ads::HashStrategy::kSerial);
  if (telemetry_on) {
    telemetry::MetricsRegistry::Global()
        .histogram("client.verify_ns")
        .Observe(telemetry::Tracer::NowNs() - t0);
  }
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

VerifiedResult AuthenticatedDb::VerifyPredicateAgainst(
    const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
    Key lb, Key ub, const QueryResponse& response,
    std::vector<ads::VoEntry>* boundary) const {
  VerifyObservation observe;
  VerifiedResult out;
  out.ok = false;
  if (attr != 0) {
    out.error = "predicate over unknown attribute";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  if (response.lb != lb || response.ub != ub) {
    out.error = "response range does not match the issued query";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  if (boundary == nullptr) return VerifyAgainst(states, response);
  if (states.size() != 1 || states[0].contract != options_.contract_name) {
    out.error = "chain state does not cover this store's contract";
    observe.RecordRejection(BackendName(), out.error);
    return out;
  }
  VerifiedResult result =
      VerifyResponse(states[0], /*chain_valid=*/true, options_.kind, response,
                     options_.client.batched_hashing
                         ? ads::HashStrategy::kBatched
                         : ads::HashStrategy::kSerial,
                     boundary);
  if (!result.ok) observe.RecordRejection(BackendName(), result.error);
  return result;
}

std::unique_ptr<AuthenticatedDb> AuthenticatedDb::Replay(DbOptions options,
                                                         const Journal& journal) {
  auto db = std::make_unique<AuthenticatedDb>(std::move(options));
  for (const JournalEntry& e : journal.entries()) {
    chain::TxReceipt receipt;
    switch (e.op) {
      case JournalEntry::Op::kInsert:
        receipt = db->Insert(e.object);
        break;
      case JournalEntry::Op::kUpdate:
        receipt = db->Update(e.object);
        break;
      case JournalEntry::Op::kDelete:
        receipt = db->Delete(e.object.key);
        break;
    }
    if (!receipt.ok) {
      throw std::runtime_error("journal replay aborted: " + receipt.error);
    }
  }
  return db;
}

std::vector<chain::DigestEntry> AuthenticatedDb::ChainDigests() const {
  return contract().CommittedDigests();
}

void AuthenticatedDb::CheckConsistency() const {
  auto require = [](bool cond, const char* msg) {
    if (!cond) throw std::logic_error(msg);
  };
  switch (options_.kind) {
    case AdsKind::kMbTree:
      require(impl_->mb_contract->tree().root_digest() ==
                  impl_->mb_sp->root_digest(),
              "MB-tree contract/SP roots diverged");
      impl_->mb_contract->tree().CheckInvariants();
      impl_->mb_sp->CheckInvariants();
      break;
    case AdsKind::kSmbTree:
      require(impl_->smb_contract->root_digest() == impl_->smb_sp->root_digest(),
              "SMB-tree contract/SP roots diverged");
      break;
    case AdsKind::kLsm:
      require(impl_->lsm_contract->num_levels() == impl_->lsm_sp->num_levels(),
              "LSM level counts diverged");
      for (size_t i = 0; i < impl_->lsm_sp->num_levels(); ++i) {
        require(impl_->lsm_contract->level_root(i) == impl_->lsm_sp->level_root(i),
                "LSM level roots diverged");
      }
      break;
    case AdsKind::kGem2:
      require(impl_->gem2_contract->engine().Digests() == impl_->gem2_sp->Digests(),
              "GEM2 contract/SP digests diverged");
      impl_->gem2_contract->engine().CheckInvariants();
      impl_->gem2_sp->CheckInvariants();
      break;
    case AdsKind::kGem2Star:
      require(impl_->star_contract->engine().Digests() == impl_->star_sp->Digests(),
              "GEM2* contract/SP digests diverged");
      impl_->star_contract->engine().CheckInvariants();
      impl_->star_sp->CheckInvariants();
      break;
  }
}

}  // namespace gem2::core
