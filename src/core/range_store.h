/// \file range_store.h
/// The library's role-separated public interface. A RangeStore is an
/// authenticated key/value store serving verified range queries; the methods
/// are grouped by the paper's four parties (Fig. 1), so call sites state
/// which role they play and never need to know which backend they drive:
///
///   - data owner:  Insert / Update / Delete / InsertBatch
///   - service provider (SP):  Query / QueryWire
///   - client:  Verify / VerifyFor / VerifyWire
///   - blockchain:  environment(), ReadChainState()
///
/// Implementations: core::AuthenticatedDb (one ADS contract, the paper's
/// system model) and shard::ShardedDb (a range-partitioned keyspace over
/// many ADS contracts with scatter-gather composite queries). Benches, the
/// SpQueryEngine, the fault harnesses, and the examples all work against
/// this interface.
#ifndef GEM2_CORE_RANGE_STORE_H_
#define GEM2_CORE_RANGE_STORE_H_

#include <string>
#include <vector>

#include "chain/environment.h"
#include "core/response.h"
#include "core/wire.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::core {

class SpPoolScope;

/// Client-side verification knobs (DbOptions::client). Both default and
/// non-default settings produce bit-identical accept/reject decisions and
/// error strings — they only change how fast the client gets there.
struct ClientOptions {
  /// Recompute VO digests in level-order batches through the 8-way AVX-512
  /// Keccak batcher instead of one scalar hash at a time (ads::HashStrategy).
  bool batched_hashing = true;
  /// Verifies composite slices in parallel on this pool (the pure-CPU
  /// VerifyAgainst path only — the chain-reading VerifyFor path stays
  /// serial). nullptr = serial. Must outlive the store.
  common::ThreadPool* pool = nullptr;
};

class RangeStore {
 public:
  virtual ~RangeStore() = default;

  // --- Data-owner facet ----------------------------------------------------

  /// Inserts a fresh object: metered transaction(s) on-chain plus the SP
  /// mirror update.
  virtual chain::TxReceipt Insert(const Object& object) = 0;

  /// Updates an existing object's value.
  virtual chain::TxReceipt Update(const Object& object) = 0;

  /// Deletes a key (tombstone semantics, paper Section V-B).
  virtual chain::TxReceipt Delete(Key key) = 0;

  /// Inserts many fresh objects under one gasLimit budget. A sharded backend
  /// issues one transaction per owning shard; the returned receipt is the
  /// last one (all must succeed or the store is poisoned).
  virtual chain::TxReceipt InsertBatch(const std::vector<Object>& objects) = 0;

  /// True when the key is present and not deleted.
  virtual bool Contains(Key key) const = 0;
  /// Live (non-deleted) objects.
  virtual uint64_t size() const = 0;

  // --- Service-provider facet ----------------------------------------------

  /// Runs the range query against the SP's materialized ADS state, returning
  /// result objects and VO_sp. Sharded backends return a composite response
  /// (QueryResponse::slices) gathered from every overlapping shard.
  virtual QueryResponse Query(Key lb, Key ub) const = 0;

  /// Query + wire serialization: what the SP actually ships to a client.
  /// Serializes in the backend's configured wire version (wire_version()).
  virtual Bytes QueryWire(Key lb, Key ub) const;

  /// As QueryWire, but appends the (traced-envelope + image) bytes to `*out`
  /// instead of returning a fresh buffer: a serving front-end writes the
  /// response straight into a connection's outbound buffer, after the frame
  /// header it has already encoded, with no per-response image copy. The
  /// appended bytes are bit-identical to QueryWire's return value.
  virtual void QueryWireInto(Key lb, Key ub, Bytes* out) const;

  /// Wire format QueryWire serializes responses as. Clients parse any
  /// supported version off the image's leading byte, so SPs can switch
  /// versions without coordination.
  virtual WireVersion wire_version() const { return WireVersion::kV2; }

  // --- Client facet --------------------------------------------------------

  /// Full client-side verification of a response against the on-chain
  /// digests (retrieving VO_chain and syncing the light client). The range
  /// verified is the one the response claims.
  virtual VerifiedResult Verify(const QueryResponse& response);

  /// As Verify, but pins the range the client actually asked for: a response
  /// claiming any other range is rejected outright. Use this whenever the
  /// response crossed a trust boundary.
  virtual VerifiedResult VerifyFor(Key lb, Key ub, const QueryResponse& response) = 0;

  /// Parses a serialized response and runs VerifyFor on it: the single entry
  /// point for bytes received over a network. Malformed or unknown-version
  /// images come back as a failed result ("malformed wire image"), never as
  /// an exception.
  virtual VerifiedResult VerifyWire(Key lb, Key ub, const Bytes& wire);

  /// Convenience: Query + VerifyFor in one call.
  VerifiedResult AuthenticatedRange(Key lb, Key ub);

  // --- Blockchain facet ----------------------------------------------------

  /// The chain hosting this store's contract(s).
  virtual chain::Environment& environment() = 0;

  /// VO_chain for every contract backing this store (one AuthenticatedState
  /// per contract, all anchored at the same sealed header). Measurement
  /// harnesses retrieve this once and verify many responses against it with
  /// VerifyAgainst.
  virtual std::vector<chain::AuthenticatedState> ReadChainState() = 0;

  /// Client verification against already-retrieved chain state, with the
  /// header(s) assumed validated by the caller (`chain_valid`). This is the
  /// hot verification path of Figs. 9-10: no chain reads, pure CPU.
  virtual VerifiedResult VerifyAgainst(
      const std::vector<chain::AuthenticatedState>& states,
      const QueryResponse& response) const = 0;

  // --- Introspection -------------------------------------------------------

  /// True once a transaction ran out of gas (store no longer usable).
  virtual bool poisoned() const = 0;

  /// Human-readable backend description, e.g. "GEM2-tree" or
  /// "sharded(4)/GEM2-tree".
  virtual std::string BackendName() const = 0;

  /// Cross-checks contract and SP mirrors (tests): digests must agree and
  /// structural invariants must hold.
  virtual void CheckConsistency() const = 0;

 protected:
  /// Routes SP-side (unmetered) tree materializations through `pool`;
  /// nullptr reverts to the construction-time DbOptions::sp_pool (or serial).
  /// Reached through SpPoolScope or DbOptions::sp_pool — never called
  /// directly by clients, so pool lifetime is always scoped.
  virtual void ApplySpPool(common::ThreadPool* pool) = 0;

  /// Lets a composite store (e.g. a sharded db) forward pool installation to
  /// the stores it owns without widening their public API.
  static void ApplySpPoolTo(RangeStore& store, common::ThreadPool* pool) {
    store.ApplySpPool(pool);
  }

  friend class SpPoolScope;
};

/// RAII pool installation: routes a store's SP-side builds through `pool`
/// for the scope's lifetime, then reverts to the store's configured pool.
/// This replaces the deprecated raw-pointer AuthenticatedDb::SetSpThreadPool.
class SpPoolScope {
 public:
  SpPoolScope(RangeStore& store, common::ThreadPool* pool) : store_(&store) {
    store_->ApplySpPool(pool);
  }
  ~SpPoolScope() { store_->ApplySpPool(nullptr); }

  SpPoolScope(const SpPoolScope&) = delete;
  SpPoolScope& operator=(const SpPoolScope&) = delete;

 private:
  RangeStore* store_;
};

}  // namespace gem2::core

#endif  // GEM2_CORE_RANGE_STORE_H_
