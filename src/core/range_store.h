/// \file range_store.h
/// The library's role-separated public interface. A RangeStore is an
/// authenticated key/value store serving verified range queries; the methods
/// are grouped by the paper's four parties (Fig. 1), so call sites state
/// which role they play and never need to know which backend they drive:
///
///   - data owner:  Insert / Update / Delete / InsertBatch
///   - service provider (SP):  ExecuteSpec / SpecWire (and the legacy
///     Query / QueryWire shims)
///   - client:  VerifySpecFor / VerifySpecWire (and Verify / VerifyFor /
///     VerifyWire for the legacy surface)
///   - blockchain:  environment(), ReadChainState()
///
/// Every query enters through a typed core::QuerySpec (query_spec.h). The
/// legacy one-dimensional `Query(lb, ub)` entry points are retained as thin
/// non-virtual shims over a single-predicate spec on attribute 0 — they call
/// the same per-attribute primitive (QueryPredicate) and produce wire images
/// byte-identical to the pre-QuerySpec protocol.
///
/// Implementations: core::AuthenticatedDb (one ADS contract, the paper's
/// system model), shard::ShardedDb (a range-partitioned keyspace over many
/// ADS contracts with scatter-gather composite queries), and
/// multiattr::MultiAttrDb (K-attribute records indexed by per-attribute
/// GEM2-trees under one state commitment, serving boolean AND/OR specs and
/// server-computed aggregates). Benches, the SpQueryEngine, the fault
/// harnesses, and the examples all work against this interface.
#ifndef GEM2_CORE_RANGE_STORE_H_
#define GEM2_CORE_RANGE_STORE_H_

#include <functional>
#include <string>
#include <vector>

#include "chain/environment.h"
#include "core/query_spec.h"
#include "core/response.h"
#include "core/wire.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::core {

class SpPoolScope;

/// Client-side verification knobs (DbOptions::client). Both default and
/// non-default settings produce bit-identical accept/reject decisions and
/// error strings — they only change how fast the client gets there.
struct ClientOptions {
  /// Recompute VO digests in level-order batches through the 8-way AVX-512
  /// Keccak batcher instead of one scalar hash at a time (ads::HashStrategy).
  bool batched_hashing = true;
  /// Verifies composite slices in parallel on this pool (the pure-CPU
  /// VerifyAgainst path only — the chain-reading VerifyFor path stays
  /// serial). nullptr = serial. Must outlive the store.
  common::ThreadPool* pool = nullptr;
};

class RangeStore {
 public:
  virtual ~RangeStore() = default;

  // --- Data-owner facet ----------------------------------------------------

  /// Inserts a fresh object: metered transaction(s) on-chain plus the SP
  /// mirror update.
  virtual chain::TxReceipt Insert(const Object& object) = 0;

  /// Updates an existing object's value.
  virtual chain::TxReceipt Update(const Object& object) = 0;

  /// Deletes a key (tombstone semantics, paper Section V-B).
  virtual chain::TxReceipt Delete(Key key) = 0;

  /// Inserts many fresh objects under one gasLimit budget. A sharded backend
  /// issues one transaction per owning shard; the returned receipt is the
  /// last one (all must succeed or the store is poisoned).
  virtual chain::TxReceipt InsertBatch(const std::vector<Object>& objects) = 0;

  /// True when the key is present and not deleted.
  virtual bool Contains(Key key) const = 0;
  /// Live (non-deleted) objects.
  virtual uint64_t size() const = 0;

  // --- Service-provider facet ----------------------------------------------

  /// Number of attributes a record carries (the valid Predicate::attr range
  /// is [0, num_attributes())). Single-attribute backends report 1: their
  /// only attribute is the key itself.
  virtual uint32_t num_attributes() const { return 1; }

  /// Executes a typed query: answers every predicate against its attribute's
  /// index (one QueryResponse per predicate, in predicate order) and echoes
  /// the spec for the client to pin. Aggregate specs ship boundary structure
  /// only — each conjunct is stripped with core::StripForAggregate, so no
  /// result payloads travel. Structural spec validity (QuerySpec::Check) is
  /// the caller's duty; an unknown attribute throws std::invalid_argument.
  virtual SpecResponse ExecuteSpec(const QuerySpec& spec) const;

  /// ExecuteSpec + wire serialization (SerializeSpecResponse in the
  /// backend's wire_version()), the spec analogue of QueryWire.
  Bytes SpecWire(const QuerySpec& spec) const;
  virtual void SpecWireInto(const QuerySpec& spec, Bytes* out) const;

  /// Runs the range query against the SP's materialized ADS state, returning
  /// result objects and VO_sp. Sharded backends return a composite response
  /// (QueryResponse::slices) gathered from every overlapping shard.
  ///
  /// Legacy shim: exactly QuerySpec::Range(lb, ub) answered through the
  /// per-attribute primitive, so the response (and its wire image) is
  /// byte-identical to the pre-QuerySpec protocol.
  QueryResponse Query(Key lb, Key ub) const { return QueryPredicate(0, lb, ub); }

  /// Query + wire serialization: what the SP actually ships to a client.
  /// Serializes in the backend's configured wire version (wire_version()).
  virtual Bytes QueryWire(Key lb, Key ub) const;

  /// As QueryWire, but appends the (traced-envelope + image) bytes to `*out`
  /// instead of returning a fresh buffer: a serving front-end writes the
  /// response straight into a connection's outbound buffer, after the frame
  /// header it has already encoded, with no per-response image copy. The
  /// appended bytes are bit-identical to QueryWire's return value.
  virtual void QueryWireInto(Key lb, Key ub, Bytes* out) const;

  /// Wire format QueryWire serializes responses as. Clients parse any
  /// supported version off the image's leading byte, so SPs can switch
  /// versions without coordination.
  virtual WireVersion wire_version() const { return WireVersion::kV2; }

  // --- Client facet --------------------------------------------------------

  /// Full client-side verification of a spec answer: pins the echoed spec
  /// against the one the client issued, verifies each conjunct's soundness
  /// and completeness over its own predicate range (chain-reading, like
  /// VerifyFor), and only then composes — intersecting (AND) or uniting (OR)
  /// the canonicalized per-conjunct result sets, or folding an aggregate
  /// spec's verified boundary entries into COUNT/SUM/MIN/MAX.
  virtual VerifiedSpecResult VerifySpecFor(const QuerySpec& spec,
                                           const SpecResponse& response);

  /// Parses a serialized spec answer and runs VerifySpecFor: the entry point
  /// for spec bytes received over a network. Malformed images fail closed
  /// ("malformed wire image"), never throw.
  VerifiedSpecResult VerifySpecWire(const QuerySpec& spec, const Bytes& wire);

  /// Spec verification against already-retrieved chain state (header(s)
  /// assumed validated by the caller) — the spec analogue of VerifyAgainst.
  virtual VerifiedSpecResult VerifySpecAgainst(
      const std::vector<chain::AuthenticatedState>& states,
      const QuerySpec& spec, const SpecResponse& response) const;

  /// Convenience: ExecuteSpec + VerifySpecFor in one call.
  VerifiedSpecResult AuthenticatedSpec(const QuerySpec& spec);

  /// Full client-side verification of a response against the on-chain
  /// digests (retrieving VO_chain and syncing the light client). The range
  /// verified is the one the response claims.
  virtual VerifiedResult Verify(const QueryResponse& response);

  /// As Verify, but pins the range the client actually asked for: a response
  /// claiming any other range is rejected outright. Use this whenever the
  /// response crossed a trust boundary.
  virtual VerifiedResult VerifyFor(Key lb, Key ub, const QueryResponse& response) = 0;

  /// Parses a serialized response and runs VerifyFor on it: the single entry
  /// point for bytes received over a network. Malformed or unknown-version
  /// images come back as a failed result ("malformed wire image"), never as
  /// an exception.
  virtual VerifiedResult VerifyWire(Key lb, Key ub, const Bytes& wire);

  /// Convenience: Query + VerifyFor in one call.
  VerifiedResult AuthenticatedRange(Key lb, Key ub);

  // --- Blockchain facet ----------------------------------------------------

  /// The chain hosting this store's contract(s).
  virtual chain::Environment& environment() = 0;

  /// VO_chain for every contract backing this store (one AuthenticatedState
  /// per contract, all anchored at the same sealed header). Measurement
  /// harnesses retrieve this once and verify many responses against it with
  /// VerifyAgainst.
  virtual std::vector<chain::AuthenticatedState> ReadChainState() = 0;

  /// Client verification against already-retrieved chain state, with the
  /// header(s) assumed validated by the caller (`chain_valid`). This is the
  /// hot verification path of Figs. 9-10: no chain reads, pure CPU.
  virtual VerifiedResult VerifyAgainst(
      const std::vector<chain::AuthenticatedState>& states,
      const QueryResponse& response) const = 0;

  // --- Introspection -------------------------------------------------------

  /// True once a transaction ran out of gas (store no longer usable).
  virtual bool poisoned() const = 0;

  /// Human-readable backend description, e.g. "GEM2-tree" or
  /// "sharded(4)/GEM2-tree".
  virtual std::string BackendName() const = 0;

  /// Cross-checks contract and SP mirrors (tests): digests must agree and
  /// structural invariants must hold.
  virtual void CheckConsistency() const = 0;

 protected:
  // --- Per-attribute primitives (the seam backends implement) --------------
  //
  // The generic spec machinery above (ExecuteSpec, VerifySpecFor/Against,
  // the boolean composition, the aggregate fold) is implemented once in
  // RangeStore against these small per-attribute virtuals. A backend
  // supplies the primitives; composition, pinning, and completeness
  // discipline come for free and stay identical across backends.

  /// SP: answers one predicate's range against attribute `attr`'s index, in
  /// that index's *tree-key* domain (see MapPredicateRange). Attribute 0 of
  /// a single-attribute backend is the legacy Query body verbatim. Throws
  /// std::invalid_argument for an unknown attribute.
  virtual QueryResponse QueryPredicate(uint32_t attr, Key lb, Key ub) const = 0;

  /// Client (chain-reading): verifies one conjunct against attribute
  /// `attr`'s on-chain digests, pinning [lb, ub] (tree-key domain). With
  /// `boundary == nullptr` this is result-set verification (VerifyFor's
  /// checks); non-null selects boundary mode for aggregates — the response
  /// must ship no result objects and every verified in-range entry is
  /// appended to `*boundary` in ascending key order.
  virtual VerifiedResult VerifyPredicateFor(uint32_t attr, Key lb, Key ub,
                                            const QueryResponse& response,
                                            std::vector<ads::VoEntry>* boundary);

  /// As VerifyPredicateFor, against already-retrieved chain state.
  virtual VerifiedResult VerifyPredicateAgainst(
      const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
      Key lb, Key ub, const QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) const;

  /// Maps a predicate's [lb, ub] (attribute-value domain) to the tree-key
  /// domain attribute `attr` is indexed in. Identity by default; a
  /// multi-attribute backend packs (value, record id) into composite tree
  /// keys and widens the range accordingly.
  virtual void MapPredicateRange(uint32_t /*attr*/, Key lb, Key ub,
                                 Key* tree_lb, Key* tree_ub) const {
    *tree_lb = lb;
    *tree_ub = ub;
  }

  /// Inverse of the value half of MapPredicateRange: the attribute value a
  /// tree key encodes (used by the aggregate fold). Identity by default.
  virtual Key DecodeAttrValue(uint32_t /*attr*/, Key tree_key) const {
    return tree_key;
  }

  /// Canonicalizes one verified object of attribute `attr`'s index before
  /// set composition: the output's key must identify the *record* (identical
  /// across attributes), the value its payload. Identity by default; a
  /// multi-attribute backend decodes the record id and cross-checks the
  /// composite key. False (with `*error`) rejects the whole response.
  virtual bool CanonicalizeSpecObject(uint32_t /*attr*/, const Object& in,
                                      Object* out,
                                      std::string* /*error*/) const {
    *out = in;
    return true;
  }

  /// Shared composition: pins the spec echo, conjunct count, and per-conjunct
  /// ranges; verifies every conjunct through `verify_predicate` (each
  /// conjunct's completeness is established *before* any set operation);
  /// then intersects/unites by canonical record, cross-checking payload
  /// agreement, or folds boundary entries into aggregates.
  VerifiedSpecResult ComposeSpecVerification(
      const QuerySpec& spec, const SpecResponse& response,
      const std::function<VerifiedResult(uint32_t attr, Key lb, Key ub,
                                         const QueryResponse& conjunct,
                                         std::vector<ads::VoEntry>* boundary)>&
          verify_predicate) const;

  /// Routes SP-side (unmetered) tree materializations through `pool`;
  /// nullptr reverts to the construction-time DbOptions::sp_pool (or serial).
  /// Reached through SpPoolScope or DbOptions::sp_pool — never called
  /// directly by clients, so pool lifetime is always scoped.
  virtual void ApplySpPool(common::ThreadPool* pool) = 0;

  /// Lets a composite store (e.g. a sharded db) forward pool installation to
  /// the stores it owns without widening their public API.
  static void ApplySpPoolTo(RangeStore& store, common::ThreadPool* pool) {
    store.ApplySpPool(pool);
  }

  /// Same idea for the per-attribute verification primitives: a composite
  /// store (sharded, multi-attribute) delegates a conjunct to one of the
  /// stores it owns without those primitives becoming public API.
  static VerifiedResult VerifyPredicateForOn(
      RangeStore& store, uint32_t attr, Key lb, Key ub,
      const QueryResponse& response, std::vector<ads::VoEntry>* boundary) {
    return store.VerifyPredicateFor(attr, lb, ub, response, boundary);
  }
  static VerifiedResult VerifyPredicateAgainstOn(
      const RangeStore& store,
      const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
      Key lb, Key ub, const QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) {
    return store.VerifyPredicateAgainst(states, attr, lb, ub, response,
                                        boundary);
  }

  friend class SpPoolScope;
};

/// RAII pool installation: routes a store's SP-side builds through `pool`
/// for the scope's lifetime, then reverts to the store's configured pool.
class SpPoolScope {
 public:
  SpPoolScope(RangeStore& store, common::ThreadPool* pool) : store_(&store) {
    store_->ApplySpPool(pool);
  }
  ~SpPoolScope() { store_->ApplySpPool(nullptr); }

  SpPoolScope(const SpPoolScope&) = delete;
  SpPoolScope& operator=(const SpPoolScope&) = delete;

 private:
  RangeStore* store_;
};

}  // namespace gem2::core

#endif  // GEM2_CORE_RANGE_STORE_H_
