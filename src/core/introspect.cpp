#include "core/introspect.h"

#include <mutex>

#include "common/arena.h"
#include "crypto/keccak.h"
#include "telemetry/introspect.h"

namespace gem2::core {

void RegisterCoreIntrospection() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& introspection = telemetry::Introspection::Global();
    introspection.RegisterProvider("keccak", [] {
      return telemetry::ProviderFacts{
          {"permutations", crypto::KeccakPermutationCount()},
      };
    });
    introspection.RegisterProvider("arena", [] {
      const common::Arena::Stats& stats = common::Arena::GlobalStats();
      return telemetry::ProviderFacts{
          {"allocations", stats.allocations},
          {"bytes", stats.bytes},
          {"blocks", stats.blocks},
          {"epochs", stats.epochs},
      };
    });
  });
}

}  // namespace gem2::core
