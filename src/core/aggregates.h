/// \file aggregates.h
/// Client-side authenticated aggregates over verified range results.
///
/// The paper's conclusion flags authenticated aggregation as future work;
/// the *client-side* flavour falls out of range verification: once a range
/// result is proven sound and complete, any function of it (COUNT, MIN, MAX,
/// SUM over numeric payloads) inherits the guarantee. This header provides
/// that derivation; server-computed aggregates with sublinear VOs would need
/// a different ADS and are out of scope.
#ifndef GEM2_CORE_AGGREGATES_H_
#define GEM2_CORE_AGGREGATES_H_

#include <optional>

#include "core/response.h"

namespace gem2::core {

struct RangeAggregates {
  /// Number of live (non-tombstoned) objects in the range.
  uint64_t count = 0;
  /// Smallest / largest key in the range (unset when count == 0).
  std::optional<Key> min_key;
  std::optional<Key> max_key;
  /// Sum over payloads that parse fully as decimal integers; unset when any
  /// payload in the range is non-numeric.
  std::optional<long long> sum;
};

/// Derives aggregates from a verified result. Returns std::nullopt when the
/// result did not verify (aggregates over unverified data are meaningless).
std::optional<RangeAggregates> Aggregate(const VerifiedResult& result);

}  // namespace gem2::core

#endif  // GEM2_CORE_AGGREGATES_H_
