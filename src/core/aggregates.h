/// \file aggregates.h
/// Authenticated aggregates — client-side and server-computed.
///
/// The paper's conclusion flags authenticated aggregation as future work.
/// Two flavours fall out of the range-verification machinery:
///
///   - *client-side*: once a range result is proven sound and complete, any
///     function of it (COUNT, MIN, MAX, SUM over numeric payloads) inherits
///     the guarantee — Aggregate(VerifiedResult) below;
///   - *server-computed*: the SP strips a response down to its VO boundary
///     structure — every result entry demoted to a boundary entry carrying
///     its explicit value hash, result payloads dropped — and the VO alone
///     then proves the exact in-range key set (soundness via root digest,
///     completeness via the interval/ordering checks). COUNT/SUM/MIN/MAX
///     over the indexed attribute values follow from the verified entries
///     without shipping the result set; tombstones are recognized by value
///     hash (core/tombstone.h). Digests and gas are untouched: the demotion
///     is a post-processing of the normal VO, not a different ADS.
#ifndef GEM2_CORE_AGGREGATES_H_
#define GEM2_CORE_AGGREGATES_H_

#include <functional>
#include <optional>

#include "core/response.h"

namespace gem2::core {

/// Derives aggregates from a verified result. Returns std::nullopt when the
/// result did not verify (aggregates over unverified data are meaningless).
std::optional<RangeAggregates> Aggregate(const VerifiedResult& result);

/// SP side: demotes every result entry in every tree VO (including composite
/// slices, recursively) to an explicit-hash boundary entry — the hash
/// recomputed from the result object exactly as a verifying client would —
/// and drops the result objects. The response then ships boundary structure
/// only; reconstructed digests are bit-identical to the unstripped VO's.
void StripForAggregate(QueryResponse* response);

/// Client side: folds verified boundary entries (ads::VerifyTreeVoBoundary
/// output, ascending keys) into aggregates. `decode_value` maps a tree key
/// to the attribute value it encodes (identity for single-attribute stores);
/// entries whose value hash equals the tombstone hash are skipped and
/// counted into `*tombstones_filtered` when non-null.
RangeAggregates AggregateBoundary(const std::vector<ads::VoEntry>& entries,
                                  const std::function<Key(Key)>& decode_value,
                                  uint64_t* tombstones_filtered);

}  // namespace gem2::core

#endif  // GEM2_CORE_AGGREGATES_H_
