/// \file authenticated_db.h
/// The single-contract RangeStore backend: a hybrid-storage blockchain
/// database with authenticated range queries (paper Fig. 1).
///
/// An AuthenticatedDb wires together all four parties of the system model:
///   - the data owner, whose Insert/Update calls are sent both to the smart
///     contract (as metered transactions on the simulated chain) and to the
///     off-chain service provider;
///   - the blockchain, which maintains the chosen ADS inside a contract and
///     commits its digests into every block;
///   - the service provider (SP), which stores the raw objects and answers
///     range queries with verification objects (VO_sp);
///   - the client, which checks soundness and completeness of each answer
///     against the on-chain digests (VO_chain).
///
/// The ADS is selectable: the paper's GEM2-tree and GEM2*-tree, the MB-tree
/// and SMB-tree baselines, and the LSM-tree comparator. For the sharded
/// multi-contract backend built on top of this class, see shard/sharded_db.h.
#ifndef GEM2_CORE_AUTHENTICATED_DB_H_
#define GEM2_CORE_AUTHENTICATED_DB_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ads/verify.h"
#include "chain/environment.h"
#include "chain/light_client.h"
#include "core/journal.h"
#include "core/range_store.h"
#include "core/response.h"
#include "gem2/engine.h"
#include "gem2/options.h"
#include "gem2star/gem2star.h"
#include "lsm/lsm.h"
#include "mbtree/contract.h"
#include "smbtree/smbtree.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::core {

enum class AdsKind { kMbTree, kSmbTree, kLsm, kGem2, kGem2Star };

std::string AdsKindName(AdsKind kind);

struct DbOptions {
  AdsKind kind = AdsKind::kGem2;
  /// GEM2 / GEM2* parameters (also supplies the fanout for the baselines).
  gem2tree::Gem2Options gem2;
  /// GEM2*-tree upper-level split points (quantiles of the expected key
  /// distribution; see workload::WorkloadGenerator::SplitPoints).
  std::vector<Key> split_points;
  lsm::LsmOptions lsm;
  chain::EnvironmentOptions env;
  /// Name the ADS contract registers under in the environment (the label a
  /// client passes to Environment::ReadAuthenticatedState). A sharded
  /// deployment names each shard's contract distinctly ("shard0", ...).
  std::string contract_name = "ads";
  /// Host chain. nullptr (default): the db constructs and owns its own
  /// Environment from `env`. Non-null: the db registers its contract in the
  /// caller's environment (which must outlive the db) — this is how many
  /// shard contracts share one state commitment; `env` is then ignored.
  chain::Environment* shared_env = nullptr;
  /// Thread pool for SP-side (unmetered) tree materializations; nullptr =
  /// serial. Scoped overrides go through core::SpPoolScope.
  common::ThreadPool* sp_pool = nullptr;
  /// Durable mirror of the operation journal (must outlive the db). Every
  /// committed op is appended here before it is acknowledged; a failed append
  /// fails the operation closed (std::runtime_error) because an op the
  /// durable log never saw could not be recovered after a crash. nullptr
  /// keeps the journal in-memory only. See store::DurableJournal.
  JournalSink* journal_sink = nullptr;
  /// Wire format QueryWire ships responses as. v2 is the fixed-width format;
  /// v3 (core/wire_v3.h) delta-encodes keys and dedups repeated subtree
  /// hashes. Clients parse either off the leading version byte; gas and the
  /// in-memory protocol are unaffected.
  WireVersion wire_version = WireVersion::kV2;
  /// Client-side verification knobs (batched hashing, composite slice pool).
  ClientOptions client;

  /// Rejects nonsensical configurations with std::invalid_argument before
  /// any chain state exists: GEM2*-tree without split points, unsorted split
  /// points, zero fanout/m/smax, a zero gas limit or block size.
  void Validate() const;
};

class AuthenticatedDb : public RangeStore {
 public:
  /// Default contract name (DbOptions::contract_name).
  static constexpr const char* kContractName = "ads";

  /// Validates `options` (DbOptions::Validate) and builds the four-party
  /// system. Throws std::invalid_argument on a bad configuration.
  explicit AuthenticatedDb(DbOptions options = {});
  ~AuthenticatedDb() override;

  AuthenticatedDb(const AuthenticatedDb&) = delete;
  AuthenticatedDb& operator=(const AuthenticatedDb&) = delete;

  // --- Data-owner interface ---------------------------------------------

  /// Inserts a fresh object: one metered transaction on-chain plus the SP
  /// mirror update. Throws std::logic_error if a prior transaction ran out
  /// of gas (the contract is then unusable — see chain/storage.h).
  chain::TxReceipt Insert(const Object& object) override;

  /// Updates an existing object's value.
  chain::TxReceipt Update(const Object& object) override;

  /// Deletes a key (paper Section V-B): the object is replaced by a dummy
  /// tombstone value on-chain and at the SP; the client filters tombstones
  /// from verified results. Re-inserting a deleted key revives it.
  chain::TxReceipt Delete(Key key) override;

  /// Inserts many fresh objects in ONE transaction: a single intrinsic fee
  /// and one gasLimit budget (large batches can therefore abort where the
  /// same objects inserted one-by-one would not).
  chain::TxReceipt InsertBatch(const std::vector<Object>& objects) override;

  /// True when the key is present and not deleted.
  bool Contains(Key key) const override;
  /// Live (non-deleted) objects.
  uint64_t size() const override { return size_; }

  // --- Client interface ---------------------------------------------------

  /// Full client-side verification (Algorithms 6 / 8): retrieves VO_chain
  /// from the blockchain (validating the chain, the state commitment, and
  /// the inclusion proofs), then checks every tree's soundness and
  /// completeness. Returns the verified, key-ordered result.
  VerifiedResult Verify(const QueryResponse& response) override;

  /// As Verify, but pins the range the client actually asked for: a response
  /// claiming any other range (e.g. a tampered wire image widening the upper
  /// bound) is rejected outright. Use this whenever the response crossed a
  /// trust boundary (Algorithm 6's input is the client's own Q).
  VerifiedResult VerifyFor(Key lb, Key ub, const QueryResponse& response) override;

  // --- Blockchain interface ------------------------------------------------

  chain::Environment& environment() override { return *env_; }

  /// VO_chain for this db's single contract (a one-element vector).
  std::vector<chain::AuthenticatedState> ReadChainState() override;

  /// Verification against already-retrieved chain state (header assumed
  /// validated). Expects exactly one state, for this db's contract.
  VerifiedResult VerifyAgainst(
      const std::vector<chain::AuthenticatedState>& states,
      const QueryResponse& response) const override;

  // --- Introspection -------------------------------------------------------

  const DbOptions& options() const { return options_; }
  WireVersion wire_version() const override { return options_.wire_version; }
  /// True once a transaction ran out of gas (db no longer usable).
  bool poisoned() const override { return poisoned_; }

  std::string BackendName() const override { return AdsKindName(options_.kind); }

  /// Digest labels the client would currently require for [lb, ub].
  std::vector<chain::DigestEntry> ChainDigests() const;

  /// Every successful data-owner operation, in order (see core/journal.h).
  const Journal& journal() const { return journal_; }

  /// Rebuilds a database by replaying a journal against fresh chain and SP
  /// state — the SP recovery path. The result's digests match the source's
  /// bit-for-bit (reconstruction is deterministic); any journal corruption
  /// shows up as a digest mismatch or a replay error.
  static std::unique_ptr<AuthenticatedDb> Replay(DbOptions options,
                                                 const Journal& journal);

  /// Cross-checks contract and SP mirrors (tests): digests must agree and
  /// structural invariants must hold.
  void CheckConsistency() const override;

 protected:
  // --- Per-attribute primitives (RangeStore seam) --------------------------

  /// Runs the range query on the SP's materialized ADS, returning the result
  /// objects and VO_sp (Algorithms 5 / 7). Always a single response. This
  /// db indexes one attribute (the key), so only attr == 0 is valid; the
  /// public Query(lb, ub) shim is exactly QueryPredicate(0, lb, ub).
  QueryResponse QueryPredicate(uint32_t attr, Key lb, Key ub) const override;

  /// Chain-reading per-conjunct verification; boundary mode (non-null
  /// `boundary`) verifies an aggregate answer's stripped VO and collects the
  /// proven in-range entries.
  VerifiedResult VerifyPredicateFor(uint32_t attr, Key lb, Key ub,
                                    const QueryResponse& response,
                                    std::vector<ads::VoEntry>* boundary) override;

  /// As VerifyPredicateFor against already-retrieved chain state.
  VerifiedResult VerifyPredicateAgainst(
      const std::vector<chain::AuthenticatedState>& states, uint32_t attr,
      Key lb, Key ub, const QueryResponse& response,
      std::vector<ads::VoEntry>* boundary) const override;

  /// Installs `pool` into the SP mirrors (parallel digest computation;
  /// digests are bit-identical to serial builds). The metered contract side
  /// never touches a pool. nullptr reverts to DbOptions::sp_pool.
  void ApplySpPool(common::ThreadPool* pool) override;

 private:
  struct Impl;

  /// Shared body of Verify / VerifyPredicateFor: chain read + light-client
  /// sync + VerifyResponse, in normal (`boundary == nullptr`) or boundary
  /// mode.
  VerifiedResult VerifyInternal(const QueryResponse& response,
                                std::vector<ads::VoEntry>* boundary);

  chain::Contract& contract();
  const chain::Contract& contract() const;

  /// Applies a successfully committed op to the SP-side mirror.
  void ApplyToSp(bool insert, Key key, const std::string& value, const Hash& vh);

  /// Records a committed op in the in-memory journal and the durable sink
  /// (when configured); throws std::runtime_error on a failed durable append.
  void RecordOp(JournalEntry entry);

  DbOptions options_;
  std::unique_ptr<chain::Environment> owned_env_;  // null when env is shared
  chain::Environment* env_;                        // never null
  std::unique_ptr<Impl> impl_;
  std::unordered_map<Key, std::string> sp_values_;  // SP raw-object store
  std::unordered_set<Key> deleted_;                 // tombstoned keys
  Journal journal_;                                 // successful ops, in order
  std::unique_ptr<chain::LightClient> light_client_;
  uint64_t size_ = 0;
  bool poisoned_ = false;
};

/// Client-side verification given an already-retrieved authenticated state.
/// Exposed separately so tests can feed tampered states/responses. Rejects
/// composite (sharded) responses: those verify through ShardedDb, which
/// checks each slice with this function. `strategy` selects how VO digests
/// are recomputed (ads::HashStrategy) — the decision and error string are
/// bit-identical either way, batched is just faster.
///
/// `boundary` non-null selects boundary mode (server-computed aggregates):
/// the response must ship no result objects, every tree's VO is verified
/// with ads::VerifyTreeVoBoundary, and the proven in-range entries of all
/// trees are merged (duplicate keys across trees rejected) and appended to
/// `*boundary` in ascending key order. Tombstone filtering is the caller's
/// job there (core::AggregateBoundary) — the entries carry value hashes,
/// not payloads.
VerifiedResult VerifyResponse(const chain::AuthenticatedState& state,
                              bool chain_valid, AdsKind kind,
                              const QueryResponse& response,
                              ads::HashStrategy strategy = ads::HashStrategy::kBatched,
                              std::vector<ads::VoEntry>* boundary = nullptr);

}  // namespace gem2::core

#endif  // GEM2_CORE_AUTHENTICATED_DB_H_
