/// \file authenticated_db.h
/// The library's top-level public API: a hybrid-storage blockchain database
/// with authenticated range queries (paper Fig. 1).
///
/// An AuthenticatedDb wires together all four parties of the system model:
///   - the data owner, whose Insert/Update calls are sent both to the smart
///     contract (as metered transactions on the simulated chain) and to the
///     off-chain service provider;
///   - the blockchain, which maintains the chosen ADS inside a contract and
///     commits its digests into every block;
///   - the service provider (SP), which stores the raw objects and answers
///     range queries with verification objects (VO_sp);
///   - the client, which checks soundness and completeness of each answer
///     against the on-chain digests (VO_chain).
///
/// The ADS is selectable: the paper's GEM2-tree and GEM2*-tree, the MB-tree
/// and SMB-tree baselines, and the LSM-tree comparator.
#ifndef GEM2_CORE_AUTHENTICATED_DB_H_
#define GEM2_CORE_AUTHENTICATED_DB_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/environment.h"
#include "chain/light_client.h"
#include "core/journal.h"
#include "core/response.h"
#include "gem2/engine.h"
#include "gem2/options.h"
#include "gem2star/gem2star.h"
#include "lsm/lsm.h"
#include "mbtree/contract.h"
#include "smbtree/smbtree.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::core {

enum class AdsKind { kMbTree, kSmbTree, kLsm, kGem2, kGem2Star };

std::string AdsKindName(AdsKind kind);

struct DbOptions {
  AdsKind kind = AdsKind::kGem2;
  /// GEM2 / GEM2* parameters (also supplies the fanout for the baselines).
  gem2tree::Gem2Options gem2;
  /// GEM2*-tree upper-level split points (quantiles of the expected key
  /// distribution; see workload::WorkloadGenerator::SplitPoints).
  std::vector<Key> split_points;
  lsm::LsmOptions lsm;
  chain::EnvironmentOptions env;
};

class AuthenticatedDb {
 public:
  /// Name the ADS contract registers under in the environment (the label a
  /// client passes to Environment::ReadAuthenticatedState).
  static constexpr const char* kContractName = "ads";

  explicit AuthenticatedDb(DbOptions options = {});
  ~AuthenticatedDb();

  AuthenticatedDb(const AuthenticatedDb&) = delete;
  AuthenticatedDb& operator=(const AuthenticatedDb&) = delete;

  // --- Data-owner interface ---------------------------------------------

  /// Inserts a fresh object: one metered transaction on-chain plus the SP
  /// mirror update. Throws std::logic_error if a prior transaction ran out
  /// of gas (the contract is then unusable — see chain/storage.h).
  chain::TxReceipt Insert(const Object& object);

  /// Updates an existing object's value.
  chain::TxReceipt Update(const Object& object);

  /// Deletes a key (paper Section V-B): the object is replaced by a dummy
  /// tombstone value on-chain and at the SP; the client filters tombstones
  /// from verified results. Re-inserting a deleted key revives it.
  chain::TxReceipt Delete(Key key);

  /// Inserts many fresh objects in ONE transaction: a single intrinsic fee
  /// and one gasLimit budget (large batches can therefore abort where the
  /// same objects inserted one-by-one would not).
  chain::TxReceipt InsertBatch(const std::vector<Object>& objects);

  /// True when the key is present and not deleted.
  bool Contains(Key key) const;
  /// Live (non-deleted) objects.
  uint64_t size() const { return size_; }

  // --- Service-provider interface ---------------------------------------

  /// Runs the range query on the SP's materialized ADS, returning the result
  /// objects and VO_sp (Algorithms 5 / 7).
  QueryResponse Query(Key lb, Key ub) const;

  /// Routes SP-side tree materializations through `pool` (parallel digest
  /// computation; digests are bit-identical to serial builds). The metered
  /// contract side never touches the pool. Pass nullptr to revert to serial.
  /// Prefer driving concurrency through SpQueryEngine, which also provides
  /// the locking that makes concurrent Query calls safe against writers.
  void SetSpThreadPool(common::ThreadPool* pool);

  // --- Client interface ---------------------------------------------------

  /// Full client-side verification (Algorithms 6 / 8): retrieves VO_chain
  /// from the blockchain (validating the chain, the state commitment, and
  /// the inclusion proofs), then checks every tree's soundness and
  /// completeness. Returns the verified, key-ordered result.
  VerifiedResult Verify(const QueryResponse& response);

  /// As Verify, but pins the range the client actually asked for: a response
  /// claiming any other range (e.g. a tampered wire image widening the upper
  /// bound) is rejected outright. Use this whenever the response crossed a
  /// trust boundary (Algorithm 6's input is the client's own Q).
  VerifiedResult VerifyFor(Key lb, Key ub, const QueryResponse& response);

  /// Parses a serialized response and runs VerifyFor on it: the single entry
  /// point for bytes received over a network. Malformed images come back as a
  /// failed result (error "malformed wire image"), never as an exception.
  VerifiedResult VerifyWire(Key lb, Key ub, const Bytes& wire);

  /// Convenience: Query + Verify in one call.
  VerifiedResult AuthenticatedRange(Key lb, Key ub);

  // --- Introspection -------------------------------------------------------

  chain::Environment& environment() { return env_; }
  const DbOptions& options() const { return options_; }
  /// True once a transaction ran out of gas (db no longer usable).
  bool poisoned() const { return poisoned_; }

  /// Digest labels the client would currently require for [lb, ub].
  std::vector<chain::DigestEntry> ChainDigests() const;

  /// Every successful data-owner operation, in order (see core/journal.h).
  const Journal& journal() const { return journal_; }

  /// Rebuilds a database by replaying a journal against fresh chain and SP
  /// state — the SP recovery path. The result's digests match the source's
  /// bit-for-bit (reconstruction is deterministic); any journal corruption
  /// shows up as a digest mismatch or a replay error.
  static std::unique_ptr<AuthenticatedDb> Replay(DbOptions options,
                                                 const Journal& journal);

  /// Cross-checks contract and SP mirrors (tests): digests must agree and
  /// structural invariants must hold.
  void CheckConsistency() const;

 private:
  struct Impl;

  chain::Contract& contract();
  const chain::Contract& contract() const;

  /// Applies a successfully committed op to the SP-side mirror.
  void ApplyToSp(bool insert, Key key, const std::string& value, const Hash& vh);

  DbOptions options_;
  chain::Environment env_;
  std::unique_ptr<Impl> impl_;
  std::unordered_map<Key, std::string> sp_values_;  // SP raw-object store
  std::unordered_set<Key> deleted_;                 // tombstoned keys
  Journal journal_;                                 // successful ops, in order
  std::unique_ptr<chain::LightClient> light_client_;
  uint64_t size_ = 0;
  bool poisoned_ = false;
};

/// Client-side verification given an already-retrieved authenticated state.
/// Exposed separately so tests can feed tampered states/responses.
VerifiedResult VerifyResponse(const chain::AuthenticatedState& state,
                              bool chain_valid, AdsKind kind,
                              const QueryResponse& response);

}  // namespace gem2::core

#endif  // GEM2_CORE_AUTHENTICATED_DB_H_
