/// \file query_engine.h
/// Concurrent service-provider query engine: many authenticated range
/// queries execute in parallel against a consistent snapshot of the SP's
/// ADS state, while data-owner writes serialize against them.
///
/// Concurrency model (see docs/PERFORMANCE.md):
///   - a std::shared_mutex guards the wrapped RangeStore. Queries take
///     it shared — any number run at once, each seeing the same committed
///     root digests; Insert/Update/Delete take it exclusive;
///   - every committed write advances an epoch counter. A response produced
///     under shared lock is consistent as of one epoch: the VO it carries
///     verifies against exactly the chain digests of that epoch;
///   - QueryBatch fans a batch of ranges across the thread pool under ONE
///     shared-lock acquisition, so the whole batch answers from a single
///     snapshot — this is the SP's bulk-serving fast path;
///   - on-chain (metered) execution stays single-threaded: the exclusive
///     lock means the contract never runs concurrently with anything.
#ifndef GEM2_CORE_QUERY_ENGINE_H_
#define GEM2_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "core/range_store.h"

namespace gem2::common {
class ThreadPool;
}

namespace gem2::core {

/// A half-open query workload item: the inclusive range [lb, ub].
using KeyRange = std::pair<Key, Key>;

class SpQueryEngine {
 public:
  /// Wraps any RangeStore backend — single-contract AuthenticatedDb or
  /// sharded ShardedDb — `db` is not owned and must outlive the engine.
  /// `pool` is used for QueryBatch fan-out and is also installed (scoped to
  /// the engine's lifetime) as the store's SP-side build pool; nullptr
  /// selects ThreadPool::Global().
  explicit SpQueryEngine(RangeStore* db, common::ThreadPool* pool = nullptr);
  ~SpQueryEngine();

  SpQueryEngine(const SpQueryEngine&) = delete;
  SpQueryEngine& operator=(const SpQueryEngine&) = delete;

  // --- Data-owner interface (exclusive lock) -----------------------------

  chain::TxReceipt Insert(const Object& object);
  chain::TxReceipt Update(const Object& object);
  chain::TxReceipt Delete(Key key);
  chain::TxReceipt InsertBatch(const std::vector<Object>& objects);

  // --- Service-provider interface (shared lock) --------------------------

  /// One authenticated range query against the current snapshot.
  QueryResponse Query(Key lb, Key ub) const;

  /// One typed spec query (boolean / aggregate) against the current
  /// snapshot: every conjunct answers under the same shared-lock
  /// acquisition, so the whole spec is consistent as of one epoch.
  SpecResponse ExecuteSpec(const QuerySpec& spec) const;

  /// ExecuteSpec + wire serialization under one shared-lock acquisition.
  Bytes SpecWire(const QuerySpec& spec) const;
  void SpecWireInto(const QuerySpec& spec, Bytes* out) const;

  /// Answers every range in `ranges` from ONE consistent snapshot, fanning
  /// the work across the pool. results[i] answers ranges[i]. Each response
  /// is bit-identical (as wire bytes) to a serial Query of the same range at
  /// the same epoch — parallel_equivalence_test asserts this.
  std::vector<QueryResponse> QueryBatch(const std::vector<KeyRange>& ranges) const;

  /// Query + wire serialization under one shared-lock acquisition, in the
  /// store's configured wire version.
  Bytes QueryWire(Key lb, Key ub) const;

  /// As QueryWire, but appends to `*out` (bit-identical bytes): the serving
  /// front-end's no-copy path — the reactor encodes a frame header, then the
  /// worker serializes the response image directly behind it.
  void QueryWireInto(Key lb, Key ub, Bytes* out) const;

  // --- Client interface (exclusive: verification advances the light client)

  VerifiedResult VerifyFor(Key lb, Key ub, const QueryResponse& response);

  VerifiedSpecResult VerifySpecFor(const QuerySpec& spec,
                                   const SpecResponse& response);

  // --- Introspection ------------------------------------------------------

  /// Number of committed writes so far. Monotonic; two queries returning the
  /// same epoch answered from the same snapshot.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  RangeStore& db() { return *db_; }
  const RangeStore& db() const { return *db_; }
  common::ThreadPool& pool() const { return *pool_; }

 private:
  template <typename Fn>
  chain::TxReceipt Write(const char* span_name, Fn&& fn);

  RangeStore* db_;
  common::ThreadPool* pool_;
  /// Holds the pool installed in the store for the engine's lifetime.
  std::optional<SpPoolScope> pool_scope_;
  mutable std::shared_mutex mutex_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace gem2::core

#endif  // GEM2_CORE_QUERY_ENGINE_H_
