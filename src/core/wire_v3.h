/// \file wire_v3.h
/// Compressed wire format v3 for the SP -> client protocol.
///
/// v2 images spend most of their bytes on fixed-width integers and on
/// repeated 32-byte hashes: a composite response embeds one full single
/// image per shard slice, and the slices' VOs frequently prune the *same*
/// subtrees (the shards flank a shared seam). v3 keeps the exact same
/// information but encodes it compactly:
///
///   image      := 0x03 kind table payload
///   table      := varint(count) count * hash32
///   payload/0  := body                                   (single)
///   payload/1  := zz(lb) varint(ub-lb) varint(n>=1) n * slice  (composite)
///   slice      := varint(shard) varint(len) body
///   body       := zz(lb) varint(ub-lb)
///                 varint(nsplits) nsplits * zzdelta
///                 varint(ntrees) ntrees * tree
///   tree       := varint(|label|) label varint(nobjects) nobjects * object vo
///   object     := zzdelta(key) varint(|value|) value
///   vo         := 0x00 | 0x01 child
///   child      := 0x01 zzdelta(key)                       (result entry)
///               | 0x02 zzdelta(key) hashref               (boundary entry)
///               | 0x03 zzdelta(lo) varint(hi-lo) hashref  (pruned subtree)
///               | 0x04 varint(n) n * child                (expanded node)
///   hashref    := varint(0) hash32 | varint(slot+1)
///
/// All varints are canonical (minimal-length) LEB128; zz is the zigzag
/// mapping of a signed 64-bit value; zzdelta is zz of the difference from the
/// previous key in the chain (chains start at the body's lb; a pruned element
/// advances the chain to its hi). Key and length deltas use wrapping 64-bit
/// arithmetic, so every (prev, value) pair round-trips.
///
/// The hash table dedups 32-byte hashes (boundary value hashes and pruned
/// content hashes) that occur more than once anywhere in the response — the
/// Monad MPT "node reference" idiom applied to VO subtrees. Slots are
/// assigned in first-encounter order. The parser is strictly canonical: it
/// rejects non-minimal varints, duplicate or unreferenced table entries,
/// inline hashes that repeat or shadow a table slot, first references out of
/// slot order, and trailing bytes — so every accepted image re-serializes to
/// the identical bytes, the invariant the byte-level fault harness relies on.
/// Like v2 the parser is fail-closed: malformed input yields std::nullopt,
/// never a throw.
#ifndef GEM2_CORE_WIRE_V3_H_
#define GEM2_CORE_WIRE_V3_H_

#include <optional>

#include "core/response.h"

namespace gem2::core::wirev3 {

/// The v3 version byte (first byte of every v3 image).
inline constexpr uint8_t kVersion = 3;

/// Appends `v` as a canonical (minimal-length) LEB128 varint.
void AppendVarint(Bytes* out, uint64_t v);

/// Zigzag mapping between signed values and small unsigned varints.
uint64_t ZigzagEncode(int64_t v);
int64_t ZigzagDecode(uint64_t v);

/// Reads a canonical varint from `data` starting at `*pos`, advancing `*pos`.
/// std::nullopt on truncation, 64-bit overflow, or a non-minimal encoding
/// (`*pos` is unspecified after a failure).
std::optional<uint64_t> ReadVarint(const Bytes& data, size_t* pos);

/// Location of the subtree-hash table inside a v3 image, for surgical edits
/// by the fault layer's v3 mutation operators.
struct TableInfo {
  size_t offset = 0;    ///< byte offset of the first 32-byte entry
  uint64_t count = 0;   ///< number of entries
};

/// Parses just far enough into `image` to locate the hash table. nullopt if
/// the image is not v3 or the header/table framing is malformed.
std::optional<TableInfo> LocateTable(const Bytes& image);

/// Serializes a full query response as a v3 image.
Bytes Serialize(const QueryResponse& response);

/// Appends the v3 image to `*out` (byte-identical to Serialize) so callers
/// can encode into an already-framed outbound buffer without a copy.
void SerializeInto(const QueryResponse& response, Bytes* out);

/// Parses a v3 image; std::nullopt on malformed (or non-canonical) input.
std::optional<QueryResponse> Parse(const Bytes& data);

}  // namespace gem2::core::wirev3

#endif  // GEM2_CORE_WIRE_V3_H_
