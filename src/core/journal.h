/// \file journal.h
/// Data-owner operation journal and service-provider recovery.
///
/// In the hybrid-storage architecture the SP's materialized ADS is *derived*
/// state: every structural decision is a deterministic function of the
/// data-owner operation stream. A crashed or newly provisioned SP therefore
/// recovers by replaying the journal — and because the on-chain digests
/// commit to the same stream, a client can tell immediately (via any
/// authenticated query) whether the rebuilt SP is consistent with the chain.
///
/// The journal serializes to bytes with per-record CRC32C framing (format
/// v2), so operators can ship it between machines and any in-flight bit rot
/// is attributable: a checksum mismatch parses to a distinct error, never to
/// a silently wrong SP. The per-entry codec (AppendJournalEntryBody /
/// ParseJournalEntryBody) is shared with the durable on-disk segment format
/// in src/store/, which adds its own length-prefix + CRC record frames.
#ifndef GEM2_CORE_JOURNAL_H_
#define GEM2_CORE_JOURNAL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace gem2::core {

/// One data-owner operation, in stream order.
struct JournalEntry {
  enum class Op : uint8_t { kInsert = 1, kUpdate = 2, kDelete = 3 };
  Op op = Op::kInsert;
  Object object;  // for kDelete only the key matters

  friend bool operator==(const JournalEntry& a, const JournalEntry& b) = default;
};

/// Appends the canonical body encoding of one entry:
/// [op u8][key 8B BE][value_len u64 BE][value bytes]. No integrity framing —
/// the container (journal image, disk segment) adds its own.
void AppendJournalEntryBody(Bytes* out, const JournalEntry& entry);

/// Parses one entry body from `data` at `*pos`, advancing `*pos` past it.
/// Returns false (leaving `*pos` unspecified) on malformed input.
bool ParseJournalEntryBody(const Bytes& data, size_t* pos, JournalEntry* out);

/// Why a serialized journal image failed to parse. Checksum mismatches are
/// distinct from structural damage so the event log can attribute corruption
/// (bit rot inside a record) separately from truncation or framing bugs.
enum class JournalParseError : uint8_t { kNone = 0, kMalformed, kChecksum };

struct JournalParseResult;  // defined below Journal (it holds one)

class Journal {
 public:
  void Record(JournalEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<JournalEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// The first `n` entries (the whole journal when n >= size): what a crashed
  /// SP finds in its durable log when the tail was lost with the process.
  Journal Prefix(size_t n) const;

  /// Format v2: [version u8][count u64], then per record the entry body
  /// followed by CRC32C(body) as 4 big-endian bytes.
  Bytes Serialize() const;

  /// Parses v2 images, and legacy v1 images (no per-record checksums) for
  /// one release so pre-upgrade recovery artifacts still load. A checksum
  /// mismatch is reported as JournalParseError::kChecksum with the failing
  /// record's index, and emitted to the telemetry event log.
  static JournalParseResult ParseEx(const Bytes& data);

  /// ParseEx, collapsed to the legacy optional interface.
  static std::optional<Journal> Parse(const Bytes& data);

  friend bool operator==(const Journal& a, const Journal& b) = default;

 private:
  std::vector<JournalEntry> entries_;
};

struct JournalParseResult {
  std::optional<Journal> journal;
  JournalParseError error = JournalParseError::kNone;
  /// Index of the record the parse failed at (0-based; image-level failures
  /// report the count of records parsed before the failure).
  size_t record_index = 0;
};

/// Where AuthenticatedDb mirrors every committed data-owner operation, in
/// commit order — the seam that makes durability pluggable without the core
/// library depending on the storage engine. store::DurableJournal implements
/// this over checksummed on-disk segments (src/store/durable_journal.h).
///
/// Append is called after the operation committed on-chain and applied to
/// the SP mirrors, and before the operation is acknowledged to the data
/// owner; returning false fails the operation closed (AuthenticatedDb
/// throws), because an un-journaled ack could never be recovered.
class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// Durably records `entry` per the sink's fsync policy. False on I/O error.
  virtual bool Append(const JournalEntry& entry) = 0;

  /// Forces everything appended so far to stable storage.
  virtual bool Sync() = 0;

  /// Human-readable description of the last failure (empty when none).
  virtual std::string last_error() const { return {}; }
};

}  // namespace gem2::core

#endif  // GEM2_CORE_JOURNAL_H_
