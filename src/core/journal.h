/// \file journal.h
/// Data-owner operation journal and service-provider recovery.
///
/// In the hybrid-storage architecture the SP's materialized ADS is *derived*
/// state: every structural decision is a deterministic function of the
/// data-owner operation stream. A crashed or newly provisioned SP therefore
/// recovers by replaying the journal — and because the on-chain digests
/// commit to the same stream, a client can tell immediately (via any
/// authenticated query) whether the rebuilt SP is consistent with the chain.
///
/// The journal also serializes to bytes, so operators can ship it between
/// machines; a corrupted journal surfaces as digest divergence, never as a
/// silently wrong SP.
#ifndef GEM2_CORE_JOURNAL_H_
#define GEM2_CORE_JOURNAL_H_

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace gem2::core {

/// One data-owner operation, in stream order.
struct JournalEntry {
  enum class Op : uint8_t { kInsert = 1, kUpdate = 2, kDelete = 3 };
  Op op = Op::kInsert;
  Object object;  // for kDelete only the key matters

  friend bool operator==(const JournalEntry& a, const JournalEntry& b) = default;
};

class Journal {
 public:
  void Record(JournalEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<JournalEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// The first `n` entries (the whole journal when n >= size): what a crashed
  /// SP finds in its durable log when the tail was lost with the process.
  Journal Prefix(size_t n) const;

  Bytes Serialize() const;
  static std::optional<Journal> Parse(const Bytes& data);

  friend bool operator==(const Journal& a, const Journal& b) = default;

 private:
  std::vector<JournalEntry> entries_;
};

}  // namespace gem2::core

#endif  // GEM2_CORE_JOURNAL_H_
