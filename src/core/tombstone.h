/// \file tombstone.h
/// Deletion support (paper Section V-B): "the deletion operation can be seen
/// as updating the data object with a dummy one."
///
/// A deleted key stays in every ADS — its value is replaced by a fixed dummy
/// payload — so digests and completeness proofs keep working unchanged. The
/// SP returns tombstoned objects like any others (they are needed for the
/// completeness argument); the *client* filters them from the verified result
/// after the cryptographic checks pass.
#ifndef GEM2_CORE_TOMBSTONE_H_
#define GEM2_CORE_TOMBSTONE_H_

#include <string>

#include "common/types.h"

namespace gem2::core {

/// The dummy payload marking a deleted object. Contains a NUL byte so no
/// ordinary text payload collides with it.
inline const std::string& TombstoneValue() {
  static const std::string kTombstone("\0GEM2_TOMBSTONE\0", 16);
  return kTombstone;
}

inline bool IsTombstone(const std::string& value) {
  return value == TombstoneValue();
}

}  // namespace gem2::core

#endif  // GEM2_CORE_TOMBSTONE_H_
