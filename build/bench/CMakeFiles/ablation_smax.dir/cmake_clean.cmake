file(REMOVE_RECURSE
  "CMakeFiles/ablation_smax.dir/ablation_smax.cpp.o"
  "CMakeFiles/ablation_smax.dir/ablation_smax.cpp.o.d"
  "ablation_smax"
  "ablation_smax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
