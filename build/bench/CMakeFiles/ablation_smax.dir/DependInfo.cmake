
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_smax.cpp" "bench/CMakeFiles/ablation_smax.dir/ablation_smax.cpp.o" "gcc" "bench/CMakeFiles/ablation_smax.dir/ablation_smax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gem2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gem2_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/smbtree/CMakeFiles/gem2_smbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/gem2_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/gem2star/CMakeFiles/gem2_gem2star.dir/DependInfo.cmake"
  "/root/repo/build/src/gem2/CMakeFiles/gem2_gem2.dir/DependInfo.cmake"
  "/root/repo/build/src/mbtree/CMakeFiles/gem2_mbtree.dir/DependInfo.cmake"
  "/root/repo/build/src/ads/CMakeFiles/gem2_ads.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/gem2_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gem2_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/gem2_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gem2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
