# Empty dependencies file for ablation_smax.
# This may be replaced when dependencies are built.
