# Empty dependencies file for gas_breakdown.
# This may be replaced when dependencies are built.
