file(REMOVE_RECURSE
  "CMakeFiles/gas_breakdown.dir/gas_breakdown.cpp.o"
  "CMakeFiles/gas_breakdown.dir/gas_breakdown.cpp.o.d"
  "gas_breakdown"
  "gas_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
