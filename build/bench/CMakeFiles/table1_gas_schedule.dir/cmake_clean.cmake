file(REMOVE_RECURSE
  "CMakeFiles/table1_gas_schedule.dir/table1_gas_schedule.cpp.o"
  "CMakeFiles/table1_gas_schedule.dir/table1_gas_schedule.cpp.o.d"
  "table1_gas_schedule"
  "table1_gas_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gas_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
