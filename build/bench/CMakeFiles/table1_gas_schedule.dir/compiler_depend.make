# Empty compiler generated dependencies file for table1_gas_schedule.
# This may be replaced when dependencies are built.
