# Empty dependencies file for costmodel_validation.
# This may be replaced when dependencies are built.
