file(REMOVE_RECURSE
  "CMakeFiles/costmodel_validation.dir/costmodel_validation.cpp.o"
  "CMakeFiles/costmodel_validation.dir/costmodel_validation.cpp.o.d"
  "costmodel_validation"
  "costmodel_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costmodel_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
