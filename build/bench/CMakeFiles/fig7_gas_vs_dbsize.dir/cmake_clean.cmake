file(REMOVE_RECURSE
  "CMakeFiles/fig7_gas_vs_dbsize.dir/fig7_gas_vs_dbsize.cpp.o"
  "CMakeFiles/fig7_gas_vs_dbsize.dir/fig7_gas_vs_dbsize.cpp.o.d"
  "fig7_gas_vs_dbsize"
  "fig7_gas_vs_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gas_vs_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
