# Empty dependencies file for fig7_gas_vs_dbsize.
# This may be replaced when dependencies are built.
