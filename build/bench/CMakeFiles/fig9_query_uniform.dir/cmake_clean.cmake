file(REMOVE_RECURSE
  "CMakeFiles/fig9_query_uniform.dir/fig9_query_uniform.cpp.o"
  "CMakeFiles/fig9_query_uniform.dir/fig9_query_uniform.cpp.o.d"
  "fig9_query_uniform"
  "fig9_query_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_query_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
