# Empty compiler generated dependencies file for fig9_query_uniform.
# This may be replaced when dependencies are built.
