file(REMOVE_RECURSE
  "CMakeFiles/fig10_query_zipfian.dir/fig10_query_zipfian.cpp.o"
  "CMakeFiles/fig10_query_zipfian.dir/fig10_query_zipfian.cpp.o.d"
  "fig10_query_zipfian"
  "fig10_query_zipfian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_query_zipfian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
