# Empty compiler generated dependencies file for fig10_query_zipfian.
# This may be replaced when dependencies are built.
