# Empty compiler generated dependencies file for vochain_size.
# This may be replaced when dependencies are built.
