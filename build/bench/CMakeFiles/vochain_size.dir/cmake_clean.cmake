file(REMOVE_RECURSE
  "CMakeFiles/vochain_size.dir/vochain_size.cpp.o"
  "CMakeFiles/vochain_size.dir/vochain_size.cpp.o.d"
  "vochain_size"
  "vochain_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vochain_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
