# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_gas_vs_update_ratio.
