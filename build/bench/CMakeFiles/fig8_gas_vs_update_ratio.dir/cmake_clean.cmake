file(REMOVE_RECURSE
  "CMakeFiles/fig8_gas_vs_update_ratio.dir/fig8_gas_vs_update_ratio.cpp.o"
  "CMakeFiles/fig8_gas_vs_update_ratio.dir/fig8_gas_vs_update_ratio.cpp.o.d"
  "fig8_gas_vs_update_ratio"
  "fig8_gas_vs_update_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_gas_vs_update_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
