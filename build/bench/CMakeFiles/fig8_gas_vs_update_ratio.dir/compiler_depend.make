# Empty compiler generated dependencies file for fig8_gas_vs_update_ratio.
# This may be replaced when dependencies are built.
