# Empty dependencies file for crossover_mb_vs_smb.
# This may be replaced when dependencies are built.
