# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for crossover_mb_vs_smb.
