file(REMOVE_RECURSE
  "CMakeFiles/crossover_mb_vs_smb.dir/crossover_mb_vs_smb.cpp.o"
  "CMakeFiles/crossover_mb_vs_smb.dir/crossover_mb_vs_smb.cpp.o.d"
  "crossover_mb_vs_smb"
  "crossover_mb_vs_smb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_mb_vs_smb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
