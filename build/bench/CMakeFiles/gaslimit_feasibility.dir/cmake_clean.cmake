file(REMOVE_RECURSE
  "CMakeFiles/gaslimit_feasibility.dir/gaslimit_feasibility.cpp.o"
  "CMakeFiles/gaslimit_feasibility.dir/gaslimit_feasibility.cpp.o.d"
  "gaslimit_feasibility"
  "gaslimit_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaslimit_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
