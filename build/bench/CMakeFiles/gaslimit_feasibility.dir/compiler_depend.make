# Empty compiler generated dependencies file for gaslimit_feasibility.
# This may be replaced when dependencies are built.
