# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/mpt_test[1]_include.cmake")
include("/root/repo/build/tests/mpt_state_test[1]_include.cmake")
include("/root/repo/build/tests/gas_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/ads_test[1]_include.cmake")
include("/root/repo/build/tests/mbtree_test[1]_include.cmake")
include("/root/repo/build/tests/smbtree_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/gem2_test[1]_include.cmake")
include("/root/repo/build/tests/gem2star_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/deletion_test[1]_include.cmake")
include("/root/repo/build/tests/light_client_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_property_test[1]_include.cmake")
include("/root/repo/build/tests/aggregates_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
