# Empty compiler generated dependencies file for mbtree_test.
# This may be replaced when dependencies are built.
