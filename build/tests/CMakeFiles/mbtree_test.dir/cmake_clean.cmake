file(REMOVE_RECURSE
  "CMakeFiles/mbtree_test.dir/mbtree_test.cpp.o"
  "CMakeFiles/mbtree_test.dir/mbtree_test.cpp.o.d"
  "mbtree_test"
  "mbtree_test.pdb"
  "mbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
