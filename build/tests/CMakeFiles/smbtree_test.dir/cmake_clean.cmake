file(REMOVE_RECURSE
  "CMakeFiles/smbtree_test.dir/smbtree_test.cpp.o"
  "CMakeFiles/smbtree_test.dir/smbtree_test.cpp.o.d"
  "smbtree_test"
  "smbtree_test.pdb"
  "smbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
