# Empty compiler generated dependencies file for smbtree_test.
# This may be replaced when dependencies are built.
