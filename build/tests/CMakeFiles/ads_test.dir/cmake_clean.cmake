file(REMOVE_RECURSE
  "CMakeFiles/ads_test.dir/ads_test.cpp.o"
  "CMakeFiles/ads_test.dir/ads_test.cpp.o.d"
  "ads_test"
  "ads_test.pdb"
  "ads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
