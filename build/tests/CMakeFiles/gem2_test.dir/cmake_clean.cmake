file(REMOVE_RECURSE
  "CMakeFiles/gem2_test.dir/gem2_test.cpp.o"
  "CMakeFiles/gem2_test.dir/gem2_test.cpp.o.d"
  "gem2_test"
  "gem2_test.pdb"
  "gem2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
