# Empty dependencies file for gem2_test.
# This may be replaced when dependencies are built.
