file(REMOVE_RECURSE
  "CMakeFiles/mpt_state_test.dir/mpt_state_test.cpp.o"
  "CMakeFiles/mpt_state_test.dir/mpt_state_test.cpp.o.d"
  "mpt_state_test"
  "mpt_state_test.pdb"
  "mpt_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpt_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
