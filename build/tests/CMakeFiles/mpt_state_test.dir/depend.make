# Empty dependencies file for mpt_state_test.
# This may be replaced when dependencies are built.
