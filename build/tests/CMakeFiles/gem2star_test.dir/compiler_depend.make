# Empty compiler generated dependencies file for gem2star_test.
# This may be replaced when dependencies are built.
