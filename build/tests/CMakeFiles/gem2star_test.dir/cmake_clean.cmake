file(REMOVE_RECURSE
  "CMakeFiles/gem2star_test.dir/gem2star_test.cpp.o"
  "CMakeFiles/gem2star_test.dir/gem2star_test.cpp.o.d"
  "gem2star_test"
  "gem2star_test.pdb"
  "gem2star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
