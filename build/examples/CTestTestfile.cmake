# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;gem2_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iot_telemetry "/root/repo/build/examples/iot_telemetry")
set_tests_properties(example_iot_telemetry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;gem2_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tamper_detection "/root/repo/build/examples/tamper_detection")
set_tests_properties(example_tamper_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;gem2_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ads_comparison "/root/repo/build/examples/ads_comparison")
set_tests_properties(example_ads_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;gem2_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_supply_chain "/root/repo/build/examples/supply_chain")
set_tests_properties(example_supply_chain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;gem2_example;/root/repo/examples/CMakeLists.txt;0;")
