# Empty compiler generated dependencies file for ads_comparison.
# This may be replaced when dependencies are built.
