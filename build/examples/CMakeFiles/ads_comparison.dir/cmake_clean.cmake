file(REMOVE_RECURSE
  "CMakeFiles/ads_comparison.dir/ads_comparison.cpp.o"
  "CMakeFiles/ads_comparison.dir/ads_comparison.cpp.o.d"
  "ads_comparison"
  "ads_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
