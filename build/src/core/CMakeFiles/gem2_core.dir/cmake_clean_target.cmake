file(REMOVE_RECURSE
  "libgem2_core.a"
)
