# Empty dependencies file for gem2_core.
# This may be replaced when dependencies are built.
