file(REMOVE_RECURSE
  "CMakeFiles/gem2_core.dir/aggregates.cpp.o"
  "CMakeFiles/gem2_core.dir/aggregates.cpp.o.d"
  "CMakeFiles/gem2_core.dir/authenticated_db.cpp.o"
  "CMakeFiles/gem2_core.dir/authenticated_db.cpp.o.d"
  "CMakeFiles/gem2_core.dir/journal.cpp.o"
  "CMakeFiles/gem2_core.dir/journal.cpp.o.d"
  "CMakeFiles/gem2_core.dir/wire.cpp.o"
  "CMakeFiles/gem2_core.dir/wire.cpp.o.d"
  "libgem2_core.a"
  "libgem2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
