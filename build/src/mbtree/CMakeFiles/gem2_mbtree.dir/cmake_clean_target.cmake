file(REMOVE_RECURSE
  "libgem2_mbtree.a"
)
