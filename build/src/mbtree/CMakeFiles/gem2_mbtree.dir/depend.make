# Empty dependencies file for gem2_mbtree.
# This may be replaced when dependencies are built.
