file(REMOVE_RECURSE
  "CMakeFiles/gem2_mbtree.dir/mbtree.cpp.o"
  "CMakeFiles/gem2_mbtree.dir/mbtree.cpp.o.d"
  "libgem2_mbtree.a"
  "libgem2_mbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_mbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
