file(REMOVE_RECURSE
  "libgem2_smbtree.a"
)
