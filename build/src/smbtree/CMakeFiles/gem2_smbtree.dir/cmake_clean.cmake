file(REMOVE_RECURSE
  "CMakeFiles/gem2_smbtree.dir/smbtree.cpp.o"
  "CMakeFiles/gem2_smbtree.dir/smbtree.cpp.o.d"
  "libgem2_smbtree.a"
  "libgem2_smbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_smbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
