# Empty dependencies file for gem2_smbtree.
# This may be replaced when dependencies are built.
