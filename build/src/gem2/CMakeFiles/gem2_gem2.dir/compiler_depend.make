# Empty compiler generated dependencies file for gem2_gem2.
# This may be replaced when dependencies are built.
