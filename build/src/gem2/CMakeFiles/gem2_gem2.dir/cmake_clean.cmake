file(REMOVE_RECURSE
  "CMakeFiles/gem2_gem2.dir/partition_chain.cpp.o"
  "CMakeFiles/gem2_gem2.dir/partition_chain.cpp.o.d"
  "libgem2_gem2.a"
  "libgem2_gem2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_gem2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
