file(REMOVE_RECURSE
  "CMakeFiles/gem2_chain.dir/blockchain.cpp.o"
  "CMakeFiles/gem2_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/gem2_chain.dir/codec.cpp.o"
  "CMakeFiles/gem2_chain.dir/codec.cpp.o.d"
  "CMakeFiles/gem2_chain.dir/environment.cpp.o"
  "CMakeFiles/gem2_chain.dir/environment.cpp.o.d"
  "CMakeFiles/gem2_chain.dir/light_client.cpp.o"
  "CMakeFiles/gem2_chain.dir/light_client.cpp.o.d"
  "CMakeFiles/gem2_chain.dir/storage.cpp.o"
  "CMakeFiles/gem2_chain.dir/storage.cpp.o.d"
  "libgem2_chain.a"
  "libgem2_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
