# Empty compiler generated dependencies file for gem2_chain.
# This may be replaced when dependencies are built.
