
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/gem2_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/gem2_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/codec.cpp" "src/chain/CMakeFiles/gem2_chain.dir/codec.cpp.o" "gcc" "src/chain/CMakeFiles/gem2_chain.dir/codec.cpp.o.d"
  "/root/repo/src/chain/environment.cpp" "src/chain/CMakeFiles/gem2_chain.dir/environment.cpp.o" "gcc" "src/chain/CMakeFiles/gem2_chain.dir/environment.cpp.o.d"
  "/root/repo/src/chain/light_client.cpp" "src/chain/CMakeFiles/gem2_chain.dir/light_client.cpp.o" "gcc" "src/chain/CMakeFiles/gem2_chain.dir/light_client.cpp.o.d"
  "/root/repo/src/chain/storage.cpp" "src/chain/CMakeFiles/gem2_chain.dir/storage.cpp.o" "gcc" "src/chain/CMakeFiles/gem2_chain.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gem2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/gem2_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/gem2_gas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
