file(REMOVE_RECURSE
  "libgem2_chain.a"
)
