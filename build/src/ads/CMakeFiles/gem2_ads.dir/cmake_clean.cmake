file(REMOVE_RECURSE
  "CMakeFiles/gem2_ads.dir/static_tree.cpp.o"
  "CMakeFiles/gem2_ads.dir/static_tree.cpp.o.d"
  "CMakeFiles/gem2_ads.dir/verify.cpp.o"
  "CMakeFiles/gem2_ads.dir/verify.cpp.o.d"
  "CMakeFiles/gem2_ads.dir/vo.cpp.o"
  "CMakeFiles/gem2_ads.dir/vo.cpp.o.d"
  "libgem2_ads.a"
  "libgem2_ads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
