# Empty dependencies file for gem2_ads.
# This may be replaced when dependencies are built.
