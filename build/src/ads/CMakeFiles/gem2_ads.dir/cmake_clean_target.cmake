file(REMOVE_RECURSE
  "libgem2_ads.a"
)
