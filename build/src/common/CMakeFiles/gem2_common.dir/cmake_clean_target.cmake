file(REMOVE_RECURSE
  "libgem2_common.a"
)
