file(REMOVE_RECURSE
  "CMakeFiles/gem2_common.dir/bytes.cpp.o"
  "CMakeFiles/gem2_common.dir/bytes.cpp.o.d"
  "CMakeFiles/gem2_common.dir/random.cpp.o"
  "CMakeFiles/gem2_common.dir/random.cpp.o.d"
  "libgem2_common.a"
  "libgem2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
