# Empty dependencies file for gem2_common.
# This may be replaced when dependencies are built.
