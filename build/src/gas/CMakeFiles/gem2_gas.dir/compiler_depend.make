# Empty compiler generated dependencies file for gem2_gas.
# This may be replaced when dependencies are built.
