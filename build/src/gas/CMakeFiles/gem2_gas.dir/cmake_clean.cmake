file(REMOVE_RECURSE
  "CMakeFiles/gem2_gas.dir/meter.cpp.o"
  "CMakeFiles/gem2_gas.dir/meter.cpp.o.d"
  "libgem2_gas.a"
  "libgem2_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
