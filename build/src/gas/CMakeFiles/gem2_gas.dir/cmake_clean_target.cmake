file(REMOVE_RECURSE
  "libgem2_gas.a"
)
