file(REMOVE_RECURSE
  "libgem2_workload.a"
)
