file(REMOVE_RECURSE
  "CMakeFiles/gem2_workload.dir/workload.cpp.o"
  "CMakeFiles/gem2_workload.dir/workload.cpp.o.d"
  "libgem2_workload.a"
  "libgem2_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
