# Empty compiler generated dependencies file for gem2_workload.
# This may be replaced when dependencies are built.
