
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/digest.cpp" "src/crypto/CMakeFiles/gem2_crypto.dir/digest.cpp.o" "gcc" "src/crypto/CMakeFiles/gem2_crypto.dir/digest.cpp.o.d"
  "/root/repo/src/crypto/keccak.cpp" "src/crypto/CMakeFiles/gem2_crypto.dir/keccak.cpp.o" "gcc" "src/crypto/CMakeFiles/gem2_crypto.dir/keccak.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/gem2_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/gem2_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/mpt.cpp" "src/crypto/CMakeFiles/gem2_crypto.dir/mpt.cpp.o" "gcc" "src/crypto/CMakeFiles/gem2_crypto.dir/mpt.cpp.o.d"
  "/root/repo/src/crypto/rlp.cpp" "src/crypto/CMakeFiles/gem2_crypto.dir/rlp.cpp.o" "gcc" "src/crypto/CMakeFiles/gem2_crypto.dir/rlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gem2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
