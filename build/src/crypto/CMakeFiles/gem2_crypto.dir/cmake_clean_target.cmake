file(REMOVE_RECURSE
  "libgem2_crypto.a"
)
