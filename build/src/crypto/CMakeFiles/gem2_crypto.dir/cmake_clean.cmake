file(REMOVE_RECURSE
  "CMakeFiles/gem2_crypto.dir/digest.cpp.o"
  "CMakeFiles/gem2_crypto.dir/digest.cpp.o.d"
  "CMakeFiles/gem2_crypto.dir/keccak.cpp.o"
  "CMakeFiles/gem2_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/gem2_crypto.dir/merkle.cpp.o"
  "CMakeFiles/gem2_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/gem2_crypto.dir/mpt.cpp.o"
  "CMakeFiles/gem2_crypto.dir/mpt.cpp.o.d"
  "CMakeFiles/gem2_crypto.dir/rlp.cpp.o"
  "CMakeFiles/gem2_crypto.dir/rlp.cpp.o.d"
  "libgem2_crypto.a"
  "libgem2_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
