# Empty dependencies file for gem2_crypto.
# This may be replaced when dependencies are built.
