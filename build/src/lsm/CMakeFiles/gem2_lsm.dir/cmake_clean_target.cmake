file(REMOVE_RECURSE
  "libgem2_lsm.a"
)
