# Empty compiler generated dependencies file for gem2_lsm.
# This may be replaced when dependencies are built.
