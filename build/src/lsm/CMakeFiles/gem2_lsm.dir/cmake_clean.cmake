file(REMOVE_RECURSE
  "CMakeFiles/gem2_lsm.dir/lsm.cpp.o"
  "CMakeFiles/gem2_lsm.dir/lsm.cpp.o.d"
  "libgem2_lsm.a"
  "libgem2_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
