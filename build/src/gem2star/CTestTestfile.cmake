# CMake generated Testfile for 
# Source directory: /root/repo/src/gem2star
# Build directory: /root/repo/build/src/gem2star
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
