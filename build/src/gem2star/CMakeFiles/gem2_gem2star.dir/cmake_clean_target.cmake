file(REMOVE_RECURSE
  "libgem2_gem2star.a"
)
