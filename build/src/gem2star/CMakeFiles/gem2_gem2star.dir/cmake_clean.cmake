file(REMOVE_RECURSE
  "CMakeFiles/gem2_gem2star.dir/gem2star.cpp.o"
  "CMakeFiles/gem2_gem2star.dir/gem2star.cpp.o.d"
  "libgem2_gem2star.a"
  "libgem2_gem2star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem2_gem2star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
