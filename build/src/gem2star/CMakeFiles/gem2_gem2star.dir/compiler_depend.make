# Empty compiler generated dependencies file for gem2_gem2star.
# This may be replaced when dependencies are built.
