// Ledger serialization tests: round-trips, tamper detection on load, and
// malformed-input rejection.
#include <gtest/gtest.h>

#include "chain/codec.h"
#include "core/authenticated_db.h"
#include "crypto/digest.h"

namespace gem2::chain {
namespace {

Blockchain MakeChain(int blocks, uint32_t difficulty = 4) {
  Blockchain chain(difficulty);
  for (int i = 0; i < blocks; ++i) {
    Transaction tx;
    tx.seq = static_cast<uint64_t>(i);
    tx.contract = "ads";
    tx.method = i % 2 == 0 ? "insert" : "update";
    tx.gas_used = 12'345 + static_cast<uint64_t>(i);
    chain.Append({tx}, crypto::EmptyTreeDigest(), static_cast<uint64_t>(i));
  }
  return chain;
}

TEST(Codec, RoundTripsAndRevalidates) {
  Blockchain chain = MakeChain(6);
  Bytes wire = SerializeChain(chain);
  std::string error;
  auto parsed = ParseChain(wire, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->height(), chain.height());
  EXPECT_EQ(parsed->latest().header.Digest(), chain.latest().header.Digest());
  EXPECT_EQ(parsed->blocks()[3].transactions[0].gas_used,
            chain.blocks()[3].transactions[0].gas_used);
  EXPECT_EQ(SerializeChain(*parsed), wire);
}

TEST(Codec, EmptyishChainsRoundTrip) {
  Blockchain genesis_only(0);
  auto parsed = ParseChain(SerializeChain(genesis_only));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->height(), 0u);
}

TEST(Codec, DetectsBitFlips) {
  Blockchain chain = MakeChain(4);
  const Hash original_tip = chain.latest().header.Digest();
  Bytes wire = SerializeChain(chain);
  // Flip bytes across the buffer. Every flip must either fail to load, or —
  // in the one legitimate corner (a mutated *tip header* that happens to
  // still satisfy its own PoW, exactly what a miner could produce) — yield a
  // chain whose tip identity visibly changed. Nothing may load while
  // impersonating the original chain.
  for (size_t i = 17; i < wire.size(); i += 7) {
    Bytes bad = wire;
    bad[i] ^= 0x01;
    auto parsed = ParseChain(bad);
    if (parsed.has_value()) {
      EXPECT_NE(parsed->latest().header.Digest(), original_tip)
          << "bit flip at " << i << " preserved the tip identity";
      std::string error;
      EXPECT_TRUE(parsed->Validate(&error)) << error;
    }
  }
}

TEST(Codec, RejectsMalformedInput) {
  EXPECT_FALSE(ParseChain(Bytes{}).has_value());
  EXPECT_FALSE(ParseChain(Bytes{9, 9, 9}).has_value());
  Bytes wire = SerializeChain(MakeChain(2));
  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(ParseChain(truncated).has_value());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(ParseChain(padded).has_value());
}

TEST(Codec, PersistedDbChainReloadsAndAnchorsLightClient) {
  core::DbOptions options;
  options.kind = core::AdsKind::kGem2;
  options.env.txs_per_block = 4;
  core::AuthenticatedDb db(options);
  for (Key k = 1; k <= 20; ++k) db.Insert({k, "v"});
  db.environment().SealBlock();

  Bytes wire = SerializeChain(db.environment().blockchain());
  std::string error;
  auto restored = ParseChain(wire, &error);
  ASSERT_TRUE(restored.has_value()) << error;

  // A light client can sync the restored chain from its genesis.
  LightClient client(restored->blocks().front().header);
  EXPECT_EQ(client.Sync(*restored), restored->height());
}

}  // namespace
}  // namespace gem2::chain
