// End-to-end integration: data owner -> (blockchain + SP) -> client, for
// every ADS kind, over uniform and zipfian workloads, with full client-side
// verification and brute-force result cross-checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "core/authenticated_db.h"
#include "workload/workload.h"

namespace gem2::core {
namespace {

using workload::KeyDistribution;
using workload::Operation;
using workload::WorkloadGenerator;
using workload::WorkloadOptions;

DbOptions MakeOptions(AdsKind kind, const WorkloadGenerator& gen) {
  DbOptions options;
  options.kind = kind;
  options.gem2.m = 4;
  options.gem2.smax = 64;
  options.env.gas_limit = 1'000'000'000'000ull;  // study gas, don't abort
  if (kind == AdsKind::kGem2Star) {
    options.split_points = gen.SplitPoints(8);
  }
  return options;
}

class EndToEnd
    : public ::testing::TestWithParam<std::tuple<AdsKind, KeyDistribution>> {};

TEST_P(EndToEnd, InsertQueryVerify) {
  auto [kind, dist] = GetParam();
  WorkloadOptions wopts;
  wopts.distribution = dist;
  wopts.domain_max = 100'000;
  wopts.update_ratio = 0.2;
  wopts.seed = 7;
  WorkloadGenerator gen(wopts);

  AuthenticatedDb db(MakeOptions(kind, gen));

  std::map<Key, std::string> truth;
  const size_t kOps = (kind == AdsKind::kSmbTree || kind == AdsKind::kLsm)
                          ? 150   // O(N) per-op structures: keep it fast
                          : 400;
  for (size_t i = 0; i < kOps; ++i) {
    Operation op = gen.Next();
    chain::TxReceipt r = op.type == Operation::Type::kInsert
                             ? db.Insert(op.object)
                             : db.Update(op.object);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.gas_used, 0u);
    truth[op.object.key] = op.object.value;
  }

  db.CheckConsistency();

  // Several query ranges, including empty and full.
  const std::pair<Key, Key> ranges[] = {{0, 1000},
                                        {500, 50'000},
                                        {-10, -1},
                                        {0, 200'000},
                                        {truth.begin()->first, truth.begin()->first}};
  for (auto [lb, ub] : ranges) {
    VerifiedResult vr = db.AuthenticatedRange(lb, ub);
    ASSERT_TRUE(vr.ok) << AdsKindName(kind) << ": " << vr.error;

    std::vector<Object> expect;
    for (const auto& [k, v] : truth) {
      if (k >= lb && k <= ub) expect.push_back({k, v});
    }
    ASSERT_EQ(vr.objects.size(), expect.size())
        << AdsKindName(kind) << " range [" << lb << "," << ub << "]";
    EXPECT_EQ(vr.objects, expect);
    EXPECT_GT(vr.vo_chain_bytes, 0u);
  }

  // The chain itself must validate.
  std::string error;
  EXPECT_TRUE(db.environment().blockchain().Validate(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EndToEnd,
    ::testing::Combine(::testing::Values(AdsKind::kMbTree, AdsKind::kSmbTree,
                                         AdsKind::kLsm, AdsKind::kGem2,
                                         AdsKind::kGem2Star),
                       ::testing::Values(KeyDistribution::kUniform,
                                         KeyDistribution::kZipfian)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case AdsKind::kMbTree:
          name = "MbTree";
          break;
        case AdsKind::kSmbTree:
          name = "SmbTree";
          break;
        case AdsKind::kLsm:
          name = "Lsm";
          break;
        case AdsKind::kGem2:
          name = "Gem2";
          break;
        case AdsKind::kGem2Star:
          name = "Gem2Star";
          break;
      }
      return name + (std::get<1>(info.param) == KeyDistribution::kUniform
                         ? "Uniform"
                         : "Zipfian");
    });

TEST(EndToEndTamper, ClientRejectsTamperedResponses) {
  WorkloadOptions wopts;
  wopts.domain_max = 10'000;
  WorkloadGenerator gen(wopts);
  DbOptions options = MakeOptions(AdsKind::kGem2, gen);
  AuthenticatedDb db(options);
  for (const Operation& op : gen.Batch(200)) {
    ASSERT_TRUE(db.Insert(op.object).ok);
  }

  QueryResponse honest = db.Query(100, 5000);
  ASSERT_TRUE(db.Verify(honest).ok);

  // Tamper 1: modify a returned value.
  {
    QueryResponse bad = db.Query(100, 5000);
    bool mutated = false;
    for (auto& tree : bad.trees) {
      if (!tree.objects.empty()) {
        tree.objects[0].value = "forged";
        mutated = true;
        break;
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(db.Verify(bad).ok);
  }

  // Tamper 2: drop a whole tree's answer.
  {
    QueryResponse bad = db.Query(100, 5000);
    bad.trees.pop_back();
    EXPECT_FALSE(db.Verify(bad).ok);
  }

  // Tamper 3: drop a result object (completeness violation).
  {
    QueryResponse bad = db.Query(100, 5000);
    for (auto& tree : bad.trees) {
      if (!tree.objects.empty()) {
        tree.objects.pop_back();
        break;
      }
    }
    EXPECT_FALSE(db.Verify(bad).ok);
  }

  // Tamper 4: inject an extra object.
  {
    QueryResponse bad = db.Query(100, 5000);
    bad.trees[0].objects.push_back({1234, "injected"});
    EXPECT_FALSE(db.Verify(bad).ok);
  }
}

TEST(EndToEndGas, Gem2BeatsMbTreeOnInserts) {
  // The headline claim, at small scale: inserting the same stream costs the
  // GEM2-tree materially less gas than the MB-tree.
  WorkloadOptions wopts;
  wopts.domain_max = 1'000'000;
  WorkloadGenerator gen(wopts);
  std::vector<Operation> ops = gen.Batch(600);

  auto total_gas = [&](AdsKind kind) {
    WorkloadGenerator g2(wopts);
    DbOptions options = MakeOptions(kind, g2);
    AuthenticatedDb db(options);
    uint64_t total = 0;
    for (const Operation& op : ops) total += db.Insert(op.object).gas_used;
    return total;
  };

  const uint64_t gem2 = total_gas(AdsKind::kGem2);
  const uint64_t mb = total_gas(AdsKind::kMbTree);
  EXPECT_LT(gem2, mb) << "GEM2 " << gem2 << " vs MB " << mb;
}

TEST(EndToEndChain, BlocksCommitStateAndValidate) {
  WorkloadOptions wopts;
  WorkloadGenerator gen(wopts);
  DbOptions options = MakeOptions(AdsKind::kGem2, gen);
  options.env.txs_per_block = 4;
  options.env.difficulty_bits = 6;  // non-trivial PoW
  AuthenticatedDb db(options);
  for (const Operation& op : gen.Batch(30)) ASSERT_TRUE(db.Insert(op.object).ok);

  chain::Environment& env = db.environment();
  env.SealBlock();
  EXPECT_GE(env.blockchain().height(), 30u / 4u);
  std::string error;
  EXPECT_TRUE(env.blockchain().Validate(&error)) << error;

  // Every block's PoW must satisfy the difficulty.
  for (const chain::Block& b : env.blockchain().blocks()) {
    EXPECT_TRUE(chain::SatisfiesPow(b.header.Digest(), b.header.difficulty_bits));
  }
}

}  // namespace
}  // namespace gem2::core
