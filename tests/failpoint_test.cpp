// The failpoint sweep: hundreds of seeded I/O-fault schedules (short writes,
// EIO, lying fsyncs, power cuts, bit rot) against the durable engine, every
// one held to recover-or-fail-closed and the whole sweep reproducible from
// one seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/failpoint_sweep.h"
#include "fault/failpoint_vfs.h"
#include "fault/fault.h"
#include "seed_util.h"
#include "store/durable_store.h"
#include "store/sp_object_store.h"
#include "store/vfs.h"

namespace gem2::fault {
namespace {

using testutil::SeedReporter;

TEST(FailpointVfs, InjectionIsAPureFunctionOfTheSeed) {
  SeedReporter seed(2024);
  FailpointConfig config;
  config.seed = seed;
  config.p_append_error = 0.10;
  config.p_sync_error = 0.05;
  config.p_sync_lie = 0.10;
  config.p_power_cut = 0.02;
  config.p_bit_rot = 0.01;

  // Drive the identical op sequence twice; the injected runs must leave
  // bit-identical disks and identical fault statistics.
  auto run = [&](store::MemVfs* mem, FailpointStats* stats) {
    FailpointVfs vfs(mem, config);
    store::SpObjectStore state;
    store::StoreOptions options;
    options.journal.segment_bytes = 256;
    options.checkpoint_interval = 10;
    store::RecoveryReport report;
    auto store = store::DurableSpStore::Open(&vfs, "/sp", &state, options,
                                             &report);
    if (store != nullptr) {
      for (const core::JournalEntry& entry : OwnerStream(seed, 64)) {
        if (!store->Apply(entry)) break;
      }
    }
    *stats = vfs.stats();
  };

  store::MemVfs a;
  store::MemVfs b;
  FailpointStats sa;
  FailpointStats sb;
  run(&a, &sa);
  run(&b, &sb);

  EXPECT_EQ(sa.ops, sb.ops);
  EXPECT_EQ(sa.short_writes, sb.short_writes);
  EXPECT_EQ(sa.append_errors, sb.append_errors);
  EXPECT_EQ(sa.sync_errors, sb.sync_errors);
  EXPECT_EQ(sa.sync_lies, sb.sync_lies);
  EXPECT_EQ(sa.power_cuts, sb.power_cuts);
  EXPECT_EQ(sa.bit_flips, sb.bit_flips);
  EXPECT_GT(sa.ops, 0u);

  const std::vector<std::string> files_a = a.AllFiles();
  ASSERT_EQ(files_a, b.AllFiles());
  for (const std::string& path : files_a) {
    EXPECT_EQ(a.Snapshot(path), b.Snapshot(path)) << path;
  }
}

TEST(FailpointSweep, FiveHundredSchedulesRecoverOrFailClosed) {
  SeedReporter seed(20260808);
  FailpointSweepOptions options;
  options.seed = seed;
  options.schedules = 500;

  const FailpointSweepReport report = RunFailpointSweep(options);
  EXPECT_EQ(report.schedules, options.schedules);
  // Recover-or-fail-closed, with zero accepted-but-wrong outcomes.
  EXPECT_EQ(report.recovered + report.failed_closed, report.schedules);
  EXPECT_EQ(report.wrong_recoveries, 0) << report.error;
  EXPECT_EQ(report.floor_violations, 0) << report.error;
  EXPECT_TRUE(report.ok()) << report.error;

  // The sweep must actually bite: injected faults of several kinds, and
  // schedules across the outcome spectrum.
  EXPECT_GT(report.injected.ops, 0u);
  EXPECT_GT(report.injected.append_errors + report.injected.short_writes, 0u);
  EXPECT_GT(report.injected.sync_lies, 0u);
  EXPECT_GT(report.injected.power_cuts, 0u);
  EXPECT_GT(report.injected.bit_flips, 0u);
  EXPECT_GT(report.recovered, 0);
}

TEST(FailpointSweep, ReproducesFromTheSeedAlone) {
  SeedReporter seed(1616);
  FailpointSweepOptions options;
  options.seed = seed;
  options.schedules = 60;

  const FailpointSweepReport a = RunFailpointSweep(options);
  const FailpointSweepReport b = RunFailpointSweep(options);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.failed_closed, b.failed_closed);
  EXPECT_EQ(a.tail_lost, b.tail_lost);
  EXPECT_EQ(a.wrong_recoveries, b.wrong_recoveries);
  EXPECT_EQ(a.floor_violations, b.floor_violations);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.injected.ops, b.injected.ops);
  EXPECT_EQ(a.injected.short_writes, b.injected.short_writes);
  EXPECT_EQ(a.injected.sync_lies, b.injected.sync_lies);
  EXPECT_EQ(a.injected.power_cuts, b.injected.power_cuts);
  EXPECT_EQ(a.injected.bit_flips, b.injected.bit_flips);
  EXPECT_TRUE(a.ok()) << a.error;
}

}  // namespace
}  // namespace gem2::fault
